"""Unit tests for Algorithm 1 (rewrite) and Algorithm 2 (instFunction)."""

import pytest

from repro.alignment import (
    FunctionRegistry,
    SAMEAS_FUNCTION,
    class_alignment,
    class_to_intersection_alignment,
    property_alignment,
)
from repro.core import (
    FreshVariableGenerator,
    GraphPatternRewriter,
    QueryRewriter,
    RewriteError,
    instantiate_functions,
    match_alignment,
)
from repro.rdf import AKT, KISTI, RDF, RKB_ID, Triple, Variable
from repro.sparql import parse_query

from ..conftest import FIGURE_1_QUERY, KISTI_PERSON_URI


class TestFreshVariableGenerator:
    def test_avoids_reserved_names(self):
        generator = FreshVariableGenerator([Variable("new1"), Variable("new2")])
        assert generator.fresh() == Variable("new3")

    def test_sequential_uniqueness(self):
        generator = FreshVariableGenerator()
        names = {generator.fresh().name for _ in range(10)}
        assert len(names) == 10

    def test_reserve_after_creation(self):
        generator = FreshVariableGenerator()
        generator.reserve([Variable("new1")])
        assert generator.fresh() == Variable("new2")


class TestInstantiateFunctions:
    def test_ground_parameter_executes_sameas(self, figure2_alignment, registry):
        triple = Triple(Variable("paper"), AKT["has-author"], RKB_ID["person-02686"])
        match = match_alignment(figure2_alignment, triple)
        substitution, calls = instantiate_functions(match, registry)
        assert substitution[Variable("a2")] == KISTI_PERSON_URI
        assert calls == 2

    def test_variable_parameter_passes_through(self, figure2_alignment, registry):
        """The paper's default mechanism: sameas of a free variable is the variable."""
        triple = Triple(Variable("paper"), AKT["has-author"], Variable("a"))
        match = match_alignment(figure2_alignment, triple)
        substitution, _ = instantiate_functions(match, registry)
        assert substitution[Variable("p2")] == Variable("paper")
        assert substitution[Variable("a2")] == Variable("a")

    def test_missing_function_skipped_by_default(self, figure2_alignment):
        triple = Triple(Variable("paper"), AKT["has-author"], RKB_ID["person-02686"])
        match = match_alignment(figure2_alignment, triple)
        substitution, calls = instantiate_functions(match, FunctionRegistry())
        assert calls == 0
        assert Variable("a2") not in substitution

    def test_missing_function_raises_in_strict_mode(self, figure2_alignment):
        triple = Triple(Variable("paper"), AKT["has-author"], RKB_ID["person-02686"])
        match = match_alignment(figure2_alignment, triple)
        with pytest.raises(RewriteError):
            instantiate_functions(match, FunctionRegistry(), strict=True)

    def test_failing_function_raises_in_strict_mode(self, figure2_alignment, sameas_service):
        from repro.alignment import make_sameas

        registry = FunctionRegistry()
        registry.register(SAMEAS_FUNCTION, make_sameas(sameas_service, strict=True))
        triple = Triple(Variable("paper"), AKT["has-author"], RKB_ID["person-unknown"])
        match = match_alignment(figure2_alignment, triple)
        with pytest.raises(RewriteError):
            instantiate_functions(match, registry, strict=True)


class TestGraphPatternRewriter:
    def test_unmatched_triple_copied_unchanged(self, figure2_alignment, registry):
        rewriter = GraphPatternRewriter([figure2_alignment], registry)
        pattern = Triple(Variable("x"), AKT["has-title"], Variable("t"))
        result, report = rewriter.rewrite_bgp([pattern])
        assert result == [pattern]
        assert report.matched_count == 0
        assert report.unmatched_count == 1

    def test_matched_triple_replaced_by_rhs(self, figure2_alignment, registry):
        rewriter = GraphPatternRewriter([figure2_alignment], registry)
        pattern = Triple(Variable("paper"), AKT["has-author"], RKB_ID["person-02686"])
        result, report = rewriter.rewrite_bgp([pattern])
        assert len(result) == 2
        assert result[0].predicate == KISTI["hasCreatorInfo"]
        assert result[1].predicate == KISTI["hasCreator"]
        assert result[1].object == KISTI_PERSON_URI
        assert report.matched_count == 1
        assert report.output_size == 2

    def test_fresh_variables_differ_across_applications(self, figure2_alignment, registry):
        rewriter = GraphPatternRewriter([figure2_alignment], registry)
        patterns = [
            Triple(Variable("paper"), AKT["has-author"], RKB_ID["person-02686"]),
            Triple(Variable("paper"), AKT["has-author"], Variable("a")),
        ]
        result, _report = rewriter.rewrite_bgp(patterns)
        # ?c is renamed to a different fresh variable in each application.
        intermediate_1 = result[0].object
        intermediate_2 = result[2].object
        assert intermediate_1 != intermediate_2

    def test_first_matching_alignment_wins(self, figure2_alignment, registry):
        flat = property_alignment(AKT["has-author"], KISTI["hasCreator"])
        pattern = Triple(Variable("p"), AKT["has-author"], Variable("a"))
        chain_first, _ = GraphPatternRewriter([figure2_alignment, flat], registry).rewrite_bgp([pattern])
        flat_first, _ = GraphPatternRewriter([flat, figure2_alignment], registry).rewrite_bgp([pattern])
        assert len(chain_first) == 2
        assert len(flat_first) == 1

    def test_class_alignment_rewrite(self, registry):
        alignment = class_alignment(AKT["Person"], KISTI["Researcher"])
        pattern = Triple(Variable("x"), RDF.type, AKT["Person"])
        result, _ = GraphPatternRewriter([alignment], registry).rewrite_bgp([pattern])
        assert result == [Triple(Variable("x"), RDF.type, KISTI["Researcher"])]

    def test_intersection_alignment_produces_two_memberships(self, registry):
        alignment = class_to_intersection_alignment(
            AKT["Person"], [KISTI["Researcher"], KISTI["Publication"]]
        )
        pattern = Triple(Variable("x"), RDF.type, AKT["Person"])
        result, _ = GraphPatternRewriter([alignment], registry).rewrite_bgp([pattern])
        assert len(result) == 2
        assert {triple.object for triple in result} == {KISTI["Researcher"], KISTI["Publication"]}

    def test_report_tracks_alignments_used(self, figure2_alignment, registry):
        rewriter = GraphPatternRewriter([figure2_alignment], registry)
        patterns = [
            Triple(Variable("paper"), AKT["has-author"], Variable("a")),
            Triple(Variable("paper"), AKT["has-title"], Variable("t")),
        ]
        _, report = rewriter.rewrite_bgp(patterns)
        assert report.alignments_used() == [figure2_alignment]
        assert report.input_size == 2
        assert report.output_size == 3

    def test_empty_bgp(self, figure2_alignment, registry):
        result, report = GraphPatternRewriter([figure2_alignment], registry).rewrite_bgp([])
        assert result == []
        assert report.input_size == 0

    def test_no_alignments_is_identity(self, registry):
        pattern = Triple(Variable("x"), AKT["has-title"], Variable("t"))
        result, report = GraphPatternRewriter([], registry).rewrite_bgp([pattern])
        assert result == [pattern]


class TestQueryRewriter:
    def test_input_query_not_mutated(self, figure2_alignment, registry):
        query = parse_query(FIGURE_1_QUERY)
        before = [str(p) for p in query.all_triple_patterns()]
        QueryRewriter([figure2_alignment], registry).rewrite(query)
        after = [str(p) for p in query.all_triple_patterns()]
        assert before == after

    def test_result_form_and_modifiers_preserved(self, figure2_alignment, registry):
        query = parse_query(FIGURE_1_QUERY)
        rewritten, _ = QueryRewriter([figure2_alignment], registry).rewrite(query)
        assert rewritten.projection == [Variable("a")]
        assert rewritten.modifiers.distinct is True

    def test_filters_preserved_verbatim(self, figure2_alignment, registry):
        """BGP-only rewriting leaves the FILTER untouched (the Section 4 limitation)."""
        query = parse_query(FIGURE_1_QUERY)
        rewritten, _ = QueryRewriter([figure2_alignment], registry).rewrite(query)
        filters = list(rewritten.filters())
        assert len(filters) == 1
        assert "person-02686" in rewritten.serialize()

    def test_optional_and_union_blocks_rewritten(self, registry):
        alignment = property_alignment(AKT["has-title"], KISTI["title"])
        query = parse_query("""
            PREFIX akt:<http://www.aktors.org/ontology/portal#>
            SELECT ?t WHERE {
              { ?p akt:has-title ?t } UNION { ?q akt:has-title ?t }
              OPTIONAL { ?p akt:has-title ?other }
            }
        """)
        rewritten, report = QueryRewriter([alignment], registry).rewrite(query)
        predicates = {pattern.predicate for pattern in rewritten.all_triple_patterns()}
        assert predicates == {KISTI["title"]}
        assert report.matched_count == 3

    def test_prologue_extended_with_target_prefixes(self, figure2_alignment, registry):
        query = parse_query(FIGURE_1_QUERY)
        rewriter = QueryRewriter([figure2_alignment], registry,
                                 extra_prefixes={"kisti": str(KISTI)})
        rewritten, _ = rewriter.rewrite(query)
        assert rewritten.prologue.namespace_manager.namespace("kisti") == str(KISTI)
        assert "kisti:hasCreatorInfo" in rewritten.serialize()

    def test_auto_prefix_generated_when_not_supplied(self, figure2_alignment, registry):
        query = parse_query(FIGURE_1_QUERY)
        rewritten, _ = QueryRewriter([figure2_alignment], registry).rewrite(query)
        # Some prefix is bound to the KISTI namespace so the output is compact.
        assert rewritten.prologue.namespace_manager.prefix(str(KISTI)) is not None

    def test_construct_query_where_clause_rewritten(self, registry):
        alignment = property_alignment(AKT["has-title"], KISTI["title"])
        query = parse_query("""
            PREFIX akt:<http://www.aktors.org/ontology/portal#>
            CONSTRUCT { ?p akt:has-title ?t } WHERE { ?p akt:has-title ?t }
        """)
        rewritten, _ = QueryRewriter([alignment], registry).rewrite(query)
        # WHERE is rewritten, the template kept in the source vocabulary.
        assert rewritten.all_triple_patterns()[0].predicate == KISTI["title"]
        assert rewritten.template[0].predicate == AKT["has-title"]

    def test_rewrite_to_text(self, figure2_alignment, registry):
        text = QueryRewriter([figure2_alignment], registry).rewrite_to_text(
            parse_query(FIGURE_1_QUERY)
        )
        assert "hasCreatorInfo" in text
        assert "SELECT DISTINCT ?a" in text
