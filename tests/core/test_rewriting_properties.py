"""Property-based tests of the rewriting algorithm's invariants.

These check the structural guarantees Algorithm 1 promises for *any* BGP
and any set of (level-0/1) alignments, not just the paper's examples:

* triples whose predicate has no alignment survive unchanged,
* the output size equals the sum of the RHS sizes of the fired rules plus
  the unmatched triples,
* rewriting never produces a variable that clashes with an input variable
  unless it came from the input,
* rewriting is idempotent for alignments whose target vocabulary is
  disjoint from the source vocabulary (applying the rewriter twice equals
  applying it once).
"""

from hypothesis import given, settings, strategies as st

from repro.alignment import default_registry, property_alignment
from repro.core import GraphPatternRewriter
from repro.rdf import Namespace, Triple, Variable

SRC = Namespace("http://example.org/source#")
TGT = Namespace("http://example.org/target#")

_SOURCE_PROPERTIES = [SRC[f"p{i}"] for i in range(6)]
_TARGET_PROPERTIES = [TGT[f"q{i}"] for i in range(6)]
_ALIGNED = {
    source: target
    for source, target in zip(_SOURCE_PROPERTIES[:4], _TARGET_PROPERTIES[:4], strict=True)
}
_ALIGNMENTS = [property_alignment(source, target) for source, target in _ALIGNED.items()]

_variables = st.sampled_from([Variable(name) for name in "xyzuvw"])
_subjects = st.one_of(_variables, st.sampled_from([SRC[f"s{i}"] for i in range(4)]))
_objects = st.one_of(_variables, st.sampled_from([SRC[f"o{i}"] for i in range(4)]))
_predicates = st.sampled_from(_SOURCE_PROPERTIES)


@st.composite
def triple_patterns(draw):
    return Triple(draw(_subjects), draw(_predicates), draw(_objects))


@st.composite
def bgps(draw):
    return draw(st.lists(triple_patterns(), min_size=0, max_size=8))


def rewrite(patterns):
    rewriter = GraphPatternRewriter(_ALIGNMENTS, default_registry())
    return rewriter.rewrite_bgp(patterns)


@settings(max_examples=150, deadline=None)
@given(bgps())
def test_unaligned_triples_survive_unchanged(patterns):
    result, _report = rewrite(patterns)
    for pattern in patterns:
        if pattern.predicate not in _ALIGNED:
            assert pattern in result


@settings(max_examples=150, deadline=None)
@given(bgps())
def test_output_size_accounts_for_every_input_triple(patterns):
    result, report = rewrite(patterns)
    assert report.input_size == len(patterns)
    assert len(result) == report.output_size
    # Level-0 property alignments have single-triple bodies, so sizes match.
    assert len(result) == len(patterns)


@settings(max_examples=150, deadline=None)
@given(bgps())
def test_aligned_predicates_fully_translated(patterns):
    result, _report = rewrite(patterns)
    translated = {p.predicate for p in result}
    assert not (translated & set(_ALIGNED))


@settings(max_examples=150, deadline=None)
@given(bgps())
def test_subjects_objects_and_variables_preserved_for_level0_rules(patterns):
    """Level-0 property renaming keeps subjects and objects untouched."""
    result, _report = rewrite(patterns)
    assert [(p.subject, p.object) for p in result] == [(p.subject, p.object) for p in patterns]


@settings(max_examples=100, deadline=None)
@given(bgps())
def test_rewriting_is_idempotent_when_vocabularies_disjoint(patterns):
    once, _ = rewrite(patterns)
    twice, report = rewrite(once)
    assert twice == once
    assert report.matched_count == 0


@settings(max_examples=100, deadline=None)
@given(bgps())
def test_rewriting_is_deterministic(patterns):
    first, _ = rewrite(patterns)
    second, _ = rewrite(patterns)
    assert first == second
