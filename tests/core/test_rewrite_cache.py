"""Tests for the mediator's rewrite cache and the batch rewriting APIs."""

import pytest

from repro.alignment import AlignmentStore
from repro.core import Mediator, TargetProfile
from repro.datasets import (
    AKT_ONTOLOGY_URI,
    KISTI_DATASET_URI,
    KISTI_URI_PATTERN,
    akt_to_kisti_alignment,
)
from repro.rdf import KISTI, URIRef

from ..conftest import FIGURE_1_QUERY, FIGURE_6_QUERY


@pytest.fixture()
def store() -> AlignmentStore:
    return AlignmentStore([akt_to_kisti_alignment()])


@pytest.fixture()
def mediator(store, sameas_service) -> Mediator:
    mediator = Mediator(store, sameas_service)
    mediator.register_target(TargetProfile(
        dataset=KISTI_DATASET_URI,
        ontologies=(URIRef("http://www.kisti.re.kr/isrl/ResearchRefOntology#"),),
        uri_pattern=KISTI_URI_PATTERN,
        prefixes=(("kisti", str(KISTI)),),
    ))
    return mediator


class TestRewriteCache:
    def test_repeat_translation_hits_cache(self, mediator):
        first = mediator.translate(FIGURE_1_QUERY, KISTI_DATASET_URI,
                                   source_ontology=AKT_ONTOLOGY_URI)
        second = mediator.translate(FIGURE_1_QUERY, KISTI_DATASET_URI,
                                    source_ontology=AKT_ONTOLOGY_URI)
        info = mediator.cache_info()
        assert info["hits"] == 1 and info["misses"] == 1
        assert second.query_text == first.query_text
        assert second.alignments_considered == first.alignments_considered
        assert second.report.matched_count == first.report.matched_count

    def test_cache_hit_returns_independent_query_objects(self, mediator):
        first = mediator.translate(FIGURE_1_QUERY, KISTI_DATASET_URI)
        second = mediator.translate(FIGURE_1_QUERY, KISTI_DATASET_URI)
        assert second.rewritten_query is not first.rewritten_query
        # Mutating one result must not leak into subsequent cache hits.
        first.rewritten_query.triples_blocks().__next__().patterns.clear()
        third = mediator.translate(FIGURE_1_QUERY, KISTI_DATASET_URI)
        assert third.query_text == second.query_text

    def test_equivalent_query_text_shares_cache_entry(self, mediator):
        # The key is the *normalized* query, so formatting differences
        # (whitespace) still hit.
        reformatted = FIGURE_1_QUERY.replace("\n", " ").replace("  ", " ")
        mediator.translate(FIGURE_1_QUERY, KISTI_DATASET_URI)
        mediator.translate(reformatted, KISTI_DATASET_URI)
        assert mediator.cache_info()["hits"] == 1

    def test_mode_and_strict_are_part_of_the_key(self, mediator):
        mediator.translate(FIGURE_6_QUERY, KISTI_DATASET_URI, mode="bgp")
        mediator.translate(FIGURE_6_QUERY, KISTI_DATASET_URI, mode="filter-aware")
        mediator.translate(FIGURE_6_QUERY, KISTI_DATASET_URI, mode="algebra")
        info = mediator.cache_info()
        assert info["hits"] == 0 and info["misses"] == 3

    def test_store_mutation_invalidates_cache(self, mediator, store):
        from repro.alignment import OntologyAlignment
        from repro.alignment.levels import property_alignment
        from repro.rdf import Namespace

        EX = Namespace("http://example.org/extra#")
        baseline = mediator.translate(FIGURE_1_QUERY, KISTI_DATASET_URI)
        store.add(OntologyAlignment(
            source_ontologies=[AKT_ONTOLOGY_URI],
            target_datasets=[KISTI_DATASET_URI],
            entity_alignments=[property_alignment(EX["p"], EX["q"])],
        ))
        refreshed = mediator.translate(FIGURE_1_QUERY, KISTI_DATASET_URI)
        info = mediator.cache_info()
        assert info["hits"] == 0 and info["misses"] == 2
        # The new alignment is now part of the selection.
        assert refreshed.alignments_considered == baseline.alignments_considered + 1

    def test_sameas_mutation_invalidates_cache(self, mediator, sameas_service):
        from repro.rdf import URIRef as U

        # First translation: person-12345 has no KISTI equivalent, so the
        # sameas FD cannot fire for it.
        query = FIGURE_1_QUERY.replace("person-02686", "person-12345")
        before = mediator.translate(query, KISTI_DATASET_URI,
                                    source_ontology=AKT_ONTOLOGY_URI)
        assert "PER_99" not in before.query_text
        # Adding the co-reference link must invalidate the rewrite cache:
        # the next translation picks it up instead of replaying the miss.
        sameas_service.add_equivalence(
            U("http://southampton.rkbexplorer.com/id/person-12345"),
            U("http://kisti.rkbexplorer.com/id/PER_99"),
        )
        after = mediator.translate(query, KISTI_DATASET_URI,
                                   source_ontology=AKT_ONTOLOGY_URI)
        assert mediator.cache_info()["hits"] == 0
        assert "PER_99" in after.query_text

    def test_registry_mutation_invalidates_cache(self, mediator):
        from repro.rdf import URIRef as U

        mediator.translate(FIGURE_1_QUERY, KISTI_DATASET_URI)
        mediator.registry.register(U("http://example.org/fn#identity"), lambda term: term)
        mediator.translate(FIGURE_1_QUERY, KISTI_DATASET_URI)
        assert mediator.cache_info()["hits"] == 0

    def test_cache_hit_report_entries_are_independent(self, mediator):
        first = mediator.translate(FIGURE_1_QUERY, KISTI_DATASET_URI)
        first.report.rewrites[0].produced.clear()
        second = mediator.translate(FIGURE_1_QUERY, KISTI_DATASET_URI)
        assert second.report.rewrites[0].produced
        assert second.report.output_size > 0

    def test_load_graph_invalidates_cache(self, mediator, store):
        mediator.translate(FIGURE_1_QUERY, KISTI_DATASET_URI)
        store.load_graph(store.to_graph())
        mediator.translate(FIGURE_1_QUERY, KISTI_DATASET_URI)
        assert mediator.cache_info()["hits"] == 0

    def test_register_target_clears_cache(self, mediator):
        mediator.translate(FIGURE_1_QUERY, KISTI_DATASET_URI)
        mediator.register_target(TargetProfile(
            dataset=KISTI_DATASET_URI,
            uri_pattern=KISTI_URI_PATTERN,
        ))
        assert mediator.cache_info()["results"] == 0

    def test_ruleset_shared_across_modes(self, mediator):
        target = mediator.target(KISTI_DATASET_URI)
        ruleset = mediator.compiled_ruleset(target, AKT_ONTOLOGY_URI)
        assert mediator.compiled_ruleset(target, AKT_ONTOLOGY_URI) is ruleset


class TestRewriteMany:
    def test_batch_matches_individual_translations(self, mediator):
        individual = [
            mediator.translate(q, KISTI_DATASET_URI, source_ontology=AKT_ONTOLOGY_URI)
            for q in (FIGURE_1_QUERY, FIGURE_6_QUERY)
        ]
        batch = mediator.rewrite_many(
            [FIGURE_1_QUERY, FIGURE_6_QUERY], KISTI_DATASET_URI,
            source_ontology=AKT_ONTOLOGY_URI,
        )
        assert [r.query_text for r in batch] == [r.query_text for r in individual]

    def test_batch_preserves_input_order_with_duplicates(self, mediator):
        batch = mediator.rewrite_many(
            [FIGURE_1_QUERY, FIGURE_6_QUERY, FIGURE_1_QUERY], KISTI_DATASET_URI,
        )
        assert len(batch) == 3
        assert batch[0].query_text == batch[2].query_text
        assert mediator.cache_info()["hits"] == 1

    def test_unknown_target_raises(self, mediator):
        with pytest.raises(KeyError):
            mediator.rewrite_many([FIGURE_1_QUERY], URIRef("http://unknown.org/void"))


class TestFederationBatch:
    def test_federate_many_matches_individual_federates(self, small_scenario):
        scenario = small_scenario
        queries = [FIGURE_1_QUERY, FIGURE_6_QUERY]
        individual = [
            scenario.service.federate(
                query,
                source_ontology=scenario.source_ontology,
                source_dataset=scenario.rkb_dataset,
                mode="filter-aware",
            )
            for query in queries
        ]
        batch = scenario.service.federate_many(
            queries,
            source_ontology=scenario.source_ontology,
            source_dataset=scenario.rkb_dataset,
            mode="filter-aware",
        )
        assert len(batch) == len(individual)
        for batched, single in zip(batch, individual, strict=True):
            assert batched.total_rows == single.total_rows
            assert len(batched.merged_bindings) == len(single.merged_bindings)
            assert batched.successful_datasets() == single.successful_datasets()

    def test_federate_many_warms_the_rewrite_cache(self, small_scenario):
        scenario = small_scenario
        mediator = scenario.service.mediator
        before = mediator.cache_info()
        scenario.service.federate_many(
            [FIGURE_1_QUERY, FIGURE_1_QUERY],
            source_ontology=scenario.source_ontology,
            source_dataset=scenario.rkb_dataset,
        )
        after = mediator.cache_info()
        assert after["hits"] > before["hits"]
