"""Unit tests for the FILTER-aware rewriting extension (Section 4)."""


from repro.core import (
    EqualityConstraint,
    FilterAwareQueryRewriter,
    QueryRewriter,
    extract_equality_constraints,
    promote_equality_constraints,
    translate_expression_terms,
)
from repro.rdf import KISTI, KISTI_ID, RKB_ID, Variable
from repro.sparql import parse_query, serialize_expression

from ..conftest import FIGURE_1_QUERY, FIGURE_6_QUERY, KISTI_PERSON_URI, KISTI_URI_PATTERN


def first_filter_expression(query_text: str):
    return next(iter(parse_query(query_text).filters())).expression


class TestExtractEqualityConstraints:
    def test_figure6_positive_conjunct_found(self):
        constraints = extract_equality_constraints(first_filter_expression(FIGURE_6_QUERY))
        assert EqualityConstraint(Variable("n"), RKB_ID["person-02686"]) in constraints

    def test_negated_equality_not_extracted(self):
        constraints = extract_equality_constraints(first_filter_expression(FIGURE_1_QUERY))
        assert constraints == []

    def test_disjunction_not_extracted(self):
        expression = first_filter_expression("""
            PREFIX id:<http://southampton.rkbexplorer.com/id/>
            SELECT ?a WHERE { ?p ?q ?a . FILTER ((?a = id:x) || (?a = id:y)) }
        """)
        assert extract_equality_constraints(expression) == []

    def test_reversed_operands_supported(self):
        expression = first_filter_expression("""
            PREFIX id:<http://southampton.rkbexplorer.com/id/>
            SELECT ?a WHERE { ?p ?q ?a . FILTER (id:x = ?a) }
        """)
        constraints = extract_equality_constraints(expression)
        assert constraints == [EqualityConstraint(Variable("a"), RKB_ID["x"])]

    def test_variable_to_variable_equality_ignored(self):
        expression = first_filter_expression(
            "SELECT ?a WHERE { ?p ?q ?a . FILTER (?a = ?p) }"
        )
        assert extract_equality_constraints(expression) == []


class TestPromotion:
    def test_promotion_adds_specialised_patterns(self):
        query = parse_query(FIGURE_6_QUERY)
        promoted, constraints = promote_equality_constraints(query)
        assert len(constraints) == 1
        patterns = promoted.all_triple_patterns()
        # Original two patterns plus one specialised copy with the ground URI.
        assert len(patterns) == 3
        assert any(p.object == RKB_ID["person-02686"] for p in patterns)
        # Original patterns still present: the variable stays bound.
        assert any(p.object == Variable("n") for p in patterns)

    def test_promotion_is_noop_without_constraints(self):
        query = parse_query(FIGURE_1_QUERY)
        promoted, constraints = promote_equality_constraints(query)
        assert constraints == []
        assert len(promoted.all_triple_patterns()) == len(query.all_triple_patterns())

    def test_promotion_does_not_mutate_input(self):
        query = parse_query(FIGURE_6_QUERY)
        before = len(query.all_triple_patterns())
        promote_equality_constraints(query)
        assert len(query.all_triple_patterns()) == before


class TestExpressionTranslation:
    def test_uris_translated_into_target_space(self, sameas_service):
        expression = first_filter_expression(FIGURE_1_QUERY)
        translated = translate_expression_terms(expression, sameas_service, KISTI_URI_PATTERN)
        text = serialize_expression(translated)
        assert str(KISTI_PERSON_URI) in text
        assert "southampton" not in text

    def test_unknown_uris_left_alone(self, sameas_service):
        expression = first_filter_expression("""
            PREFIX id:<http://southampton.rkbexplorer.com/id/>
            SELECT ?a WHERE { ?p ?q ?a . FILTER (?a = id:unlinked-person) }
        """)
        translated = translate_expression_terms(expression, sameas_service, KISTI_URI_PATTERN)
        assert "unlinked-person" in serialize_expression(translated)


class TestFilterAwareQueryRewriter:
    def make_rewriter(self, figure2_alignment, registry, sameas_service):
        return FilterAwareQueryRewriter(
            [figure2_alignment], registry, sameas_service, KISTI_URI_PATTERN,
            extra_prefixes={"kisti": str(KISTI), "kid": str(KISTI_ID)},
        )

    def test_figure6_bgp_only_rewriting_misses_the_constraint(self, figure2_alignment, registry):
        rewritten, _ = QueryRewriter([figure2_alignment], registry).rewrite(
            parse_query(FIGURE_6_QUERY)
        )
        # The source URI survives untranslated (the documented failure).
        assert "person-02686" in rewritten.serialize()
        assert str(KISTI_PERSON_URI) not in rewritten.serialize()

    def test_figure6_filter_aware_translates_the_constraint(
        self, figure2_alignment, registry, sameas_service
    ):
        rewriter = self.make_rewriter(figure2_alignment, registry, sameas_service)
        rewritten, report, constraints = rewriter.rewrite(parse_query(FIGURE_6_QUERY))
        text = rewritten.serialize()
        assert str(KISTI_PERSON_URI) in text or "PER_00000000000105047" in text
        assert len(constraints) == 1
        assert report.matched_count >= 2

    def test_figure1_filter_uri_also_translated(self, figure2_alignment, registry, sameas_service):
        rewriter = self.make_rewriter(figure2_alignment, registry, sameas_service)
        rewritten, _, _ = rewriter.rewrite(parse_query(FIGURE_1_QUERY))
        filter_text = serialize_expression(next(iter(rewritten.filters())).expression)
        assert "southampton" not in filter_text

    def test_rewrite_to_text(self, figure2_alignment, registry, sameas_service):
        rewriter = self.make_rewriter(figure2_alignment, registry, sameas_service)
        text = rewriter.rewrite_to_text(parse_query(FIGURE_6_QUERY))
        assert "hasCreatorInfo" in text
