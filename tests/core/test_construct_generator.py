"""Unit tests for CONSTRUCT-query generation from alignments (data translation)."""


from repro.alignment import class_alignment, property_alignment
from repro.core import (
    DataTranslator,
    construct_queries_for_alignments,
    construct_query_for_alignment,
    translate_graph_uris,
)
from repro.datasets import KISTI_URI_PATTERN, akt_to_kisti_alignment
from repro.rdf import AKT, Graph, KISTI, Literal, RDF, RKB_ID, KISTI_ID, Triple, Variable
from repro.sparql import ConstructQuery, QueryEvaluator


class TestConstructGeneration:
    def test_simple_property_alignment(self):
        alignment = property_alignment(AKT["has-title"], KISTI["title"])
        generated = construct_query_for_alignment(alignment)
        assert isinstance(generated.query, ConstructQuery)
        assert generated.query.template[0].predicate == KISTI["title"]
        assert generated.query.all_triple_patterns()[0].predicate == AKT["has-title"]
        assert generated.deferred_variables == ()

    def test_worked_example_chain(self, figure2_alignment):
        generated = construct_query_for_alignment(figure2_alignment)
        # WHERE = the single LHS triple, template = the two RHS triples.
        assert len(generated.query.all_triple_patterns()) == 1
        assert len(generated.query.template) == 2
        # FD-produced variables are aliased to their LHS source variables...
        template_terms = {term for pattern in generated.query.template for term in pattern}
        assert Variable("p1") in template_terms
        assert Variable("a1") in template_terms
        # ... and reported as deferred (they still need sameas post-processing).
        assert set(generated.deferred_variables) == {Variable("p1"), Variable("a1")}

    def test_query_text_is_valid_sparql(self, figure2_alignment):
        from repro.sparql import parse_query

        generated = construct_query_for_alignment(
            figure2_alignment, prefixes={"akt": str(AKT), "kisti": str(KISTI)}
        )
        reparsed = parse_query(generated.query_text)
        assert isinstance(reparsed, ConstructQuery)
        assert len(reparsed.template) == 2

    def test_generation_for_whole_kb(self):
        generated = construct_queries_for_alignments(akt_to_kisti_alignment())
        assert len(generated) == 24


class TestTranslateGraphUris:
    def test_uris_mapped_to_target_space(self, sameas_service):
        graph = Graph()
        graph.add(Triple(RKB_ID["person-02686"], RDF.type, KISTI["Researcher"]))
        translated = translate_graph_uris(graph, sameas_service, KISTI_URI_PATTERN)
        subjects = {t.subject for t in translated}
        assert KISTI_ID["PER_00000000000105047"] in subjects

    def test_unlinked_uris_and_literals_untouched(self, sameas_service):
        graph = Graph()
        graph.add(Triple(RKB_ID["orphan"], KISTI["name"], Literal("Orphan")))
        translated = translate_graph_uris(graph, sameas_service, KISTI_URI_PATTERN)
        assert Triple(RKB_ID["orphan"], KISTI["name"], Literal("Orphan")) in translated


class TestDataTranslator:
    def akt_source_graph(self) -> Graph:
        graph = Graph()
        paper = RKB_ID["paper-00001"]
        graph.add(Triple(paper, RDF.type, AKT["Article-Reference"]))
        graph.add(Triple(paper, AKT["has-title"], Literal("Rewriting SPARQL")))
        graph.add(Triple(paper, AKT["has-author"], RKB_ID["person-02686"]))
        graph.add(Triple(RKB_ID["person-02686"], RDF.type, AKT["Person"]))
        return graph

    def test_structure_translated_to_target_vocabulary(self, sameas_service):
        translator = DataTranslator(list(akt_to_kisti_alignment()), sameas_service,
                                    KISTI_URI_PATTERN)
        result = translator.translate(self.akt_source_graph())
        predicates = {t.predicate for t in result}
        assert KISTI["title"] in predicates
        assert KISTI["hasCreatorInfo"] in predicates
        assert KISTI["hasCreator"] in predicates
        assert AKT["has-author"] not in predicates

    def test_instance_uris_reminted(self, sameas_service):
        translator = DataTranslator(list(akt_to_kisti_alignment()), sameas_service,
                                    KISTI_URI_PATTERN)
        result = translator.translate(self.akt_source_graph())
        creators = {t.object for t in result.triples(None, KISTI["hasCreator"], None)}
        assert KISTI_ID["PER_00000000000105047"] in creators

    def test_without_sameas_uris_stay_in_source_space(self):
        translator = DataTranslator(list(akt_to_kisti_alignment()))
        result = translator.translate(self.akt_source_graph())
        creators = {t.object for t in result.triples(None, KISTI["hasCreator"], None)}
        assert RKB_ID["person-02686"] in creators

    def test_translated_data_answers_target_vocabulary_queries(self, sameas_service):
        translator = DataTranslator(list(akt_to_kisti_alignment()), sameas_service,
                                    KISTI_URI_PATTERN)
        result = translator.translate(self.akt_source_graph())
        rows = QueryEvaluator(result).select("""
            PREFIX kisti:<http://www.kisti.re.kr/isrl/ResearchRefOntology#>
            SELECT ?a WHERE { ?p kisti:hasCreatorInfo ?c . ?c kisti:hasCreator ?a }
        """)
        assert len(rows) == 1

    def test_query_texts_exposed(self, sameas_service):
        translator = DataTranslator([class_alignment(AKT["Person"], KISTI["Researcher"])])
        texts = translator.query_texts()
        assert len(texts) == 1
        assert "CONSTRUCT" in texts[0]
