"""Tests for the indexed matching subsystem (PatternIndex / CompiledRuleSet).

The contract under test is strict equivalence: for any alignment KB and any
query triple, the indexed path must return exactly what the reference
linear scan returns — same matches, same substitutions, same KB order —
and full rewrites through the indexed rewriter must be byte-identical to
the linear rewriter's output.
"""

from hypothesis import given, settings, strategies as st

from repro.alignment import EntityAlignment
from repro.alignment.levels import class_alignment, property_alignment
from repro.core import CompiledRuleSet, GraphPatternRewriter, QueryRewriter, find_matches
from repro.core.index import PatternIndex
from repro.datasets import akt_to_kisti_alignment
from repro.rdf import AKT, KISTI, Literal, Namespace, RDF, Triple, URIRef, Variable
from repro.sparql import parse_query

from ..conftest import FIGURE_1_QUERY, FIGURE_6_QUERY

EX = Namespace("http://example.org/ns#")


class TestPatternIndexBuckets:
    def test_ground_predicate_lookup_skips_other_buckets(self):
        alignments = [property_alignment(EX[f"p{i}"], EX[f"q{i}"]) for i in range(100)]
        ruleset = CompiledRuleSet(alignments)
        candidates = ruleset.index.candidates(
            Triple(Variable("s"), EX["p7"], Variable("o"))
        )
        assert [rule.alignment for rule in candidates] == [alignments[7]]

    def test_unknown_predicate_yields_no_candidates(self):
        ruleset = CompiledRuleSet([property_alignment(EX["p"], EX["q"])])
        assert ruleset.index.candidates(
            Triple(Variable("s"), EX["unknown"], Variable("o"))
        ) == []

    def test_variable_predicate_query_only_sees_variable_heads(self):
        # A ground head predicate never matches a variable in the query
        # (Section 3.3.1 asymmetry), so those heads must not be candidates.
        ground = property_alignment(EX["p"], EX["q"])
        wild = EntityAlignment(
            lhs=Triple(Variable("s"), Variable("p"), Variable("o")),
            rhs=[Triple(Variable("s"), Variable("p"), Variable("o"))],
        )
        ruleset = CompiledRuleSet([ground, wild])
        candidates = ruleset.index.candidates(
            Triple(Variable("s"), Variable("any"), Variable("o"))
        )
        assert [rule.alignment for rule in candidates] == [wild]

    def test_rdf_type_heads_bucketed_by_class(self):
        alignments = [class_alignment(EX[f"C{i}"], EX[f"D{i}"]) for i in range(50)]
        ruleset = CompiledRuleSet(alignments)
        candidates = ruleset.index.candidates(
            Triple(Variable("x"), RDF.type, EX["C3"])
        )
        assert [rule.alignment for rule in candidates] == [alignments[3]]

    def test_rdf_type_variable_class_query_skips_ground_class_heads(self):
        ruleset = CompiledRuleSet([class_alignment(EX["C"], EX["D"])])
        assert ruleset.index.candidates(
            Triple(Variable("x"), RDF.type, Variable("cls"))
        ) == []

    def test_candidates_preserve_kb_order_across_buckets(self):
        wild = EntityAlignment(
            lhs=Triple(Variable("s"), Variable("p"), Variable("o")),
            rhs=[Triple(Variable("s"), EX["copy"], Variable("o"))],
        )
        first = property_alignment(EX["p"], EX["q1"])
        second = property_alignment(EX["p"], EX["q2"])
        ruleset = CompiledRuleSet([first, wild, second])
        candidates = ruleset.index.candidates(
            Triple(Variable("s"), EX["p"], Variable("o"))
        )
        assert [rule.alignment for rule in candidates] == [first, wild, second]

    def test_incremental_add_updates_index(self):
        index = PatternIndex()
        assert len(index) == 0
        ruleset = CompiledRuleSet()
        ruleset.add(property_alignment(EX["p"], EX["q"]))
        assert len(ruleset) == 1
        triple = Triple(Variable("s"), EX["p"], Variable("o"))
        assert len(ruleset.find_matches(triple)) == 1


class TestEquivalenceWithLinearScan:
    def test_worked_example_kb_matches_identically(self):
        alignments = list(akt_to_kisti_alignment())
        ruleset = CompiledRuleSet(alignments)
        probes = [
            Triple(Variable("paper"), AKT["has-author"], Variable("a")),
            Triple(Variable("paper"), AKT["has-author"],
                   URIRef("http://southampton.rkbexplorer.com/id/person-02686")),
            Triple(Variable("x"), RDF.type, AKT["Paper-Reference"]),
            Triple(Variable("x"), RDF.type, Variable("cls")),
            Triple(Variable("x"), Variable("p"), Variable("y")),
            Triple(Variable("x"), EX["not-aligned"], Variable("y")),
        ]
        for probe in probes:
            assert ruleset.find_matches(probe) == find_matches(alignments, probe)

    def test_first_match_agrees_with_linear_first(self, figure2_alignment):
        flat = property_alignment(AKT["has-author"], KISTI["hasCreator"])
        for order in ([figure2_alignment, flat], [flat, figure2_alignment]):
            ruleset = CompiledRuleSet(order)
            triple = Triple(Variable("paper"), AKT["has-author"], Variable("a"))
            indexed_first, _rule = ruleset.first_match(triple)
            assert indexed_first == find_matches(order, triple)[0]

    def test_full_query_rewrite_byte_identical(self, registry):
        alignments = list(akt_to_kisti_alignment())
        for query_text in (FIGURE_1_QUERY, FIGURE_6_QUERY):
            query = parse_query(query_text)
            indexed = QueryRewriter(alignments, registry, use_index=True)
            linear = QueryRewriter(alignments, registry, use_index=False)
            assert indexed.rewrite_to_text(query) == linear.rewrite_to_text(query)

    def test_bgp_rewrite_reports_identical(self, registry):
        alignments = list(akt_to_kisti_alignment())
        patterns = [
            Triple(Variable("paper"), AKT["has-author"], Variable("a")),
            Triple(Variable("x"), RDF.type, AKT["Person"]),
            Triple(Variable("x"), EX["untouched"], Variable("y")),
        ]
        indexed = GraphPatternRewriter(alignments, registry, use_index=True)
        linear = GraphPatternRewriter(alignments, registry, use_index=False)
        indexed_result, indexed_report = indexed.rewrite_bgp(patterns)
        linear_result, linear_report = linear.rewrite_bgp(patterns)
        assert indexed_result == linear_result
        assert indexed_report.matched_count == linear_report.matched_count
        assert [r.produced for r in indexed_report.rewrites] \
            == [r.produced for r in linear_report.rewrites]


# --------------------------------------------------------------------------- #
# Property test: indexed == linear on randomly generated KBs and triples.
# --------------------------------------------------------------------------- #
_URIS = [EX["a"], EX["b"], EX["c"], RDF.type]
_VARIABLES = [Variable("x"), Variable("y"), Variable("z")]
_SUBJECTS = _URIS[:3] + _VARIABLES
_PREDICATES = _URIS + _VARIABLES
_OBJECTS = _URIS[:3] + _VARIABLES + [Literal("value")]

_triples = st.builds(
    Triple,
    st.sampled_from(_SUBJECTS),
    st.sampled_from(_PREDICATES),
    st.sampled_from(_OBJECTS),
)
_alignments = st.builds(
    lambda lhs, rhs: EntityAlignment(lhs=lhs, rhs=[rhs]),
    _triples,
    _triples,
)


@settings(max_examples=300, deadline=None)
@given(st.lists(_alignments, max_size=12), _triples)
def test_indexed_matching_equals_linear_scan(alignments, query_triple):
    """For any KB and query triple, both paths agree match-for-match."""
    ruleset = CompiledRuleSet(alignments)
    assert ruleset.find_matches(query_triple) == find_matches(alignments, query_triple)
