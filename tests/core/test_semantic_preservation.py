"""Semantics-preservation properties of rewriting + data translation.

The intent of an entity alignment is that *querying the target through the
rewritten query* retrieves the same information as *querying the source
through the original query*.  For the mechanically checkable fragment
(level-0/1/2 alignments without URI re-minting) this can be stated as a
round-trip property:

    answers(original_query, source_data)
        == answers(rewritten_query, translate(source_data))

where ``translate`` publishes the source data under the target vocabulary
using the very same alignments (the CONSTRUCT-based data translator).
Hypothesis generates random source graphs and queries over a fixed
vocabulary; the property must hold for all of them.
"""


from hypothesis import given, settings, strategies as st

from repro.alignment import (
    class_alignment,
    class_to_value_partition_alignment,
    default_registry,
    property_alignment,
    property_chain_alignment,
)
from repro.core import DataTranslator, QueryRewriter
from repro.rdf import Graph, Literal, Namespace, RDF, Triple, Variable
from repro.sparql import GroupGraphPattern, Prologue, QueryEvaluator, SelectQuery, TriplesBlock

SRC = Namespace("http://example.org/src#")
TGT = Namespace("http://example.org/tgt#")

# Note: the images of the source classes are kept disjoint (Person maps to
# NaturalPerson, Professor to the Agent/role partition) so that answer-set
# equality is the right property to test; many-to-one alignments would make
# the rewritten query legitimately broader than the original.
ALIGNMENTS = [
    class_alignment(SRC.Person, TGT.NaturalPerson),
    class_alignment(SRC.Paper, TGT.Document),
    property_alignment(SRC.name, TGT.label),
    property_alignment(SRC.wrote, TGT.created),
    property_chain_alignment(SRC.supervised, [TGT.supervision, TGT.student]),
    class_to_value_partition_alignment(SRC.Professor, TGT.Agent, TGT.role, Literal("professor")),
]

_PEOPLE = [SRC[f"person{i}"] for i in range(4)]
_PAPERS = [SRC[f"paper{i}"] for i in range(4)]
_NAMES = [Literal(name) for name in ("Ada", "Alan", "Grace", "Tim")]


@st.composite
def source_graphs(draw):
    graph = Graph()
    for person in draw(st.sets(st.sampled_from(_PEOPLE), max_size=4)):
        graph.add(Triple(person, RDF.type, SRC.Person))
    for person in draw(st.sets(st.sampled_from(_PEOPLE), max_size=4)):
        graph.add(Triple(person, RDF.type, SRC.Professor))
    for paper in draw(st.sets(st.sampled_from(_PAPERS), max_size=4)):
        graph.add(Triple(paper, RDF.type, SRC.Paper))
    for person in draw(st.sets(st.sampled_from(_PEOPLE), max_size=4)):
        graph.add(Triple(person, SRC.name, draw(st.sampled_from(_NAMES))))
    for _ in range(draw(st.integers(min_value=0, max_value=6))):
        graph.add(Triple(draw(st.sampled_from(_PEOPLE)), SRC.wrote,
                         draw(st.sampled_from(_PAPERS))))
    for _ in range(draw(st.integers(min_value=0, max_value=4))):
        supervisor = draw(st.sampled_from(_PEOPLE))
        student = draw(st.sampled_from(_PEOPLE))
        graph.add(Triple(supervisor, SRC.supervised, student))
    return graph


_QUERY_SHAPES = [
    # (projection names, BGP patterns as (subject, predicate, object) builders)
    (["x"], [(Variable("x"), RDF.type, SRC.Person)]),
    (["x"], [(Variable("x"), RDF.type, SRC.Professor)]),
    (["x", "n"], [(Variable("x"), SRC.name, Variable("n"))]),
    (["x", "p"], [(Variable("x"), SRC.wrote, Variable("p")),
                  (Variable("p"), RDF.type, SRC.Paper)]),
    (["a", "b"], [(Variable("a"), SRC.supervised, Variable("b"))]),
    (["a", "n"], [(Variable("a"), SRC.supervised, Variable("b")),
                  (Variable("b"), SRC.name, Variable("n"))]),
    (["x", "n"], [(Variable("x"), RDF.type, SRC.Person),
                  (Variable("x"), SRC.name, Variable("n"))]),
]


def build_query(shape) -> SelectQuery:
    projection, patterns = shape
    block = TriplesBlock([Triple(*pattern) for pattern in patterns])
    return SelectQuery(Prologue(), [Variable(name) for name in projection],
                       GroupGraphPattern([block]))


def answers(query, graph) -> frozenset:
    result = QueryEvaluator(graph).select(query)
    return frozenset(frozenset(binding.as_dict().items()) for binding in result)


@settings(max_examples=60, deadline=None)
@given(source_graphs(), st.sampled_from(_QUERY_SHAPES))
def test_rewritten_query_over_translated_data_preserves_answers(graph, shape):
    query = build_query(shape)
    registry = default_registry()

    original_answers = answers(query, graph)

    translated_data = DataTranslator(ALIGNMENTS).translate(graph)
    rewritten, _report = QueryRewriter(ALIGNMENTS, registry).rewrite(query)
    rewritten_answers = answers(rewritten, translated_data)

    assert rewritten_answers == original_answers


@settings(max_examples=40, deadline=None)
@given(source_graphs(), st.sampled_from(_QUERY_SHAPES))
def test_rewriting_never_loses_answers_on_superset_data(graph, shape):
    """Answers are preserved even when the target holds extra, unrelated data."""
    query = build_query(shape)
    registry = default_registry()

    translated_data = DataTranslator(ALIGNMENTS).translate(graph)
    translated_data.add(Triple(TGT["extra"], RDF.type, TGT.Agent))
    translated_data.add(Triple(TGT["extra"], TGT.label, Literal("noise")))

    rewritten, _report = QueryRewriter(ALIGNMENTS, registry).rewrite(query)
    rewritten_answers = answers(rewritten, translated_data)
    assert answers(query, graph) <= rewritten_answers
