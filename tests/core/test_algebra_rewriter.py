"""Unit tests for the algebra-level rewriter (the Section 4 proposal)."""

from repro.core import AlgebraQueryRewriter, FreshVariableGenerator, QueryRewriter
from repro.rdf import KISTI, KISTI_ID, Variable
from repro.sparql import (
    AlgebraBGP,
    AlgebraFilter,
    parse_query,
    translate_group,
)

from ..conftest import FIGURE_1_QUERY, FIGURE_6_QUERY, KISTI_PERSON_URI, KISTI_URI_PATTERN


def make_rewriter(figure2_alignment, registry, sameas_service=None):
    return AlgebraQueryRewriter(
        [figure2_alignment], registry,
        sameas_service=sameas_service,
        target_uri_pattern=KISTI_URI_PATTERN if sameas_service is not None else None,
        extra_prefixes={"kisti": str(KISTI), "kid": str(KISTI_ID)},
    )


class TestAlgebraRewriting:
    def test_bgp_leaves_rewritten(self, figure2_alignment, registry):
        rewriter = make_rewriter(figure2_alignment, registry)
        algebra = translate_group(parse_query(FIGURE_1_QUERY).where)
        rewritten, report = rewriter.rewrite_algebra(
            algebra, FreshVariableGenerator([Variable("paper"), Variable("a")])
        )
        bgps = [node for node in rewritten.walk() if isinstance(node, AlgebraBGP)]
        assert sum(len(bgp.patterns) for bgp in bgps) == 4
        assert report.matched_count == 2

    def test_filter_expressions_translated(self, figure2_alignment, registry, sameas_service):
        rewriter = make_rewriter(figure2_alignment, registry, sameas_service)
        algebra = translate_group(parse_query(FIGURE_1_QUERY).where)
        rewritten, _ = rewriter.rewrite_algebra(algebra, FreshVariableGenerator())
        filters = [node for node in rewritten.walk() if isinstance(node, AlgebraFilter)]
        assert len(filters) == 1

    def test_query_level_rewrite_matches_bgp_rewriter_on_figure1(
        self, figure2_alignment, registry, sameas_service
    ):
        """On a BGP-only query both engines produce the same pattern set."""
        algebra_rewriter = make_rewriter(figure2_alignment, registry, sameas_service)
        bgp_rewriter = QueryRewriter([figure2_alignment], registry)

        query = parse_query(FIGURE_1_QUERY)
        via_algebra, _ = algebra_rewriter.rewrite(query)
        via_bgp, _ = bgp_rewriter.rewrite(query)

        algebra_predicates = sorted(str(p.predicate) for p in via_algebra.all_triple_patterns())
        bgp_predicates = sorted(str(p.predicate) for p in via_bgp.all_triple_patterns())
        assert algebra_predicates == bgp_predicates

    def test_figure6_constraint_translated_at_algebra_level(
        self, figure2_alignment, registry, sameas_service
    ):
        rewriter = make_rewriter(figure2_alignment, registry, sameas_service)
        rewritten, _ = rewriter.rewrite(parse_query(FIGURE_6_QUERY))
        text = rewritten.serialize()
        assert str(KISTI_PERSON_URI) in text or "PER_00000000000105047" in text

    def test_result_form_preserved(self, figure2_alignment, registry, sameas_service):
        rewriter = make_rewriter(figure2_alignment, registry, sameas_service)
        rewritten, _ = rewriter.rewrite(parse_query(FIGURE_1_QUERY))
        assert rewritten.projection == [Variable("a")]
        assert rewritten.modifiers.distinct

    def test_input_not_mutated(self, figure2_alignment, registry, sameas_service):
        query = parse_query(FIGURE_1_QUERY)
        before = query.serialize()
        make_rewriter(figure2_alignment, registry, sameas_service).rewrite(query)
        assert query.serialize() == before
