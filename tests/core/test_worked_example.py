"""End-to-end reproduction of the worked example of Section 3.3.2.

The Figure 1 query, rewritten with the Figure 2 alignment and the
co-reference knowledge of sameas.org, must produce the Figure 3 query:

    SELECT ?a WHERE {
      ?p    kisti:hasCreatorInfo ?_33 .
      ?_33  kisti:hasCreator     kid:PER_0...105047 .
      ?p    kisti:hasCreatorInfo ?_38 .
      ?_38  kisti:hasCreator     ?a .
    }

(modulo the names of the fresh variables, which are implementation
artefacts in the paper as well).
"""

from repro.core import QueryRewriter
from repro.rdf import AKT, KISTI, Triple, Variable
from repro.sparql import QueryEvaluator, parse_query
from repro.rdf import Graph, KISTI_ID, RKB_ID

from ..conftest import FIGURE_1_QUERY, KISTI_PERSON_URI


def rewrite_figure_1(figure2_alignment, registry):
    rewriter = QueryRewriter([figure2_alignment], registry,
                             extra_prefixes={"kisti": str(KISTI), "kid": str(KISTI_ID)})
    return rewriter.rewrite(parse_query(FIGURE_1_QUERY))


class TestWorkedExample:
    def test_bgp_shape_matches_figure_3(self, figure2_alignment, registry):
        rewritten, _ = rewrite_figure_1(figure2_alignment, registry)
        patterns = rewritten.all_triple_patterns()
        assert len(patterns) == 4
        # Two hasCreatorInfo patterns sharing the ?paper variable.
        info_patterns = [p for p in patterns if p.predicate == KISTI["hasCreatorInfo"]]
        creator_patterns = [p for p in patterns if p.predicate == KISTI["hasCreator"]]
        assert len(info_patterns) == 2
        assert len(creator_patterns) == 2
        assert {p.subject for p in info_patterns} == {Variable("paper")}

    def test_author_uri_translated_to_kisti_space(self, figure2_alignment, registry):
        rewritten, _ = rewrite_figure_1(figure2_alignment, registry)
        objects = {p.object for p in rewritten.all_triple_patterns()}
        assert KISTI_PERSON_URI in objects
        assert RKB_ID["person-02686"] not in objects

    def test_projected_variable_kept(self, figure2_alignment, registry):
        rewritten, _ = rewrite_figure_1(figure2_alignment, registry)
        creator_objects = [
            p.object for p in rewritten.all_triple_patterns()
            if p.predicate == KISTI["hasCreator"]
        ]
        assert Variable("a") in creator_objects

    def test_fresh_intermediate_variables_are_distinct(self, figure2_alignment, registry):
        rewritten, _ = rewrite_figure_1(figure2_alignment, registry)
        info_objects = [
            p.object for p in rewritten.all_triple_patterns()
            if p.predicate == KISTI["hasCreatorInfo"]
        ]
        assert len(set(info_objects)) == 2
        creator_subjects = [
            p.subject for p in rewritten.all_triple_patterns()
            if p.predicate == KISTI["hasCreator"]
        ]
        assert set(info_objects) == set(creator_subjects)

    def test_source_vocabulary_absent_from_bgp(self, figure2_alignment, registry):
        rewritten, _ = rewrite_figure_1(figure2_alignment, registry)
        predicates = {p.predicate for p in rewritten.all_triple_patterns()}
        assert AKT["has-author"] not in predicates

    def test_report_counts(self, figure2_alignment, registry):
        _, report = rewrite_figure_1(figure2_alignment, registry)
        assert report.matched_count == 2
        assert report.unmatched_count == 0
        assert report.input_size == 2
        assert report.output_size == 4

    def test_no_functions_needed_at_query_run_time(self, figure2_alignment, registry):
        """The rewritten query text contains no function calls (safe assumption)."""
        rewritten, _ = rewrite_figure_1(figure2_alignment, registry)
        text = rewritten.serialize()
        assert "sameas" not in text.lower().replace("kisti", "")

    def test_rewritten_query_runs_on_kisti_style_data(self, figure2_alignment, registry):
        """Executing the rewritten query on CreatorInfo-style data finds co-authors."""
        graph = Graph()
        paper = KISTI_ID["PAP_000000000001"]
        coauthor = KISTI_ID["PER_00000000000200000"]
        for position, author in enumerate([KISTI_PERSON_URI, coauthor]):
            info = KISTI_ID[f"CRE_{position}"]
            graph.add(Triple(paper, KISTI["hasCreatorInfo"], info))
            graph.add(Triple(info, KISTI["hasCreator"], author))
        rewritten, _ = rewrite_figure_1(figure2_alignment, registry)
        result = QueryEvaluator(graph).select(rewritten)
        values = result.distinct_values("a")
        # The untranslated FILTER cannot exclude the person (Section 4
        # limitation), so both authors are returned; the co-author is found.
        assert coauthor in values
