"""Unit tests for the Mediator (alignment selection + rewriting orchestration)."""

import pytest

from repro.alignment import AlignmentStore
from repro.core import Mediator, TargetProfile
from repro.datasets import (
    AKT_ONTOLOGY_URI,
    DBPEDIA_DATASET_URI,
    KISTI_DATASET_URI,
    KISTI_URI_PATTERN,
    akt_to_dbpedia_alignment,
    akt_to_kisti_alignment,
)
from repro.rdf import DBPO, KISTI, URIRef

from ..conftest import FIGURE_1_QUERY, FIGURE_6_QUERY


@pytest.fixture()
def mediator(sameas_service) -> Mediator:
    store = AlignmentStore([akt_to_kisti_alignment(), akt_to_dbpedia_alignment()])
    mediator = Mediator(store, sameas_service)
    mediator.register_target(TargetProfile(
        dataset=KISTI_DATASET_URI,
        ontologies=(URIRef("http://www.kisti.re.kr/isrl/ResearchRefOntology#"),),
        uri_pattern=KISTI_URI_PATTERN,
        prefixes=(("kisti", str(KISTI)),),
    ))
    mediator.register_target(TargetProfile(
        dataset=DBPEDIA_DATASET_URI,
        ontologies=(URIRef("http://dbpedia.org/ontology/"),),
        uri_pattern=r"http://dbpedia\.org/resource/\S*",
    ))
    return mediator


class TestTargets:
    def test_registered_targets_listed(self, mediator):
        targets = mediator.targets()
        assert {t.dataset for t in targets} == {KISTI_DATASET_URI, DBPEDIA_DATASET_URI}

    def test_unknown_target_raises(self, mediator):
        with pytest.raises(KeyError):
            mediator.target(URIRef("http://unknown.org/void"))

    def test_select_alignments_for_kisti(self, mediator):
        alignments = mediator.select_alignments(mediator.target(KISTI_DATASET_URI),
                                                source_ontology=AKT_ONTOLOGY_URI)
        assert len(alignments) == 24

    def test_select_alignments_for_dbpedia(self, mediator):
        alignments = mediator.select_alignments(mediator.target(DBPEDIA_DATASET_URI),
                                                source_ontology=AKT_ONTOLOGY_URI)
        assert len(alignments) == 42


class TestTranslate:
    def test_translation_to_kisti(self, mediator):
        result = mediator.translate(FIGURE_1_QUERY, KISTI_DATASET_URI,
                                    source_ontology=AKT_ONTOLOGY_URI)
        assert result.alignments_considered == 24
        assert "hasCreatorInfo" in result.query_text
        assert result.mode == "bgp"

    def test_translation_to_dbpedia_uses_other_alignments(self, mediator):
        result = mediator.translate(FIGURE_1_QUERY, DBPEDIA_DATASET_URI,
                                    source_ontology=AKT_ONTOLOGY_URI)
        assert result.alignments_considered == 42
        # The akt:has-author property is rewritten to the DBpedia author
        # property (possibly under an auto-generated prefix).
        assert str(DBPO) in result.query_text
        assert ":author" in result.query_text
        assert "has-author" not in result.query_text

    def test_filter_aware_mode(self, mediator):
        result = mediator.translate(FIGURE_6_QUERY, KISTI_DATASET_URI,
                                    source_ontology=AKT_ONTOLOGY_URI, mode="filter-aware")
        assert "PER_00000000000105047" in result.query_text

    def test_algebra_mode(self, mediator):
        result = mediator.translate(FIGURE_1_QUERY, KISTI_DATASET_URI,
                                    source_ontology=AKT_ONTOLOGY_URI, mode="algebra")
        assert "hasCreatorInfo" in result.query_text

    def test_unknown_mode_raises(self, mediator):
        with pytest.raises(ValueError):
            mediator.translate(FIGURE_1_QUERY, KISTI_DATASET_URI, mode="nope")

    def test_filter_aware_requires_uri_pattern(self, sameas_service):
        store = AlignmentStore([akt_to_kisti_alignment()])
        mediator = Mediator(store, sameas_service)
        mediator.register_target(TargetProfile(dataset=KISTI_DATASET_URI, uri_pattern=None))
        with pytest.raises(ValueError):
            mediator.translate(FIGURE_1_QUERY, KISTI_DATASET_URI, mode="filter-aware")

    def test_translate_for_all_targets(self, mediator):
        results = mediator.translate_for_all_targets(FIGURE_1_QUERY,
                                                     source_ontology=AKT_ONTOLOGY_URI)
        assert set(results) == {KISTI_DATASET_URI, DBPEDIA_DATASET_URI}
        assert all(result.report.matched_count == 2 for result in results.values())

    def test_wrong_source_ontology_rewrites_nothing(self, mediator):
        result = mediator.translate(FIGURE_1_QUERY, KISTI_DATASET_URI,
                                    source_ontology=URIRef("http://other.org/onto#"))
        assert result.alignments_considered == 0
        assert result.report.matched_count == 0
        # The query comes back unchanged (no matching alignments).
        assert "has-author" in result.query_text
