"""Unit tests for the matching function of Section 3.3.1."""

from repro.alignment import property_alignment
from repro.core import (
    Substitution,
    find_matches,
    match_alignment,
    match_node,
    match_triple,
)
from repro.rdf import AKT, KISTI, Literal, RDF, RKB_ID, Triple, URIRef, Variable


class TestMatchNode:
    def test_variable_matches_anything(self):
        assert match_node(Variable("p1"), Variable("paper")) == Substitution(
            {Variable("p1"): Variable("paper")}
        )
        assert match_node(Variable("a1"), RKB_ID["person-02686"]) == Substitution(
            {Variable("a1"): RKB_ID["person-02686"]}
        )
        assert match_node(Variable("x"), Literal("text")) is not None

    def test_equal_ground_terms_match_with_empty_substitution(self):
        result = match_node(AKT["has-author"], AKT["has-author"])
        assert result == Substitution()
        assert len(result) == 0

    def test_different_ground_terms_fail(self):
        assert match_node(AKT["has-author"], AKT["has-title"]) is None

    def test_ground_lhs_does_not_match_query_variable(self):
        """The paper's match is asymmetric: ground head vs query variable fails."""
        assert match_node(AKT["has-author"], Variable("p")) is None

    def test_ground_lhs_does_not_match_literal(self):
        assert match_node(URIRef("http://ex.org/a"), Literal("a")) is None


class TestMatchTriple:
    def test_worked_example_first_triple(self, figure2_alignment):
        query_triple = Triple(Variable("paper"), AKT["has-author"], RKB_ID["person-02686"])
        substitution = match_triple(figure2_alignment.lhs, query_triple)
        assert substitution is not None
        assert substitution[Variable("p1")] == Variable("paper")
        assert substitution[Variable("a1")] == RKB_ID["person-02686"]

    def test_worked_example_second_triple(self, figure2_alignment):
        query_triple = Triple(Variable("paper"), AKT["has-author"], Variable("a"))
        substitution = match_triple(figure2_alignment.lhs, query_triple)
        assert substitution is not None
        assert substitution[Variable("a1")] == Variable("a")

    def test_predicate_mismatch_fails(self, figure2_alignment):
        query_triple = Triple(Variable("paper"), AKT["has-title"], Variable("t"))
        assert match_triple(figure2_alignment.lhs, query_triple) is None

    def test_repeated_variable_must_bind_consistently(self):
        head = Triple(Variable("x"), AKT["cites-publication-reference"], Variable("x"))
        same = Triple(RKB_ID["paper-1"], AKT["cites-publication-reference"], RKB_ID["paper-1"])
        different = Triple(RKB_ID["paper-1"], AKT["cites-publication-reference"], RKB_ID["paper-2"])
        assert match_triple(head, same) is not None
        assert match_triple(head, different) is None

    def test_ground_object_in_head_requires_exact_match(self):
        head = Triple(Variable("x"), RDF.type, AKT["Person"])
        assert match_triple(head, Triple(Variable("s"), RDF.type, AKT["Person"])) is not None
        assert match_triple(head, Triple(Variable("s"), RDF.type, AKT["Project"])) is None
        assert match_triple(head, Triple(Variable("s"), RDF.type, Variable("class"))) is None


class TestMatchAlignment:
    def test_match_result_carries_rule_and_binding(self, figure2_alignment):
        triple = Triple(Variable("paper"), AKT["has-author"], RKB_ID["person-02686"])
        result = match_alignment(figure2_alignment, triple)
        assert result is not None
        assert result.alignment is figure2_alignment
        assert result.triple == triple
        instantiated = result.rhs_instantiated()
        assert len(instantiated) == 2

    def test_no_match_returns_none(self, figure2_alignment):
        triple = Triple(Variable("x"), AKT["has-title"], Literal("t"))
        assert match_alignment(figure2_alignment, triple) is None

    def test_find_matches_returns_all_in_order(self, figure2_alignment):
        other = property_alignment(AKT["has-author"], KISTI["hasCreator"])
        triple = Triple(Variable("paper"), AKT["has-author"], Variable("a"))
        matches = find_matches([figure2_alignment, other], triple)
        assert [match.alignment for match in matches] == [figure2_alignment, other]
        matches_reversed = find_matches([other, figure2_alignment], triple)
        assert matches_reversed[0].alignment is other

    def test_find_matches_empty_for_unmatched_triple(self, figure2_alignment):
        triple = Triple(Variable("x"), RDF.type, AKT["Person"])
        assert find_matches([figure2_alignment], triple) == []


class TestSubstitution:
    def test_merge_consistent(self):
        left = Substitution({Variable("x"): RKB_ID["a"]})
        right = Substitution({Variable("y"): RKB_ID["b"]})
        merged = left.merge(right)
        assert merged is not None and len(merged) == 2

    def test_merge_conflicting_returns_none(self):
        left = Substitution({Variable("x"): RKB_ID["a"]})
        right = Substitution({Variable("x"): RKB_ID["b"]})
        assert left.merge(right) is None

    def test_merge_same_binding_ok(self):
        left = Substitution({Variable("x"): RKB_ID["a"]})
        assert left.merge(Substitution({Variable("x"): RKB_ID["a"]})) == left

    def test_apply_to_triple(self):
        substitution = Substitution({Variable("p1"): Variable("paper"),
                                     Variable("a1"): RKB_ID["person-1"]})
        pattern = Triple(Variable("p1"), AKT["has-author"], Variable("a1"))
        assert substitution.apply_to_triple(pattern) == Triple(
            Variable("paper"), AKT["has-author"], RKB_ID["person-1"]
        )

    def test_apply_leaves_unbound_variables(self):
        substitution = Substitution()
        assert substitution.apply_to_term(Variable("x")) == Variable("x")

    def test_is_ground_for(self):
        substitution = Substitution({Variable("a"): RKB_ID["x"], Variable("b"): Variable("y")})
        assert substitution.is_ground_for(Variable("a"))
        assert not substitution.is_ground_for(Variable("b"))
        assert not substitution.is_ground_for(Variable("missing"))

    def test_bind_returns_new_substitution(self):
        original = Substitution()
        extended = original.bind(Variable("x"), RKB_ID["a"])
        assert len(original) == 0
        assert extended[Variable("x")] == RKB_ID["a"]
