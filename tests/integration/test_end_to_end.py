"""Cross-module integration tests: the whole pipeline on the ReSIST scenario."""

import pytest

from repro.alignment import AlignmentStore
from repro.baselines import IdentityFederation, MaterializationIntegrator
from repro.datasets import (
    RKB_URI_PATTERN,
    akt_to_kisti_alignment,
)
from repro.federation import MediatorService, recall
from repro.sparql import QueryEvaluator

from ..conftest import FIGURE_1_QUERY


class TestTranslationPipeline:
    """Source query -> mediation -> execution on the target endpoint."""

    def test_results_agree_with_native_kisti_query(self, small_scenario):
        """Rewritten AKT query and a hand-written KISTI query return the same rows."""
        scenario = small_scenario
        person = scenario.world.most_prolific_author()
        # The person must be covered by KISTI for the comparison to be fair.
        if person not in scenario.kisti_builder.covered_person_keys:
            person = next(iter(scenario.kisti_builder.covered_person_keys))
        akt_uri = scenario.akt_builder.person_uri(person)
        kisti_uri = scenario.kisti_builder.person_uri(person)

        source_query = f"""
        PREFIX akt:<http://www.aktors.org/ontology/portal#>
        SELECT DISTINCT ?a WHERE {{
          ?paper akt:has-author <{akt_uri}> .
          ?paper akt:has-author ?a .
        }}
        """
        native_kisti_query = f"""
        PREFIX kisti:<http://www.kisti.re.kr/isrl/ResearchRefOntology#>
        SELECT DISTINCT ?a WHERE {{
          ?paper kisti:hasCreatorInfo ?i1 .
          ?i1 kisti:hasCreator <{kisti_uri}> .
          ?paper kisti:hasCreatorInfo ?i2 .
          ?i2 kisti:hasCreator ?a .
        }}
        """
        mediated = scenario.service.translate_and_run(
            source_query, scenario.kisti_dataset, source_ontology=scenario.source_ontology
        )
        native = scenario.endpoint(scenario.kisti_dataset).select(native_kisti_query)
        mediated_values = {row["a"] for row in mediated.rows}
        native_values = {term.n3() for term in native.distinct_values("a")}
        assert mediated_values == native_values

    def test_every_alignment_kb_target_reachable(self, small_scenario):
        for info in small_scenario.service.list_datasets():
            response = small_scenario.service.translate(
                FIGURE_1_QUERY,
                target_dataset=next(d.uri for d in small_scenario.registry
                                    if str(d.uri) == info.uri),
                source_ontology=small_scenario.source_ontology,
            )
            assert response.translated_query


class TestRewritingVsMaterialization:
    """The two integration strategies retrieve the same entities."""

    def test_same_coauthors_found(self, small_scenario):
        scenario = small_scenario
        person = next(iter(scenario.kisti_builder.covered_person_keys))
        akt_uri = scenario.akt_builder.person_uri(person)
        query = f"""
        PREFIX akt:<http://www.aktors.org/ontology/portal#>
        SELECT DISTINCT ?a WHERE {{
          ?paper akt:has-author <{akt_uri}> .
          ?paper akt:has-author ?a .
        }}
        """
        # Strategy 1: rewrite the query and run it remotely, canonicalising
        # results into the RKB URI space.
        federated = scenario.service.federate(
            query,
            source_ontology=scenario.source_ontology,
            source_dataset=scenario.rkb_dataset,
            datasets=[scenario.kisti_dataset],
            canonical_pattern=RKB_URI_PATTERN,
            mode="filter-aware",
        )
        rewriting_values = {
            value for value in federated.distinct_values("a")
            if "southampton" in str(value)
        }

        # Strategy 2: materialise the KISTI data into the AKT vocabulary and
        # run the original query locally.
        integrator = MaterializationIntegrator(
            list(akt_to_kisti_alignment()), scenario.sameas_service, RKB_URI_PATTERN
        )
        kisti_graph = scenario.endpoint(scenario.kisti_dataset)._graph  # noqa: SLF001
        materialized, _stats = integrator.integrate([kisti_graph])
        local = QueryEvaluator(materialized).select(query)
        materialization_values = {
            value for value in local.distinct_values("a") if "southampton" in str(value)
        }

        assert rewriting_values == materialization_values
        assert rewriting_values  # non-trivial comparison


class TestRecallStory:
    """The paper's motivation: integration raises recall over any single source."""

    def test_recall_ordering(self, small_scenario):
        scenario = small_scenario
        person = scenario.world.most_prolific_author()
        query_uri = scenario.akt_person_uri(person)
        query = f"""
        PREFIX akt:<http://www.aktors.org/ontology/portal#>
        SELECT DISTINCT ?a WHERE {{
          ?paper akt:has-author <{query_uri}> .
          ?paper akt:has-author ?a .
          FILTER (!(?a = <{query_uri}>))
        }}
        """
        gold = scenario.gold_coauthor_uris(person)

        single = scenario.endpoint(scenario.rkb_dataset).select(query)
        baseline = IdentityFederation(scenario.registry).execute(query)
        federated = scenario.service.federate(
            query,
            source_ontology=scenario.source_ontology,
            source_dataset=scenario.rkb_dataset,
            mode="filter-aware",
        )

        recall_single = recall(single.distinct_values("a"), gold)
        recall_baseline = recall(baseline.distinct_values("a"), gold)
        recall_federated = recall(federated.distinct_values("a"), gold)

        assert recall_baseline == pytest.approx(recall_single)
        assert recall_federated >= recall_single
        assert recall_federated > 0.5


class TestKnowledgeBasePersistence:
    """The alignment KB survives an RDF round trip and still drives mediation."""

    def test_mediation_after_kb_roundtrip(self, small_scenario):
        scenario = small_scenario
        exported = scenario.service.alignment_kb()
        restored_store = AlignmentStore()
        assert restored_store.load_graph(exported) == 2

        service = MediatorService(restored_store, scenario.registry, scenario.sameas_service)
        response = service.translate(
            FIGURE_1_QUERY, scenario.kisti_dataset,
            source_ontology=scenario.source_ontology,
        )
        assert response.alignments_considered == 24
        assert "hasCreatorInfo" in response.translated_query
