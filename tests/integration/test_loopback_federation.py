"""Loopback federation: the E6/E7 scenarios through real sockets.

The acceptance criterion of the network subsystem: serving every scenario
dataset over its own 127.0.0.1 SPARQL Protocol server and federating
through :class:`HttpSparqlEndpoint` clients must produce results
*byte-identical* to the in-process :class:`LocalSparqlEndpoint` path, and
endpoint failures must drive the client-side resilience machinery
(retries, circuit breakers) exactly as they do locally.
"""

import pytest

from repro.datasets import build_resist_scenario
from repro.federation import (
    DatasetRegistry,
    ExecutionPolicy,
    HttpSparqlEndpoint,
    MediatorService,
    RegisteredDataset,
)
from repro.server import EndpointBackend, SparqlHttpServer
from repro.sparql import write_results


@pytest.fixture()
def scenario():
    return build_resist_scenario(
        n_persons=12,
        n_papers=24,
        n_projects=3,
        n_organizations=3,
        rkb_coverage=0.7,
        kisti_coverage=0.6,
        dbpedia_coverage=0.5,
        seed=7,
    )


@pytest.fixture()
def loopback(scenario):
    """The same federation, with every dataset behind a real HTTP server."""
    servers = []
    datasets = []
    for dataset in scenario.registry:
        server = SparqlHttpServer(EndpointBackend(dataset.endpoint)).start()
        servers.append(server)
        datasets.append(
            RegisteredDataset(
                dataset.description,
                HttpSparqlEndpoint(dataset.uri, url=server.query_url, timeout=10),
            )
        )
    registry = DatasetRegistry(datasets)
    service = MediatorService(scenario.alignment_store, registry, scenario.sameas_service)
    try:
        yield registry, service
    finally:
        for server in servers:
            server.stop()


def _coauthor_query(scenario, person_key):
    person_uri = scenario.akt_person_uri(person_key)
    return f"""
    PREFIX akt:<http://www.aktors.org/ontology/portal#>
    SELECT DISTINCT ?a WHERE {{
      ?paper akt:has-author <{person_uri}> .
      ?paper akt:has-author ?a .
      FILTER (!(?a = <{person_uri}>))
    }}
    """


def _subjects(scenario, count=3):
    by_papers = sorted(
        scenario.world.persons,
        key=lambda person: -len(scenario.world.papers_of(person.key)),
    )
    return [person.key for person in by_papers[:count]]


def _federate(scenario, service, query):
    return service.federate(
        query,
        source_ontology=scenario.source_ontology,
        source_dataset=scenario.rkb_dataset,
        mode="filter-aware",
    )


class TestE6LoopbackEquivalence:
    def test_merged_results_are_byte_identical(self, scenario, loopback):
        _, http_service = loopback
        for person_key in _subjects(scenario):
            query = _coauthor_query(scenario, person_key)
            in_process = _federate(scenario, scenario.service, query)
            over_http = _federate(scenario, http_service, query)

            assert over_http.merged_bindings == in_process.merged_bindings
            # Byte-identical in every wire format, not just structurally equal.
            for format_name in ("json", "xml", "csv", "tsv"):
                assert write_results(over_http.merged(), format_name) == \
                    write_results(in_process.merged(), format_name)
            assert over_http.merged().to_table() == in_process.merged().to_table()

    def test_per_dataset_outcomes_match(self, scenario, loopback):
        _, http_service = loopback
        query = _coauthor_query(scenario, _subjects(scenario)[0])
        in_process = _federate(scenario, scenario.service, query)
        over_http = _federate(scenario, http_service, query)
        assert [entry.dataset_uri for entry in over_http.per_dataset] == \
            [entry.dataset_uri for entry in in_process.per_dataset]
        assert [entry.row_count for entry in over_http.per_dataset] == \
            [entry.row_count for entry in in_process.per_dataset]
        assert over_http.successful_datasets() == in_process.successful_datasets()


class TestDecomposeLoopbackEquivalence:
    """``--strategy decompose`` over real sockets ≡ fan-out, E6/E7 scenarios.

    The HTTP endpoints expose no graph, so source selection either consults
    the advertised VoID partitions (when the descriptions carry them) or
    falls back to ASK probes over the wire; bound-join batches travel as
    ``VALUES`` blocks and are re-parsed by the servers.
    """

    def _multiset(self, outcome):
        return sorted(
            tuple((k, str(v)) for k, v in sorted(b.as_dict().items()))
            for b in outcome.merged_bindings
        )

    def test_decomposed_over_http_matches_in_process_fanout(self, scenario, loopback):
        _, http_service = loopback
        for person_key in _subjects(scenario):
            query = _coauthor_query(scenario, person_key)
            in_process = _federate(scenario, scenario.service, query)
            over_http = http_service.federate(
                query,
                source_ontology=scenario.source_ontology,
                source_dataset=scenario.rkb_dataset,
                mode="filter-aware",
                strategy="decompose",
            )
            assert self._multiset(over_http) == self._multiset(in_process)

    def test_probes_travel_over_the_wire(self, scenario, loopback):
        http_registry, http_service = loopback
        # The loopback descriptions advertise no partitions, so the KISTI
        # translation of the AKT pattern needs an ASK probe per dataset.
        plan = http_service.federation.decompose_plan(
            _coauthor_query(scenario, _subjects(scenario)[0]),
            source_ontology=scenario.source_ontology,
            source_dataset=scenario.rkb_dataset,
            mode="filter-aware",
        )
        assert plan.probes > 0
        probed = [
            dataset for dataset in http_registry
            if dataset.endpoint.statistics.ask_queries > 0
        ]
        assert probed

    def test_advertised_void_partitions_avoid_probes(self, scenario):
        """Publishing the statistics makes remote selection probe-free."""
        scenario.registry.refresh_statistics()
        servers, datasets = [], []
        for dataset in scenario.registry:
            server = SparqlHttpServer(EndpointBackend(dataset.endpoint)).start()
            servers.append(server)
            datasets.append(
                RegisteredDataset(
                    dataset.description,  # now carries the partitions
                    HttpSparqlEndpoint(dataset.uri, url=server.query_url, timeout=10),
                )
            )
        try:
            registry = DatasetRegistry(datasets)
            service = MediatorService(
                scenario.alignment_store, registry, scenario.sameas_service
            )
            query = _coauthor_query(scenario, _subjects(scenario)[0])
            plan = service.federation.decompose_plan(
                query,
                source_ontology=scenario.source_ontology,
                source_dataset=scenario.rkb_dataset,
                mode="filter-aware",
            )
            assert plan.probes == 0
            over_http = service.federate(
                query,
                source_ontology=scenario.source_ontology,
                source_dataset=scenario.rkb_dataset,
                mode="filter-aware",
                strategy="decompose",
            )
            in_process = _federate(scenario, scenario.service, query)
            assert self._multiset(over_http) == self._multiset(in_process)
        finally:
            for server in servers:
                server.stop()


class TestE7LoopbackResilience:
    def test_partial_failure_merges_identically(self, scenario, loopback):
        """A dataset failing over HTTP degrades exactly like a local failure."""
        _, http_service = loopback
        query = _coauthor_query(scenario, _subjects(scenario)[0])

        # Local run with KISTI flaking once (the endpoint is shared with
        # the HTTP servers, so injections must be consumed run by run).
        scenario.endpoint(scenario.kisti_dataset).fail_next(1)
        in_process = _federate(scenario, scenario.service, query)
        assert scenario.kisti_dataset in in_process.failed_datasets()

        scenario.endpoint(scenario.kisti_dataset).fail_next(1)
        over_http = _federate(scenario, http_service, query)
        assert over_http.failed_datasets() == in_process.failed_datasets()
        assert over_http.merged_bindings == in_process.merged_bindings
        assert write_results(over_http.merged(), "json") == \
            write_results(in_process.merged(), "json")

    def test_remote_retries_recover_like_local_ones(self, scenario, loopback):
        http_registry, http_service = loopback
        recovering = ExecutionPolicy(max_retries=2, backoff=0.0)
        scenario.registry.default_policy = recovering
        http_registry.default_policy = recovering
        query = _coauthor_query(scenario, _subjects(scenario)[0])

        scenario.endpoint(scenario.kisti_dataset).fail_next(2)
        in_process = _federate(scenario, scenario.service, query)
        assert in_process.failed_datasets() == []

        scenario.endpoint(scenario.kisti_dataset).fail_next(2)
        over_http = _federate(scenario, http_service, query)
        assert over_http.failed_datasets() == []
        assert over_http.merged_bindings == in_process.merged_bindings
        kisti_attempts = {
            entry.dataset_uri: entry.attempts for entry in over_http.per_dataset
        }[scenario.kisti_dataset]
        assert kisti_attempts == 3  # two failures + the recovering attempt

    def test_injected_failure_trips_the_breaker_remotely_as_locally(
        self, scenario, loopback
    ):
        http_registry, http_service = loopback
        strict = ExecutionPolicy(max_retries=0, failure_threshold=1)
        scenario.registry.default_policy = strict
        scenario.registry.reset_breakers()
        http_registry.default_policy = strict
        http_registry.reset_breakers()
        query = _coauthor_query(scenario, _subjects(scenario)[0])

        scenario.endpoint(scenario.kisti_dataset).fail_next(1)
        _federate(scenario, scenario.service, query)
        local_states = {
            str(uri): str(state) for uri, state in scenario.registry.health().items()
        }
        assert local_states[str(scenario.kisti_dataset)] == "open"

        scenario.endpoint(scenario.kisti_dataset).fail_next(1)
        _federate(scenario, http_service, query)
        remote_states = {
            str(uri): str(state) for uri, state in http_registry.health().items()
        }
        assert remote_states == local_states

        # While open, the remote breaker refuses without touching the wire.
        remote_kisti = http_registry.get(scenario.kisti_dataset).endpoint
        sent_before = remote_kisti.statistics.select_queries
        outcome = _federate(scenario, http_service, query)
        assert scenario.kisti_dataset in outcome.failed_datasets()
        assert remote_kisti.statistics.select_queries == sent_before
