"""Distributed-trace propagation across the loopback federation stack.

The observability acceptance criterion: one federated query through a
real HTTP server — whose sub-queries travel over real sockets to further
HTTP servers — must produce ONE trace.  The outer server's request span
is the root; the planner, the synthesized per-operator execution spans,
each ``endpoint.call`` (with its retries as span events) and each
outbound HTTP client span nest under it; and because the ``traceparent``
header crosses the sockets, the *inner* servers' request spans join the
same trace as children of the client spans that called them.
"""

import time
import urllib.parse
import urllib.request

import pytest

from repro.datasets import build_resist_scenario
from repro.federation import (
    DatasetRegistry,
    ExecutionPolicy,
    HttpSparqlEndpoint,
    MediatorService,
    RegisteredDataset,
)
from repro.obs.trace import NOOP_SPAN, Tracer, get_tracer, set_tracer
from repro.server import EndpointBackend, FederationBackend, SparqlHttpServer

QUERY = (
    "PREFIX akt:<http://www.aktors.org/ontology/portal#> "
    "SELECT DISTINCT ?paper WHERE { ?paper akt:has-author ?a }"
)


@pytest.fixture()
def scenario():
    return build_resist_scenario(n_persons=10, n_papers=20, seed=11)


@pytest.fixture()
def tracing():
    """Install a fresh enabled tracer for the test, restore the old one."""
    previous = set_tracer(Tracer(enabled=True))
    try:
        yield get_tracer()
    finally:
        set_tracer(previous)


@pytest.fixture()
def stack(scenario):
    """The full loopback deployment: inner dataset servers, an HTTP-client
    federation over them, and that federation published by an outer server."""
    inner_servers = []
    datasets = []
    for dataset in scenario.registry:
        server = SparqlHttpServer(EndpointBackend(dataset.endpoint)).start()
        inner_servers.append(server)
        datasets.append(
            RegisteredDataset(
                dataset.description,
                HttpSparqlEndpoint(dataset.uri, url=server.query_url, timeout=10),
            )
        )
    registry = DatasetRegistry(
        datasets,
        default_policy=ExecutionPolicy(max_retries=2, backoff=0.0),
    )
    service = MediatorService(
        scenario.alignment_store, registry, scenario.sameas_service
    )
    backend = FederationBackend(
        service,
        source_ontology=scenario.source_ontology,
        source_dataset=scenario.rkb_dataset,
        strategy="decompose",
    )
    outer = SparqlHttpServer(backend, cache_size=0).start()
    try:
        yield outer
    finally:
        outer.stop()
        for server in inner_servers:
            server.stop()


def _query(server, query=QUERY):
    url = server.query_url + "?" + urllib.parse.urlencode({"query": query})
    request = urllib.request.Request(
        url, headers={"Accept": "application/sparql-results+json"}
    )
    with urllib.request.urlopen(request, timeout=30) as response:
        return response.read()


def _request_trace(tracer):
    """The spans of the (single) trace rooted at the outer request span.

    The outer request span finishes a moment *after* the client has read
    the response body (the handler closes the span once the bytes are
    out), so poll briefly for the root to land in the ring.
    """
    deadline = time.time() + 5.0
    while True:
        spans = tracer.finished_spans()
        roots = [
            span for span in spans
            if span.name == "http.server.request" and span.parent_id is None
        ]
        if roots or time.time() > deadline:
            break
        time.sleep(0.01)
    assert len(roots) == 1, [span.name for span in spans]
    members = [span for span in spans if span.trace_id == roots[0].trace_id]
    return roots[0], members


class TestSharedTrace:
    def test_every_layer_joins_one_trace(self, stack, tracing):
        _query(stack)
        root, members = _request_trace(tracing)
        names = {span.name for span in members}
        # Planner, executor, federation and both HTTP sides are all present.
        assert "planner.decompose" in names
        assert "exec.query" in names
        assert "endpoint.call" in names
        assert "http.client.request" in names
        # Three datasets behind three inner servers joined via traceparent.
        inner = [
            span for span in members
            if span.name == "http.server.request" and span.parent_id is not None
        ]
        assert len(inner) >= 3
        # Nothing recorded for this request escaped into another trace.
        assert all(span.trace_id == root.trace_id for span in members)

    def test_parent_child_chain_crosses_the_socket(self, stack, tracing):
        _query(stack)
        root, members = _request_trace(tracing)
        by_id = {span.span_id: span for span in members}
        client_spans = [s for s in members if s.name == "http.client.request"]
        assert client_spans
        for client in client_spans:
            # Client spans hang directly under an endpoint.call, and the
            # ancestor chain (endpoint.call itself, or the planner.decompose
            # span when the call was a source-selection probe) reaches the
            # root request span.
            parent = by_id[client.parent_id]
            assert parent.name == "endpoint.call"
            ancestor = parent
            while ancestor.parent_id is not None:
                ancestor = by_id[ancestor.parent_id]
            assert ancestor.span_id == root.span_id
        # Each inner server's request span is the child of the exact client
        # span whose traceparent header it parsed.
        client_ids = {span.span_id for span in client_spans}
        inner = [
            span for span in members
            if span.name == "http.server.request" and span.parent_id is not None
        ]
        assert inner
        for span in inner:
            assert span.parent_id in client_ids

    def test_operator_spans_nest_under_the_request(self, stack, tracing):
        _query(stack)
        root, members = _request_trace(tracing)
        exec_roots = [
            span for span in members
            if span.name == "exec.query"
            and span.attributes.get("engine") == "decompose"
        ]
        assert len(exec_roots) == 1
        assert exec_roots[0].parent_id == root.span_id
        operators = [
            span for span in members
            if span.parent_id
            and span.attributes.get("layer") == "exec"
            and span.name != "exec.query"
        ]
        assert operators  # per-operator spans were synthesized
        assert {"federation.unit", "federation.canonicalise"} <= {
            span.name for span in members
        }


class TestRetryVisibility:
    def test_injected_failure_appears_as_retry_event(self, scenario, stack, tracing):
        # Make the first sub-request to one dataset fail: its inner server
        # answers 503 once, the federation client retries.
        for dataset in scenario.registry:
            dataset.endpoint.fail_next(1)
        _query(stack)
        root, members = _request_trace(tracing)
        retry_events = [
            event
            for span in members
            if span.name == "endpoint.call"
            for event in span.events
            if event["name"] == "retry"
        ]
        assert retry_events, "injected 503s produced no retry span events"
        for event in retry_events:
            assert event["attempt"] >= 1
            assert "error" in event


class TestDisabledMode:
    def test_disabled_tracing_records_zero_spans(self, stack):
        tracer = get_tracer()
        assert not tracer.enabled  # the default state the fixture left alone
        tracer.clear()
        _query(stack)
        assert tracer.finished_spans() == []
        # The disabled path hands out the shared singleton: no per-call
        # allocation in any hot path.
        assert tracer.start_span("anything", {"k": "v"}) is NOOP_SPAN
        assert tracer.current_traceparent() is None
