"""Unit tests for the Turtle serialiser."""

from repro.rdf import (
    BNode,
    Graph,
    Literal,
    NamespaceManager,
    RDF,
    Triple,
    URIRef,
    XSD,
    isomorphic,
)
from repro.turtle import parse_turtle, serialize_turtle


def build_graph() -> Graph:
    graph = Graph()
    graph.namespace_manager.bind("ex", "http://ex.org/")
    ex = "http://ex.org/"
    graph.add(Triple(URIRef(ex + "alice"), RDF.type, URIRef(ex + "Person")))
    graph.add(Triple(URIRef(ex + "alice"), URIRef(ex + "name"), Literal("Alice")))
    graph.add(Triple(URIRef(ex + "alice"), URIRef(ex + "age"),
                     Literal("42", datatype=XSD.integer)))
    graph.add(Triple(URIRef(ex + "alice"), URIRef(ex + "greets"), Literal("bonjour", lang="fr")))
    graph.add(Triple(BNode("b1"), URIRef(ex + "knows"), URIRef(ex + "alice")))
    return graph


class TestSerialisation:
    def test_prefixes_emitted_only_when_used(self):
        text = serialize_turtle(build_graph())
        assert "@prefix ex:" in text
        assert "@prefix akt:" not in text

    def test_rdf_type_rendered_as_a(self):
        text = serialize_turtle(build_graph())
        assert " a ex:Person" in text

    def test_language_and_datatype_rendering(self):
        text = serialize_turtle(build_graph())
        assert '"bonjour"@fr' in text
        assert '"42"^^xsd:integer' in text or '"42"^^<http://www.w3.org/2001/XMLSchema#integer>' in text

    def test_roundtrip_isomorphic(self):
        graph = build_graph()
        reparsed = parse_turtle(serialize_turtle(graph))
        assert isomorphic(graph, reparsed)

    def test_deterministic_output(self):
        assert serialize_turtle(build_graph()) == serialize_turtle(build_graph())

    def test_uri_without_prefix_uses_angle_brackets(self):
        graph = Graph(namespace_manager=NamespaceManager(install_defaults=False))
        graph.add(Triple(URIRef("http://nowhere.org/x"), URIRef("http://nowhere.org/p"),
                         URIRef("http://nowhere.org/y")))
        text = serialize_turtle(graph)
        assert "<http://nowhere.org/x>" in text

    def test_empty_graph(self):
        assert serialize_turtle(Graph()).strip() == ""

    def test_subject_grouping(self):
        text = serialize_turtle(build_graph())
        # Alice appears once as a subject block with semicolons.
        assert text.count("ex:alice\n") == 1
        assert ";" in text
