"""Unit tests for the Turtle tokenizer."""

import pytest

from repro.turtle import TurtleLexError, tokenize


def kinds(text: str):
    return [token.kind for token in tokenize(text)]


class TestTurtleLexer:
    def test_directives(self):
        tokens = tokenize("@prefix ex: <http://ex.org/> . @base <http://ex.org/> .")
        assert tokens[0].kind == "PREFIX_DIRECTIVE"
        assert [t.kind for t in tokens if t.kind == "BASE_DIRECTIVE"] == ["BASE_DIRECTIVE"]

    def test_sparql_style_directives(self):
        tokens = tokenize("PREFIX ex: <http://ex.org/>\nBASE <http://ex.org/>")
        assert tokens[0].kind == "PREFIX_DIRECTIVE"
        assert any(t.kind == "BASE_DIRECTIVE" for t in tokens)

    def test_langtag_not_confused_with_prefix_directive(self):
        tokens = tokenize('"hello"@en')
        assert tokens[0].kind == "STRING"
        assert tokens[1].kind == "LANGTAG"

    def test_pname_with_dots_and_dashes(self):
        tokens = tokenize("akt:has-author foaf.ext:name")
        assert tokens[0].value == "akt:has-author"
        assert tokens[1].value == "foaf.ext:name"

    def test_pname_trailing_dot_is_statement_terminator(self):
        tokens = tokenize("ex:thing.")
        assert tokens[0].value == "ex:thing"
        assert tokens[1].kind == "DOT"

    def test_numbers_and_booleans(self):
        assert kinds("42 -3.5 2e10 true false")[:-1] == [
            "INTEGER", "DECIMAL", "DOUBLE", "BOOLEAN", "BOOLEAN",
        ]

    def test_collections_and_bnode_lists(self):
        assert kinds("( ) [ ]")[:-1] == ["LPAREN", "RPAREN", "LBRACKET", "RBRACKET"]

    def test_long_strings_span_lines(self):
        tokens = tokenize('"""one\ntwo""" ex:p')
        assert tokens[0].kind == "STRING"
        assert "\n" in tokens[0].value
        # Line counter advanced past the embedded newline.
        assert tokens[1].line == 2

    def test_comments_skipped(self):
        assert kinds("# full line\nex:a ex:b ex:c .")[:-1] == ["PNAME", "PNAME", "PNAME", "DOT"]

    def test_unexpected_character_raises(self):
        with pytest.raises(TurtleLexError) as error:
            tokenize("ex:a ex:b ¤ .")
        assert error.value.line == 1

    def test_a_keyword(self):
        tokens = tokenize("ex:x a ex:Thing .")
        assert tokens[1].kind == "A"
