"""Property-based round-trip tests for the RDF syntax layer.

Invariant: any graph assembled from well-formed terms survives a
serialise/parse round trip (Turtle and N-Triples) up to blank-node
renaming.
"""

import string

from hypothesis import given, settings, strategies as st

from repro.rdf import BNode, Graph, Literal, Triple, URIRef, isomorphic
from repro.turtle import parse_ntriples, parse_turtle, serialize_ntriples, serialize_turtle

_NAMES = st.text(alphabet=string.ascii_letters + string.digits, min_size=1, max_size=8)


@st.composite
def uris(draw):
    return URIRef("http://example.org/" + draw(_NAMES))


@st.composite
def literals(draw):
    kind = draw(st.sampled_from(["plain", "lang", "int", "double", "text"]))
    if kind == "plain":
        return Literal(draw(st.text(min_size=0, max_size=20).filter(lambda s: "\x00" not in s)))
    if kind == "lang":
        return Literal(draw(_NAMES), lang=draw(st.sampled_from(["en", "fr", "de", "ko"])))
    if kind == "int":
        return Literal(draw(st.integers(min_value=-10**6, max_value=10**6)))
    if kind == "double":
        return Literal(draw(st.floats(allow_nan=False, allow_infinity=False, width=32)))
    return Literal(draw(st.text(alphabet=string.printable, max_size=30)))


@st.composite
def bnodes(draw):
    return BNode("b" + draw(_NAMES))


@st.composite
def triples(draw):
    subject = draw(st.one_of(uris(), bnodes()))
    predicate = draw(uris())
    obj = draw(st.one_of(uris(), bnodes(), literals()))
    return Triple(subject, predicate, obj)


@st.composite
def graphs(draw):
    graph = Graph()
    for triple in draw(st.lists(triples(), min_size=0, max_size=12)):
        graph.add(triple)
    return graph


@settings(max_examples=60, deadline=None)
@given(graphs())
def test_ntriples_roundtrip(graph):
    text = serialize_ntriples(graph)
    assert isomorphic(parse_ntriples(text), graph)


@settings(max_examples=60, deadline=None)
@given(graphs())
def test_turtle_roundtrip(graph):
    text = serialize_turtle(graph)
    assert isomorphic(parse_turtle(text), graph)


@settings(max_examples=40, deadline=None)
@given(graphs())
def test_cross_format_roundtrip(graph):
    """Turtle -> graph -> N-Triples -> graph preserves the graph."""
    via_turtle = parse_turtle(serialize_turtle(graph))
    via_ntriples = parse_ntriples(serialize_ntriples(via_turtle))
    assert isomorphic(via_ntriples, graph)
