"""Unit tests for the N-Triples reader/writer."""

import pytest

from repro.rdf import BNode, Literal, Triple, URIRef, XSD, isomorphic
from repro.turtle import NTriplesError, iter_ntriples, parse_ntriples, serialize_ntriples
from repro.turtle.ntriples import escape, unescape


class TestParsing:
    def test_simple_triple(self):
        graph = parse_ntriples(
            "<http://ex.org/s> <http://ex.org/p> <http://ex.org/o> .\n"
        )
        assert len(graph) == 1
        assert Triple(URIRef("http://ex.org/s"), URIRef("http://ex.org/p"),
                      URIRef("http://ex.org/o")) in graph

    def test_plain_literal(self):
        graph = parse_ntriples('<http://ex.org/s> <http://ex.org/p> "hello" .')
        assert list(graph)[0].object == Literal("hello")

    def test_language_literal(self):
        graph = parse_ntriples('<http://ex.org/s> <http://ex.org/p> "hallo"@de .')
        assert list(graph)[0].object == Literal("hallo", lang="de")

    def test_typed_literal(self):
        graph = parse_ntriples(
            '<http://ex.org/s> <http://ex.org/p> '
            '"5"^^<http://www.w3.org/2001/XMLSchema#integer> .'
        )
        assert list(graph)[0].object == Literal("5", datatype=XSD.integer)

    def test_blank_nodes(self):
        graph = parse_ntriples("_:a <http://ex.org/p> _:b .")
        triple = list(graph)[0]
        assert triple.subject == BNode("a")
        assert triple.object == BNode("b")

    def test_comments_and_blank_lines_skipped(self):
        text = "# a comment\n\n<http://ex.org/s> <http://ex.org/p> <http://ex.org/o> .\n"
        assert len(parse_ntriples(text)) == 1

    def test_escaped_quotes_and_newlines(self):
        graph = parse_ntriples(r'<http://ex.org/s> <http://ex.org/p> "say \"hi\"\n" .')
        assert list(graph)[0].object.lexical == 'say "hi"\n'

    def test_missing_dot_raises(self):
        with pytest.raises(NTriplesError):
            parse_ntriples("<http://ex.org/s> <http://ex.org/p> <http://ex.org/o>")

    def test_wrong_term_count_raises(self):
        with pytest.raises(NTriplesError):
            parse_ntriples("<http://ex.org/s> <http://ex.org/p> .")

    def test_literal_subject_raises(self):
        with pytest.raises(NTriplesError):
            parse_ntriples('"bad" <http://ex.org/p> <http://ex.org/o> .')

    def test_bnode_predicate_raises(self):
        with pytest.raises(NTriplesError):
            parse_ntriples("<http://ex.org/s> _:p <http://ex.org/o> .")

    def test_unterminated_literal_raises(self):
        with pytest.raises(NTriplesError):
            parse_ntriples('<http://ex.org/s> <http://ex.org/p> "oops .')

    def test_iter_ntriples_is_lazy(self):
        lines = "\n".join(
            f"<http://ex.org/s{i}> <http://ex.org/p> <http://ex.org/o> ." for i in range(5)
        )
        iterator = iter_ntriples(lines)
        assert next(iterator).subject == URIRef("http://ex.org/s0")
        assert sum(1 for _ in iterator) == 4


class TestSerialisation:
    def test_roundtrip(self):
        triples = [
            Triple(URIRef("http://ex.org/s"), URIRef("http://ex.org/p"), Literal("x", lang="en")),
            Triple(URIRef("http://ex.org/s"), URIRef("http://ex.org/q"),
                   Literal("7", datatype=XSD.integer)),
            Triple(BNode("b"), URIRef("http://ex.org/p"), URIRef("http://ex.org/o")),
        ]
        text = serialize_ntriples(triples)
        parsed = parse_ntriples(text)
        assert isomorphic(parsed, triples)

    def test_output_is_sorted_and_terminated(self):
        triples = [
            Triple(URIRef("http://ex.org/b"), URIRef("http://ex.org/p"), Literal("2")),
            Triple(URIRef("http://ex.org/a"), URIRef("http://ex.org/p"), Literal("1")),
        ]
        text = serialize_ntriples(triples)
        lines = text.strip().splitlines()
        assert lines[0].startswith("<http://ex.org/a>")
        assert all(line.endswith(".") for line in lines)

    def test_empty_input(self):
        assert serialize_ntriples([]) == ""


class TestEscaping:
    def test_escape_unescape_inverse(self):
        original = 'tab\t newline\n quote" backslash\\'
        assert unescape(escape(original)) == original

    def test_unicode_escapes(self):
        assert unescape("\\u00e9") == "é"
        assert unescape("\\U0001F600") == "😀"

    def test_unknown_escape_preserved(self):
        # The paper's alignment listing contains "\S*" inside a literal.
        assert unescape(r"http://kisti.rkbexplorer.com/id/\S*") == r"http://kisti.rkbexplorer.com/id/\S*"
