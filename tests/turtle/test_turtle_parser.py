"""Unit tests for the Turtle parser."""

import pytest

from repro.rdf import (
    BNode,
    Literal,
    MAP,
    NamespaceManager,
    RDF,
    Triple,
    URIRef,
    XSD,
)
from repro.turtle import TurtleLexError, TurtleParseError, parse_turtle, tokenize


class TestDirectives:
    def test_prefix_declaration(self):
        graph = parse_turtle("@prefix ex: <http://ex.org/> . ex:a ex:p ex:b .")
        assert Triple(URIRef("http://ex.org/a"), URIRef("http://ex.org/p"),
                      URIRef("http://ex.org/b")) in graph

    def test_sparql_style_prefix(self):
        graph = parse_turtle("PREFIX ex: <http://ex.org/>\nex:a ex:p ex:b .")
        assert len(graph) == 1

    def test_base_resolution(self):
        graph = parse_turtle('@base <http://ex.org/data/> . <a> <p> <b> .')
        triple = list(graph)[0]
        assert triple.subject == URIRef("http://ex.org/data/a")

    def test_undeclared_prefix_raises(self):
        with pytest.raises(TurtleParseError):
            parse_turtle("ex:a ex:p ex:b .")

    def test_seed_namespace_manager(self):
        manager = NamespaceManager()
        graph = parse_turtle("akt:Person a akt:Class .", namespace_manager=manager)
        assert len(graph) == 1


class TestAbbreviations:
    def test_a_keyword(self):
        graph = parse_turtle("@prefix ex: <http://ex.org/> . ex:x a ex:Thing .")
        assert list(graph)[0].predicate == RDF.type

    def test_predicate_object_lists(self):
        graph = parse_turtle(
            "@prefix ex: <http://ex.org/> . ex:x ex:p ex:a ; ex:q ex:b , ex:c ."
        )
        assert len(graph) == 3

    def test_trailing_semicolon_tolerated(self):
        graph = parse_turtle("@prefix ex: <http://ex.org/> . ex:x ex:p ex:a ; .")
        assert len(graph) == 1

    def test_blank_node_property_list(self):
        graph = parse_turtle(
            "@prefix ex: <http://ex.org/> . ex:x ex:p [ ex:q ex:y ; ex:r ex:z ] ."
        )
        assert len(graph) == 3
        anon = [t.object for t in graph.triples(URIRef("http://ex.org/x"), None, None)][0]
        assert isinstance(anon, BNode)

    def test_nested_blank_node_property_lists(self):
        graph = parse_turtle(
            "@prefix ex: <http://ex.org/> . ex:x ex:p [ ex:q [ ex:r ex:y ] ] ."
        )
        assert len(graph) == 3

    def test_collection(self):
        graph = parse_turtle(
            '@prefix ex: <http://ex.org/> . ex:x ex:p ( ex:a "b" 3 ) .'
        )
        # list of 3 items -> 3 first + 3 rest + 1 link from ex:x
        assert len(graph) == 7
        firsts = list(graph.triples(None, RDF.first, None))
        assert len(firsts) == 3

    def test_empty_collection_is_nil(self):
        graph = parse_turtle("@prefix ex: <http://ex.org/> . ex:x ex:p ( ) .")
        assert list(graph)[0].object == RDF.nil


class TestLiterals:
    def test_language_tag(self):
        graph = parse_turtle('@prefix ex: <http://ex.org/> . ex:x ex:p "chat"@fr .')
        assert list(graph)[0].object == Literal("chat", lang="fr")

    def test_datatyped_literal_with_pname(self):
        graph = parse_turtle(
            "@prefix ex: <http://ex.org/> . @prefix xsd: <http://www.w3.org/2001/XMLSchema#> . "
            'ex:x ex:p "5"^^xsd:integer .'
        )
        assert list(graph)[0].object == Literal("5", datatype=XSD.integer)

    def test_bare_numbers_and_booleans(self):
        graph = parse_turtle(
            "@prefix ex: <http://ex.org/> . ex:x ex:i 42 ; ex:d 3.14 ; ex:e 1.0e3 ; ex:b true ."
        )
        objects = {t.predicate.namespace_split()[1]: t.object for t in graph}
        assert objects["i"].datatype == XSD.integer
        assert objects["d"].datatype == XSD.decimal
        assert objects["e"].datatype == XSD.double
        assert objects["b"].datatype == XSD.boolean

    def test_long_string_literal(self):
        graph = parse_turtle(
            '@prefix ex: <http://ex.org/> . ex:x ex:p """line one\nline two""" .'
        )
        assert "\n" in list(graph)[0].object.lexical

    def test_literal_in_subject_position_rejected(self):
        with pytest.raises(TurtleParseError):
            parse_turtle('@prefix ex: <http://ex.org/> . "bad" ex:p ex:o .')


class TestErrors:
    def test_unexpected_character(self):
        with pytest.raises(TurtleLexError):
            tokenize("@prefix ex: <http://ex.org/> . ex:a ex:p § .")

    def test_missing_dot(self):
        with pytest.raises(TurtleParseError):
            parse_turtle("@prefix ex: <http://ex.org/> . ex:a ex:p ex:b")

    def test_literal_predicate_rejected(self):
        with pytest.raises(TurtleParseError):
            parse_turtle('@prefix ex: <http://ex.org/> . ex:a "p" ex:b .')


class TestPaperListing:
    """The Turtle alignment listing of Section 3.2.2 parses as published."""

    LISTING = """
    @prefix rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#> .
    @prefix map: <http://ecs.soton.ac.uk/om.owl#> .
    @prefix akt2kisti: <http://ecs.soton.ac.uk/alignments/akt2kisti#> .
    @prefix akt: <http://www.aktors.org/ontology/portal#> .
    @prefix kisti: <http://www.kisti.re.kr/isrl/ResearchRefOntology#> .

    akt2kisti:creator_info
        a map:EntityAlignment ;
        map:lhs [
            rdf:type rdf:Statement ;
            rdf:subject _:p1 ;
            rdf:predicate akt:has-author ;
            rdf:object _:a1
        ] ;
        map:rhs [
            rdf:type rdf:Statement ;
            rdf:subject _:p2 ;
            rdf:predicate kisti:hasCreatorInfo ;
            rdf:object _:c
        ] ;
        map:rhs [
            rdf:type rdf:Statement ;
            rdf:subject _:c ;
            rdf:predicate kisti:hasCreator ;
            rdf:object _:a2
        ] ;
        map:hasFunctionalDependency [
            rdf:type rdf:Statement ;
            rdf:subject _:a2 ;
            rdf:predicate map:sameas ;
            rdf:object ( _:a1 "http://kisti.rkbexplorer.com/id/\\S*" )
        ] ;
        map:hasFunctionalDependency [
            rdf:type rdf:Statement ;
            rdf:subject _:p2 ;
            rdf:predicate map:sameas ;
            rdf:object ( _:p1 "http://kisti.rkbexplorer.com/id/\\S*" )
        ] .
    """

    def test_listing_parses(self):
        graph = parse_turtle(self.LISTING)
        alignment_node = URIRef("http://ecs.soton.ac.uk/alignments/akt2kisti#creator_info")
        assert Triple(alignment_node, RDF.type, MAP.EntityAlignment) in graph
        assert len(list(graph.objects(alignment_node, MAP.rhs))) == 2
        assert len(list(graph.objects(alignment_node, MAP.hasFunctionalDependency))) == 2
