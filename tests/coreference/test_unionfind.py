"""Unit and property-based tests for the union-find structure."""

from hypothesis import given, settings, strategies as st

from repro.coreference import UnionFind

import pytest


class TestUnionFindBasics:
    def test_singleton_after_add(self):
        uf = UnionFind(["a"])
        assert uf.find("a") == "a"
        assert uf.members("a") == {"a"}

    def test_union_connects(self):
        uf = UnionFind()
        uf.union("a", "b")
        assert uf.connected("a", "b")
        assert uf.members("a") == {"a", "b"}

    def test_union_transitive(self):
        uf = UnionFind()
        uf.union("a", "b")
        uf.union("b", "c")
        assert uf.connected("a", "c")
        assert uf.members("c") == {"a", "b", "c"}

    def test_disjoint_items_not_connected(self):
        uf = UnionFind()
        uf.union("a", "b")
        uf.union("c", "d")
        assert not uf.connected("a", "c")

    def test_unknown_items_not_connected(self):
        uf = UnionFind()
        uf.add("a")
        assert not uf.connected("a", "missing")
        assert not uf.connected("missing", "other")

    def test_find_unknown_raises(self):
        with pytest.raises(KeyError):
            UnionFind().find("missing")

    def test_members_of_unknown_is_singleton(self):
        assert UnionFind().members("solo") == {"solo"}

    def test_classes(self):
        uf = UnionFind()
        uf.union("a", "b")
        uf.add("c")
        classes = uf.classes()
        assert {frozenset(c) for c in classes} == {frozenset({"a", "b"}), frozenset({"c"})}

    def test_len_and_iter(self):
        uf = UnionFind(["a", "b"])
        uf.union("a", "c")
        assert len(uf) == 3
        assert set(uf) == {"a", "b", "c"}

    def test_union_idempotent(self):
        uf = UnionFind()
        uf.union("a", "b")
        root = uf.find("a")
        assert uf.union("a", "b") == root


# --------------------------------------------------------------------------- #
# Property-based: union-find agrees with a naive partition model
# --------------------------------------------------------------------------- #
_ITEMS = st.integers(min_value=0, max_value=20)


@settings(max_examples=200, deadline=None)
@given(st.lists(st.tuples(_ITEMS, _ITEMS), max_size=40))
def test_unionfind_matches_naive_partition(pairs):
    uf = UnionFind()
    partition: list[set] = []

    def naive_union(a, b):
        group_a = next((g for g in partition if a in g), None)
        group_b = next((g for g in partition if b in g), None)
        if group_a is None and group_b is None:
            partition.append({a, b})
        elif group_a is None:
            group_b.add(a)
        elif group_b is None:
            group_a.add(b)
        elif group_a is not group_b:
            group_a |= group_b
            partition.remove(group_b)

    for a, b in pairs:
        uf.union(a, b)
        naive_union(a, b)

    for a, b in pairs:
        expected = any(a in group and b in group for group in partition)
        assert uf.connected(a, b) == expected


@settings(max_examples=100, deadline=None)
@given(st.lists(st.tuples(_ITEMS, _ITEMS), min_size=1, max_size=30))
def test_equivalence_relation_properties(pairs):
    """connected() is reflexive, symmetric and transitive."""
    uf = UnionFind()
    for a, b in pairs:
        uf.union(a, b)
    items = list(uf)
    for a in items:
        assert uf.connected(a, a)
        for b in items:
            assert uf.connected(a, b) == uf.connected(b, a)
    for a in items:
        for b in items:
            for c in items:
                if uf.connected(a, b) and uf.connected(b, c):
                    assert uf.connected(a, c)


class TestMembersIndex:
    """The root→members index must stay exact through arbitrary unions."""

    def test_members_unknown_item_is_singleton(self):
        uf = UnionFind()
        assert uf.members("ghost") == {"ghost"}

    def test_index_survives_chained_unions(self):
        uf = UnionFind()
        for left, right in [("a", "b"), ("c", "d"), ("b", "c"), ("e", "f"), ("d", "e")]:
            uf.union(left, right)
        everyone = {"a", "b", "c", "d", "e", "f"}
        for item in everyone:
            assert uf.members(item) == everyone

    def test_members_returns_copy(self):
        uf = UnionFind()
        uf.union("a", "b")
        snapshot = uf.members("a")
        snapshot.add("z")
        assert uf.members("a") == {"a", "b"}

    def test_classes_match_members(self):
        uf = UnionFind()
        uf.union("a", "b")
        uf.union("c", "d")
        uf.add("lonely")
        classes = {frozenset(cls) for cls in uf.classes()}
        assert classes == {
            frozenset({"a", "b"}),
            frozenset({"c", "d"}),
            frozenset({"lonely"}),
        }

    def test_redundant_union_keeps_index_exact(self):
        uf = UnionFind()
        uf.union("a", "b")
        uf.union("a", "b")
        uf.union("b", "a")
        assert uf.members("a") == {"a", "b"}
        assert len(uf.classes()) == 1


@settings(max_examples=50, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 15), st.integers(0, 15)), min_size=1, max_size=40))
def test_members_index_matches_naive_scan(pairs):
    """members() via the index equals the O(n) scan it replaced."""
    uf = UnionFind()
    for a, b in pairs:
        uf.union(a, b)
    for item in uf:
        scanned = {other for other in uf if uf.find(other) == uf.find(item)}
        assert uf.members(item) == scanned
