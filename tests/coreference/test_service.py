"""Unit tests for the SameAsService (local sameas.org stand-in)."""

import pytest

from repro.coreference import CoReferenceError, SameAsService
from repro.rdf import Graph, Literal, OWL, Triple, URIRef

RKB = "http://southampton.rkbexplorer.com/id/"
KISTI = "http://kisti.rkbexplorer.com/id/"
DBP = "http://dbpedia.org/resource/"

KISTI_PATTERN = r"http://kisti\.rkbexplorer\.com/id/\S*"


@pytest.fixture()
def service() -> SameAsService:
    service = SameAsService()
    service.add_bundle([
        URIRef(RKB + "person-02686"),
        URIRef(KISTI + "PER_0105047"),
        URIRef(DBP + "Nigel_Shadbolt"),
    ])
    service.add_equivalence(URIRef(RKB + "paper-1"), URIRef(KISTI + "PAP_1"))
    return service


class TestLookup:
    def test_equivalence_class_contains_all_members(self, service):
        bundle = service.equivalence_class(URIRef(RKB + "person-02686"))
        assert len(bundle) == 3

    def test_equivalence_class_of_unknown_uri_is_singleton(self, service):
        bundle = service.equivalence_class(URIRef(RKB + "unknown"))
        assert bundle == {URIRef(RKB + "unknown")}

    def test_lookup_selects_member_matching_pattern(self, service):
        result = service.lookup(URIRef(RKB + "person-02686"), KISTI_PATTERN)
        assert result == URIRef(KISTI + "PER_0105047")

    def test_lookup_no_match_returns_none(self, service):
        assert service.lookup(URIRef(RKB + "person-02686"), r"http://nowhere\.org/\S*") is None

    def test_lookup_strict_raises(self, service):
        with pytest.raises(CoReferenceError):
            service.lookup_strict(URIRef(RKB + "person-02686"), r"http://nowhere\.org/\S*")

    def test_translate_or_keep(self, service):
        translated = service.translate_or_keep(URIRef(RKB + "person-02686"), KISTI_PATTERN)
        assert translated == URIRef(KISTI + "PER_0105047")
        untouched = service.translate_or_keep(URIRef(RKB + "orphan"), KISTI_PATTERN)
        assert untouched == URIRef(RKB + "orphan")

    def test_lookup_deterministic_when_multiple_match(self):
        service = SameAsService()
        service.add_bundle([URIRef(KISTI + "B"), URIRef(KISTI + "A"), URIRef(RKB + "x")])
        assert service.lookup(URIRef(RKB + "x"), KISTI_PATTERN) == URIRef(KISTI + "A")

    def test_are_same(self, service):
        assert service.are_same(URIRef(RKB + "person-02686"), URIRef(DBP + "Nigel_Shadbolt"))
        assert service.are_same(URIRef(RKB + "solo"), URIRef(RKB + "solo"))
        assert not service.are_same(URIRef(RKB + "person-02686"), URIRef(RKB + "paper-1"))

    def test_lookup_count_increments(self, service):
        before = service.lookup_count
        service.lookup(URIRef(RKB + "paper-1"), KISTI_PATTERN)
        assert service.lookup_count == before + 1


class TestPopulation:
    def test_add_equivalence_requires_uris(self):
        service = SameAsService()
        with pytest.raises(TypeError):
            service.add_equivalence(URIRef(RKB + "x"), Literal("not-a-uri"))  # type: ignore[arg-type]

    def test_load_graph(self):
        graph = Graph()
        graph.add(Triple(URIRef(RKB + "a"), OWL.sameAs, URIRef(KISTI + "a")))
        graph.add(Triple(URIRef(RKB + "b"), OWL.sameAs, URIRef(KISTI + "b")))
        # Non-URI objects are ignored.
        graph.add(Triple(URIRef(RKB + "c"), OWL.sameAs, Literal("ignored")))
        service = SameAsService()
        assert service.load_graph(graph) == 2
        assert service.are_same(URIRef(RKB + "a"), URIRef(KISTI + "a"))

    def test_to_graph_roundtrip(self, service):
        graph = service.to_graph()
        reloaded = SameAsService()
        reloaded.load_graph(graph)
        assert reloaded.are_same(URIRef(RKB + "person-02686"), URIRef(KISTI + "PER_0105047"))
        assert reloaded.bundle_count() == service.bundle_count()

    def test_statistics(self, service):
        stats = service.statistics()
        assert stats["uris"] == 5
        assert stats["bundles"] == 2
        assert stats["largest_bundle"] == 3
        assert stats["mean_bundle_size"] == pytest.approx(2.5)

    def test_empty_service_statistics(self):
        stats = SameAsService().statistics()
        assert stats["uris"] == 0
        assert stats["bundles"] == 0


class TestPatternCache:
    """lookup() compiles each regex once and reuses the compiled object."""

    def test_compiled_pattern_is_cached(self, service):
        first = service._compiled(KISTI_PATTERN)
        service.lookup(URIRef(RKB + "person-02686"), KISTI_PATTERN)
        assert service._compiled(KISTI_PATTERN) is first

    def test_distinct_patterns_cached_separately(self, service):
        kisti = service._compiled(KISTI_PATTERN)
        dbp = service._compiled(r"http://dbpedia\.org/resource/\S*")
        assert kisti is not dbp
        assert service._compiled(KISTI_PATTERN) is kisti

    def test_lookup_behaviour_unchanged_by_cache(self, service):
        uri = URIRef(RKB + "person-02686")
        for _ in range(3):
            assert service.lookup(uri, KISTI_PATTERN) == URIRef(KISTI + "PER_0105047")
        assert service.lookup_count >= 3

    def test_invalid_pattern_still_raises(self, service):
        import re
        with pytest.raises(re.error):
            service.lookup(URIRef(RKB + "person-02686"), "(unclosed")
