"""Unit tests for the synthetic co-reference bundle generator."""

from repro.coreference import CoReferenceGenerator, CoReferenceSpec, SameAsService
from repro.rdf import OWL, URIRef


def rkb_minter(kind: str, index: int) -> URIRef:
    return URIRef(f"http://southampton.rkbexplorer.com/id/{kind}-{index:05d}")


def kisti_minter(kind: str, index: int) -> URIRef:
    return URIRef(f"http://kisti.rkbexplorer.com/id/{kind.upper()}_{index:012d}")


def make_generator(coverage: float = 1.0, seed: int = 7) -> CoReferenceGenerator:
    return CoReferenceGenerator(
        specs=[
            CoReferenceSpec("rkb", rkb_minter),
            CoReferenceSpec("kisti", kisti_minter),
        ],
        coverage=coverage,
        seed=seed,
    )


class TestGenerator:
    def test_full_coverage_links_every_entity(self):
        generator = make_generator(coverage=1.0)
        bundles = generator.bundles_for("person", 10)
        assert len(bundles) == 10
        assert all(len(bundle) == 2 for bundle in bundles)

    def test_partial_coverage_links_fewer_entities(self):
        generator = make_generator(coverage=0.3, seed=5)
        bundles = generator.bundles_for("person", 200)
        assert 20 < len(bundles) < 120

    def test_deterministic_for_same_seed(self):
        a = make_generator(coverage=0.5, seed=3).bundles_for("person", 50)
        b = make_generator(coverage=0.5, seed=3).bundles_for("person", 50)
        assert a == b

    def test_populate_service(self):
        generator = make_generator()
        service = SameAsService()
        added = generator.populate(service, "person", 5)
        assert added == 5
        assert service.are_same(rkb_minter("person", 0), kisti_minter("person", 0))

    def test_build_service_multiple_kinds(self):
        generator = make_generator()
        service = generator.build_service({"person": 3, "paper": 2})
        assert service.bundle_count() == 5

    def test_sameas_graph_contains_owl_sameas(self):
        generator = make_generator()
        graph = generator.sameas_graph({"person": 2})
        assert len(list(graph.triples(None, OWL.sameAs, None))) == 2
