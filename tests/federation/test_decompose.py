"""Unit tests for the federated query decomposer.

Covers source selection (vocabulary, class partitions, ASK probes and
their failure modes), exclusive grouping, the zero-source early exit, the
fan-out fallback for unsupported shapes, and bound-join batching across a
LIMIT boundary.
"""

import time


from repro.alignment import AlignmentStore
from repro.coreference import SameAsService
from repro.federation import (
    DatasetDescription,
    DatasetRegistry,
    ExecutionPolicy,
    LocalSparqlEndpoint,
    MediatorService,
)
from repro.rdf import Graph, RDF, Triple, URIRef

EX = "http://ex.org/"
ONTOLOGY = URIRef(EX + "ontology")


def build_federation(datasets, **service_kwargs):
    """``datasets`` maps a short name to a list of triples."""
    registry = DatasetRegistry()
    for name, triples in datasets.items():
        graph = Graph()
        graph.add_all(triples)
        uri = URIRef(f"{EX}{name}")
        registry.register_endpoint(
            DatasetDescription(
                uri=uri,
                endpoint_uri=URIRef(f"{EX}{name}/sparql"),
                ontologies=(ONTOLOGY,),
            ),
            LocalSparqlEndpoint(URIRef(f"{EX}{name}/sparql"), graph, name=name),
        )
    return MediatorService(AlignmentStore(), registry, SameAsService(), **service_kwargs)


def triple(s, p, o):
    return Triple(URIRef(EX + s), URIRef(EX + p), URIRef(EX + o))


class _OpaqueEndpoint:
    """Endpoint wrapper that hides the graph (forces probes) and can delay ASK."""

    def __init__(self, inner, ask_delay=0.0):
        self._inner = inner
        self.ask_delay = ask_delay
        self.uri = inner.uri
        self.name = inner.name
        self.statistics = inner.statistics

    def select(self, query):
        return self._inner.select(query)

    def ask(self, query):
        if self.ask_delay:
            time.sleep(self.ask_delay)
        return self._inner.ask(query)

    def construct(self, query):  # pragma: no cover - not exercised
        return self._inner.construct(query)


def _opaque(service, dataset_name, ask_delay=0.0):
    """Re-register one dataset behind an opaque (graph-less) endpoint."""
    uri = URIRef(f"{EX}{dataset_name}")
    registry = service.registry
    dataset = registry.get(uri)
    registry.register_endpoint(
        dataset.description, _OpaqueEndpoint(dataset.endpoint, ask_delay)
    )
    return registry.get(uri)


class TestSourceSelection:
    def test_vocabulary_excludes_datasets_without_predicate(self):
        service = build_federation({
            "a": [triple("s1", "p", "o1")],
            "b": [triple("s2", "q", "o2")],
        })
        plan = service.federation.decompose_plan(
            f"SELECT ?s ?o WHERE {{ ?s <{EX}p> ?o }}"
        )
        [sources] = plan.pattern_sources
        assert [str(u) for u in sources.relevant_uris()] == [f"{EX}a"]
        assert plan.skipped == {URIRef(f"{EX}b"): "no relevant pattern"}

    def test_class_partition_excludes_wrong_class(self):
        service = build_federation({
            "a": [Triple(URIRef(EX + "s1"), RDF.type, URIRef(EX + "Person"))],
            "b": [Triple(URIRef(EX + "s2"), RDF.type, URIRef(EX + "Paper"))],
        })
        plan = service.federation.decompose_plan(
            f"SELECT ?s WHERE {{ ?s a <{EX}Person> }}"
        )
        [sources] = plan.pattern_sources
        assert [str(u) for u in sources.relevant_uris()] == [f"{EX}a"]

    def test_zero_source_pattern_contacts_no_endpoint(self):
        service = build_federation({
            "a": [triple("s1", "p", "o1")],
            "b": [triple("s2", "p", "o2")],
        })
        before = {
            str(d.uri): d.endpoint.statistics.total_queries
            for d in service.registry
        }
        outcome = service.federate(
            f"SELECT ?s ?o WHERE {{ ?s <{EX}nosuch> ?o }}", strategy="decompose"
        )
        assert len(outcome.merged()) == 0
        assert outcome.total_requests == 0
        assert outcome.decomposition.empty_reason is not None
        after = {
            str(d.uri): d.endpoint.statistics.total_queries
            for d in service.registry
        }
        assert after == before

    def test_open_breaker_excludes_dataset(self):
        service = build_federation({
            "a": [triple("s1", "p", "o1")],
            "b": [triple("s2", "p", "o2")],
        })
        uri = URIRef(f"{EX}b")
        service.registry.set_policy(uri, ExecutionPolicy(failure_threshold=1,
                                                         reset_timeout=60.0))
        breaker = service.registry.breaker_for(uri)
        breaker.record_failure()
        assert breaker.state == "open"
        plan = service.federation.decompose_plan(
            f"SELECT ?s ?o WHERE {{ ?s <{EX}p> ?o }}"
        )
        assert plan.skipped[uri] == "circuit open"
        outcome = service.federate(
            f"SELECT ?s ?o WHERE {{ ?s <{EX}p> ?o }}", strategy="decompose"
        )
        assert {str(b.get_term("s")) for b in outcome.merged()} == {f"{EX}s1"}
        # A breaker-skipped dataset is an outage, reported exactly as the
        # fan-out strategy would report it — not a quiet success.
        assert uri in outcome.failed_datasets()
        skipped_entry = next(e for e in outcome.per_dataset if e.dataset_uri == uri)
        assert "circuit open" in skipped_entry.error

    def test_probe_settles_unadvertised_vocabulary(self):
        service = build_federation({
            "a": [triple("s1", "p", "o1")],
            "b": [triple("s2", "q", "o2")],
        })
        _opaque(service, "b")
        plan = service.federation.decompose_plan(
            f"SELECT ?s ?o WHERE {{ ?s <{EX}p> ?o }}"
        )
        assert plan.probes == 1
        [sources] = plan.pattern_sources
        decision = sources.decision_for(URIRef(f"{EX}b"))
        assert not decision.relevant
        assert "ask-probe" in decision.reason

    def test_probe_timeout_falls_back_to_broadcast(self):
        service = build_federation({
            "a": [triple("s1", "p", "o1")],
            "b": [triple("s2", "p", "o2")],
        })
        _opaque(service, "b", ask_delay=0.3)
        engine = service.federation
        engine.probe_timeout = 0.05
        uri = URIRef(f"{EX}b")
        query = f"SELECT ?s ?o WHERE {{ ?s <{EX}p> ?o }}"
        plan = engine.decompose_plan(query)
        [sources] = plan.pattern_sources
        decision = sources.decision_for(uri)
        assert decision.relevant
        assert "broadcast" in decision.reason
        # The failed probe is visible to the breaker (breaker-aware probing).
        assert engine.registry.breaker_for(uri).consecutive_failures == 1
        # The endpoint is still queried normally, so no answers are lost
        # (and the successful SELECT settles the breaker again).
        outcome = service.federate(query, strategy="decompose")
        assert {str(b.get_term("s")) for b in outcome.merged()} == \
            {f"{EX}s1", f"{EX}s2"}
        assert engine.registry.breaker_for(uri).consecutive_failures == 0

    def test_probes_disabled_broadcasts(self):
        service = build_federation({
            "a": [triple("s1", "p", "o1")],
            "b": [triple("s2", "q", "o2")],
        }, ask_probes=False)
        _opaque(service, "b")
        plan = service.federation.decompose_plan(
            f"SELECT ?s ?o WHERE {{ ?s <{EX}p> ?o }}"
        )
        assert plan.probes == 0
        [sources] = plan.pattern_sources
        decision = sources.decision_for(URIRef(f"{EX}b"))
        assert decision.relevant
        assert "broadcast" in decision.reason

    def test_explain_probes_not_billed_to_next_execution(self):
        service = build_federation({
            "a": [triple("s1", "p", "o1")],
            "b": [triple("s2", "q", "o2")],
        })
        _opaque(service, "a")
        _opaque(service, "b")
        engine = service.federation
        query = f"SELECT ?s ?o WHERE {{ ?s <{EX}p> ?o }}"
        plan = engine.decompose_plan(query)  # probes happen here
        assert plan.probes == 2
        outcome = service.federate(query, strategy="decompose")
        # Decisions are cached, so the execution issues only its own
        # sub-query request; the explain-time probes are not re-billed.
        assert outcome.total_requests == 1

    def test_reenabling_probes_invalidates_broadcast_decisions(self):
        service = build_federation({
            "a": [triple("s1", "p", "o1")],
            "b": [triple("s2", "q", "o2")],
        })
        _opaque(service, "b")
        engine = service.federation
        query = f"SELECT ?s ?o WHERE {{ ?s <{EX}p> ?o }}"
        engine.ask_probes = False
        broadcast = engine.decompose_plan(query)
        [sources] = broadcast.pattern_sources
        assert sources.decision_for(URIRef(f"{EX}b")).relevant
        engine.ask_probes = True
        probed = engine.decompose_plan(query)
        assert probed.probes == 1
        [sources] = probed.pattern_sources
        assert not sources.decision_for(URIRef(f"{EX}b")).relevant

    def test_decisions_cached_until_kb_generation_changes(self):
        service = build_federation({
            "a": [triple("s1", "p", "o1")],
            "b": [triple("s2", "q", "o2")],
        })
        _opaque(service, "b")
        engine = service.federation
        query = f"SELECT ?s ?o WHERE {{ ?s <{EX}p> ?o }}"
        first = engine.decompose_plan(query)
        again = engine.decompose_plan(query)
        assert first.probes == 1
        assert again.probes == 0  # cache hit
        # Any alignment-KB mutation bumps the generation and must drop the
        # cached decisions (the translations they were based on changed).
        from repro.alignment import OntologyAlignment

        service.alignment_store.add(OntologyAlignment(
            [URIRef(EX + "other")], target_ontologies=[URIRef(EX + "target")]
        ))
        refreshed = engine.decompose_plan(query)
        assert refreshed.probes == 1  # generation change invalidated the cache


class TestDecomposition:
    def test_exclusive_group_ships_as_one_sub_query(self):
        service = build_federation({
            "a": [triple("s1", "p1", "m1"), triple("m1", "p2", "o1")],
            "b": [triple("s9", "q", "o9")],
        })
        plan = service.federation.decompose_plan(
            f"SELECT ?s ?o WHERE {{ ?s <{EX}p1> ?m . ?m <{EX}p2> ?o }}"
        )
        assert len(plan.units) == 1
        [unit] = plan.units
        assert unit.exclusive
        assert len(unit.patterns) == 2
        assert [str(u) for u in unit.sources] == [f"{EX}a"]
        outcome = service.federate(
            f"SELECT ?s ?o WHERE {{ ?s <{EX}p1> ?m . ?m <{EX}p2> ?o }}",
            strategy="decompose",
        )
        # One request evaluates the whole group remotely.
        assert outcome.total_requests == 1
        assert {str(b.get_term("o")) for b in outcome.merged()} == {f"{EX}o1"}

    def test_fallback_for_optional(self):
        service = build_federation({"a": [triple("s1", "p", "o1")]})
        query = (
            f"SELECT ?s ?o WHERE {{ ?s <{EX}p> ?o "
            f"OPTIONAL {{ ?s <{EX}q> ?x }} }}"
        )
        plan = service.federation.decompose_plan(query)
        assert not plan.decomposed
        assert "unsupported pattern element" in plan.fallback_reason
        outcome = service.federate(query, strategy="decompose")
        assert outcome.strategy == "decompose"
        assert outcome.decomposition is plan or outcome.decomposition.fallback_reason
        assert len(outcome.merged()) == 1

    def test_fallback_for_ask_query(self):
        service = build_federation({"a": [triple("s1", "p", "o1")]})
        plan = service.federation.decompose_plan(f"ASK {{ ?s <{EX}p> ?o }}")
        assert not plan.decomposed

    def test_explain_lists_sub_queries_per_dataset(self):
        service = build_federation({
            "a": [triple("s1", "p", "o1")],
            "b": [triple("s2", "q", "o2")],
        })
        per_dataset = service.explain(
            f"SELECT ?s ?o WHERE {{ ?s <{EX}p> ?o . ?s <{EX}q> ?v }}",
            strategy="decompose",
        )
        assert "unit" in per_dataset[f"{EX}a"]
        assert "unit" in per_dataset[f"{EX}b"]
        plan = service.federation.decompose_plan(
            f"SELECT ?s ?o WHERE {{ ?s <{EX}p> ?o . ?s <{EX}q> ?v }}"
        )
        rendered = plan.explain()
        assert "bound join on (?s)" in rendered
        assert "VALUES" in rendered


class TestBoundJoin:
    def _service(self, rows=40):
        left = [triple(f"s{i}", "rare", f"w{i}") for i in range(rows)]
        right = [triple(f"s{i}", "common", f"v{i}") for i in range(rows)]
        return build_federation({"left": left, "right": right})

    def test_bound_join_equals_fanout_union_semantics(self):
        service = self._service(rows=10)
        query = f"SELECT ?s ?w ?v WHERE {{ ?s <{EX}rare> ?w . ?s <{EX}common> ?v }}"
        fanout = service.federate(query)
        decomposed = service.federate(query, strategy="decompose")
        # Split across endpoints: fan-out finds nothing per dataset, and the
        # decomposer's cross-endpoint join must respect the dataset-local
        # URI spaces of the scenarios...  here subjects ARE shared, so the
        # decomposed join finds the rows fan-out provably cannot.  This is
        # the capability gap, asserted explicitly so nobody mistakes the
        # differential guarantee for a universal one.
        assert len(fanout.merged()) == 0
        assert len(decomposed.merged()) == 10

    def test_limit_stops_bound_join_batches_early(self):
        service = self._service(rows=40)
        engine = service.federation
        engine.bind_join_batch = 5
        query = (
            f"SELECT ?s ?w ?v WHERE {{ ?s <{EX}rare> ?w . ?s <{EX}common> ?v }} "
            f"LIMIT 13"
        )
        outcome = service.federate(query, strategy="decompose")
        assert len(outcome.merged()) == 13
        # Early termination: 3 batches of 5 cover LIMIT 13 (the third batch
        # straddles the boundary); a full run would need 8 batches.  Unit 1
        # costs one request per source; every batch costs one request per
        # bound-join source.
        requests = outcome.total_requests
        assert requests <= 2 + 3 * 2
        full = service.federate(
            f"SELECT ?s ?w ?v WHERE {{ ?s <{EX}rare> ?w . ?s <{EX}common> ?v }}",
            strategy="decompose",
        )
        assert full.total_requests > requests
        assert len(full.merged()) == 40

    def test_batch_size_one_still_correct(self):
        service = self._service(rows=7)
        engine = service.federation
        engine.bind_join_batch = 1
        query = f"SELECT ?s ?w ?v WHERE {{ ?s <{EX}rare> ?w . ?s <{EX}common> ?v }}"
        outcome = service.federate(query, strategy="decompose")
        assert len(outcome.merged()) == 7
