"""HttpSparqlEndpoint: protocol bindings, failure mapping, policy integration."""

import socket

import pytest

from repro.federation import (
    EndpointError,
    EndpointTimeout,
    EndpointUnavailable,
    HttpSparqlEndpoint,
    LocalSparqlEndpoint,
)
from repro.rdf import URIRef
from repro.server import EndpointBackend, SparqlHttpServer
from repro.turtle import parse_graph

DATA = """
@prefix ex: <http://example.org/> .
ex:a ex:knows ex:b .
ex:b ex:knows ex:c .
"""

SELECT = "SELECT ?s ?o WHERE { ?s <http://example.org/knows> ?o }"
ASK = "ASK { <http://example.org/a> <http://example.org/knows> <http://example.org/b> }"
CONSTRUCT = (
    "CONSTRUCT { ?o <http://example.org/knownBy> ?s } "
    "WHERE { ?s <http://example.org/knows> ?o }"
)


@pytest.fixture()
def local():
    return LocalSparqlEndpoint(URIRef("http://example.org/dataset"), parse_graph(DATA))


@pytest.fixture()
def server(local):
    with SparqlHttpServer(EndpointBackend(local)) as running:
        yield running


@pytest.fixture()
def remote(server):
    return HttpSparqlEndpoint(URIRef(server.query_url), timeout=5)


class TestQueryForms:
    def test_select_matches_local(self, local, remote):
        over_http = remote.select(SELECT)
        in_process = local.select(SELECT)
        assert over_http.variables == in_process.variables
        assert over_http.bindings == in_process.bindings

    def test_ask(self, remote):
        assert bool(remote.ask(ASK)) is True

    def test_construct_matches_local(self, local, remote):
        assert set(remote.construct(CONSTRUCT)) == set(local.construct(CONSTRUCT))

    def test_get_binding(self, server, local):
        remote = HttpSparqlEndpoint(URIRef(server.query_url), timeout=5, method="get")
        assert remote.select(SELECT).bindings == local.select(SELECT).bindings

    def test_xml_result_format(self, server, local):
        remote = HttpSparqlEndpoint(URIRef(server.query_url), timeout=5, result_format="xml")
        assert remote.select(SELECT).bindings == local.select(SELECT).bindings

    def test_statistics_count_queries(self, remote):
        remote.select(SELECT)
        remote.ask(ASK)
        remote.construct(CONSTRUCT)
        assert remote.statistics.select_queries == 1
        assert remote.statistics.ask_queries == 1
        assert remote.statistics.construct_queries == 1
        assert remote.statistics.total_queries == 3

    def test_wrong_result_kind_raises(self, remote):
        with pytest.raises(EndpointError):
            remote.select(ASK)


class TestFailureMapping:
    def test_http_error_status_maps_to_unavailable(self, local, remote):
        local.fail_next(1)
        with pytest.raises(EndpointUnavailable) as excinfo:
            remote.select(SELECT)
        assert "HTTP 503" in str(excinfo.value)
        assert remote.statistics.injected_failures == 1

    def test_bad_query_maps_to_unavailable_with_status(self, remote):
        with pytest.raises(EndpointUnavailable) as excinfo:
            remote.select("SELECT WHERE {")
        assert "HTTP 400" in str(excinfo.value)

    def test_connection_refused_maps_to_unavailable(self):
        # Bind-then-close guarantees a dead port.
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        dead = HttpSparqlEndpoint(URIRef(f"http://127.0.0.1:{port}/sparql"), timeout=2)
        with pytest.raises(EndpointUnavailable):
            dead.select(SELECT)
        assert dead.statistics.transport_failures == 1

    def test_slow_endpoint_maps_to_timeout(self, local, server):
        local.latency = 1.0
        impatient = HttpSparqlEndpoint(URIRef(server.query_url), timeout=0.1)
        with pytest.raises(EndpointTimeout):
            impatient.select(SELECT)
        assert impatient.statistics.transport_failures == 1


class TestPolicyIntegration:
    """PR 2's retry/breaker machinery must drive remote endpoints unchanged."""

    def test_retries_recover_from_injected_failures(self, local, server):
        from repro.federation import DatasetRegistry, ExecutionPolicy, RegisteredDataset
        from repro.federation.void import DatasetDescription

        remote = HttpSparqlEndpoint(URIRef(server.query_url), timeout=5)
        dataset_uri = URIRef("http://example.org/dataset")
        registry = DatasetRegistry(
            [RegisteredDataset(
                DatasetDescription(uri=dataset_uri, endpoint_uri=remote.uri),
                remote,
            )],
            default_policy=ExecutionPolicy(max_retries=2, backoff=0.0),
        )
        local.fail_next(2)
        breaker = registry.breaker_for(dataset_uri)
        policy = registry.policy_for(dataset_uri)

        result = None
        for attempt in range(policy.max_attempts):
            if not breaker.allow():
                break
            try:
                result = remote.select(SELECT)
                breaker.record_success()
                break
            except EndpointUnavailable:
                breaker.record_failure()
        assert result is not None and len(result) == 2
        assert breaker.state == "closed"

    def test_repeated_remote_failures_trip_the_breaker(self, local, server):
        from repro.federation import CircuitBreaker

        remote = HttpSparqlEndpoint(URIRef(server.query_url), timeout=5)
        breaker = CircuitBreaker(failure_threshold=3, reset_timeout=60)
        local.fail_next(10)
        for _ in range(3):
            assert breaker.allow()
            with pytest.raises(EndpointUnavailable):
                remote.select(SELECT)
            breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()
