"""Concurrent federated execution: equivalence, timeouts, retries, breakers.

These tests use a *private* scenario (not the shared session fixture)
because they mutate endpoint health — latency, injected failures, breaker
state — and must not leak that into other tests.
"""

import threading

import pytest

from repro.datasets import build_resist_scenario
from repro.federation import CircuitState, ExecutionPolicy
from repro.rdf import URIRef


@pytest.fixture()
def scenario():
    return build_resist_scenario(
        n_persons=12,
        n_papers=24,
        n_projects=3,
        n_organizations=3,
        rkb_coverage=0.7,
        kisti_coverage=0.6,
        dbpedia_coverage=0.5,
        seed=7,
    )


def _coauthor_query(scenario):
    person_uri = scenario.akt_person_uri(scenario.world.most_prolific_author())
    return f"""
    PREFIX akt:<http://www.aktors.org/ontology/portal#>
    SELECT DISTINCT ?a WHERE {{
      ?paper akt:has-author <{person_uri}> .
      ?paper akt:has-author ?a .
      FILTER (!(?a = <{person_uri}>))
    }}
    """


class TestConcurrentEquivalence:
    def test_parallel_matches_sequential(self, scenario):
        query = _coauthor_query(scenario)
        kwargs = dict(
            source_ontology=scenario.source_ontology,
            source_dataset=scenario.rkb_dataset,
            mode="filter-aware",
        )
        sequential = scenario.service.federate(query, parallel=False, **kwargs)
        parallel = scenario.service.federate(query, parallel=True, **kwargs)
        assert parallel.merged_bindings == sequential.merged_bindings
        assert [e.dataset_uri for e in parallel.per_dataset] == \
            [e.dataset_uri for e in sequential.per_dataset]
        assert parallel.merged().to_table() == sequential.merged().to_table()

    def test_equivalence_under_shuffled_completion_order(self, scenario):
        """Slow first endpoint, fast last: completion order inverts, results don't."""
        query = _coauthor_query(scenario)
        kwargs = dict(
            source_ontology=scenario.source_ontology,
            source_dataset=scenario.rkb_dataset,
            mode="filter-aware",
        )
        sequential = scenario.service.federate(query, parallel=False, **kwargs)
        latencies = [0.08, 0.04, 0.0]
        for dataset, latency in zip(scenario.registry, latencies, strict=False):
            dataset.endpoint.latency = latency
        try:
            parallel = scenario.service.federate(query, parallel=True, **kwargs)
        finally:
            for dataset in scenario.registry:
                dataset.endpoint.latency = 0.0
        assert parallel.merged_bindings == sequential.merged_bindings
        assert [e.dataset_uri for e in parallel.per_dataset] == \
            [e.dataset_uri for e in sequential.per_dataset]

    def test_parallel_is_faster_with_latency(self, scenario):
        query = _coauthor_query(scenario)
        kwargs = dict(
            source_ontology=scenario.source_ontology,
            source_dataset=scenario.rkb_dataset,
        )
        for dataset in scenario.registry:
            dataset.endpoint.latency = 0.05
        try:
            sequential = scenario.service.federate(query, parallel=False, **kwargs)
            parallel = scenario.service.federate(query, parallel=True, **kwargs)
        finally:
            for dataset in scenario.registry:
                dataset.endpoint.latency = 0.0
        assert parallel.elapsed < sequential.elapsed


class TestTimeout:
    def test_slow_endpoint_times_out_and_is_reported(self, scenario):
        slow = scenario.endpoint(scenario.dbpedia_dataset)
        slow.latency = 0.5
        scenario.registry.set_policy(
            scenario.dbpedia_dataset, ExecutionPolicy(timeout=0.05)
        )
        try:
            result = scenario.service.federate(
                _coauthor_query(scenario),
                source_ontology=scenario.source_ontology,
                source_dataset=scenario.rkb_dataset,
            )
        finally:
            slow.latency = 0.0
        assert scenario.dbpedia_dataset in result.failed_datasets()
        failed = next(e for e in result.per_dataset
                      if e.dataset_uri == scenario.dbpedia_dataset)
        assert "timed out" in failed.error
        assert len(result.successful_datasets()) == 2
        assert result.merged_bindings  # the healthy endpoints still contribute


class TestRetries:
    def test_flaky_endpoint_recovers_within_retry_budget(self, scenario):
        flaky = scenario.endpoint(scenario.kisti_dataset)
        flaky.fail_next(2)
        scenario.registry.set_policy(
            scenario.kisti_dataset,
            ExecutionPolicy(max_retries=3, backoff=0.0),
        )
        before = flaky.statistics.select_queries
        result = scenario.service.federate(
            _coauthor_query(scenario),
            source_ontology=scenario.source_ontology,
            source_dataset=scenario.rkb_dataset,
        )
        entry = next(e for e in result.per_dataset
                     if e.dataset_uri == scenario.kisti_dataset)
        assert entry.succeeded
        assert entry.attempts == 3
        assert flaky.statistics.select_queries - before == 3
        assert flaky.statistics.injected_failures == 2

    def test_retries_exhausted_reports_error(self, scenario):
        flaky = scenario.endpoint(scenario.kisti_dataset)
        flaky.fail_next(5)
        scenario.registry.set_policy(
            scenario.kisti_dataset,
            ExecutionPolicy(max_retries=1, backoff=0.0),
        )
        result = scenario.service.federate(
            _coauthor_query(scenario),
            source_ontology=scenario.source_ontology,
            source_dataset=scenario.rkb_dataset,
        )
        entry = next(e for e in result.per_dataset
                     if e.dataset_uri == scenario.kisti_dataset)
        assert not entry.succeeded
        assert entry.attempts == 2
        assert "flaked" in entry.error


class TestCircuitBreaker:
    def test_breaker_trips_and_short_circuits(self, scenario):
        dead = scenario.endpoint(scenario.dbpedia_dataset)
        dead.available = False
        scenario.registry.set_policy(
            scenario.dbpedia_dataset,
            ExecutionPolicy(failure_threshold=2, reset_timeout=60.0),
        )
        query = _coauthor_query(scenario)
        kwargs = dict(
            source_ontology=scenario.source_ontology,
            source_dataset=scenario.rkb_dataset,
        )
        scenario.service.federate(query, **kwargs)
        scenario.service.federate(query, **kwargs)
        assert scenario.registry.health()[scenario.dbpedia_dataset] == CircuitState.OPEN

        before = dead.statistics.select_queries
        result = scenario.service.federate(query, **kwargs)
        entry = next(e for e in result.per_dataset
                     if e.dataset_uri == scenario.dbpedia_dataset)
        assert not entry.succeeded
        assert "circuit open" in entry.error
        assert entry.attempts == 0
        # The endpoint was never touched while the breaker was open.
        assert dead.statistics.select_queries == before
        # The healthy datasets are unaffected.
        assert len(result.successful_datasets()) == 2

    def test_breaker_recovers_after_probe(self, scenario):
        dead = scenario.endpoint(scenario.dbpedia_dataset)
        dead.available = False
        scenario.registry.set_policy(
            scenario.dbpedia_dataset,
            ExecutionPolicy(failure_threshold=1, reset_timeout=0.0),
        )
        query = _coauthor_query(scenario)
        kwargs = dict(
            source_ontology=scenario.source_ontology,
            source_dataset=scenario.rkb_dataset,
        )
        scenario.service.federate(query, **kwargs)  # trips the breaker
        dead.available = True
        # reset_timeout=0 → next call is the half-open probe, which succeeds.
        result = scenario.service.federate(query, **kwargs)
        entry = next(e for e in result.per_dataset
                     if e.dataset_uri == scenario.dbpedia_dataset)
        assert entry.succeeded
        assert scenario.registry.health()[scenario.dbpedia_dataset] == CircuitState.CLOSED


class TestThreadSafetySmoke:
    def test_mediator_cache_hammered_from_many_threads(self, scenario):
        """Concurrent translate() calls: no exceptions, consistent counters."""
        mediator = scenario.service.mediator
        queries = [_coauthor_query(scenario) for _ in range(2)]
        targets = [scenario.kisti_dataset, scenario.dbpedia_dataset]
        errors = []
        barrier = threading.Barrier(8)

        def worker(index: int) -> None:
            try:
                barrier.wait(timeout=10)
                for round_index in range(25):
                    target = targets[(index + round_index) % len(targets)]
                    result = mediator.translate(
                        queries[round_index % len(queries)],
                        target,
                        scenario.source_ontology,
                        mode="bgp",
                    )
                    assert result.rewritten_query is not None
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert not errors
        info = mediator.cache_info()
        assert info["hits"] + info["misses"] >= 8 * 25

    def test_sameas_service_concurrent_lookups_and_mutations(self, scenario):
        service = scenario.sameas_service
        pattern = r"http://southampton\.rkbexplorer\.com/id/\S*"
        uris = [scenario.akt_person_uri(p.key) for p in scenario.world.persons]
        errors = []

        def reader() -> None:
            try:
                for _ in range(20):
                    for uri in uris:
                        service.lookup(uri, pattern)
                        service.equivalence_class(uri)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        def writer() -> None:
            try:
                for index in range(50):
                    service.add_equivalence(
                        URIRef(f"http://ex.org/new-{index}"),
                        URIRef(f"http://ex.org/new-{index}-alias"),
                    )
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=reader) for _ in range(4)]
        threads.append(threading.Thread(target=writer))
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert not errors
