"""EXPLAIN threading through endpoints, the federator and the service."""

from __future__ import annotations

from ..conftest import FIGURE_1_QUERY


class TestEndpointExplain:
    def test_local_endpoint_explains_without_traffic(self, small_scenario):
        endpoint = small_scenario.endpoint(small_scenario.rkb_dataset)
        before = endpoint.statistics.total_queries
        text = endpoint.explain(FIGURE_1_QUERY)
        assert text.startswith("plan for SELECT query")
        assert "BGPScan" in text
        assert endpoint.statistics.total_queries == before

    def test_explain_not_subject_to_failure_injection(self, small_scenario):
        endpoint = small_scenario.endpoint(small_scenario.rkb_dataset)
        endpoint.fail_next(1)
        try:
            text = endpoint.explain(FIGURE_1_QUERY)
            assert "plan for" in text
            # The injected failure is still pending for the next real query.
            assert endpoint._fail_next == 1
        finally:
            # The scenario fixture is session-scoped: don't leak the pending
            # injected failure into unrelated tests.
            endpoint.fail_next(0)


class TestFederatedExplain:
    def test_per_dataset_plans(self, small_scenario):
        plans = small_scenario.service.federation.explain(
            FIGURE_1_QUERY,
            source_ontology=small_scenario.source_ontology,
            source_dataset=small_scenario.rkb_dataset,
            mode="filter-aware",
        )
        assert set(plans) == {d.uri for d in small_scenario.registry.datasets()}
        for text in plans.values():
            assert "plan for SELECT query" in text

    def test_rewritten_datasets_plan_the_translated_query(self, small_scenario):
        plans = small_scenario.service.federation.explain(
            FIGURE_1_QUERY,
            source_ontology=small_scenario.source_ontology,
            source_dataset=small_scenario.rkb_dataset,
            mode="filter-aware",
        )
        # The KISTI plan must scan KISTI vocabulary, not the AKT source terms.
        kisti_plan = plans[small_scenario.kisti_dataset]
        assert "has-author" not in kisti_plan
        # The source dataset runs the original query untranslated.
        rkb_plan = plans[small_scenario.rkb_dataset]
        assert "has-author" in rkb_plan

    def test_service_facade_exposes_explain(self, small_scenario):
        plans = small_scenario.service.explain(
            FIGURE_1_QUERY,
            source_ontology=small_scenario.source_ontology,
            source_dataset=small_scenario.rkb_dataset,
            mode="filter-aware",
        )
        assert all(isinstance(key, str) for key in plans)
        assert len(plans) == 3
