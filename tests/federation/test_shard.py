"""Subject-hash sharding: one logical graph behind N federated endpoints.

The scale-out claim is that the PR 5 decomposer needs no new machinery to
query a sharded graph: each shard advertises its own voiD partitions, the
decomposer routes patterns by them, and bound joins stitch cross-shard
paths back together.  These tests pin (a) the hash routing invariants,
(b) the per-shard statistics, and (c) the end-to-end answer equality
between a sharded federation and single-graph evaluation — including a
join whose two legs live on different shards.
"""

from __future__ import annotations

import pytest

from repro.alignment import AlignmentStore
from repro.coreference import SameAsService
from repro.federation import (
    MediatorService,
    shard_for_subject,
    shard_graph,
)
from repro.rdf import Graph, Literal, RDF, SegmentStore, Triple, URIRef, open_graph
from repro.sparql import QueryEvaluator, parse_query

EX = "http://shard.example/"


def u(name: str) -> URIRef:
    return URIRef(EX + name)


def chain_graph(people: int = 12) -> Graph:
    """A knows-chain plus names and types: star joins and path joins."""
    graph = Graph()
    for i in range(people):
        graph.add(Triple(u(f"p{i}"), u("name"), Literal(f"person {i}")))
        graph.add(Triple(u(f"p{i}"), RDF.type, u("Person")))
        if i + 1 < people:
            graph.add(Triple(u(f"p{i}"), u("knows"), u(f"p{i + 1}")))
    return graph


class TestSubjectHash:
    def test_deterministic_and_bounded(self):
        for name in ("p0", "p1", "alice", "bob"):
            first = shard_for_subject(u(name), 4)
            assert 0 <= first < 4
            assert shard_for_subject(u(name), 4) == first

    def test_validates_shard_count(self):
        with pytest.raises(ValueError):
            shard_for_subject(u("a"), 0)
        with pytest.raises(ValueError):
            shard_graph(Graph(), 0)


class TestShardGraph:
    def test_partitions_by_subject_and_loses_nothing(self):
        source = chain_graph()
        sharded = shard_graph(source, 3)
        assert sharded.shards == 3
        assert len(sharded) == len(source)
        union = Graph()
        for index, shard in enumerate(sharded.graphs):
            for triple in shard:
                # Every triple sits on the shard its subject hashes to.
                assert shard_for_subject(triple.subject, 3) == index
            union.add_all(shard)
        assert union == source

    def test_descriptions_advertise_per_shard_statistics(self):
        source = chain_graph()
        sharded = shard_graph(source, 3)
        for shard, description in zip(sharded.graphs, sharded.descriptions, strict=True):
            assert description.triple_count == len(shard)
            assert dict(description.property_partitions) == {
                p: c for p, c in shard.stats.predicate_counts.items()
            }
        merged: dict[URIRef, int] = {}
        for description in sharded.descriptions:
            for predicate, count in description.property_partitions:
                merged[predicate] = merged.get(predicate, 0) + count
        assert merged == source.stats.predicate_counts

    def test_registry_contains_every_shard(self):
        sharded = shard_graph(chain_graph(), 4)
        assert len(list(sharded.registry)) == 4
        for endpoint, description in zip(sharded.endpoints, sharded.descriptions,
                                         strict=True):
            assert sharded.registry.get(description.uri).endpoint is endpoint


class TestFederatedEquality:
    @staticmethod
    def _service(sharded):
        return MediatorService(AlignmentStore(), sharded.registry, SameAsService())

    @staticmethod
    def _local_rows(graph, query_text, names):
        result = QueryEvaluator(graph, engine="planner").evaluate(
            parse_query(query_text))
        return {
            tuple(str(binding.get_term(name)) for name in names)
            for binding in result.bindings
        }

    def test_cross_shard_path_join_matches_single_graph(self):
        source = chain_graph()
        sharded = shard_graph(source, 3)
        query = (f"SELECT DISTINCT ?a ?c WHERE {{ "
                 f"?a <{EX}knows> ?b . ?b <{EX}knows> ?c }}")
        outcome = self._service(sharded).federate(query, strategy="decompose")
        got = {
            (str(b.get_term("a")), str(b.get_term("c")))
            for b in outcome.merged()
        }
        want = self._local_rows(source, query, ("a", "c"))
        assert want, "the chain must produce two-hop paths"
        # The chain guarantees consecutive subjects land on different
        # shards somewhere, so this equality proves cross-shard joins.
        assert got == want

    def test_star_join_matches_single_graph(self):
        source = chain_graph()
        sharded = shard_graph(source, 4)
        query = (f"SELECT DISTINCT ?p ?n WHERE {{ "
                 f"?p a <{EX}Person> . ?p <{EX}name> ?n }}")
        outcome = self._service(sharded).federate(query, strategy="decompose")
        got = {(str(b.get_term("p")), str(b.get_term("n")))
               for b in outcome.merged()}
        assert got == self._local_rows(source, query, ("p", "n"))

    def test_source_selection_skips_irrelevant_shards(self):
        source = chain_graph(people=3)
        sharded = shard_graph(source, 3)
        plan = self._service(sharded).federation.decompose_plan(
            f"SELECT ?s WHERE {{ ?s <{EX}nosuch> ?o }}")
        assert plan.empty_reason is not None or all(
            not sources.relevant_uris() for sources in plan.pattern_sources
        )


class TestPersistentShards:
    def test_store_factory_builds_disk_backed_shards(self, tmp_path):
        source = chain_graph()
        sharded = shard_graph(
            source, 2,
            store_factory=lambda index: SegmentStore(tmp_path / f"shard-{index}"),
        )
        assert len(sharded) == len(source)
        for index, shard in enumerate(sharded.graphs):
            assert isinstance(shard.store, SegmentStore)
            shard.close()
        # Shards are durable: reopening both recovers the whole dataset.
        reunion = Graph()
        for index in range(2):
            reopened = open_graph(tmp_path / f"shard-{index}")
            reunion.add_all(reopened)
            reopened.close()
        assert reunion == source
