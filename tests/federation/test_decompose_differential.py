"""Differential suite: ``--strategy decompose`` ≡ fan-out on E6/E7.

The acceptance bar for the decomposer: on the paper's scenarios —
per-dataset URI spaces linked by owl:sameAs (E6) and overlapping
single-vocabulary repositories (E7) — source selection, exclusive groups
and bound joins must reproduce the fan-out strategy's merged result set
exactly.  (The guarantee is scenario-scoped: with subjects *split* across
endpoints the decomposer's cross-endpoint joins find rows per-dataset
evaluation cannot; ``test_decompose.py`` asserts that capability gap
explicitly.)
"""

import pytest

from repro.alignment import AlignmentStore
from repro.coreference import SameAsService
from repro.datasets import build_resist_scenario
from repro.federation import (
    DatasetDescription,
    DatasetRegistry,
    LocalSparqlEndpoint,
    MediatorService,
)
from repro.rdf import Graph, Triple, URIRef

EX = "http://ex.org/"


def _multiset(result):
    return sorted(
        tuple((k, str(v)) for k, v in sorted(b.as_dict().items()))
        for b in result.merged_bindings
    )


@pytest.fixture(scope="module")
def scenario():
    return build_resist_scenario(
        n_persons=14,
        n_papers=30,
        n_projects=3,
        n_organizations=3,
        rkb_coverage=0.7,
        kisti_coverage=0.6,
        dbpedia_coverage=0.5,
        seed=11,
    )


def _subjects(scenario, count=4):
    by_papers = sorted(
        scenario.world.persons,
        key=lambda person: -len(scenario.world.papers_of(person.key)),
    )
    return [person.key for person in by_papers[:count]]


class TestE6Differential:
    """The co-author workload over RKB + KISTI + DBpedia."""

    def test_coauthor_query_is_result_identical(self, scenario):
        for person_key in _subjects(scenario):
            person_uri = scenario.akt_person_uri(person_key)
            query = f"""
            PREFIX akt:<http://www.aktors.org/ontology/portal#>
            SELECT DISTINCT ?a WHERE {{
              ?paper akt:has-author <{person_uri}> .
              ?paper akt:has-author ?a .
              FILTER (!(?a = <{person_uri}>))
            }}
            """
            kwargs = dict(
                source_ontology=scenario.source_ontology,
                source_dataset=scenario.rkb_dataset,
                mode="filter-aware",
            )
            fanout = scenario.service.federate(query, **kwargs)
            decomposed = scenario.service.federate(query, strategy="decompose", **kwargs)
            assert _multiset(decomposed) == _multiset(fanout), person_uri

    def test_filter_free_query_in_bgp_mode(self, scenario):
        query = """
        PREFIX akt:<http://www.aktors.org/ontology/portal#>
        SELECT DISTINCT ?paper ?a WHERE {
          ?paper akt:has-author ?a .
        }
        """
        kwargs = dict(
            source_ontology=scenario.source_ontology,
            source_dataset=scenario.rkb_dataset,
            mode="bgp",
        )
        fanout = scenario.service.federate(query, **kwargs)
        decomposed = scenario.service.federate(query, strategy="decompose", **kwargs)
        assert _multiset(decomposed) == _multiset(fanout)

    def test_multi_pattern_star_query(self, scenario):
        query = """
        PREFIX akt:<http://www.aktors.org/ontology/portal#>
        SELECT DISTINCT ?paper ?a ?t WHERE {
          ?paper akt:has-author ?a .
          ?paper akt:has-title ?t .
        }
        """
        kwargs = dict(
            source_ontology=scenario.source_ontology,
            source_dataset=scenario.rkb_dataset,
            mode="filter-aware",
        )
        fanout = scenario.service.federate(query, **kwargs)
        decomposed = scenario.service.federate(query, strategy="decompose", **kwargs)
        assert _multiset(decomposed) == _multiset(fanout)

    @pytest.mark.parametrize("batch", [1, 3, 32])
    def test_batch_size_never_changes_results(self, scenario, batch):
        person_uri = scenario.akt_person_uri(_subjects(scenario, 1)[0])
        query = f"""
        PREFIX akt:<http://www.aktors.org/ontology/portal#>
        SELECT DISTINCT ?a WHERE {{
          ?paper akt:has-author <{person_uri}> .
          ?paper akt:has-author ?a .
          FILTER (!(?a = <{person_uri}>))
        }}
        """
        kwargs = dict(
            source_ontology=scenario.source_ontology,
            source_dataset=scenario.rkb_dataset,
            mode="filter-aware",
        )
        fanout = scenario.service.federate(query, **kwargs)
        engine = scenario.service.federation
        previous = engine.bind_join_batch
        try:
            engine.bind_join_batch = batch
            decomposed = scenario.service.federate(query, strategy="decompose", **kwargs)
        finally:
            engine.bind_join_batch = previous
        assert _multiset(decomposed) == _multiset(fanout)


class TestE7Differential:
    """Overlapping single-vocabulary repositories (the E7 fan-out setup)."""

    @staticmethod
    def _service(n_endpoints=8):
        registry = DatasetRegistry()
        ontology = URIRef(EX + "ontology")
        for index in range(n_endpoints):
            graph = Graph()
            for item in range(5 * index, 5 * index + 10):
                graph.add(Triple(
                    URIRef(f"{EX}item-{item:03d}"),
                    URIRef(EX + "p"),
                    URIRef(f"{EX}value-{item:03d}"),
                ))
            uri = URIRef(f"{EX}dataset-{index}")
            registry.register_endpoint(
                DatasetDescription(
                    uri=uri,
                    endpoint_uri=URIRef(f"{EX}dataset-{index}/sparql"),
                    ontologies=(ontology,),
                ),
                LocalSparqlEndpoint(
                    URIRef(f"{EX}dataset-{index}/sparql"), graph,
                    name=f"endpoint-{index}",
                ),
            )
        return MediatorService(AlignmentStore(), registry, SameAsService())

    @pytest.mark.parametrize("n_endpoints", [1, 2, 4, 8])
    def test_single_pattern_query(self, n_endpoints):
        service = self._service(n_endpoints)
        query = "PREFIX ex: <http://ex.org/>\nSELECT ?s ?o WHERE { ?s ex:p ?o }"
        fanout = service.federate(query)
        decomposed = service.federate(query, strategy="decompose")
        assert _multiset(decomposed) == _multiset(fanout)

    def test_ordered_query(self):
        service = self._service(4)
        query = (
            "PREFIX ex: <http://ex.org/>\n"
            "SELECT ?s ?o WHERE { ?s ex:p ?o } ORDER BY ?s"
        )
        fanout = service.federate(query)
        decomposed = service.federate(query, strategy="decompose")
        assert _multiset(decomposed) == _multiset(fanout)
        # ORDER BY is applied globally by the decomposer.
        rendered = [str(b.get_term("s")) for b in decomposed.merged_bindings]
        assert rendered == sorted(rendered)

    def test_sequential_and_parallel_fanout_both_match(self):
        service = self._service(4)
        query = "PREFIX ex: <http://ex.org/>\nSELECT ?s ?o WHERE { ?s ex:p ?o }"
        sequential = service.federate(query, parallel=False)
        decomposed = service.federate(query, strategy="decompose")
        assert _multiset(decomposed) == _multiset(sequential)
