"""EXPLAIN ANALYZE across the federation layers, and the decomposer's
bound joins exercised over loopback HTTP.

Three concerns:

* ``LocalSparqlEndpoint.analyze`` — counted as traffic, same result as a
  plain query, event carries the batched executor's operator metrics;
* ``FederatedQueryEngine.analyze`` / ``MediatorService.analyze`` — the
  fan-out strategy summarises per-dataset traffic, the decompose strategy
  surfaces the vectorized mediator plan (units, bound joins, rows shipped);
* the decomposer over *remote* endpoints: registries of
  ``HttpSparqlEndpoint`` clients talking to loopback ``SparqlHttpServer``s
  must produce the same merged results as the same data served in-process —
  including the VALUES-driven bound-join requests the decomposer ships.
"""

from __future__ import annotations

import contextlib

import pytest

from repro.alignment import AlignmentStore
from repro.coreference import SameAsService
from repro.datasets import build_resist_scenario
from repro.federation import (
    DatasetDescription,
    DatasetRegistry,
    HttpSparqlEndpoint,
    LocalSparqlEndpoint,
    MediatorService,
)
from repro.rdf import Graph, Triple, URIRef
from repro.server import EndpointBackend, SparqlHttpServer
from repro.turtle import parse_graph

EX = "http://ex.org/"

DATA = """
@prefix ex: <http://example.org/> .
ex:a ex:knows ex:b .
ex:b ex:knows ex:c .
ex:a ex:name "Alice" .
"""

SELECT = "SELECT ?s ?o WHERE { ?s <http://example.org/knows> ?o }"


def _multiset(result):
    return sorted(
        tuple((k, str(v)) for k, v in sorted(b.as_dict().items()))
        for b in result.merged_bindings
    )


# --------------------------------------------------------------------------- #
# Endpoint layer
# --------------------------------------------------------------------------- #
class TestEndpointAnalyze:
    @pytest.fixture()
    def endpoint(self):
        return LocalSparqlEndpoint(URIRef(EX + "dataset"), parse_graph(DATA))

    def test_analyze_matches_select_and_counts_traffic(self, endpoint):
        plain = endpoint.select(SELECT)
        result, event = endpoint.analyze(SELECT)
        assert sorted(map(str, result.bindings)) == sorted(map(str, plain.bindings))
        assert endpoint.statistics.select_queries == 2
        assert event.rows == 2
        assert event.operators

    def test_analyze_ask_counts_as_ask_traffic(self, endpoint):
        result, event = endpoint.analyze(
            "ASK { <http://example.org/a> <http://example.org/knows> ?x }"
        )
        assert bool(result) is True
        assert endpoint.statistics.ask_queries == 1
        assert event.engine == "planner"

    def test_analyze_respects_failure_injection(self, endpoint):
        from repro.federation import EndpointUnavailable

        endpoint.fail_next(1)
        with pytest.raises(EndpointUnavailable):
            endpoint.analyze(SELECT)


# --------------------------------------------------------------------------- #
# Federation layer
# --------------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def scenario():
    return build_resist_scenario(n_persons=12, n_papers=24, seed=7)


@pytest.fixture(scope="module")
def coauthor_query(scenario):
    person_uri = scenario.akt_person_uri(scenario.world.most_prolific_author())
    return f"""
    PREFIX akt:<http://www.aktors.org/ontology/portal#>
    SELECT DISTINCT ?a WHERE {{
      ?paper akt:has-author <{person_uri}> .
      ?paper akt:has-author ?a .
      FILTER (!(?a = <{person_uri}>))
    }}
    """


class TestFederationAnalyze:
    def _analyze(self, scenario, query, strategy):
        return scenario.service.analyze(
            query,
            source_ontology=scenario.source_ontology,
            source_dataset=scenario.rkb_dataset,
            mode="filter-aware",
            strategy=strategy,
        )

    def test_fanout_event_summarises_per_dataset_traffic(self, scenario, coauthor_query):
        outcome, event = self._analyze(scenario, coauthor_query, "fanout")
        assert event.engine == "federate-fanout"
        assert len(event.endpoints) == len(outcome.per_dataset)
        assert event.rows_shipped == outcome.total_rows
        for entry in event.endpoints:
            assert entry["requests"] >= 1

    def test_decompose_event_carries_the_operator_plan(self, scenario, coauthor_query):
        outcome, event = self._analyze(scenario, coauthor_query, "decompose")
        assert event.engine == "decompose"
        assert "BindJoin" in event.plan
        assert "Unit" in event.plan
        assert event.rows_shipped == sum(e["rows_shipped"] for e in event.endpoints)
        assert outcome.run_event is event

    def test_analyze_result_matches_federate(self, scenario, coauthor_query):
        for strategy in ("fanout", "decompose"):
            outcome, _ = self._analyze(scenario, coauthor_query, strategy)
            plain = scenario.service.federate(
                coauthor_query,
                source_ontology=scenario.source_ontology,
                source_dataset=scenario.rkb_dataset,
                mode="filter-aware",
                strategy=strategy,
            )
            assert _multiset(outcome) == _multiset(plain)

    def test_render_is_human_readable(self, scenario, coauthor_query):
        _, event = self._analyze(scenario, coauthor_query, "decompose")
        text = event.render()
        assert "EXPLAIN ANALYZE" in text
        assert "endpoint " in text


# --------------------------------------------------------------------------- #
# Decomposition over loopback HTTP
# --------------------------------------------------------------------------- #
def _split_join_graphs(n_items=12):
    """Data split so the ?m join crosses endpoints: p-edges on one
    dataset, q-edges on the other — only a bound join can bridge them."""
    left, right = Graph(), Graph()
    for i in range(n_items):
        left.add(Triple(
            URIRef(f"{EX}s-{i:02d}"), URIRef(EX + "p"), URIRef(f"{EX}m-{i:02d}")
        ))
        right.add(Triple(
            URIRef(f"{EX}m-{i:02d}"), URIRef(EX + "q"), URIRef(f"{EX}o-{i:02d}")
        ))
    return left, right


JOIN_QUERY = (
    "PREFIX ex: <http://ex.org/>\n"
    "SELECT ?s ?m ?o WHERE { ?s ex:p ?m . ?m ex:q ?o }"
)


def _service_over(endpoints):
    registry = DatasetRegistry()
    ontology = URIRef(EX + "ontology")
    for index, endpoint in enumerate(endpoints):
        registry.register_endpoint(
            DatasetDescription(
                uri=URIRef(f"{EX}dataset-{index}"),
                endpoint_uri=endpoint.uri,
                ontologies=(ontology,),
            ),
            endpoint,
        )
    return MediatorService(AlignmentStore(), registry, SameAsService())


class TestDecomposeOverLoopbackHttp:
    @pytest.fixture()
    def graphs(self):
        return _split_join_graphs()

    @pytest.fixture()
    def http_endpoints(self, graphs):
        with contextlib.ExitStack() as stack:
            remotes = []
            for index, graph in enumerate(graphs):
                local = LocalSparqlEndpoint(
                    URIRef(f"{EX}dataset-{index}/sparql"), graph,
                    name=f"endpoint-{index}",
                )
                server = stack.enter_context(
                    SparqlHttpServer(EndpointBackend(local), cache_size=0)
                )
                remotes.append(HttpSparqlEndpoint(URIRef(server.query_url), timeout=10))
            yield remotes

    def test_cross_endpoint_join_matches_in_process(self, graphs, http_endpoints):
        in_process = _service_over([
            LocalSparqlEndpoint(URIRef(f"{EX}dataset-{index}/sparql"), graph)
            for index, graph in enumerate(graphs)
        ])
        over_http = _service_over(http_endpoints)
        expected = _multiset(in_process.federate(JOIN_QUERY, strategy="decompose"))
        got = _multiset(over_http.federate(JOIN_QUERY, strategy="decompose"))
        assert got == expected
        assert len(got) == 12

    @pytest.mark.parametrize("batch", [1, 4, 100])
    def test_values_batches_over_http_never_change_results(
        self, graphs, http_endpoints, batch
    ):
        # The bound join ships its left rows as VALUES blocks over HTTP;
        # the chunk size must never change the merged result set.
        service = _service_over(http_endpoints)
        service.federation.bind_join_batch = batch
        result = service.federate(JOIN_QUERY, strategy="decompose")
        assert len(_multiset(result)) == 12

    def test_analyze_reports_http_requests_shipped(self, http_endpoints):
        service = _service_over(http_endpoints)
        outcome, event = service.analyze(JOIN_QUERY, strategy="decompose")
        assert event.engine == "decompose"
        assert len(event.endpoints) == 2
        assert event.rows_shipped > 0
        assert _multiset(outcome)
