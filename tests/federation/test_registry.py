"""Unit tests for the dataset registry."""

import pytest

from repro.federation import (
    DatasetDescription,
    DatasetRegistry,
    LocalSparqlEndpoint,
    RegisteredDataset,
)
from repro.rdf import Graph, RDF, URIRef, VOID

KISTI_ONT = URIRef("http://www.kisti.re.kr/isrl/ResearchRefOntology#")
AKT_ONT = URIRef("http://www.aktors.org/ontology/portal#")


def make_dataset(name: str, ontology: URIRef) -> RegisteredDataset:
    description = DatasetDescription(
        uri=URIRef(f"http://{name}.org/void"),
        endpoint_uri=URIRef(f"http://{name}.org/sparql"),
        ontologies=(ontology,),
        uri_pattern=rf"http://{name}\.org/id/\S*",
        title=name,
    )
    endpoint = LocalSparqlEndpoint(description.endpoint_uri, Graph(), name=name)
    return RegisteredDataset(description, endpoint)


@pytest.fixture()
def registry() -> DatasetRegistry:
    registry = DatasetRegistry()
    registry.register(make_dataset("kisti", KISTI_ONT))
    registry.register(make_dataset("rkb", AKT_ONT))
    return registry


class TestRegistry:
    def test_membership_and_lookup(self, registry):
        uri = URIRef("http://kisti.org/void")
        assert uri in registry
        assert registry.get(uri).description.title == "kisti"

    def test_unknown_dataset_raises(self, registry):
        with pytest.raises(KeyError):
            registry.get(URIRef("http://unknown.org/void"))

    def test_iteration_sorted_by_uri(self, registry):
        uris = [str(d.uri) for d in registry]
        assert uris == sorted(uris)

    def test_register_endpoint_convenience(self):
        registry = DatasetRegistry()
        description = DatasetDescription(
            uri=URIRef("http://new.org/void"),
            endpoint_uri=URIRef("http://new.org/sparql"),
        )
        registered = registry.register_endpoint(
            description, LocalSparqlEndpoint(description.endpoint_uri, Graph())
        )
        assert registered.uri in registry
        assert len(registry) == 1

    def test_unregister(self, registry):
        registry.unregister(URIRef("http://kisti.org/void"))
        assert len(registry) == 1

    def test_using_ontology(self, registry):
        found = registry.using_ontology(KISTI_ONT)
        assert len(found) == 1
        assert found[0].description.title == "kisti"
        assert registry.using_ontology(URIRef("http://none.org/")) == []

    def test_void_graph_describes_every_dataset(self, registry):
        graph = registry.void_graph()
        datasets = list(graph.subjects(RDF.type, VOID.Dataset))
        assert len(datasets) == 2

    def test_replacing_registration(self, registry):
        replacement = make_dataset("kisti", AKT_ONT)
        registry.register(replacement)
        assert len(registry) == 2
        assert registry.get(URIRef("http://kisti.org/void")).ontologies == (AKT_ONT,)

    def test_accessors(self, registry):
        dataset = registry.get(URIRef("http://kisti.org/void"))
        assert dataset.uri_pattern == r"http://kisti\.org/id/\S*"
        assert dataset.ontologies == (KISTI_ONT,)


class TestEndpointHealth:
    """health() carries statistics while staying string-comparable."""

    def test_health_values_compare_as_state_strings(self, registry):
        report = registry.health()
        for value in report.values():
            assert value == "closed"
            assert str(value) == "closed"

    def test_health_exposes_endpoint_statistics(self, registry):
        uri = URIRef("http://kisti.org/void")
        endpoint = registry.get(uri).endpoint
        endpoint.select("SELECT ?s WHERE { ?s ?p ?o }")
        report = registry.health()
        assert report[uri].statistics is endpoint.statistics
        assert report[uri].statistics.select_queries == 1
        assert report[uri].consecutive_failures == 0

    def test_health_as_dict_is_json_ready(self, registry):
        import json

        uri = URIRef("http://kisti.org/void")
        payload = registry.health()[uri].as_dict()
        assert payload["state"] == "closed"
        assert payload["statistics"]["total_queries"] == 0
        json.dumps(payload)  # must be serialisable as-is

    def test_health_counts_breaker_failures(self, registry):
        uri = URIRef("http://kisti.org/void")
        breaker = registry.breaker_for(uri)
        breaker.record_failure()
        breaker.record_failure()
        report = registry.health()
        assert report[uri] == "closed"
        assert report[uri].consecutive_failures == 2

    def test_health_without_statistics_attribute(self):
        from repro.federation import SparqlEndpoint

        class Bare(SparqlEndpoint):
            uri = URIRef("http://bare.org/sparql")

        description = DatasetDescription(
            uri=URIRef("http://bare.org/void"),
            endpoint_uri=URIRef("http://bare.org/sparql"),
            ontologies=(AKT_ONT,),
        )
        registry = DatasetRegistry([RegisteredDataset(description, Bare())])
        report = registry.health()
        assert report[URIRef("http://bare.org/void")].statistics is None


class TestVoidRoundTrip:
    """Regression: the voiD KB must be a *consumable* export, not write-only.

    ``void_graph()`` (write) and ``load_void_graph()`` (read, via
    ``descriptions_from_graph``) must round-trip every description —
    including the vocabulary partitions that source selection depends on.
    """

    def test_descriptions_round_trip_through_void_graph(self, registry):
        graph = registry.void_graph()
        restored = DatasetRegistry()
        loaded = restored.load_void_graph(
            graph,
            endpoint_factory=lambda d: LocalSparqlEndpoint(d.endpoint_uri, Graph()),
        )
        assert len(loaded) == len(registry)
        for dataset in registry:
            assert restored.get(dataset.uri).description == dataset.description

    def test_round_trip_preserves_vocabulary_partitions(self):
        registry = DatasetRegistry()
        data = Graph()
        subject = URIRef("http://stats.org/id/x")
        data.add((subject, URIRef("http://stats.org/p"), URIRef("http://stats.org/o")))
        data.add((subject, RDF.type, URIRef("http://stats.org/Thing")))
        description = DatasetDescription(
            uri=URIRef("http://stats.org/void"),
            endpoint_uri=URIRef("http://stats.org/sparql"),
        )
        registry.register_endpoint(
            description, LocalSparqlEndpoint(description.endpoint_uri, data)
        )
        assert registry.refresh_statistics() == 1
        refreshed = registry.get(description.uri).description
        assert refreshed.advertises_vocabulary
        assert URIRef("http://stats.org/p") in refreshed.predicates()
        assert URIRef("http://stats.org/Thing") in refreshed.classes()
        assert refreshed.triple_count == 2

        restored = DatasetRegistry()
        restored.load_void_graph(
            registry.void_graph(),
            endpoint_factory=lambda d: LocalSparqlEndpoint(d.endpoint_uri, Graph()),
        )
        assert restored.get(description.uri).description == refreshed

    def test_refresh_statistics_tracks_mutations(self):
        registry = DatasetRegistry()
        data = Graph()
        description = DatasetDescription(
            uri=URIRef("http://stats.org/void"),
            endpoint_uri=URIRef("http://stats.org/sparql"),
        )
        endpoint = LocalSparqlEndpoint(description.endpoint_uri, data)
        registry.register_endpoint(description, endpoint)
        registry.refresh_statistics()
        assert not registry.get(description.uri).description.advertises_vocabulary
        endpoint.load([
            (URIRef("http://stats.org/id/x"), URIRef("http://stats.org/p"),
             URIRef("http://stats.org/o")),
        ])
        registry.refresh_statistics()
        assert URIRef("http://stats.org/p") in \
            registry.get(description.uri).description.predicates()

    def test_refresh_preserves_breaker_state(self):
        registry = DatasetRegistry()
        description = DatasetDescription(
            uri=URIRef("http://stats.org/void"),
            endpoint_uri=URIRef("http://stats.org/sparql"),
        )
        registry.register_endpoint(
            description, LocalSparqlEndpoint(description.endpoint_uri, Graph())
        )
        registry.breaker_for(description.uri).record_failure()
        registry.refresh_statistics()
        assert registry.breaker_for(description.uri).consecutive_failures == 1

    def test_default_factory_builds_http_clients(self, registry):
        from repro.federation import HttpSparqlEndpoint

        restored = DatasetRegistry()
        restored.load_void_graph(registry.void_graph())
        for dataset in restored:
            assert isinstance(dataset.endpoint, HttpSparqlEndpoint)
            assert dataset.endpoint.url == str(dataset.description.endpoint_uri)
