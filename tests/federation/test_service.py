"""Unit tests for the MediatorService facade (the REST/UI tier)."""

import pytest

from repro.rdf import MAP, RDF, VOID

from ..conftest import FIGURE_1_QUERY


class TestServiceOperations:
    def test_list_datasets(self, small_scenario):
        infos = small_scenario.service.list_datasets()
        assert len(infos) == 3
        uris = {info.uri for info in infos}
        assert str(small_scenario.kisti_dataset) in uris
        assert all(info.triple_count > 0 for info in infos)

    def test_translate_response_fields(self, small_scenario):
        response = small_scenario.service.translate(
            FIGURE_1_QUERY, small_scenario.kisti_dataset,
            source_ontology=small_scenario.source_ontology,
        )
        assert response.target_dataset == str(small_scenario.kisti_dataset)
        assert response.alignments_considered == 24
        assert response.triples_matched == 2
        assert response.triples_unmatched == 0
        assert "hasCreatorInfo" in response.translated_query
        assert "has-author" in response.source_query

    def test_translate_and_run(self, small_scenario):
        person = small_scenario.world.most_prolific_author()
        person_uri = small_scenario.akt_person_uri(person)
        query = f"""
        PREFIX akt:<http://www.aktors.org/ontology/portal#>
        SELECT DISTINCT ?a WHERE {{
          ?paper akt:has-author <{person_uri}> .
          ?paper akt:has-author ?a .
        }}
        """
        response = small_scenario.service.translate_and_run(
            query, small_scenario.kisti_dataset,
            source_ontology=small_scenario.source_ontology,
        )
        assert response.row_count == len(response.rows)
        if response.row_count:
            assert all("a" in row for row in response.rows)
            assert all("kisti.rkbexplorer.com" in row["a"] for row in response.rows)

    def test_translate_unknown_dataset_raises(self, small_scenario):
        from repro.rdf import URIRef

        with pytest.raises(KeyError):
            small_scenario.service.translate(FIGURE_1_QUERY, URIRef("http://unknown.org/void"))

    def test_alignment_kb_export(self, small_scenario):
        kb = small_scenario.service.alignment_kb()
        ontology_alignments = list(kb.subjects(RDF.type, MAP.OntologyAlignment))
        entity_alignments = list(kb.subjects(RDF.type, MAP.EntityAlignment))
        assert len(ontology_alignments) == 2
        assert len(entity_alignments) == 66

    def test_void_kb_export(self, small_scenario):
        kb = small_scenario.service.void_kb()
        datasets = list(kb.subjects(RDF.type, VOID.Dataset))
        assert len(datasets) == 3

    def test_federate_via_service(self, small_scenario):
        person = small_scenario.world.most_prolific_author()
        person_uri = small_scenario.akt_person_uri(person)
        query = f"""
        PREFIX akt:<http://www.aktors.org/ontology/portal#>
        SELECT DISTINCT ?a WHERE {{ ?paper akt:has-author <{person_uri}> .
                                    ?paper akt:has-author ?a . }}
        """
        result = small_scenario.service.federate(
            query,
            source_ontology=small_scenario.source_ontology,
            source_dataset=small_scenario.rkb_dataset,
        )
        assert len(result.per_dataset) == 3
