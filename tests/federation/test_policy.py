"""Unit tests for execution policies and circuit breakers."""

import pytest

from repro.federation import (
    CircuitBreaker,
    CircuitState,
    DatasetRegistry,
    ExecutionPolicy,
    LocalSparqlEndpoint,
)
from repro.federation.void import DatasetDescription
from repro.rdf import Graph, URIRef

EX = "http://ex.org/"


def _register(registry: DatasetRegistry, name: str) -> URIRef:
    dataset_uri = URIRef(EX + name)
    registry.register_endpoint(
        DatasetDescription(uri=dataset_uri, endpoint_uri=URIRef(EX + name + "/sparql")),
        LocalSparqlEndpoint(URIRef(EX + name + "/sparql"), Graph(), name=name),
    )
    return dataset_uri


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestExecutionPolicy:
    def test_defaults(self):
        policy = ExecutionPolicy()
        assert policy.timeout is None
        assert policy.max_retries == 0
        assert policy.max_attempts == 1

    def test_retry_delay_grows_exponentially(self):
        policy = ExecutionPolicy(backoff=0.1, backoff_factor=2.0)
        assert policy.retry_delay(0) == pytest.approx(0.1)
        assert policy.retry_delay(1) == pytest.approx(0.2)
        assert policy.retry_delay(2) == pytest.approx(0.4)

    def test_validation(self):
        with pytest.raises(ValueError):
            ExecutionPolicy(timeout=0)
        with pytest.raises(ValueError):
            ExecutionPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            ExecutionPolicy(backoff=-0.1)
        with pytest.raises(ValueError):
            ExecutionPolicy(backoff_factor=0.5)
        with pytest.raises(ValueError):
            ExecutionPolicy(failure_threshold=0)


class TestCircuitBreaker:
    def test_starts_closed_and_allows(self):
        breaker = CircuitBreaker()
        assert breaker.state == CircuitState.CLOSED
        assert breaker.allow()

    def test_stays_closed_below_threshold(self):
        breaker = CircuitBreaker(failure_threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CircuitState.CLOSED
        assert breaker.allow()

    def test_opens_at_threshold_and_refuses(self):
        breaker = CircuitBreaker(failure_threshold=2)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CircuitState.OPEN
        assert not breaker.allow()

    def test_success_resets_failure_count(self):
        breaker = CircuitBreaker(failure_threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CircuitState.CLOSED

    def test_half_open_after_reset_timeout(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=10.0, clock=clock)
        breaker.record_failure()
        assert breaker.state == CircuitState.OPEN
        clock.advance(9.9)
        assert not breaker.allow()
        clock.advance(0.2)
        assert breaker.state == CircuitState.HALF_OPEN

    def test_half_open_allows_single_probe(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=1.0, clock=clock)
        breaker.record_failure()
        clock.advance(2.0)
        assert breaker.allow()       # the probe
        assert not breaker.allow()   # no second request until the outcome

    def test_probe_success_closes(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=1.0, clock=clock)
        breaker.record_failure()
        clock.advance(2.0)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CircuitState.CLOSED
        assert breaker.allow()

    def test_probe_failure_reopens(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=3, reset_timeout=1.0, clock=clock)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(2.0)
        assert breaker.allow()
        breaker.record_failure()  # one failure re-opens from half-open
        assert breaker.state == CircuitState.OPEN
        assert not breaker.allow()

    def test_reset(self):
        breaker = CircuitBreaker(failure_threshold=1)
        breaker.record_failure()
        breaker.reset()
        assert breaker.state == CircuitState.CLOSED
        assert breaker.consecutive_failures == 0


class TestRegistryPolicies:
    def test_default_policy_applies_to_all(self):
        registry = DatasetRegistry(default_policy=ExecutionPolicy(max_retries=2))
        dataset = _register(registry, "a")
        assert registry.policy_for(dataset).max_retries == 2

    def test_per_dataset_policy_overrides_default(self):
        registry = DatasetRegistry()
        dataset = _register(registry, "a")
        other = _register(registry, "b")
        registry.set_policy(dataset, ExecutionPolicy(timeout=0.5))
        assert registry.policy_for(dataset).timeout == 0.5
        assert registry.policy_for(other).timeout is None

    def test_breaker_created_from_policy(self):
        registry = DatasetRegistry()
        dataset = _register(registry, "a")
        registry.set_policy(dataset, ExecutionPolicy(failure_threshold=2, reset_timeout=7.0))
        breaker = registry.breaker_for(dataset)
        assert breaker.failure_threshold == 2
        assert breaker.reset_timeout == 7.0
        # Stable identity until the policy changes.
        assert registry.breaker_for(dataset) is breaker

    def test_set_policy_rebuilds_breaker(self):
        registry = DatasetRegistry()
        dataset = _register(registry, "a")
        before = registry.breaker_for(dataset)
        registry.set_policy(dataset, ExecutionPolicy(failure_threshold=9))
        after = registry.breaker_for(dataset)
        assert after is not before
        assert after.failure_threshold == 9

    def test_health_reports_states(self):
        registry = DatasetRegistry()
        a = _register(registry, "a")
        b = _register(registry, "b")
        registry.set_policy(b, ExecutionPolicy(failure_threshold=1))
        registry.breaker_for(b).record_failure()
        health = registry.health()
        assert health[a] == CircuitState.CLOSED
        assert health[b] == CircuitState.OPEN

    def test_unregister_drops_policy_and_breaker(self):
        registry = DatasetRegistry()
        dataset = _register(registry, "a")
        registry.set_policy(dataset, ExecutionPolicy(failure_threshold=1))
        registry.breaker_for(dataset).record_failure()
        registry.unregister(dataset)
        _register(registry, "a")
        assert registry.policy_for(dataset).failure_threshold == ExecutionPolicy().failure_threshold
        assert registry.breaker_for(dataset).state == CircuitState.CLOSED

    def test_reset_breakers(self):
        registry = DatasetRegistry(default_policy=ExecutionPolicy(failure_threshold=1))
        dataset = _register(registry, "a")
        registry.breaker_for(dataset).record_failure()
        registry.reset_breakers()
        assert registry.health()[dataset] == CircuitState.CLOSED
