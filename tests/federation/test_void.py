"""Unit tests for voiD dataset descriptions."""

import pytest

from repro.federation import DatasetDescription, descriptions_from_graph, descriptions_to_graph
from repro.rdf import Graph, RDF, Triple, URIRef, VOID


def make_description(**overrides) -> DatasetDescription:
    defaults = dict(
        uri=URIRef("http://kisti.rkbexplorer.com/id/void"),
        endpoint_uri=URIRef("http://kisti.rkbexplorer.com/sparql/"),
        ontologies=(URIRef("http://www.kisti.re.kr/isrl/ResearchRefOntology#"),),
        uri_pattern=r"http://kisti\.rkbexplorer\.com/id/\S*",
        title="KISTI",
        triple_count=1234,
    )
    defaults.update(overrides)
    return DatasetDescription(**defaults)


class TestVoidEncoding:
    def test_to_triples_contains_core_properties(self):
        triples = make_description().to_triples()
        graph = Graph().add_all(triples)
        uri = URIRef("http://kisti.rkbexplorer.com/id/void")
        assert Triple(uri, RDF.type, VOID.Dataset) in graph
        assert graph.value(uri, VOID.sparqlEndpoint, None) is not None
        assert graph.value(uri, VOID.uriRegexPattern, None) is not None
        assert graph.value(uri, VOID.triples, None) is not None

    def test_roundtrip(self):
        original = make_description()
        graph = descriptions_to_graph([original])
        restored = descriptions_from_graph(graph)
        assert restored == [original]

    def test_roundtrip_without_optional_fields(self):
        original = make_description(uri_pattern=None, title=None, triple_count=None)
        restored = descriptions_from_graph(descriptions_to_graph([original]))
        assert restored == [original]

    def test_multiple_descriptions(self):
        first = make_description()
        second = make_description(uri=URIRef("http://dbpedia.org/void"),
                                  endpoint_uri=URIRef("http://dbpedia.org/sparql"),
                                  title="DBpedia")
        restored = descriptions_from_graph(descriptions_to_graph([first, second]))
        assert len(restored) == 2
        assert {d.uri for d in restored} == {first.uri, second.uri}

    def test_missing_endpoint_raises(self):
        graph = Graph()
        uri = URIRef("http://broken.org/void")
        graph.add(Triple(uri, RDF.type, VOID.Dataset))
        with pytest.raises(ValueError):
            DatasetDescription.from_graph(graph, uri)

    def test_ontologies_sorted_deterministically(self):
        description = make_description(ontologies=(
            URIRef("http://z.org/onto#"), URIRef("http://a.org/onto#"),
        ))
        restored = descriptions_from_graph(descriptions_to_graph([description]))
        assert list(restored[0].ontologies) == sorted(restored[0].ontologies, key=str)
