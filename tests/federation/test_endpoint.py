"""Unit tests for the local SPARQL endpoint abstraction."""

import pytest

from repro.federation import EndpointError, EndpointUnavailable, LocalSparqlEndpoint
from repro.rdf import Graph, Literal, RDF, Triple, URIRef
from repro.sparql import ResultSet

EX = "http://ex.org/"


def uri(name: str) -> URIRef:
    return URIRef(EX + name)


@pytest.fixture()
def endpoint() -> LocalSparqlEndpoint:
    graph = Graph()
    graph.namespace_manager.bind("ex", EX)
    graph.add(Triple(uri("alice"), RDF.type, uri("Person")))
    graph.add(Triple(uri("alice"), uri("name"), Literal("Alice")))
    graph.add(Triple(uri("bob"), RDF.type, uri("Person")))
    return LocalSparqlEndpoint(uri("sparql"), graph, name="test-endpoint")


PREFIX = "PREFIX ex: <http://ex.org/>\n"


class TestQueries:
    def test_select(self, endpoint):
        result = endpoint.select(PREFIX + "SELECT ?p WHERE { ?p a ex:Person }")
        assert isinstance(result, ResultSet)
        assert len(result) == 2

    def test_ask(self, endpoint):
        assert bool(endpoint.ask(PREFIX + 'ASK { ex:alice ex:name "Alice" }'))
        assert not bool(endpoint.ask(PREFIX + 'ASK { ex:alice ex:name "Zoe" }'))

    def test_construct(self, endpoint):
        graph = endpoint.construct(PREFIX + "CONSTRUCT { ?p ex:label ?n } WHERE { ?p ex:name ?n }")
        assert len(graph) == 1

    def test_wrong_result_type_raises(self, endpoint):
        with pytest.raises(EndpointError):
            endpoint.select(PREFIX + "ASK { ?s ?p ?o }")
        with pytest.raises(EndpointError):
            endpoint.ask(PREFIX + "SELECT ?s WHERE { ?s ?p ?o }")

    def test_statistics_track_queries(self, endpoint):
        endpoint.select(PREFIX + "SELECT ?s WHERE { ?s ?p ?o }")
        endpoint.select(PREFIX + "SELECT ?s WHERE { ?s ?p ?o }")
        endpoint.ask(PREFIX + "ASK { ?s ?p ?o }")
        assert endpoint.statistics.select_queries == 2
        assert endpoint.statistics.ask_queries == 1
        assert endpoint.statistics.total_queries == 3

    def test_unavailable_endpoint_raises(self, endpoint):
        endpoint.available = False
        with pytest.raises(EndpointUnavailable):
            endpoint.select(PREFIX + "SELECT ?s WHERE { ?s ?p ?o }")

    def test_triple_count_and_load(self, endpoint):
        assert endpoint.triple_count() == 3
        endpoint.load([Triple(uri("carol"), RDF.type, uri("Person"))])
        assert endpoint.triple_count() == 4

    def test_read_only_view(self, endpoint):
        view = endpoint.graph
        assert len(view) == endpoint.triple_count()
        assert not hasattr(view, "add")
