"""The abandoned-attempt gauge: timed-out daemon threads stay visible.

When a policy timeout fires, the attempt thread is abandoned but keeps
running (endpoints expose no cancellation).  The per-dataset
``repro_abandoned_attempts`` gauge counts exactly those threads: the
waiter increments it when it gives up, the thread decrements it when it
finally finishes — so the gauge drains back to zero and a non-zero value
always means live abandoned work.
"""

import time

import pytest

from repro.federation import (
    EndpointTimeout,
    LocalSparqlEndpoint,
    RegisteredDataset,
)
from repro.federation.federator import FederatedQueryEngine
from repro.federation.void import DatasetDescription
from repro.obs.metrics import abandoned_attempts_gauge
from repro.rdf import URIRef
from repro.sparql import parse_query
from repro.turtle import parse_graph

DATA = "@prefix ex: <http://example.org/> . ex:a ex:knows ex:b ."
QUERY = parse_query("SELECT ?s WHERE { ?s ?p ?o }")


def _dataset(uri: str, latency: float = 0.0) -> RegisteredDataset:
    dataset_uri = URIRef(uri)
    return RegisteredDataset(
        DatasetDescription(uri=dataset_uri, endpoint_uri=dataset_uri),
        LocalSparqlEndpoint(dataset_uri, parse_graph(DATA), latency=latency),
    )


def _drain(gauge, uri: str, deadline_seconds: float = 5.0) -> float:
    deadline = time.time() + deadline_seconds
    while gauge.value(dataset=uri) > 0 and time.time() < deadline:
        time.sleep(0.01)
    return gauge.value(dataset=uri)


class TestAbandonedAttemptGauge:
    def test_timeout_increments_then_thread_drains(self):
        # A unique dataset URI isolates this test's series in the
        # process-global registry.
        uri = "http://example.org/slow-gauge-drain"
        target = _dataset(uri, latency=0.4)
        gauge = abandoned_attempts_gauge()
        assert gauge.value(dataset=uri) == 0

        with pytest.raises(EndpointTimeout):
            FederatedQueryEngine._attempt(target, QUERY, timeout=0.05)
        # The waiter gave up; the daemon thread is still inside its 0.4s
        # simulated latency, so the abandoned attempt is visible NOW.
        assert gauge.value(dataset=uri) == 1

        # ...and once the thread finishes, it settles its own increment.
        assert _drain(gauge, uri) == 0

    def test_successful_attempt_never_touches_the_gauge(self):
        uri = "http://example.org/fast-gauge-untouched"
        target = _dataset(uri)
        gauge = abandoned_attempts_gauge()
        result = FederatedQueryEngine._attempt(target, QUERY, timeout=5.0)
        assert len(result) == 1
        assert gauge.value(dataset=uri) == 0

    def test_failing_attempt_within_budget_never_touches_the_gauge(self):
        uri = "http://example.org/flaky-gauge-untouched"
        target = _dataset(uri)
        target.endpoint.fail_next(1)
        gauge = abandoned_attempts_gauge()
        with pytest.raises(Exception, match="injected"):
            FederatedQueryEngine._attempt(target, QUERY, timeout=5.0)
        assert gauge.value(dataset=uri) == 0

    def test_gauge_surfaces_in_registry_health(self):
        from repro.federation import DatasetRegistry, ExecutionPolicy

        uri = "http://example.org/slow-gauge-health"
        target = _dataset(uri, latency=0.4)
        registry = DatasetRegistry(
            [target], default_policy=ExecutionPolicy(timeout=0.05)
        )
        gauge = abandoned_attempts_gauge()
        with pytest.raises(EndpointTimeout):
            FederatedQueryEngine._attempt(target, QUERY, timeout=0.05)
        health = registry.health()[URIRef(uri)]
        assert health.abandoned_attempts == 1
        assert health.as_dict()["abandoned_attempts"] == 1
        _drain(gauge, uri)
        assert registry.health()[URIRef(uri)].abandoned_attempts == 0
