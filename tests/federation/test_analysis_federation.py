"""Federation-level static analysis: pruning before any network traffic.

The decomposer runs the local analyzer first; a provably-empty query must
issue *zero* endpoint requests — no ASK source-selection probes and no
sub-query SELECTs.  Federation-only diagnostics (SQA201 zero-source
patterns, SQA202 fan-out fallback) and the ``FederatedQueryEngine.lint``
surface are covered here too.
"""

from repro.sparql.analysis import DIAGNOSTIC_CODES

from .test_decompose import EX, _opaque, build_federation, triple


def _service():
    service = build_federation({
        "a": [triple("s1", "p", "o1")],
        "b": [triple("s2", "q", "o2")],
    })
    # graph-less endpoints force ASK probes, so probe traffic is observable
    _opaque(service, "a")
    _opaque(service, "b")
    return service


class TestEmptyQueryShortCircuit:
    QUERY = f"SELECT ?s WHERE {{ ?s <{EX}p> ?o FILTER(1 = 2) }}"

    def test_zero_endpoint_requests_and_zero_probes(self):
        service = _service()
        outcome = service.federate(self.QUERY, strategy="decompose")
        assert len(outcome.merged()) == 0
        assert outcome.total_requests == 0
        plan = outcome.decomposition
        assert plan.probes == 0
        assert plan.empty_reason
        assert plan.units == []

    def test_diagnostics_ride_on_plan_and_result(self):
        outcome = _service().federate(self.QUERY, strategy="decompose")
        assert "SQA108" in {d.code for d in outcome.decomposition.diagnostics}
        assert "SQA108" in {d.code for d in outcome.diagnostics}


class TestFederationDiagnostics:
    def test_sqa201_pattern_with_no_source(self):
        service = _service()
        outcome = service.federate(
            f"SELECT ?s ?o WHERE {{ ?s <{EX}nosuch> ?o }}", strategy="decompose"
        )
        codes = {d.code for d in outcome.decomposition.diagnostics}
        assert "SQA201" in codes
        assert len(outcome.merged()) == 0

    def test_sqa202_fallback_shape(self):
        service = _service()
        engine = service.federation
        diagnostics = engine.lint(
            f"SELECT ?s WHERE {{ ?s <{EX}p> ?o OPTIONAL {{ ?s <{EX}q> ?x }} }}"
        )
        assert "SQA202" in {d.code for d in diagnostics}

    def test_federation_codes_have_fixed_severities(self):
        assert DIAGNOSTIC_CODES["SQA201"][0] == "warning"
        assert DIAGNOSTIC_CODES["SQA202"][0] == "info"


class TestLintSurface:
    def test_lint_reports_local_findings_without_traffic(self):
        service = _service()
        engine = service.federation
        before = sum(stats.total_queries for stats in self._stats(service))
        diagnostics = engine.lint(
            f"SELECT ?s WHERE {{ ?s <{EX}p> ?o FILTER(1 = 2) }}"
        )
        after = sum(stats.total_queries for stats in self._stats(service))
        assert "SQA108" in {d.code for d in diagnostics}
        assert after == before

    def test_lint_on_a_clean_query_reports_source_candidacy_only(self):
        service = _service()
        diagnostics = service.federation.lint(
            f"SELECT ?s ?o WHERE {{ ?s <{EX}p> ?o }}"
        )
        assert all(d.code != "SQA201" for d in diagnostics)

    @staticmethod
    def _stats(service):
        return [
            dataset.endpoint.statistics
            for dataset in service.registry
        ]
