"""Unit tests for federated execution and result merging."""

import pytest

from repro.federation import f1_score, precision, recall



class TestMetrics:
    def test_recall(self):
        assert recall({1, 2}, {1, 2, 3, 4}) == 0.5
        assert recall(set(), {1}) == 0.0
        assert recall({1}, set()) == 1.0

    def test_precision(self):
        assert precision({1, 2, 9}, {1, 2, 3}) == pytest.approx(2 / 3)
        assert precision(set(), {1}) == 1.0

    def test_f1(self):
        assert f1_score({1, 2}, {1, 2}) == 1.0
        assert f1_score(set(), set()) == 1.0
        assert f1_score({1}, {2}) == 0.0


class TestFederatedExecution:
    def coauthor_query(self, scenario, person_key):
        person_uri = scenario.akt_person_uri(person_key)
        return f"""
        PREFIX akt:<http://www.aktors.org/ontology/portal#>
        SELECT DISTINCT ?a WHERE {{
          ?paper akt:has-author <{person_uri}> .
          ?paper akt:has-author ?a .
          FILTER (!(?a = <{person_uri}>))
        }}
        """

    def test_every_dataset_queried(self, small_scenario):
        person = small_scenario.world.most_prolific_author()
        result = small_scenario.service.federate(
            self.coauthor_query(small_scenario, person),
            source_ontology=small_scenario.source_ontology,
            source_dataset=small_scenario.rkb_dataset,
        )
        assert len(result.per_dataset) == 3
        assert not result.failed_datasets()

    def test_restricting_datasets(self, small_scenario):
        person = small_scenario.world.most_prolific_author()
        result = small_scenario.service.federate(
            self.coauthor_query(small_scenario, person),
            source_ontology=small_scenario.source_ontology,
            source_dataset=small_scenario.rkb_dataset,
            datasets=[small_scenario.rkb_dataset, small_scenario.kisti_dataset],
        )
        assert len(result.per_dataset) == 2

    def test_source_dataset_receives_unrewritten_query(self, small_scenario):
        person = small_scenario.world.most_prolific_author()
        result = small_scenario.service.federate(
            self.coauthor_query(small_scenario, person),
            source_ontology=small_scenario.source_ontology,
            source_dataset=small_scenario.rkb_dataset,
        )
        rkb_entry = next(e for e in result.per_dataset
                         if e.dataset_uri == small_scenario.rkb_dataset)
        assert rkb_entry.mediation is None
        kisti_entry = next(e for e in result.per_dataset
                           if e.dataset_uri == small_scenario.kisti_dataset)
        assert kisti_entry.mediation is not None

    def test_merged_results_are_canonicalised_and_deduplicated(self, small_scenario):
        person = small_scenario.world.most_prolific_author()
        result = small_scenario.service.federate(
            self.coauthor_query(small_scenario, person),
            source_ontology=small_scenario.source_ontology,
            source_dataset=small_scenario.rkb_dataset,
            mode="filter-aware",
        )
        merged_values = result.distinct_values("a")
        # Every merged URI is in the RKB URI space (the canonical space).
        assert all("southampton" in str(value) for value in merged_values)
        # Merged row count never exceeds the raw total.
        assert len(result.merged()) <= result.total_rows

    def test_federation_raises_recall_over_single_source(self, small_scenario):
        person = small_scenario.world.most_prolific_author()
        query = self.coauthor_query(small_scenario, person)
        gold = small_scenario.gold_coauthor_uris(person)

        local = small_scenario.endpoint(small_scenario.rkb_dataset).select(query)
        federated = small_scenario.service.federate(
            query,
            source_ontology=small_scenario.source_ontology,
            source_dataset=small_scenario.rkb_dataset,
            mode="filter-aware",
        )
        local_recall = recall(local.distinct_values("a"), gold)
        federated_recall = recall(federated.distinct_values("a"), gold)
        assert federated_recall >= local_recall
        assert federated_recall > 0.5

    def test_unavailable_endpoint_reported_not_fatal(self, small_scenario):
        person = small_scenario.world.most_prolific_author()
        endpoint = small_scenario.endpoint(small_scenario.dbpedia_dataset)
        endpoint.available = False
        try:
            result = small_scenario.service.federate(
                self.coauthor_query(small_scenario, person),
                source_ontology=small_scenario.source_ontology,
                source_dataset=small_scenario.rkb_dataset,
            )
            assert small_scenario.dbpedia_dataset in result.failed_datasets()
            assert len(result.successful_datasets()) == 2
            assert result.merged_bindings  # the others still contribute
        finally:
            endpoint.available = True

    def test_result_variables_follow_projection(self, small_scenario):
        person = small_scenario.world.most_prolific_author()
        result = small_scenario.service.federate(
            self.coauthor_query(small_scenario, person),
            source_ontology=small_scenario.source_ontology,
            source_dataset=small_scenario.rkb_dataset,
        )
        assert [v.name for v in result.variables] == ["a"]
