"""Unit tests for the command-line interface."""

import pytest

from repro.alignment import ontology_alignment_to_graph
from repro.cli import main_federate, main_query, main_rewrite
from repro.datasets import KISTI_DATASET_URI, KISTI_URI_PATTERN, akt_to_kisti_alignment
from repro.turtle import serialize_turtle

from .conftest import FIGURE_1_QUERY


@pytest.fixture()
def query_file(tmp_path):
    path = tmp_path / "query.rq"
    path.write_text(FIGURE_1_QUERY, encoding="utf-8")
    return path


@pytest.fixture()
def alignment_file(tmp_path):
    graph = ontology_alignment_to_graph(akt_to_kisti_alignment())
    path = tmp_path / "alignments.ttl"
    path.write_text(serialize_turtle(graph), encoding="utf-8")
    return path


@pytest.fixture()
def sameas_file(tmp_path, sameas_service):
    path = tmp_path / "sameas.ttl"
    path.write_text(serialize_turtle(sameas_service.to_graph()), encoding="utf-8")
    return path


class TestRewriteCommand:
    def test_rewrite_outputs_translated_query(self, capsys, query_file, alignment_file, sameas_file):
        exit_code = main_rewrite([
            str(query_file), str(alignment_file),
            "--target", str(KISTI_DATASET_URI),
            "--source-ontology", "http://www.aktors.org/ontology/portal#",
            "--sameas", str(sameas_file),
            "--uri-pattern", KISTI_URI_PATTERN,
        ])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "hasCreatorInfo" in captured.out
        assert "alignments considered: 24" in captured.err

    def test_rewrite_filter_aware_mode(self, capsys, query_file, alignment_file, sameas_file):
        exit_code = main_rewrite([
            str(query_file), str(alignment_file),
            "--target", str(KISTI_DATASET_URI),
            "--sameas", str(sameas_file),
            "--uri-pattern", KISTI_URI_PATTERN,
            "--mode", "filter-aware",
        ])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "PER_00000000000105047" in captured.out

    def test_rewrite_warns_on_empty_alignment_kb(self, capsys, query_file, tmp_path):
        empty = tmp_path / "empty.ttl"
        empty.write_text("", encoding="utf-8")
        exit_code = main_rewrite([
            str(query_file), str(empty),
            "--target", str(KISTI_DATASET_URI),
        ])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "no ontology alignments" in captured.err


class TestQueryCommand:
    def test_query_against_turtle_file(self, capsys, tmp_path):
        data = tmp_path / "data.ttl"
        data.write_text("""
            @prefix akt: <http://www.aktors.org/ontology/portal#> .
            @prefix id: <http://southampton.rkbexplorer.com/id/> .
            id:paper-1 akt:has-author id:person-02686 , id:person-2 .
        """, encoding="utf-8")
        query = tmp_path / "query.rq"
        query.write_text(FIGURE_1_QUERY, encoding="utf-8")
        exit_code = main_query([str(query), str(data)])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "person-2" in captured.out
        assert "1 rows" in captured.err

    def test_query_explain_prints_plan(self, capsys, tmp_path):
        data = tmp_path / "data.ttl"
        data.write_text("""
            @prefix akt: <http://www.aktors.org/ontology/portal#> .
            @prefix id: <http://southampton.rkbexplorer.com/id/> .
            id:paper-1 akt:has-author id:person-02686 , id:person-2 .
        """, encoding="utf-8")
        query = tmp_path / "query.rq"
        query.write_text(FIGURE_1_QUERY, encoding="utf-8")
        exit_code = main_query([str(query), str(data), "--explain"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert captured.out.startswith("plan for SELECT query")
        assert "scan (" in captured.out

    def test_query_naive_engine_matches_planner(self, capsys, tmp_path):
        data = tmp_path / "data.ttl"
        data.write_text("""
            @prefix akt: <http://www.aktors.org/ontology/portal#> .
            @prefix id: <http://southampton.rkbexplorer.com/id/> .
            id:paper-1 akt:has-author id:person-02686 , id:person-2 .
        """, encoding="utf-8")
        query = tmp_path / "query.rq"
        query.write_text(FIGURE_1_QUERY, encoding="utf-8")
        assert main_query([str(query), str(data), "--engine", "naive"]) == 0
        naive_out = capsys.readouterr().out
        assert main_query([str(query), str(data), "--engine", "planner"]) == 0
        planner_out = capsys.readouterr().out
        assert naive_out == planner_out


class TestFederateCommand:
    def test_demo_run(self, capsys):
        exit_code = main_federate(["--persons", "15", "--papers", "30", "--seed", "3"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "Federated co-authors" in captured.out
        assert "recall" in captured.out

    def test_demo_run_reports_endpoint_statistics(self, capsys):
        exit_code = main_federate(["--persons", "15", "--papers", "30", "--seed", "3"])
        captured = capsys.readouterr()
        assert exit_code == 0
        # Per-endpoint EndpointStatistics surfaced uniformly via health().
        assert "served" in captured.out
        assert "queries" in captured.out

    def test_format_json_puts_results_on_stdout_and_summary_on_stderr(self, capsys):
        import json

        exit_code = main_federate([
            "--persons", "15", "--papers", "30", "--seed", "3",
            "--format", "json",
        ])
        captured = capsys.readouterr()
        assert exit_code == 0
        payload = json.loads(captured.out)
        assert payload["head"]["vars"] == ["a"]
        assert payload["results"]["bindings"]
        assert "Federated co-authors" in captured.err

    def test_format_csv_is_parseable(self, capsys):
        from repro.sparql import parse_results

        exit_code = main_federate([
            "--persons", "15", "--papers", "30", "--seed", "3",
            "--format", "csv",
        ])
        captured = capsys.readouterr()
        assert exit_code == 0
        result = parse_results(captured.out, "csv")
        assert result.variables and len(result) > 0


class TestQueryOutputFormats:
    @pytest.fixture()
    def data_and_query(self, tmp_path):
        data = tmp_path / "data.ttl"
        data.write_text("""
            @prefix akt: <http://www.aktors.org/ontology/portal#> .
            @prefix id: <http://southampton.rkbexplorer.com/id/> .
            id:paper-1 akt:has-author id:person-02686 , id:person-2 .
        """, encoding="utf-8")
        query = tmp_path / "query.rq"
        query.write_text(FIGURE_1_QUERY, encoding="utf-8")
        return data, query

    @pytest.mark.parametrize("format_name", ["json", "xml", "csv", "tsv"])
    def test_query_formats_parse_back(self, capsys, data_and_query, format_name):
        from repro.sparql import parse_results

        data, query = data_and_query
        exit_code = main_query([str(query), str(data), "--format", format_name])
        captured = capsys.readouterr()
        assert exit_code == 0
        result = parse_results(captured.out, format_name)
        assert len(result) == 1
        assert result.variables[0].name == "a"

    def test_query_table_is_default(self, capsys, data_and_query):
        data, query = data_and_query
        assert main_query([str(query), str(data)]) == 0
        assert "?a" in capsys.readouterr().out

    def test_ask_rejects_csv(self, capsys, data_and_query, tmp_path):
        data, _ = data_and_query
        ask = tmp_path / "ask.rq"
        ask.write_text(
            "PREFIX akt:<http://www.aktors.org/ontology/portal#> "
            "ASK { ?p akt:has-author ?a }", encoding="utf-8")
        assert main_query([str(ask), str(data), "--format", "csv"]) == 2
        assert "json or xml" in capsys.readouterr().err

    def test_data_format_flag(self, capsys, tmp_path):
        data = tmp_path / "data.rdf"
        data.write_text(
            "<http://x.org/paper-1> <http://www.aktors.org/ontology/portal#has-author> "
            "<http://southampton.rkbexplorer.com/id/person-02686> .\n", encoding="utf-8")
        query = tmp_path / "query.rq"
        query.write_text(FIGURE_1_QUERY, encoding="utf-8")
        assert main_query([str(query), str(data), "--data-format", "ntriples"]) == 0


class TestServeCommand:
    def test_rejects_neither_data_nor_scenario(self, capsys):
        from repro.cli import main_serve

        assert main_serve([]) == 2
        assert "exactly one" in capsys.readouterr().err

    def test_rejects_both_data_and_scenario(self, capsys, tmp_path):
        from repro.cli import main_serve

        data = tmp_path / "data.ttl"
        data.write_text("", encoding="utf-8")
        assert main_serve([str(data), "--scenario"]) == 2

    def test_serves_an_rdf_file_over_http(self, tmp_path):
        import json
        import os
        import subprocess
        import sys as _sys
        import urllib.parse
        import urllib.request
        from pathlib import Path

        data = tmp_path / "data.ttl"
        data.write_text("""
            @prefix ex: <http://example.org/> .
            ex:a ex:knows ex:b .
        """, encoding="utf-8")
        source_dir = Path(__file__).resolve().parent.parent / "src"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(source_dir) + os.pathsep + env.get("PYTHONPATH", "")
        process = subprocess.Popen(
            [_sys.executable, "-m", "repro.serve_main", str(data), "--port", "0"],
            stdout=subprocess.PIPE, stderr=subprocess.DEVNULL, text=True, env=env,
        )
        try:
            endpoint_line = process.stdout.readline().strip()
            assert endpoint_line.startswith("SPARQL endpoint: http://")
            url = endpoint_line.split(": ", 1)[1]
            query = "SELECT ?s WHERE { ?s <http://example.org/knows> ?o }"
            with urllib.request.urlopen(
                url + "?" + urllib.parse.urlencode({"query": query}), timeout=10
            ) as response:
                payload = json.loads(response.read())
            assert payload["results"]["bindings"] == [
                {"s": {"type": "uri", "value": "http://example.org/a"}}
            ]
        finally:
            process.terminate()
            process.wait(timeout=10)

    def test_unknown_scenario_dataset_is_a_friendly_error(self, capsys):
        from repro.cli import main_serve

        code = main_serve([
            "--scenario", "--dataset", "http://typo.example/void",
            "--persons", "8", "--papers", "12",
        ])
        assert code == 2
        assert "unknown dataset" in capsys.readouterr().err


class TestLintCommand:
    DATA = '<http://e/s> <http://e/p> "v" .\n'

    def _write(self, tmp_path, name, text):
        path = tmp_path / name
        path.write_text(text)
        return path

    def test_clean_query_exits_zero(self, capsys, tmp_path):
        from repro.cli import main_lint

        query = self._write(tmp_path, "q.rq", "SELECT ?s ?o WHERE { ?s <http://e/p> ?o }")
        assert main_lint([str(query)]) == 0
        assert capsys.readouterr().out.strip() == ""

    def test_error_diagnostics_exit_nonzero_and_render(self, capsys, tmp_path):
        from repro.cli import main_lint

        query = self._write(tmp_path, "bad.rq", "SELECT ?nope WHERE { ?s ?p ?o }")
        assert main_lint([str(query)]) == 1
        out = capsys.readouterr().out
        assert f"{query}:1:8: error[SQA101]" in out

    def test_warnings_pass_unless_strict(self, capsys, tmp_path):
        from repro.cli import main_lint

        query = self._write(
            tmp_path, "warn.rq", "SELECT ?s WHERE { ?s ?p ?o FILTER(1 = 2) }"
        )
        assert main_lint([str(query)]) == 0
        assert "warning[SQA108]" in capsys.readouterr().out
        assert main_lint([str(query), "--strict"]) == 1

    def test_json_format_is_machine_readable(self, capsys, tmp_path):
        import json

        from repro.cli import main_lint

        query = self._write(tmp_path, "bad.rq", "SELECT ?nope WHERE { ?s ?p ?o }")
        assert main_lint([str(query), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        [entry] = payload
        assert entry["file"] == str(query)
        assert any(d["code"] == "SQA101" for d in entry["diagnostics"])

    def test_parse_failure_is_a_finding_not_a_crash(self, capsys, tmp_path):
        from repro.cli import main_lint

        query = self._write(tmp_path, "broken.rq", "SELECT WHERE {")
        assert main_lint([str(query)]) == 1
        assert "error[PARSE]" in capsys.readouterr().out

    def test_multiple_files_aggregate(self, capsys, tmp_path):
        from repro.cli import main_lint

        good = self._write(tmp_path, "good.rq", "SELECT ?s ?o WHERE { ?s <http://e/p> ?o }")
        bad = self._write(tmp_path, "bad.rq", "SELECT ?nope WHERE { ?s ?p ?o }")
        assert main_lint([str(good), str(bad)]) == 1
        out = capsys.readouterr().out
        assert str(bad) in out and str(good) not in out


class TestQueryLintFlags:
    def test_query_lint_flag_reports_without_executing(self, capsys, tmp_path):
        from repro.cli import main_query

        query = tmp_path / "q.rq"
        query.write_text("SELECT ?nope WHERE { ?s ?p ?o }")
        data = tmp_path / "d.nt"
        data.write_text('<http://e/s> <http://e/p> "v" .\n')
        assert main_query([str(query), str(data), "--lint"]) == 1
        assert "error[SQA101]" in capsys.readouterr().out

    def test_query_strict_flag_rejects(self, capsys, tmp_path):
        from repro.cli import main_query

        query = tmp_path / "q.rq"
        query.write_text("SELECT ?nope WHERE { ?s ?p ?o }")
        data = tmp_path / "d.nt"
        data.write_text('<http://e/s> <http://e/p> "v" .\n')
        assert main_query([str(query), str(data), "--strict"]) == 1
        assert "SQA101" in capsys.readouterr().err

    def test_federate_lint_flag(self, capsys):
        from repro.cli import main_federate

        code = main_federate(["--lint", "--persons", "8", "--papers", "12"])
        assert code == 0


class TestStoreCommand:
    DATA = """
        @prefix ex: <http://example.org/> .
        ex:a ex:knows ex:b .
        ex:b ex:knows ex:c .
        ex:a a ex:Person .
    """

    def _build(self, tmp_path, capsys):
        from repro.cli import main_store

        data = tmp_path / "data.ttl"
        data.write_text(self.DATA, encoding="utf-8")
        store_dir = tmp_path / "store"
        assert main_store(["build", str(store_dir), str(data),
                           "--buffer-limit", "2"]) == 0
        capsys.readouterr()
        return store_dir

    def test_build_stats_compact_round_trip(self, capsys, tmp_path):
        from repro.cli import main_store

        store_dir = self._build(tmp_path, capsys)
        assert main_store(["stats", str(store_dir)]) == 0
        out = capsys.readouterr().out
        assert "triples:    3" in out
        assert "http://example.org/knows: 2" in out
        assert "class http://example.org/Person: 1" in out

        assert main_store(["compact", str(store_dir)]) == 0
        assert "segment" in capsys.readouterr().out
        # Compacting a compacted store is a reported no-op.
        assert main_store(["compact", str(store_dir)]) == 0
        assert "already compact" in capsys.readouterr().out

    def test_build_extends_an_existing_store(self, capsys, tmp_path):
        from repro.cli import main_store

        store_dir = self._build(tmp_path, capsys)
        more = tmp_path / "more.ttl"
        more.write_text("@prefix ex: <http://example.org/> . ex:c ex:knows ex:a .",
                        encoding="utf-8")
        assert main_store(["build", str(store_dir), str(more)]) == 0
        assert "+1 new" in capsys.readouterr().out

        from repro.rdf import open_graph

        graph = open_graph(store_dir)
        assert len(graph) == 4
        graph.close()

    def test_serve_rejects_missing_store_directory(self, capsys, tmp_path):
        from repro.cli import main_serve

        assert main_serve(["--store", str(tmp_path / "nope")]) == 2
        assert "MANIFEST.json" in capsys.readouterr().err

    def test_serve_rejects_store_plus_data(self, capsys, tmp_path):
        from repro.cli import main_serve

        data = tmp_path / "data.ttl"
        data.write_text("", encoding="utf-8")
        assert main_serve([str(data), "--store", str(tmp_path)]) == 2
        assert "exactly one" in capsys.readouterr().err

    def test_serves_a_store_directory_over_http(self, capsys, tmp_path):
        import json
        import os
        import subprocess
        import sys as _sys
        import urllib.parse
        import urllib.request
        from pathlib import Path

        store_dir = self._build(tmp_path, capsys)
        source_dir = Path(__file__).resolve().parent.parent / "src"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(source_dir) + os.pathsep + env.get("PYTHONPATH", "")
        process = subprocess.Popen(
            [_sys.executable, "-m", "repro.serve_main",
             "--store", str(store_dir), "--port", "0"],
            stdout=subprocess.PIPE, stderr=subprocess.DEVNULL, text=True, env=env,
        )
        try:
            endpoint_line = process.stdout.readline().strip()
            assert endpoint_line.startswith("SPARQL endpoint: http://")
            url = endpoint_line.split(": ", 1)[1]
            query = "SELECT ?s WHERE { ?s <http://example.org/knows> ?o }"
            with urllib.request.urlopen(
                url + "?" + urllib.parse.urlencode({"query": query}), timeout=10
            ) as response:
                payload = json.loads(response.read())
            got = sorted(row["s"]["value"] for row in payload["results"]["bindings"])
            assert got == ["http://example.org/a", "http://example.org/b"]
        finally:
            process.terminate()
            process.wait(timeout=10)
