"""Unit tests for the command-line interface."""

import pytest

from repro.alignment import AlignmentStore, ontology_alignment_to_graph
from repro.cli import main_federate, main_query, main_rewrite
from repro.datasets import (
    KISTI_DATASET_URI,
    KISTI_URI_PATTERN,
    akt_to_kisti_alignment,
    build_resist_scenario,
)
from repro.turtle import serialize_turtle

from .conftest import FIGURE_1_QUERY


@pytest.fixture()
def query_file(tmp_path):
    path = tmp_path / "query.rq"
    path.write_text(FIGURE_1_QUERY, encoding="utf-8")
    return path


@pytest.fixture()
def alignment_file(tmp_path):
    graph = ontology_alignment_to_graph(akt_to_kisti_alignment())
    path = tmp_path / "alignments.ttl"
    path.write_text(serialize_turtle(graph), encoding="utf-8")
    return path


@pytest.fixture()
def sameas_file(tmp_path, sameas_service):
    path = tmp_path / "sameas.ttl"
    path.write_text(serialize_turtle(sameas_service.to_graph()), encoding="utf-8")
    return path


class TestRewriteCommand:
    def test_rewrite_outputs_translated_query(self, capsys, query_file, alignment_file, sameas_file):
        exit_code = main_rewrite([
            str(query_file), str(alignment_file),
            "--target", str(KISTI_DATASET_URI),
            "--source-ontology", "http://www.aktors.org/ontology/portal#",
            "--sameas", str(sameas_file),
            "--uri-pattern", KISTI_URI_PATTERN,
        ])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "hasCreatorInfo" in captured.out
        assert "alignments considered: 24" in captured.err

    def test_rewrite_filter_aware_mode(self, capsys, query_file, alignment_file, sameas_file):
        exit_code = main_rewrite([
            str(query_file), str(alignment_file),
            "--target", str(KISTI_DATASET_URI),
            "--sameas", str(sameas_file),
            "--uri-pattern", KISTI_URI_PATTERN,
            "--mode", "filter-aware",
        ])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "PER_00000000000105047" in captured.out

    def test_rewrite_warns_on_empty_alignment_kb(self, capsys, query_file, tmp_path):
        empty = tmp_path / "empty.ttl"
        empty.write_text("", encoding="utf-8")
        exit_code = main_rewrite([
            str(query_file), str(empty),
            "--target", str(KISTI_DATASET_URI),
        ])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "no ontology alignments" in captured.err


class TestQueryCommand:
    def test_query_against_turtle_file(self, capsys, tmp_path):
        data = tmp_path / "data.ttl"
        data.write_text("""
            @prefix akt: <http://www.aktors.org/ontology/portal#> .
            @prefix id: <http://southampton.rkbexplorer.com/id/> .
            id:paper-1 akt:has-author id:person-02686 , id:person-2 .
        """, encoding="utf-8")
        query = tmp_path / "query.rq"
        query.write_text(FIGURE_1_QUERY, encoding="utf-8")
        exit_code = main_query([str(query), str(data)])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "person-2" in captured.out
        assert "1 rows" in captured.err

    def test_query_explain_prints_plan(self, capsys, tmp_path):
        data = tmp_path / "data.ttl"
        data.write_text("""
            @prefix akt: <http://www.aktors.org/ontology/portal#> .
            @prefix id: <http://southampton.rkbexplorer.com/id/> .
            id:paper-1 akt:has-author id:person-02686 , id:person-2 .
        """, encoding="utf-8")
        query = tmp_path / "query.rq"
        query.write_text(FIGURE_1_QUERY, encoding="utf-8")
        exit_code = main_query([str(query), str(data), "--explain"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert captured.out.startswith("plan for SELECT query")
        assert "scan (" in captured.out

    def test_query_naive_engine_matches_planner(self, capsys, tmp_path):
        data = tmp_path / "data.ttl"
        data.write_text("""
            @prefix akt: <http://www.aktors.org/ontology/portal#> .
            @prefix id: <http://southampton.rkbexplorer.com/id/> .
            id:paper-1 akt:has-author id:person-02686 , id:person-2 .
        """, encoding="utf-8")
        query = tmp_path / "query.rq"
        query.write_text(FIGURE_1_QUERY, encoding="utf-8")
        assert main_query([str(query), str(data), "--engine", "naive"]) == 0
        naive_out = capsys.readouterr().out
        assert main_query([str(query), str(data), "--engine", "planner"]) == 0
        planner_out = capsys.readouterr().out
        assert naive_out == planner_out


class TestFederateCommand:
    def test_demo_run(self, capsys):
        exit_code = main_federate(["--persons", "15", "--papers", "30", "--seed", "3"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "Federated co-authors" in captured.out
        assert "recall" in captured.out
