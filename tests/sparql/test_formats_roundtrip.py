"""Property test: random result sets survive the wire formats.

The satellite requirement of the network subsystem: a random
:class:`ResultSet` written as SPARQL results JSON/XML/TSV and parsed back
is the *same multiset of bindings* (those formats are lossless); CSV —
lossy by W3C specification — must at least be value-faithful (writing the
parse reproduces the document byte-for-byte).
"""

from hypothesis import given, settings, strategies as st

from repro.rdf import BNode, Literal, URIRef, Variable, XSD
from repro.sparql import Binding, ResultSet
from repro.sparql.formats import parse_results, write_results

# ---------------------------------------------------------------------- #
# Term strategies
# ---------------------------------------------------------------------- #
_LOCAL = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyzABCDEF0123456789", min_size=1, max_size=8
)

uris = st.builds(lambda local: URIRef(f"http://example.org/{local}"), _LOCAL)
bnodes = st.builds(BNode, _LOCAL)

# Lexical forms: printable unicode plus the characters the escapers must
# handle (quotes, commas, tabs, newlines, backslashes).  Control characters
# other than \t/\n/\r are excluded — XML 1.0 cannot carry them at all.
_lexical = st.text(
    alphabet=st.one_of(
        st.characters(blacklist_categories=("Cs", "Cc")),
        st.sampled_from(['"', ",", "\t", "\n", "\r", "\\", "|", "<", ">", "&"]),
    ),
    max_size=20,
)

plain_literals = st.builds(Literal, _lexical)
lang_literals = st.builds(
    lambda lex, lang: Literal(lex, lang=lang),
    _lexical,
    st.sampled_from(["en", "fr", "de-at", "ja"]),
)
typed_literals = st.one_of(
    st.builds(Literal, st.integers(min_value=-10**6, max_value=10**6)),
    st.builds(lambda lex: Literal(lex, datatype=XSD.token), _lexical),
    st.builds(Literal, st.booleans()),
)

terms = st.one_of(uris, bnodes, plain_literals, lang_literals, typed_literals)


@st.composite
def result_sets(draw) -> ResultSet:
    names = draw(
        st.lists(
            st.sampled_from(["a", "b", "c", "d", "e"]),
            min_size=1, max_size=4, unique=True,
        )
    )
    variables = [Variable(name) for name in names]
    rows = draw(
        st.lists(
            st.lists(st.one_of(st.none(), terms), min_size=len(names), max_size=len(names)),
            max_size=8,
        )
    )
    bindings = [
        Binding({
            variable: term
            for variable, term in zip(variables, row, strict=True)
            if term is not None
        })
        for row in rows
    ]
    return ResultSet(variables, bindings)


# ---------------------------------------------------------------------- #
# Properties
# ---------------------------------------------------------------------- #
@settings(max_examples=150, deadline=None)
@given(result_sets(), st.sampled_from(["json", "xml", "tsv"]))
def test_lossless_formats_round_trip_exactly(result_set, format_name):
    document = write_results(result_set, format_name)
    parsed = parse_results(document, format_name)
    assert parsed.variables == result_set.variables
    # Bindings are compared as an ordered multiset: same rows, same order.
    assert parsed.bindings == result_set.bindings


@settings(max_examples=150, deadline=None)
@given(result_sets())
def test_csv_round_trip_is_value_faithful(result_set):
    document = write_results(result_set, "csv")
    parsed = parse_results(document, "csv")
    assert parsed.variables == result_set.variables
    assert len(parsed.bindings) == len(result_set.bindings)
    # CSV flattens term kinds to value strings; re-serialising the parse
    # must reproduce the document (nothing further is lost).
    assert write_results(parsed, "csv") == document


@settings(max_examples=60, deadline=None)
@given(result_sets())
def test_json_round_trip_twice_is_stable(result_set):
    once = write_results(result_set, "json")
    twice = write_results(parse_results(once, "json"), "json")
    assert once == twice
