"""Unit tests for FILTER expression evaluation."""

import pytest

from repro.rdf import BNode, Literal, URIRef, Variable, XSD
from repro.sparql import (
    Binding,
    ExpressionError,
    effective_boolean_value,
    expression_satisfied,
    parse_query,
)


def filter_expression(filter_body: str):
    """Parse a query containing the FILTER and return its expression."""
    query = parse_query(f"""
        PREFIX ex: <http://ex.org/>
        PREFIX xsd: <http://www.w3.org/2001/XMLSchema#>
        SELECT ?x WHERE {{ ?x ex:p ?y . FILTER {filter_body} }}
    """)
    return next(iter(query.filters())).expression


def binding(**kwargs) -> Binding:
    return Binding({Variable(name): value for name, value in kwargs.items()})


class TestEffectiveBooleanValue:
    def test_booleans(self):
        assert effective_boolean_value(True) is True
        assert effective_boolean_value(False) is False

    def test_numbers(self):
        assert effective_boolean_value(3) is True
        assert effective_boolean_value(0) is False

    def test_strings(self):
        assert effective_boolean_value("x") is True
        assert effective_boolean_value("") is False

    def test_literals(self):
        assert effective_boolean_value(Literal("true", datatype=XSD.boolean)) is True
        assert effective_boolean_value(Literal("0", datatype=XSD.integer)) is False
        assert effective_boolean_value(Literal("")) is False
        assert effective_boolean_value(Literal("text")) is True

    def test_uri_is_type_error(self):
        with pytest.raises(ExpressionError):
            effective_boolean_value(URIRef("http://ex.org/x"))


class TestComparisons:
    def test_numeric_equality_across_datatypes(self):
        expression = filter_expression("(?y = 5)")
        assert expression_satisfied(expression, binding(y=Literal("5", datatype=XSD.integer)))
        assert expression_satisfied(expression, binding(y=Literal("5.0", datatype=XSD.double)))
        assert not expression_satisfied(expression, binding(y=Literal("6", datatype=XSD.integer)))

    def test_uri_equality(self):
        expression = filter_expression("(?y = ex:thing)")
        assert expression_satisfied(expression, binding(y=URIRef("http://ex.org/thing")))
        assert not expression_satisfied(expression, binding(y=URIRef("http://ex.org/other")))

    def test_inequality(self):
        expression = filter_expression("(?y != ex:thing)")
        assert expression_satisfied(expression, binding(y=URIRef("http://ex.org/other")))

    def test_numeric_ordering(self):
        assert expression_satisfied(filter_expression("(?y > 3)"), binding(y=Literal(4)))
        assert expression_satisfied(filter_expression("(?y <= 3)"), binding(y=Literal(3)))
        assert not expression_satisfied(filter_expression("(?y < 3)"), binding(y=Literal(3)))

    def test_string_ordering(self):
        assert expression_satisfied(filter_expression('(?y < "b")'), binding(y=Literal("a")))

    def test_mixed_type_comparison_fails(self):
        assert not expression_satisfied(filter_expression('(?y > 3)'), binding(y=Literal("abc")))

    def test_unbound_variable_fails_filter(self):
        assert not expression_satisfied(filter_expression("(?y = 5)"), binding())


class TestLogicalOperators:
    def test_negation(self):
        expression = filter_expression("(!(?y = 5))")
        assert expression_satisfied(expression, binding(y=Literal(4)))
        assert not expression_satisfied(expression, binding(y=Literal(5)))

    def test_conjunction(self):
        expression = filter_expression("((?y > 1) && (?y < 10))")
        assert expression_satisfied(expression, binding(y=Literal(5)))
        assert not expression_satisfied(expression, binding(y=Literal(11)))

    def test_disjunction(self):
        expression = filter_expression("((?y = 1) || (?y = 2))")
        assert expression_satisfied(expression, binding(y=Literal(2)))
        assert not expression_satisfied(expression, binding(y=Literal(3)))

    def test_or_recovers_from_error_when_other_side_true(self):
        # ?z is unbound -> error, but the left disjunct is true.
        expression = filter_expression("((?y = 1) || (?z = 1))")
        assert expression_satisfied(expression, binding(y=Literal(1)))

    def test_and_recovers_from_error_when_other_side_false(self):
        expression = filter_expression("((?z = 1) && (?y = 1))")
        assert not expression_satisfied(expression, binding(y=Literal(2)))

    def test_arithmetic(self):
        expression = filter_expression("((?y + 2) * 3 = 15)")
        assert expression_satisfied(expression, binding(y=Literal(3)))

    def test_division_by_zero_is_error(self):
        expression = filter_expression("((?y / 0) = 1)")
        assert not expression_satisfied(expression, binding(y=Literal(3)))

    def test_unary_minus(self):
        expression = filter_expression("(-?y = -4)")
        assert expression_satisfied(expression, binding(y=Literal(4)))


class TestBuiltins:
    def test_bound(self):
        expression = filter_expression("BOUND(?y)")
        assert expression_satisfied(expression, binding(y=Literal(1)))
        assert not expression_satisfied(expression, binding())

    def test_str_of_uri_and_literal(self):
        expression = filter_expression('(STR(?y) = "http://ex.org/thing")')
        assert expression_satisfied(expression, binding(y=URIRef("http://ex.org/thing")))
        expression = filter_expression('(STR(?y) = "5")')
        assert expression_satisfied(expression, binding(y=Literal("5", datatype=XSD.integer)))

    def test_lang_and_langmatches(self):
        assert expression_satisfied(filter_expression('(LANG(?y) = "en")'),
                                    binding(y=Literal("hi", lang="en")))
        assert expression_satisfied(filter_expression('LANGMATCHES(LANG(?y), "en")'),
                                    binding(y=Literal("hi", lang="en-gb")))
        assert expression_satisfied(filter_expression('LANGMATCHES(LANG(?y), "*")'),
                                    binding(y=Literal("hi", lang="fr")))
        assert not expression_satisfied(filter_expression('LANGMATCHES(LANG(?y), "*")'),
                                        binding(y=Literal("hi")))

    def test_datatype(self):
        expression = filter_expression("(DATATYPE(?y) = xsd:integer)")
        assert expression_satisfied(expression, binding(y=Literal("5", datatype=XSD.integer)))
        expression = filter_expression("(DATATYPE(?y) = xsd:string)")
        assert expression_satisfied(expression, binding(y=Literal("plain")))

    def test_type_checks(self):
        assert expression_satisfied(filter_expression("isURI(?y)"),
                                    binding(y=URIRef("http://ex.org/x")))
        assert expression_satisfied(filter_expression("isLITERAL(?y)"), binding(y=Literal("x")))
        assert expression_satisfied(filter_expression("isBLANK(?y)"), binding(y=BNode("b")))
        assert not expression_satisfied(filter_expression("isURI(?y)"), binding(y=Literal("x")))

    def test_sameterm(self):
        expression = filter_expression("sameTerm(?y, ex:thing)")
        assert expression_satisfied(expression, binding(y=URIRef("http://ex.org/thing")))

    def test_regex(self):
        expression = filter_expression('REGEX(STR(?y), "^http://kisti")')
        assert expression_satisfied(expression,
                                    binding(y=URIRef("http://kisti.rkbexplorer.com/id/x")))
        assert not expression_satisfied(expression, binding(y=URIRef("http://ex.org/x")))

    def test_regex_case_insensitive_flag(self):
        expression = filter_expression('REGEX(?y, "PERSON", "i")')
        assert expression_satisfied(expression, binding(y=Literal("a person here")))

    def test_regex_invalid_pattern_is_error(self):
        expression = filter_expression('REGEX(?y, "(unclosed")')
        assert not expression_satisfied(expression, binding(y=Literal("x")))

    def test_unknown_function_is_error(self):
        expression = filter_expression("<http://ex.org/fn/custom>(?y)")
        assert not expression_satisfied(expression, binding(y=Literal("x")))

    def test_bound_requires_variable_argument(self):
        expression = filter_expression('BOUND("x")')
        assert not expression_satisfied(expression, binding(y=Literal("x")))
