"""Unit tests for SPARQL query evaluation over in-memory graphs."""

import pytest

from repro.rdf import Graph, Literal, RDF, Triple, URIRef, Variable
from repro.sparql import AskResult, Binding, QueryEvaluator, ResultSet, match_bgp, parse_query

EX = "http://ex.org/"


def uri(name: str) -> URIRef:
    return URIRef(EX + name)


@pytest.fixture()
def graph() -> Graph:
    g = Graph()
    g.namespace_manager.bind("ex", EX)
    people = {
        "alice": ("Alice", 34),
        "bob": ("Bob", 28),
        "carol": ("Carol", 45),
    }
    for key, (name, age) in people.items():
        g.add(Triple(uri(key), RDF.type, uri("Person")))
        g.add(Triple(uri(key), uri("name"), Literal(name)))
        g.add(Triple(uri(key), uri("age"), Literal(age)))
    g.add(Triple(uri("paper1"), uri("author"), uri("alice")))
    g.add(Triple(uri("paper1"), uri("author"), uri("bob")))
    g.add(Triple(uri("paper2"), uri("author"), uri("alice")))
    g.add(Triple(uri("paper2"), uri("author"), uri("carol")))
    g.add(Triple(uri("alice"), uri("email"), Literal("alice@example.org")))
    return g


@pytest.fixture()
def evaluator(graph) -> QueryEvaluator:
    return QueryEvaluator(graph)


PREFIX = "PREFIX ex: <http://ex.org/>\n"


class TestBgpMatching:
    def test_single_pattern(self, graph):
        solutions = list(match_bgp([Triple(Variable("p"), uri("author"), uri("alice"))], graph))
        assert {s["p"] for s in solutions} == {uri("paper1"), uri("paper2")}

    def test_join_two_patterns(self, graph):
        solutions = list(match_bgp([
            Triple(Variable("paper"), uri("author"), uri("alice")),
            Triple(Variable("paper"), uri("author"), Variable("other")),
        ], graph))
        others = {s["other"] for s in solutions}
        assert others == {uri("alice"), uri("bob"), uri("carol")}

    def test_unsatisfiable_pattern(self, graph):
        solutions = list(match_bgp([
            Triple(Variable("x"), uri("author"), uri("nobody")),
        ], graph))
        assert solutions == []

    def test_initial_binding_respected(self, graph):
        initial = Binding({Variable("p"): uri("paper1")})
        solutions = list(match_bgp([
            Triple(Variable("p"), uri("author"), Variable("a")),
        ], graph, initial=initial))
        assert {s["a"] for s in solutions} == {uri("alice"), uri("bob")}

    def test_empty_bgp_returns_initial(self, graph):
        solutions = list(match_bgp([], graph))
        assert len(solutions) == 1

    def test_variable_bound_to_data_bnode_joins_exactly(self):
        """A variable bound to a blank node from the data must join on it.

        Regression test: joining through intermediate blank nodes (the
        KISTI CreatorInfo modelling) must not degenerate into a cross
        product.
        """
        from repro.rdf import BNode

        g = Graph()
        papers = [uri("p1"), uri("p2"), uri("p3")]
        for index, paper in enumerate(papers):
            info = BNode(f"info{index}")
            g.add(Triple(paper, uri("hasCreatorInfo"), info))
            g.add(Triple(info, uri("hasCreator"), uri(f"author{index}")))
        solutions = list(match_bgp([
            Triple(Variable("paper"), uri("hasCreatorInfo"), Variable("c")),
            Triple(Variable("c"), uri("hasCreator"), Variable("author")),
        ], g))
        assert len(solutions) == 3
        pairs = {(s["paper"], s["author"]) for s in solutions}
        assert pairs == {(uri(f"p{i + 1}"), uri(f"author{i}")) for i in range(3)}


class TestSelect:
    def test_simple_select(self, evaluator):
        result = evaluator.select(PREFIX + "SELECT ?n WHERE { ex:alice ex:name ?n }")
        assert isinstance(result, ResultSet)
        assert result.column("n") == [Literal("Alice")]

    def test_select_star_projects_all_variables(self, evaluator):
        result = evaluator.select(PREFIX + "SELECT * WHERE { ?s ex:name ?n }")
        assert {v.name for v in result.variables} == {"s", "n"}
        assert len(result) == 3

    def test_distinct(self, evaluator):
        query = PREFIX + "SELECT DISTINCT ?a WHERE { ?p ex:author ?a }"
        result = evaluator.select(query)
        assert len(result) == 3
        without_distinct = evaluator.select(PREFIX + "SELECT ?a WHERE { ?p ex:author ?a }")
        assert len(without_distinct) == 4

    def test_filter_numeric(self, evaluator):
        result = evaluator.select(
            PREFIX + "SELECT ?s WHERE { ?s ex:age ?age . FILTER (?age > 30) }"
        )
        assert result.distinct_values("s") == {uri("alice"), uri("carol")}

    def test_filter_inequality_on_uri(self, evaluator):
        result = evaluator.select(PREFIX + """
            SELECT DISTINCT ?a WHERE {
                ?p ex:author ex:alice . ?p ex:author ?a .
                FILTER (!(?a = ex:alice))
            }
        """)
        assert result.distinct_values("a") == {uri("bob"), uri("carol")}

    def test_optional(self, evaluator):
        result = evaluator.select(PREFIX + """
            SELECT ?s ?mail WHERE {
                ?s a ex:Person .
                OPTIONAL { ?s ex:email ?mail }
            }
        """)
        rows = {binding["s"]: binding.get_term("mail") for binding in result}
        assert rows[uri("alice")] == Literal("alice@example.org")
        assert rows[uri("bob")] is None

    def test_union(self, evaluator):
        result = evaluator.select(PREFIX + """
            SELECT ?x WHERE {
                { ?x ex:name "Alice" } UNION { ?x ex:name "Bob" }
            }
        """)
        assert result.distinct_values("x") == {uri("alice"), uri("bob")}

    def test_order_by_and_limit(self, evaluator):
        result = evaluator.select(PREFIX + """
            SELECT ?s ?age WHERE { ?s ex:age ?age } ORDER BY ?age LIMIT 2
        """)
        assert [binding["s"] for binding in result] == [uri("bob"), uri("alice")]

    def test_order_by_desc_with_offset(self, evaluator):
        result = evaluator.select(PREFIX + """
            SELECT ?s WHERE { ?s ex:age ?age } ORDER BY DESC(?age) OFFSET 1 LIMIT 1
        """)
        assert [binding["s"] for binding in result] == [uri("alice")]

    def test_empty_result(self, evaluator):
        result = evaluator.select(PREFIX + 'SELECT ?s WHERE { ?s ex:name "Nobody" }')
        assert len(result) == 0
        assert not result

    def test_cross_product_of_disconnected_patterns(self, evaluator):
        result = evaluator.select(PREFIX + """
            SELECT ?a ?b WHERE { ?a ex:name "Alice" . ?b ex:name "Bob" . }
        """)
        assert len(result) == 1
        assert result.bindings[0]["a"] == uri("alice")
        assert result.bindings[0]["b"] == uri("bob")

    def test_string_query_and_ast_query_agree(self, evaluator):
        text = PREFIX + "SELECT ?n WHERE { ex:alice ex:name ?n }"
        assert evaluator.select(text).to_dicts() == evaluator.select(parse_query(text)).to_dicts()


class TestAskAndConstruct:
    def test_ask_true(self, evaluator):
        result = evaluator.evaluate(PREFIX + "ASK { ex:alice ex:name ?n }")
        assert isinstance(result, AskResult)
        assert bool(result) is True

    def test_ask_false(self, evaluator):
        result = evaluator.evaluate(PREFIX + 'ASK { ex:alice ex:name "Zoe" }')
        assert bool(result) is False

    def test_construct(self, evaluator):
        result = evaluator.evaluate(PREFIX + """
            CONSTRUCT { ?a ex:wrote ?p } WHERE { ?p ex:author ?a }
        """)
        assert isinstance(result, Graph)
        assert Triple(uri("alice"), uri("wrote"), uri("paper1")) in result
        assert len(result) == 4

    def test_construct_skips_partially_bound_templates(self, evaluator):
        result = evaluator.evaluate(PREFIX + """
            CONSTRUCT { ?a ex:hasEmail ?mail } WHERE {
                ?p ex:author ?a . OPTIONAL { ?a ex:email ?mail }
            }
        """)
        assert len(result) == 1  # only alice has an email

    def test_construct_with_bnode_template(self, evaluator):
        result = evaluator.evaluate(PREFIX + """
            CONSTRUCT { ?a ex:attr _:b . _:b ex:value ?n } WHERE { ?a ex:name ?n }
        """)
        # Each solution instantiates a fresh bnode: 3 people x 2 triples.
        assert len(result) == 6


class TestResultSet:
    def test_to_dicts_and_json(self, evaluator):
        result = evaluator.select(PREFIX + "SELECT ?n WHERE { ex:alice ex:name ?n }")
        assert result.to_dicts() == [{"n": '"Alice"'}]
        payload = result.to_json_dict()
        assert payload["head"]["vars"] == ["n"]
        assert payload["results"]["bindings"][0]["n"]["value"] == "Alice"

    def test_to_table_contains_headers(self, evaluator):
        result = evaluator.select(PREFIX + "SELECT ?s ?n WHERE { ?s ex:name ?n }")
        table = result.to_table()
        assert "?s" in table and "?n" in table
        assert "Alice" in table

    def test_binding_merge_and_compatibility(self):
        left = Binding({Variable("x"): uri("a")})
        right = Binding({Variable("x"): uri("a"), Variable("y"): uri("b")})
        conflicting = Binding({Variable("x"): uri("z")})
        assert left.compatible(right)
        assert not left.compatible(conflicting)
        assert left.merge(right)["y"] == uri("b")

    def test_binding_project_and_substitute(self):
        binding = Binding({Variable("x"): uri("a"), Variable("y"): uri("b")})
        assert set(binding.project(["x"]).keys()) == {Variable("x")}
        assert binding.substitute(Variable("x")) == uri("a")
        assert binding.substitute(Variable("unbound")) == Variable("unbound")
        assert binding.substitute(uri("c")) == uri("c")
