"""Unit tests for the SPARQL parser (query anatomy of Section 3.1)."""

import pytest

from repro.rdf import AKT, Literal, RDF, RKB_ID, URIRef, Variable, XSD
from repro.sparql import (
    AskQuery,
    BinaryExpression,
    ConstructQuery,
    FunctionCall,
    OptionalPattern,
    SelectQuery,
    SparqlParseError,
    UnaryExpression,
    UnionPattern,
    parse_query,
)

from ..conftest import FIGURE_1_QUERY


class TestFigure1Anatomy:
    """The exact query of Figure 1 decomposes as the paper describes."""

    def test_form_is_select_distinct(self):
        query = parse_query(FIGURE_1_QUERY)
        assert isinstance(query, SelectQuery)
        assert query.modifiers.distinct is True

    def test_result_form(self):
        query = parse_query(FIGURE_1_QUERY)
        assert query.projection == [Variable("a")]

    def test_bgp_has_two_patterns(self):
        query = parse_query(FIGURE_1_QUERY)
        patterns = query.all_triple_patterns()
        assert len(patterns) == 2
        assert patterns[0].predicate == AKT["has-author"]
        assert patterns[0].object == RKB_ID["person-02686"]
        assert patterns[1].object == Variable("a")

    def test_filter_section(self):
        query = parse_query(FIGURE_1_QUERY)
        filters = list(query.filters())
        assert len(filters) == 1
        expression = filters[0].expression
        assert isinstance(expression, UnaryExpression)
        assert expression.operator == "!"

    def test_prologue_prefixes(self):
        query = parse_query(FIGURE_1_QUERY)
        assert query.prologue.namespace_manager.namespace("akt") == str(AKT)
        assert query.prologue.namespace_manager.namespace("id") == str(RKB_ID)


class TestSelectVariants:
    def test_select_star(self):
        query = parse_query("SELECT * WHERE { ?s ?p ?o }")
        assert query.select_all
        assert set(query.effective_projection()) == {Variable("s"), Variable("p"), Variable("o")}

    def test_select_multiple_variables(self):
        query = parse_query("SELECT ?s ?o WHERE { ?s ?p ?o }")
        assert query.projection == [Variable("s"), Variable("o")]

    def test_missing_projection_raises(self):
        with pytest.raises(SparqlParseError):
            parse_query("SELECT WHERE { ?s ?p ?o }")

    def test_where_keyword_optional(self):
        query = parse_query("SELECT ?s { ?s ?p ?o }")
        assert len(query.all_triple_patterns()) == 1

    def test_reduced_modifier(self):
        query = parse_query("SELECT REDUCED ?s WHERE { ?s ?p ?o }")
        assert query.modifiers.reduced

    def test_limit_offset_order(self):
        query = parse_query(
            "SELECT ?s WHERE { ?s ?p ?o } ORDER BY DESC(?s) LIMIT 10 OFFSET 5"
        )
        assert query.modifiers.limit == 10
        assert query.modifiers.offset == 5
        assert query.modifiers.order_by[0].descending is True

    def test_order_by_plain_variable(self):
        query = parse_query("SELECT ?s WHERE { ?s ?p ?o } ORDER BY ?s")
        assert len(query.modifiers.order_by) == 1
        assert not query.modifiers.order_by[0].descending


class TestOtherForms:
    def test_ask(self):
        query = parse_query("ASK { <http://ex.org/s> <http://ex.org/p> ?o }")
        assert isinstance(query, AskQuery)

    def test_construct(self):
        query = parse_query("""
            PREFIX ex: <http://ex.org/>
            CONSTRUCT { ?s ex:copied ?o } WHERE { ?s ex:original ?o }
        """)
        assert isinstance(query, ConstructQuery)
        assert len(query.template) == 1
        assert query.template[0].predicate == URIRef("http://ex.org/copied")

    def test_unknown_form_raises(self):
        with pytest.raises(SparqlParseError):
            parse_query("DESCRIBE <http://ex.org/x>")


class TestTriplePatternSyntax:
    def test_a_keyword(self):
        query = parse_query("SELECT ?s WHERE { ?s a <http://ex.org/C> }")
        assert query.all_triple_patterns()[0].predicate == RDF.type

    def test_semicolon_and_comma(self):
        query = parse_query("""
            PREFIX ex: <http://ex.org/>
            SELECT ?s WHERE { ?s ex:p ex:a ; ex:q ex:b , ex:c . }
        """)
        assert len(query.all_triple_patterns()) == 3

    def test_numeric_and_boolean_objects(self):
        query = parse_query("""
            PREFIX ex: <http://ex.org/>
            SELECT ?s WHERE { ?s ex:i 42 ; ex:d 4.5 ; ex:b true . }
        """)
        objects = [pattern.object for pattern in query.all_triple_patterns()]
        assert Literal("42", datatype=XSD.integer) in objects
        assert Literal("4.5", datatype=XSD.decimal) in objects
        assert Literal("true", datatype=XSD.boolean) in objects

    def test_typed_and_language_literals(self):
        query = parse_query("""
            PREFIX ex: <http://ex.org/>
            PREFIX xsd: <http://www.w3.org/2001/XMLSchema#>
            SELECT ?s WHERE { ?s ex:p "chat"@fr ; ex:q "5"^^xsd:integer . }
        """)
        objects = [pattern.object for pattern in query.all_triple_patterns()]
        assert Literal("chat", lang="fr") in objects
        assert Literal("5", datatype=XSD.integer) in objects

    def test_blank_node_property_list(self):
        query = parse_query("""
            PREFIX ex: <http://ex.org/>
            SELECT ?s WHERE { ?s ex:p [ ex:q ?v ] . }
        """)
        assert len(query.all_triple_patterns()) == 2

    def test_variable_predicate(self):
        query = parse_query("SELECT ?p WHERE { <http://ex.org/s> ?p ?o }")
        assert query.all_triple_patterns()[0].predicate == Variable("p")

    def test_undeclared_prefix_raises(self):
        with pytest.raises(SparqlParseError):
            parse_query("SELECT ?s WHERE { ?s nope:p ?o }")

    def test_literal_subject_raises(self):
        with pytest.raises(SparqlParseError):
            parse_query('SELECT ?s WHERE { "x" <http://ex.org/p> ?o }')


class TestGroupPatterns:
    def test_optional(self):
        query = parse_query("""
            PREFIX ex: <http://ex.org/>
            SELECT ?s ?n WHERE { ?s ex:p ?o . OPTIONAL { ?s ex:name ?n } }
        """)
        elements = query.where.elements
        assert any(isinstance(element, OptionalPattern) for element in elements)
        assert len(query.all_triple_patterns()) == 2

    def test_union(self):
        query = parse_query("""
            PREFIX ex: <http://ex.org/>
            SELECT ?x WHERE { { ?x a ex:A } UNION { ?x a ex:B } }
        """)
        unions = [element for element in query.where.elements if isinstance(element, UnionPattern)]
        assert len(unions) == 1
        assert len(unions[0].alternatives) == 2

    def test_three_way_union(self):
        query = parse_query("""
            PREFIX ex: <http://ex.org/>
            SELECT ?x WHERE { { ?x a ex:A } UNION { ?x a ex:B } UNION { ?x a ex:C } }
        """)
        unions = [element for element in query.where.elements if isinstance(element, UnionPattern)]
        assert len(unions[0].alternatives) == 3

    def test_nested_group(self):
        query = parse_query("""
            PREFIX ex: <http://ex.org/>
            SELECT ?x WHERE { { ?x ex:p ?y . } ?y ex:q ?z . }
        """)
        assert len(query.all_triple_patterns()) == 2

    def test_filter_variants(self):
        query = parse_query("""
            PREFIX ex: <http://ex.org/>
            SELECT ?x WHERE {
              ?x ex:p ?y .
              FILTER (?y > 3 && ?y < 10)
              FILTER REGEX(?x, "person")
            }
        """)
        filters = list(query.filters())
        assert len(filters) == 2
        assert isinstance(filters[0].expression, BinaryExpression)
        assert isinstance(filters[1].expression, FunctionCall)

    def test_unbalanced_braces_raise(self):
        with pytest.raises(SparqlParseError):
            parse_query("SELECT ?x WHERE { ?x ?p ?o ")

    def test_trailing_garbage_raises(self):
        with pytest.raises(SparqlParseError):
            parse_query("SELECT ?x WHERE { ?x ?p ?o } garbage")
