"""Unit tests for the batched (vectorized) execution core.

The equivalence of the engines is proven by the conformance corpus and
the differential property tests; this module tests the machinery itself:
the term dictionary, the batch growth schedule, adaptive join reordering
(and its recorded decisions), EXPLAIN ANALYZE reports and the structured
run-event emission hook.
"""

from __future__ import annotations

import json

import pytest

from repro.rdf import Graph, Literal, TermDictionary, Triple, URIRef, Variable
from repro.sparql import (
    ENGINES,
    ExecConfig,
    QueryEvaluator,
    compile_naive_query,
    compile_planner_query,
    parse_query,
)
from repro.sparql.exec import (
    RUN_EVENTS_ENV,
    UNBOUND,
    Batch,
    ExecContext,
    VecBGPOp,
    _VecStep,
    seed_batches,
)

EX = "http://example.org/"


def _graph(*triples) -> Graph:
    graph = Graph()
    for s, p, o in triples:
        graph.add(Triple(URIRef(EX + s), URIRef(EX + p), o))
    return graph


def _chain_graph(length: int) -> Graph:
    """a0 -next-> a1 -next-> ... a<length>."""
    graph = Graph()
    next_uri = URIRef(EX + "next")
    for i in range(length):
        graph.add(Triple(URIRef(EX + f"a{i}"), next_uri, URIRef(EX + f"a{i + 1}")))
    return graph


# --------------------------------------------------------------------------- #
# Term dictionary
# --------------------------------------------------------------------------- #
class TestTermDictionary:
    def test_interning_is_idempotent(self):
        dictionary = TermDictionary()
        uri = URIRef(EX + "a")
        first = dictionary.intern(uri)
        assert dictionary.intern(uri) == first
        assert dictionary.decode(first) == uri

    def test_id_zero_is_reserved_for_unbound(self):
        dictionary = TermDictionary()
        assert dictionary.intern(URIRef(EX + "a")) != UNBOUND
        with pytest.raises(KeyError):
            dictionary.decode(UNBOUND)

    def test_distinct_terms_get_distinct_ids(self):
        dictionary = TermDictionary()
        ids = {dictionary.intern(URIRef(EX + f"t{i}")) for i in range(100)}
        assert len(ids) == 100

    def test_literal_and_uri_do_not_collide(self):
        dictionary = TermDictionary()
        assert dictionary.intern(Literal("a")) != dictionary.intern(URIRef("a"))

    def test_graph_owns_a_dictionary(self):
        graph = _graph(("a", "p", Literal(1)))
        assert isinstance(graph.dictionary, TermDictionary)
        # The read-only view shares the backing graph's dictionary.
        from repro.rdf import GraphView

        assert GraphView(graph).dictionary is graph.dictionary


# --------------------------------------------------------------------------- #
# Batch growth schedule
# --------------------------------------------------------------------------- #
class TestBatching:
    def test_batches_follow_growth_schedule(self):
        graph = _chain_graph(200)
        query = parse_query("SELECT ?s ?o WHERE { ?s <http://example.org/next> ?o }")
        config = ExecConfig(initial_batch_rows=4, batch_growth=4, max_batch_rows=32)
        plan = compile_planner_query(query, graph, config)
        sizes = [len(batch.rows) for batch in plan.execute()]
        assert sum(sizes) == 200
        assert sizes[0] <= 4
        assert max(sizes) <= 32
        # Growth is monotone until the cap.
        for before, after in zip(sizes, sizes[1:-1], strict=False):
            assert after >= before or after == 32

    def test_first_binding_stops_early(self):
        # ASK-style consumption must not scan the whole relation: the
        # initial batch cap bounds the prefetch, so out of 1000 matching
        # triples only the first handful are ever pulled from the index.
        class CountingGraph(Graph):
            scanned = 0

            def triples_ids(self, s=0, p=0, o=0):
                for item in super().triples_ids(s, p, o):
                    CountingGraph.scanned += 1
                    yield item

        graph = CountingGraph()
        next_uri = URIRef(EX + "next")
        for i in range(1000):
            graph.add(Triple(URIRef(EX + f"a{i}"), next_uri, URIRef(EX + f"a{i + 1}")))
        query = parse_query("ASK { ?s <http://example.org/next> ?o }")
        plan = compile_planner_query(query, graph, ExecConfig())
        assert plan.first_binding() is not None
        assert 1 <= CountingGraph.scanned <= 8

    def test_rows_decode_to_original_terms(self):
        value = Literal("hello", lang="en")
        graph = _graph(("a", "p", value))
        query = parse_query("SELECT ?o WHERE { ?s <http://example.org/p> ?o }")
        plan = compile_naive_query(query, graph, ExecConfig())
        bindings = list(plan.bindings())
        assert len(bindings) == 1
        assert bindings[0][Variable("o")] == value


# --------------------------------------------------------------------------- #
# Adaptive join reordering
# --------------------------------------------------------------------------- #
def _fanout_graph() -> Graph:
    """?a p ?b seeds 50 rows; per ?b, r is 1 row and s is 4 rows."""
    graph = Graph()
    for i in range(50):
        graph.add(Triple(URIRef(EX + f"a{i}"), URIRef(EX + "p"), URIRef(EX + f"b{i}")))
        graph.add(Triple(URIRef(EX + f"b{i}"), URIRef(EX + "r"), URIRef(EX + f"c{i}")))
        for j in range(4):
            graph.add(
                Triple(URIRef(EX + f"b{i}"), URIRef(EX + "s"), URIRef(EX + f"d{j}"))
            )
    return graph


def _lying_steps():
    """A 3-step chain whose first estimate is badly off (0.1 vs 50 actual)
    and whose remaining order is the wrong way round (s before r)."""
    a, b, c, d = (Variable(name) for name in "abcd")
    return [
        _VecStep(Triple(a, URIRef(EX + "p"), b), [], 0.1),
        _VecStep(Triple(b, URIRef(EX + "s"), d), [], 1.0),
        _VecStep(Triple(b, URIRef(EX + "r"), c), [], 5.0),
    ]


class TestAdaptivity:
    def test_misestimate_triggers_a_recorded_reorder(self):
        graph = _fanout_graph()
        ctx = ExecContext(graph, config=ExecConfig(adaptive=True))
        op = VecBGPOp(ctx, (), _lying_steps(), [], adaptive=True)
        rows = [row for batch in op.execute(seed_batches()) for row in batch.rows]
        assert len(rows) == 200
        assert len(ctx.decisions) == 1
        decision = ctx.decisions[0]
        assert decision["estimated"] == 0.1
        assert decision["observed"] > decision["estimated"]
        # The cheap r-scan moves ahead of the 4x s-fan-out.
        assert decision["new_order"] != decision["old_order"]
        assert "/r>" in decision["new_order"][0]

    def test_adaptive_run_matches_non_adaptive(self):
        graph = _fanout_graph()
        results = {}
        for adaptive in (True, False):
            ctx = ExecContext(graph, config=ExecConfig(adaptive=adaptive))
            op = VecBGPOp(ctx, (), _lying_steps(), [], adaptive=adaptive)
            decoded = sorted(
                tuple(sorted(ctx.decode_binding(batch.schema, row).as_dict().items()))
                for batch in op.execute(seed_batches())
                for row in batch.rows
            )
            results[adaptive] = decoded
        assert results[True] == results[False]

    def test_non_adaptive_op_records_no_decisions(self):
        graph = _fanout_graph()
        ctx = ExecContext(graph, config=ExecConfig(adaptive=False))
        op = VecBGPOp(ctx, (), _lying_steps(), [], adaptive=False)
        list(op.execute(seed_batches()))
        assert ctx.decisions == []

    def test_adaptivity_decisions_reach_the_run_event(self):
        # End to end: a query whose scan chain reorders must surface the
        # decision in the EXPLAIN ANALYZE event's adaptivity list.
        graph = _fanout_graph()
        query = parse_query("""
        SELECT ?a ?b ?c ?d WHERE {
          ?a <http://example.org/p> ?b .
          ?b <http://example.org/s> ?d .
          ?b <http://example.org/r> ?c .
        }
        """)
        plan = compile_planner_query(query, graph, ExecConfig(adaptive=True))
        list(plan.execute())
        event = plan.run_event("q")
        assert event.adaptivity == plan.ctx.decisions

    def test_evaluator_accepts_exec_config(self):
        graph = _fanout_graph()
        evaluator = QueryEvaluator(graph, exec_config=ExecConfig(adaptive=False))
        result = evaluator.select(parse_query(
            "SELECT ?a ?b WHERE { ?a <http://example.org/p> ?b }"
        ))
        assert len(result) == 50


# --------------------------------------------------------------------------- #
# EXPLAIN ANALYZE
# --------------------------------------------------------------------------- #
class TestAnalyze:
    def test_analyze_returns_result_and_event(self):
        graph = _chain_graph(5)
        evaluator = QueryEvaluator(graph)
        result, event = evaluator.analyze(
            "SELECT ?s ?o WHERE { ?s <http://example.org/next> ?o }"
        )
        assert len(result) == 5
        assert event.engine == "planner"
        assert event.rows == 5
        assert event.elapsed >= 0
        assert "BGPScan" in event.plan

    def test_event_operator_metrics_are_consistent(self):
        graph = _chain_graph(5)
        _, event = QueryEvaluator(graph).analyze(
            "SELECT ?s WHERE { ?s <http://example.org/next> ?o }"
        )
        names = [op["operator"] for op in event.operators]
        assert any("Project" in name for name in names)
        for op in event.operators:
            assert op["rows_out"] >= 0
            assert op["seconds"] >= 0

    def test_render_mentions_rows_and_engine(self):
        graph = _chain_graph(3)
        _, event = QueryEvaluator(graph, engine="naive").analyze(
            "SELECT ?s WHERE { ?s <http://example.org/next> ?o }"
        )
        text = event.render()
        assert "naive" in text
        assert "3 rows" in text

    def test_event_round_trips_through_json(self):
        graph = _chain_graph(3)
        _, event = QueryEvaluator(graph).analyze(
            "SELECT ?s WHERE { ?s <http://example.org/next> ?o }"
        )
        payload = json.loads(json.dumps(event.to_json_dict()))
        assert payload["engine"] == "planner"
        assert payload["rows"] == 3

    @pytest.mark.parametrize(("engine", "batched"), [
        ("reference", "naive"),
        ("streaming", "planner"),
    ])
    def test_legacy_engines_analyze_via_batched_equivalent(self, engine, batched):
        # The oracles have no batched instrumentation; analyze falls back
        # to the batched engine that mirrors their plan shape.
        evaluator = QueryEvaluator(_chain_graph(2), engine=engine)
        result, event = evaluator.analyze("SELECT ?s WHERE { ?s ?p ?o }")
        assert len(result) == 2
        assert event.engine == batched


# --------------------------------------------------------------------------- #
# Run-event emission (REPRO_RUN_EVENTS)
# --------------------------------------------------------------------------- #
class TestRunEventEmission:
    def test_events_append_as_jsonl(self, tmp_path, monkeypatch):
        target = tmp_path / "events.jsonl"
        monkeypatch.setenv(RUN_EVENTS_ENV, str(target))
        graph = _chain_graph(4)
        evaluator = QueryEvaluator(graph)
        evaluator.select(parse_query("SELECT ?s WHERE { ?s <http://example.org/next> ?o }"))
        evaluator.evaluate(parse_query("ASK { ?s <http://example.org/next> ?o }"))
        lines = target.read_text(encoding="utf-8").strip().splitlines()
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first["engine"] == "planner"
        assert first["rows"] == 4

    def test_no_env_no_file(self, tmp_path, monkeypatch):
        monkeypatch.delenv(RUN_EVENTS_ENV, raising=False)
        graph = _chain_graph(2)
        QueryEvaluator(graph).select(
            parse_query("SELECT ?s WHERE { ?s <http://example.org/next> ?o }")
        )
        assert list(tmp_path.iterdir()) == []


# --------------------------------------------------------------------------- #
# Engine selection plumbing
# --------------------------------------------------------------------------- #
class TestEngineSelection:
    def test_unknown_engine_is_rejected(self):
        with pytest.raises(ValueError):
            QueryEvaluator(Graph(), engine="turbo")

    def test_use_planner_flag_maps_onto_engines(self):
        assert QueryEvaluator(Graph(), use_planner=True).engine == "planner"
        assert QueryEvaluator(Graph(), use_planner=False).engine == "naive"

    @pytest.mark.parametrize("engine", ENGINES)
    def test_every_engine_answers_a_basic_query(self, engine):
        graph = _chain_graph(3)
        evaluator = QueryEvaluator(graph, engine=engine)
        result = evaluator.select(
            parse_query("SELECT ?s ?o WHERE { ?s <http://example.org/next> ?o }")
        )
        assert len(result) == 3


# --------------------------------------------------------------------------- #
# Batch container invariants
# --------------------------------------------------------------------------- #
class TestBatch:
    def test_batch_rows_match_schema_width(self):
        schema = (Variable("a"), Variable("b"))
        batch = Batch(schema, [(1, 2), (3, UNBOUND)])
        assert all(len(row) == len(schema) for row in batch.rows)
        assert len(batch.rows) == 2
