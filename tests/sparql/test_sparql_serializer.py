"""Unit tests for query serialisation (AST -> SPARQL text)."""

import pytest

from repro.rdf import Graph, Literal, Triple, URIRef
from repro.sparql import QueryEvaluator, parse_query, serialize_query

from ..conftest import FIGURE_1_QUERY, FIGURE_6_QUERY

EX = "http://ex.org/"


def roundtrip(text: str):
    """Parse, serialise, reparse — returns both ASTs."""
    first = parse_query(text)
    second = parse_query(serialize_query(first))
    return first, second


class TestRoundtrip:
    @pytest.mark.parametrize("query_text", [
        FIGURE_1_QUERY,
        FIGURE_6_QUERY,
        "SELECT * WHERE { ?s ?p ?o }",
        "PREFIX ex: <http://ex.org/> SELECT ?s WHERE { ?s ex:p [ ex:q ?v ] }",
        "PREFIX ex: <http://ex.org/> SELECT ?x WHERE { { ?x a ex:A } UNION { ?x a ex:B } }",
        "PREFIX ex: <http://ex.org/> SELECT ?s ?n WHERE { ?s a ex:P . OPTIONAL { ?s ex:n ?n } }",
        "PREFIX ex: <http://ex.org/> SELECT ?s WHERE { ?s ex:age ?a . FILTER (?a >= 18 && ?a != 99) }",
        'PREFIX ex: <http://ex.org/> SELECT ?s WHERE { ?s ex:p "5"^^<http://www.w3.org/2001/XMLSchema#integer> }',
        'PREFIX ex: <http://ex.org/> SELECT ?s WHERE { ?s ex:p "hi"@en } ORDER BY DESC(?s) LIMIT 3 OFFSET 1',
        "PREFIX ex: <http://ex.org/> ASK { ex:a ex:p ?o }",
        "PREFIX ex: <http://ex.org/> CONSTRUCT { ?s ex:q ?o } WHERE { ?s ex:p ?o }",
        "PREFIX ex: <http://ex.org/> SELECT ?s WHERE { ?s ex:p ?o . FILTER REGEX(STR(?o), \"x\", \"i\") }",
    ])
    def test_parse_serialize_parse_preserves_structure(self, query_text):
        first, second = roundtrip(query_text)
        assert type(first) is type(second)
        assert len(first.all_triple_patterns()) == len(second.all_triple_patterns())
        assert len(list(first.filters())) == len(list(second.filters()))
        assert first.modifiers.distinct == second.modifiers.distinct
        assert first.modifiers.limit == second.modifiers.limit
        assert first.modifiers.offset == second.modifiers.offset

    def test_roundtrip_preserves_semantics_on_data(self):
        graph = Graph()
        graph.add(Triple(URIRef(EX + "a"), URIRef(EX + "p"), Literal(5)))
        graph.add(Triple(URIRef(EX + "b"), URIRef(EX + "p"), Literal(15)))
        evaluator = QueryEvaluator(graph)
        text = "PREFIX ex: <http://ex.org/> SELECT ?s WHERE { ?s ex:p ?v . FILTER (?v > 10) }"
        original = evaluator.select(text)
        reserialized = evaluator.select(serialize_query(parse_query(text)))
        assert original.to_dicts() == reserialized.to_dicts()


class TestFormatting:
    def test_prefixes_declared(self):
        text = serialize_query(parse_query(FIGURE_1_QUERY))
        assert "PREFIX akt: <http://www.aktors.org/ontology/portal#>" in text
        assert "PREFIX id: <http://southampton.rkbexplorer.com/id/>" in text

    def test_distinct_and_projection(self):
        text = serialize_query(parse_query(FIGURE_1_QUERY))
        assert "SELECT DISTINCT ?a" in text

    def test_rdf_type_serialised_as_a(self):
        text = serialize_query(parse_query(
            "PREFIX ex: <http://ex.org/> SELECT ?x WHERE { ?x a ex:Person }"
        ))
        assert " a ex:Person ." in text

    def test_filter_rendered(self):
        text = serialize_query(parse_query(FIGURE_1_QUERY))
        assert "FILTER" in text
        assert "id:person-02686" in text

    def test_select_star_rendered(self):
        text = serialize_query(parse_query("SELECT * WHERE { ?s ?p ?o }"))
        assert "SELECT *" in text

    def test_construct_template_rendered(self):
        text = serialize_query(parse_query(
            "PREFIX ex: <http://ex.org/> CONSTRUCT { ?s ex:q ?o } WHERE { ?s ex:p ?o }"
        ))
        assert "CONSTRUCT {" in text
        assert "ex:q" in text
