"""Differential property test: static analysis never changes answers.

The analyzer's executable claims — constant-FILTER folding, redundancy
pruning, provable-emptiness short-circuits — are optimisations, so the
solution multiset with analysis enabled must be identical to the multiset
with analysis disabled, on every engine.  The random queries reuse the
planner-differential generators and deliberately mix in constant-true and
constant-false FILTERs so the folding and short-circuit paths are hit,
not just the pass-through.
"""

from __future__ import annotations

from collections import Counter

from hypothesis import given, settings, strategies as st

from repro.rdf import Graph, Literal, Triple
from repro.sparql import (
    ENGINES,
    BinaryExpression,
    Filter,
    Prologue,
    QueryEvaluator,
    SelectQuery,
    TermExpression,
)

from .test_planner_differential import data_triples, group_patterns

constant_expressions = st.sampled_from([
    TermExpression(Literal(True)),
    TermExpression(Literal(False)),
    BinaryExpression("=", TermExpression(Literal(1)), TermExpression(Literal(1))),
    BinaryExpression("=", TermExpression(Literal(1)), TermExpression(Literal(2))),
    BinaryExpression("<", TermExpression(Literal(3)), TermExpression(Literal(4))),
])


@st.composite
def analyzed_groups(draw):
    """A random group pattern, optionally salted with constant FILTERs."""
    group = draw(group_patterns())
    for _ in range(draw(st.integers(min_value=0, max_value=2))):
        group.add(Filter(draw(constant_expressions)))
    return group


def _solution_multiset(result):
    return Counter(frozenset(binding.as_dict().items()) for binding in result.bindings)


@settings(max_examples=100, deadline=None)
@given(st.lists(data_triples, max_size=20), analyzed_groups())
def test_analysis_changes_no_answers(triples, where):
    graph = Graph()
    for s, p, o in triples:
        graph.add(Triple(s, p, o))
    query = SelectQuery(Prologue(), [], where)

    for engine in ENGINES:
        plain = QueryEvaluator(graph, engine=engine, analysis=False).select(query)
        analyzed = QueryEvaluator(graph, engine=engine, analysis=True).select(query)
        assert _solution_multiset(analyzed) == _solution_multiset(plain), (
            f"analysis changed the answers on engine {engine}"
        )
