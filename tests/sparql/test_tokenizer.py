"""Unit tests for the SPARQL tokenizer."""

import pytest

from repro.sparql import SparqlLexError, tokenize_sparql


def kinds(text: str):
    return [token.kind for token in tokenize_sparql(text)]


def values(text: str, kind: str):
    return [token.value for token in tokenize_sparql(text) if token.kind == kind]


class TestTokenKinds:
    def test_keywords_case_insensitive(self):
        tokens = tokenize_sparql("select Distinct WHERE filter OPTIONAL union")
        assert [t.value for t in tokens[:-1]] == [
            "SELECT", "DISTINCT", "WHERE", "FILTER", "OPTIONAL", "UNION",
        ]
        assert all(t.kind == "KEYWORD" for t in tokens[:-1])

    def test_variables_both_sigils(self):
        assert values("?x $y ?longName42", "VAR") == ["?x", "$y", "?longName42"]

    def test_iri_and_pname(self):
        tokens = tokenize_sparql("<http://ex.org/x> akt:has-author :bare")
        assert tokens[0].kind == "IRIREF"
        assert tokens[1].kind == "PNAME" and tokens[1].value == "akt:has-author"
        assert tokens[2].kind == "PNAME" and tokens[2].value == ":bare"

    def test_pname_does_not_swallow_statement_dot(self):
        tokens = tokenize_sparql("ex:thing. }")
        assert tokens[0].value == "ex:thing"
        assert tokens[1].kind == "DOT"

    def test_numbers(self):
        assert kinds("42 -7 3.14 1.0e6")[:-1] == ["INTEGER", "INTEGER", "DECIMAL", "DOUBLE"]

    def test_strings_with_lang_and_datatype(self):
        tokens = tokenize_sparql('"hi"@en "5"^^xsd:integer \'\'\'long\ntext\'\'\'')
        assert tokens[0].kind == "STRING"
        assert tokens[1].kind == "LANGTAG"
        assert tokens[2].kind == "STRING"
        assert tokens[3].kind == "DATATYPE_MARKER"
        assert tokens[5].kind == "STRING"

    def test_operators(self):
        expected = ["NEQ", "LE", "GE", "AND", "OR", "EQ", "BANG", "LT", "GT",
                    "PLUS", "MINUS", "STAR", "SLASH"]
        assert kinds("!= <= >= && || = ! < > + - * /")[:-1] == expected

    def test_punctuation(self):
        assert kinds("{ } ( ) [ ] ; , .")[:-1] == [
            "LBRACE", "RBRACE", "LPAREN", "RPAREN", "LBRACKET", "RBRACKET",
            "SEMICOLON", "COMMA", "DOT",
        ]

    def test_blank_node(self):
        assert values("_:b1 _:anon.x", "BLANK_NODE") == ["_:b1", "_:anon.x"]

    def test_comments_skipped(self):
        assert kinds("?x # a comment\n?y")[:-1] == ["VAR", "VAR"]

    def test_a_keyword_vs_word(self):
        tokens = tokenize_sparql("a abc")
        assert tokens[0].kind == "KEYWORD" and tokens[0].value == "A"
        assert tokens[1].kind == "WORD"

    def test_line_and_column_tracking(self):
        tokens = tokenize_sparql("SELECT ?x\nWHERE { ?x ?p ?o }")
        where = next(t for t in tokens if t.value == "WHERE")
        assert where.line == 2
        assert where.column == 1

    def test_eof_always_last(self):
        assert tokenize_sparql("")[-1].kind == "EOF"
        assert tokenize_sparql("SELECT")[-1].kind == "EOF"

    def test_unexpected_character_raises(self):
        with pytest.raises(SparqlLexError):
            tokenize_sparql("SELECT § WHERE")

    def test_iriref_not_confused_with_less_than(self):
        tokens = tokenize_sparql("FILTER (?x < 5)")
        assert "LT" in [t.kind for t in tokens]
        tokens = tokenize_sparql("?s <http://ex.org/p> ?o")
        assert tokens[1].kind == "IRIREF"
