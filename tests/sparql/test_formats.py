"""Wire formats: golden files, negotiation, strict term serialisation."""

from pathlib import Path

import pytest

from repro.rdf import BNode, Literal, URIRef, Variable, XSD
from repro.sparql import AskResult, Binding, ResultSet, TermSerializationError
from repro.sparql.formats import (
    FormatError,
    negotiate,
    negotiate_graph,
    parse_results,
    term_from_json,
    term_to_json,
    write_results,
)

GOLDEN_DIR = Path(__file__).parent / "golden"


def read_golden(name: str) -> str:
    """Golden file text, byte-faithful (CSV line endings are \\r\\n)."""
    return (GOLDEN_DIR / name).read_bytes().decode("utf-8")


def golden_result_set() -> ResultSet:
    """A small result set exercising every term kind and an unbound cell."""
    s, label, count = Variable("s"), Variable("label"), Variable("count")
    return ResultSet(
        [s, label, count],
        [
            Binding({
                s: URIRef("http://example.org/alpha"),
                label: Literal("Alpha", lang="en"),
                count: Literal(3),
            }),
            Binding({
                s: BNode("node1"),
                label: Literal('say "hi",\tok'),
            }),
            Binding({
                s: URIRef("http://example.org/beta"),
                count: Literal("2.5", datatype=XSD.decimal),
            }),
        ],
    )


class TestGoldenFiles:
    """Each format's output is pinned byte-for-byte and parses back."""

    @pytest.mark.parametrize("format_name", ["json", "xml", "csv", "tsv"])
    def test_select_matches_golden(self, format_name):
        expected = read_golden(f"select.{format_name}")
        assert write_results(golden_result_set(), format_name) == expected

    @pytest.mark.parametrize("format_name", ["json", "xml", "tsv"])
    def test_select_golden_parses_back_losslessly(self, format_name):
        text = read_golden(f"select.{format_name}")
        parsed = parse_results(text, format_name)
        reference = golden_result_set()
        assert parsed.variables == reference.variables
        assert parsed.bindings == reference.bindings

    def test_select_golden_csv_is_value_faithful(self):
        text = read_golden("select.csv")
        parsed = parse_results(text, "csv")
        # CSV is lossy by specification; re-serialising the parse must be a
        # fixed point (same cells), even though term kinds are gone.
        assert write_results(parsed, "csv") == text

    @pytest.mark.parametrize("format_name", ["json", "xml"])
    def test_ask_matches_golden_and_round_trips(self, format_name):
        expected = read_golden(f"ask.{format_name}")
        assert write_results(AskResult(True), format_name) == expected
        assert parse_results(expected, format_name) == AskResult(True)


class TestAskRestrictions:
    @pytest.mark.parametrize("format_name", ["csv", "tsv"])
    def test_ask_has_no_tabular_encoding(self, format_name):
        with pytest.raises(FormatError):
            write_results(AskResult(True), format_name)

    def test_table_format_renders_ask(self):
        assert write_results(AskResult(False), "table") == "False\n"


class TestStrictTermSerialisation:
    """The _term_to_json fix: unknown terms raise instead of lying."""

    def test_variable_in_binding_raises_typed_error(self):
        with pytest.raises(TermSerializationError):
            term_to_json(Variable("leaked"))

    def test_json_writer_propagates_the_error(self):
        v = Variable("x")
        poisoned = ResultSet([v], [Binding({v: Variable("leaked")})])
        with pytest.raises(TermSerializationError):
            write_results(poisoned, "json")

    @pytest.mark.parametrize("format_name", ["xml", "csv", "tsv"])
    def test_other_writers_propagate_the_error(self, format_name):
        v = Variable("x")
        poisoned = ResultSet([v], [Binding({v: Variable("leaked")})])
        with pytest.raises(TermSerializationError):
            write_results(poisoned, format_name)

    def test_term_from_json_rejects_unknown_types(self):
        with pytest.raises(FormatError):
            term_from_json({"type": "unknown", "value": "x"})

    def test_term_from_json_accepts_legacy_typed_literal(self):
        term = term_from_json({
            "type": "typed-literal", "value": "5",
            "datatype": str(XSD.integer),
        })
        assert term == Literal(5)


class TestNegotiation:
    def test_default_without_header(self):
        assert negotiate(None) == "json"
        assert negotiate("") == "json"
        assert negotiate("*/*") == "json"

    def test_exact_media_types(self):
        assert negotiate("application/sparql-results+xml") == "xml"
        assert negotiate("text/csv") == "csv"
        assert negotiate("text/tab-separated-values") == "tsv"
        assert negotiate("application/json") == "json"

    def test_quality_weights_order_preferences(self):
        assert negotiate("text/csv;q=0.5, application/sparql-results+json") == "json"
        assert negotiate("text/csv;q=0.9, application/sparql-results+xml;q=0.1") == "csv"

    def test_zero_quality_is_a_refusal(self):
        assert negotiate("text/csv;q=0") is None

    def test_unsupported_returns_none(self):
        assert negotiate("image/png") is None

    def test_allowed_restricts_candidates(self):
        assert negotiate("text/csv", allowed=("json", "xml")) is None
        assert negotiate("application/json", allowed=("json", "xml")) == "json"

    def test_type_wildcard(self):
        assert negotiate("text/*") in ("csv", "tsv", "xml")

    def test_graph_negotiation(self):
        assert negotiate_graph(None) == "turtle"
        assert negotiate_graph("application/n-triples") == "ntriples"
        assert negotiate_graph("text/turtle") == "turtle"
        assert negotiate_graph("image/png") is None


class TestParserErrors:
    def test_malformed_json(self):
        with pytest.raises(FormatError):
            parse_results("{not json", "json")

    def test_json_missing_head(self):
        with pytest.raises(FormatError):
            parse_results('{"results": {"bindings": []}}', "json")

    def test_malformed_xml(self):
        with pytest.raises(FormatError):
            parse_results("<sparql", "xml")

    def test_tsv_header_must_be_variables(self):
        with pytest.raises(FormatError):
            parse_results("a\tb\n", "tsv")

    def test_tsv_row_wider_than_header(self):
        with pytest.raises(FormatError):
            parse_results('?a\n<http://x.org/1>\t<http://x.org/2>\n', "tsv")

    def test_unknown_format(self):
        with pytest.raises(FormatError):
            parse_results("", "yaml")
        with pytest.raises(FormatError):
            write_results(golden_result_set(), "yaml")
