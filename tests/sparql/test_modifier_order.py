"""Regression tests for the solution-modifier pipeline.

Per SPARQL semantics the order is ORDER BY → projection → DISTINCT →
OFFSET → LIMIT.  The evaluator used to apply OFFSET/LIMIT *before*
DISTINCT, so ``SELECT DISTINCT ?t ... LIMIT 2`` over four rows with two
distinct values returned one row instead of two, and ``OFFSET 1`` dropped
a pre-deduplication row.
"""

import pytest

from repro.rdf import Graph, Literal, Triple, URIRef
from repro.sparql import QueryEvaluator, parse_query
from repro.sparql.ast import ConstructQuery

EX = "http://ex.org/"
PREFIX = "PREFIX ex: <http://ex.org/>\n"


def uri(name: str) -> URIRef:
    return URIRef(EX + name)


@pytest.fixture()
def evaluator() -> QueryEvaluator:
    """Four items over two types: 2x Widget, 2x Gadget."""
    graph = Graph()
    graph.add(Triple(uri("i1"), uri("type"), uri("Widget")))
    graph.add(Triple(uri("i2"), uri("type"), uri("Widget")))
    graph.add(Triple(uri("i3"), uri("type"), uri("Gadget")))
    graph.add(Triple(uri("i4"), uri("type"), uri("Gadget")))
    return QueryEvaluator(graph)


class TestSelectModifierOrder:
    def test_distinct_applies_before_limit(self, evaluator):
        """The ISSUE repro: 4 rows, 2 distinct values, LIMIT 2 → 2 rows."""
        result = evaluator.select(
            PREFIX + "SELECT DISTINCT ?t WHERE { ?i ex:type ?t } ORDER BY ?t LIMIT 2"
        )
        assert len(result) == 2
        assert result.distinct_values("t") == {uri("Widget"), uri("Gadget")}

    def test_distinct_applies_before_offset(self, evaluator):
        """OFFSET slices the deduplicated rows, not the raw rows."""
        result = evaluator.select(
            PREFIX + "SELECT DISTINCT ?t WHERE { ?i ex:type ?t } ORDER BY ?t OFFSET 1"
        )
        # Distinct ordered rows are [Gadget, Widget]; OFFSET 1 leaves Widget.
        assert [binding.get_term("t") for binding in result] == [uri("Widget")]

    def test_distinct_offset_limit_combination(self, evaluator):
        result = evaluator.select(
            PREFIX + "SELECT DISTINCT ?t WHERE { ?i ex:type ?t } ORDER BY ?t OFFSET 1 LIMIT 1"
        )
        assert [binding.get_term("t") for binding in result] == [uri("Widget")]

    def test_limit_without_distinct_keeps_raw_rows(self, evaluator):
        result = evaluator.select(
            PREFIX + "SELECT ?t WHERE { ?i ex:type ?t } LIMIT 3"
        )
        assert len(result) == 3

    def test_order_by_may_use_non_projected_variable(self):
        graph = Graph()
        graph.add(Triple(uri("a"), uri("rank"), Literal(2)))
        graph.add(Triple(uri("b"), uri("rank"), Literal(1)))
        result = QueryEvaluator(graph).select(
            PREFIX + "SELECT ?s WHERE { ?s ex:rank ?r } ORDER BY ?r"
        )
        assert [binding.get_term("s") for binding in result] == [uri("b"), uri("a")]

    def test_distinct_without_slicing_unchanged(self, evaluator):
        result = evaluator.select(PREFIX + "SELECT DISTINCT ?t WHERE { ?i ex:type ?t }")
        assert len(result) == 2


class TestConstructModifierOrder:
    def test_construct_limit_applies_after_dedup(self, evaluator):
        """CONSTRUCT shares the modifier pipeline: DISTINCT before LIMIT."""
        # The UNION of a pattern with itself yields every solution twice;
        # ordered by ?i the raw sequence is [i1, i1, i2, i2, i3, i3, ...].
        parsed = parse_query(
            PREFIX + "CONSTRUCT { ?i ex:kept ex:yes } "
            "WHERE { { ?i ex:type ?t } UNION { ?i ex:type ?t } } "
            "ORDER BY ?i LIMIT 4"
        )
        assert isinstance(parsed, ConstructQuery)
        # Force DISTINCT at the AST level (the surface grammar has no
        # CONSTRUCT DISTINCT).  Dedup-before-LIMIT keeps all four distinct
        # solutions; the old slice-then-dedup pipeline kept only i1 and i2.
        parsed.modifiers.distinct = True
        graph = evaluator.evaluate(parsed)
        subjects = {triple.subject for triple in graph}
        assert subjects == {uri("i1"), uri("i2"), uri("i3"), uri("i4")}

    def test_construct_offset_and_limit(self, evaluator):
        graph = evaluator.evaluate(parse_query(
            PREFIX + "CONSTRUCT { ?i ex:kept ex:yes } WHERE { ?i ex:type ?t } "
            "ORDER BY ?i OFFSET 1 LIMIT 2"
        ))
        subjects = {triple.subject for triple in graph}
        assert subjects == {uri("i2"), uri("i3")}
