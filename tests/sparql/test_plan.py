"""Unit tests for the cost-based planner and streaming execution."""

from __future__ import annotations

import pytest

from repro.rdf import Graph, Literal, Triple, URIRef, Variable
from repro.sparql import (
    QueryEvaluator,
    explain_query,
    ordered_bgp_patterns,
    parse_query,
    plan_query,
)
from repro.sparql.plan import CardinalityEstimator, order_patterns
from repro.sparql.results import Binding


def u(name: str) -> URIRef:
    return URIRef(f"http://plan.example/{name}")


PREFIX = "PREFIX ex:<http://plan.example/>\n"


@pytest.fixture()
def graph() -> Graph:
    g = Graph()
    for i in range(100):
        g.add(Triple(u(f"person{i}"), u("type"), u("Person")))
        g.add(Triple(u(f"person{i}"), u("name"), Literal(f"name{i:03d}")))
    # One rare predicate: only three triples.
    for i in range(3):
        g.add(Triple(u(f"person{i}"), u("leads"), u(f"team{i}")))
    return g


class CountingGraph:
    """Graph proxy counting index lookups (to observe early termination)."""

    def __init__(self, graph: Graph) -> None:
        self._graph = graph
        self.lookups = 0

    def triples(self, s=None, p=None, o=None):
        self.lookups += 1
        return self._graph.triples(s, p, o)

    def cardinality(self, s=None, p=None, o=None):
        return self._graph.cardinality(s, p, o)

    @property
    def stats(self):
        return self._graph.stats

    def __len__(self):
        return len(self._graph)


# --------------------------------------------------------------------------- #
# Join ordering
# --------------------------------------------------------------------------- #
def test_statistics_put_rare_pattern_first(graph: Graph) -> None:
    estimator = CardinalityEstimator(graph)
    patterns = [
        Triple(Variable("p"), u("type"), u("Person")),     # 100 matches
        Triple(Variable("p"), u("name"), Variable("n")),   # 100 matches
        Triple(Variable("p"), u("leads"), Variable("t")),  # 3 matches
    ]
    ordered = order_patterns(patterns, set(), estimator)
    assert ordered[0].predicate == u("leads")


def test_order_patterns_is_deterministic(graph: Graph) -> None:
    estimator = CardinalityEstimator(graph)
    patterns = [
        Triple(Variable("p"), u("name"), Variable("n")),
        Triple(Variable("p"), u("type"), u("Person")),
        Triple(Variable("p"), u("leads"), Variable("t")),
    ]
    reference = order_patterns(patterns, set(), estimator)
    for permutation in (patterns[::-1], patterns[1:] + patterns[:1]):
        assert order_patterns(permutation, set(), estimator) == reference


def test_ordered_bgp_patterns_deterministic_under_permutation() -> None:
    """The naive evaluator's pattern order no longer depends on input order."""
    patterns = [
        Triple(Variable("a"), u("p"), Variable("b")),
        Triple(Variable("b"), u("q"), Variable("c")),
        Triple(Variable("x"), u("p"), u("const")),
        Triple(Variable("a"), u("r"), u("const")),
    ]
    reference = ordered_bgp_patterns(patterns)
    import itertools

    for permutation in itertools.permutations(patterns):
        assert ordered_bgp_patterns(list(permutation)) == reference


def test_ordered_bgp_patterns_respects_initial_binding() -> None:
    patterns = [
        Triple(Variable("a"), u("p"), Variable("b")),
        Triple(Variable("c"), u("q"), u("const")),
    ]
    # With ?a pre-bound the first pattern has two bound positions and wins.
    bound = Binding({Variable("a"): u("ground")})
    assert ordered_bgp_patterns(patterns, bound)[0].predicate == u("p")
    # Without it, the ground-object pattern is more selective.
    assert ordered_bgp_patterns(patterns)[0].predicate == u("q")


def test_connected_patterns_avoid_cross_products(graph: Graph) -> None:
    estimator = CardinalityEstimator(graph)
    patterns = [
        Triple(Variable("p"), u("leads"), Variable("t")),   # cheapest: first
        Triple(Variable("q"), u("type"), u("Person")),      # disconnected
        Triple(Variable("p"), u("name"), Variable("n")),    # connected to ?p
    ]
    ordered = order_patterns(patterns, set(), estimator)
    assert [p.predicate for p in ordered[:2]] == [u("leads"), u("name")]


# --------------------------------------------------------------------------- #
# Filter pushdown
# --------------------------------------------------------------------------- #
def test_filter_pushed_to_earliest_scan(graph: Graph) -> None:
    text = explain_query(
        PREFIX + """
        SELECT ?p WHERE {
          ?p ex:name ?n .
          ?p ex:leads ?t .
          FILTER (?n != "name000")
        }""",
        graph,
    )
    lines = [line.strip() for line in text.splitlines()]
    name_scan = next(line for line in lines if "/name>" in line and line.startswith("scan"))
    assert "[filter" in name_scan, text


def test_unbound_filter_not_pushed_below_optional(graph: Graph) -> None:
    query = PREFIX + """
    SELECT ?p WHERE {
      ?p ex:name ?n .
      OPTIONAL { ?p ex:leads ?t }
      FILTER (!BOUND(?t))
    }"""
    text = explain_query(query, graph)
    # The !BOUND filter must sit above the LeftJoin, not inside a scan.
    assert "Filter [!BOUND(?t)]" in text, text
    result = QueryEvaluator(graph).select(query)
    naive = QueryEvaluator(graph, use_planner=False).select(query)
    assert sorted(b["p"] for b in result) == sorted(b["p"] for b in naive)
    assert len(result) == 97


# --------------------------------------------------------------------------- #
# Streaming / early termination
# --------------------------------------------------------------------------- #
def test_limit_stops_scanning_early(graph: Graph) -> None:
    counting = CountingGraph(graph)
    query = parse_query(PREFIX + "SELECT ?p ?n WHERE { ?p ex:type ex:Person . ?p ex:name ?n } LIMIT 2")
    rows = list(plan_query(query, counting).execute())
    assert len(rows) == 2
    # 100 persons in the graph; a materialising evaluator would do >= 101
    # index lookups (one enumeration + one per person).  The streaming plan
    # pulls only what LIMIT needs.
    assert counting.lookups <= 10


def test_ask_stops_at_first_solution(graph: Graph) -> None:
    counting = CountingGraph(graph)
    query = parse_query(PREFIX + "ASK { ?p ex:type ex:Person . ?p ex:name ?n }")
    evaluator = QueryEvaluator(counting)
    assert bool(evaluator.evaluate(query))
    assert counting.lookups <= 5


# --------------------------------------------------------------------------- #
# Join strategies
# --------------------------------------------------------------------------- #
def test_hash_join_used_for_safe_shared_variable_join(graph: Graph) -> None:
    # Two groups sharing the certainly-bound ?p; the inner FILTER keeps the
    # right group from being coalesced into the left BGP, so an actual join
    # operator is required — and hash-joining on ?p is safe here.
    query = PREFIX + """
    SELECT ?p ?n ?t WHERE {
      { ?p ex:name ?n . ?p ex:type ex:Person }
      { ?p ex:leads ?t . FILTER (?t != ex:team99) }
    }"""
    text = explain_query(query, graph)
    assert "HashJoin on (?p)" in text, text
    planned = QueryEvaluator(graph).select(query)
    naive = QueryEvaluator(graph, use_planner=False).select(query)
    assert sorted(map(repr, planned)) == sorted(map(repr, naive))
    assert len(planned) == 3


def test_hash_join_builds_once_across_correlated_runs(graph: Graph) -> None:
    from repro.sparql.plan import BGPScanOp, HashJoinOp, _ScanStep

    counting = CountingGraph(graph)
    left = BGPScanOp(counting, [_ScanStep(Triple(Variable("p"), u("name"), Variable("n")), [], 100.0)], [])
    right = BGPScanOp(counting, [_ScanStep(Triple(Variable("p"), u("leads"), Variable("t")), [], 3.0)], [])
    join = HashJoinOp(left, right, [Variable("p")])

    join.reset()
    baseline = counting.lookups
    # A correlated parent re-runs the join once per outer binding; the
    # build side must be scanned only on the first run.
    first = list(join.run(iter((Binding(),))))
    after_first = counting.lookups
    for _ in range(5):
        assert list(join.run(iter((Binding(),)))) == first
    assert counting.lookups == after_first + 5  # one probe-side lookup per run
    assert after_first - baseline == 2  # probe + one-time build

    # A new execution (reset) rebuilds against possibly mutated data.
    join.reset()
    list(join.run(iter((Binding(),))))
    assert counting.lookups == after_first + 5 + 2


def test_adjacent_bgps_coalesce_into_one_scan_chain(graph: Graph) -> None:
    text = explain_query(
        PREFIX + "SELECT * WHERE { { ?p ex:name ?n } { ?p ex:leads ?t } }", graph
    )
    assert "Join" not in text
    assert text.count("scan (") == 2


def test_explain_mentions_estimates_and_form(graph: Graph) -> None:
    text = explain_query(PREFIX + "SELECT ?p WHERE { ?p ex:leads ?t } LIMIT 1", graph)
    assert text.startswith("plan for SELECT query")
    assert "est=3.0" in text
    assert "Slice" in text


def test_plans_work_without_statistics() -> None:
    """Graph-likes without cardinality/stats fall back to the heuristic."""

    class BareGraph:
        def __init__(self, graph: Graph) -> None:
            self._graph = graph

        def triples(self, s=None, p=None, o=None):
            return self._graph.triples(s, p, o)

        def __len__(self):
            return len(self._graph)

    g = Graph()
    g.add(Triple(u("a"), u("p"), u("b")))
    bare = BareGraph(g)
    query = parse_query(PREFIX + "SELECT ?x WHERE { ex:a ex:p ?x }")
    rows = list(plan_query(query, bare).execute())
    assert len(rows) == 1
