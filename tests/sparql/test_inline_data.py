"""VALUES (inline data) support: parsing, serialisation, both engines.

The federation decomposer ships bound-join batches as ``VALUES`` blocks,
which must survive serialisation to text and re-parsing on the remote side
(the loopback servers re-parse every sub-query), and must evaluate to the
same solutions under the naive evaluator and the planner.
"""

import pytest

from repro.rdf import Graph, Literal, Triple, URIRef, Variable, XSD
from repro.sparql import (
    InlineData,
    QueryEvaluator,
    SparqlParseError,
    parse_query,
)

EX = "http://ex.org/"


def _graph(n: int = 6) -> Graph:
    graph = Graph()
    for index in range(n):
        graph.add(Triple(
            URIRef(f"{EX}s{index}"), URIRef(EX + "p"), URIRef(f"{EX}o{index}")
        ))
        graph.add(Triple(
            URIRef(f"{EX}s{index}"), URIRef(EX + "size"),
            Literal(index, datatype=XSD.integer),
        ))
    return graph


def _rows(result):
    return sorted(
        tuple((k, str(v)) for k, v in sorted(b.as_dict().items()))
        for b in result
    )


class TestParsing:
    def test_single_variable_form(self):
        query = parse_query(
            "PREFIX ex: <http://ex.org/>\n"
            "SELECT ?s WHERE { VALUES ?s { ex:s1 ex:s2 } ?s ex:p ?o }"
        )
        blocks = [e for e in query.where.elements if isinstance(e, InlineData)]
        assert len(blocks) == 1
        assert blocks[0].columns == [Variable("s")]
        assert len(blocks[0].rows) == 2

    def test_multi_variable_form_with_undef(self):
        query = parse_query(
            "PREFIX ex: <http://ex.org/>\n"
            "SELECT * WHERE { VALUES (?s ?o) { (ex:s1 ex:o1) (UNDEF ex:o2) } }"
        )
        block = next(e for e in query.where.elements if isinstance(e, InlineData))
        assert block.rows[1][0] is None
        assert str(block.rows[1][1]) == f"{EX}o2"

    def test_literal_values(self):
        query = parse_query(
            'SELECT * WHERE { VALUES ?x { 1 2.5 "text" true } }'
        )
        block = next(e for e in query.where.elements if isinstance(e, InlineData))
        assert len(block.rows) == 4

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(SparqlParseError):
            parse_query(
                "PREFIX ex: <http://ex.org/>\n"
                "SELECT * WHERE { VALUES (?a ?b) { (ex:s1) } }"
            )

    def test_variable_not_allowed_as_data(self):
        with pytest.raises(SparqlParseError):
            parse_query("SELECT * WHERE { VALUES ?x { ?y } }")


class TestRoundTrip:
    def test_serialise_and_reparse(self):
        text = (
            "PREFIX ex: <http://ex.org/>\n"
            "SELECT ?s ?o WHERE { VALUES (?s ?o) { (ex:s1 ex:o1) (UNDEF ex:o2) } }"
        )
        query = parse_query(text)
        rendered = query.serialize()
        assert "VALUES" in rendered and "UNDEF" in rendered
        reparsed = parse_query(rendered)
        original = next(e for e in query.where.elements if isinstance(e, InlineData))
        restored = next(e for e in reparsed.where.elements if isinstance(e, InlineData))
        assert restored == original


class TestEvaluation:
    @pytest.mark.parametrize("use_planner", [True, False])
    def test_values_restricts_bgp(self, use_planner):
        result = QueryEvaluator(_graph(), use_planner=use_planner).evaluate(
            parse_query(
                "PREFIX ex: <http://ex.org/>\n"
                "SELECT ?s ?o WHERE { VALUES ?s { ex:s1 ex:s3 } ?s ex:p ?o }"
            )
        )
        assert _rows(result) == [
            (("o", f"{EX}o1"), ("s", f"{EX}s1")),
            (("o", f"{EX}o3"), ("s", f"{EX}s3")),
        ]

    @pytest.mark.parametrize("use_planner", [True, False])
    def test_undef_leaves_column_unconstrained(self, use_planner):
        result = QueryEvaluator(_graph(3), use_planner=use_planner).evaluate(
            parse_query(
                "PREFIX ex: <http://ex.org/>\n"
                "SELECT ?s ?o WHERE {"
                " VALUES (?s ?o) { (ex:s0 ex:o0) (UNDEF ex:o2) (ex:s1 ex:o9) }"
                " ?s ex:p ?o }"
            )
        )
        # (s0,o0) matches exactly; UNDEF row matches any subject with o2;
        # (s1,o9) contradicts the data and drops out.
        assert _rows(result) == [
            (("o", f"{EX}o0"), ("s", f"{EX}s0")),
            (("o", f"{EX}o2"), ("s", f"{EX}s2")),
        ]

    @pytest.mark.parametrize("use_planner", [True, False])
    def test_values_after_patterns_joins_identically(self, use_planner):
        before = QueryEvaluator(_graph(), use_planner=use_planner).evaluate(
            parse_query(
                "PREFIX ex: <http://ex.org/>\n"
                "SELECT ?s ?o WHERE { VALUES ?s { ex:s2 } ?s ex:p ?o }"
            )
        )
        after = QueryEvaluator(_graph(), use_planner=use_planner).evaluate(
            parse_query(
                "PREFIX ex: <http://ex.org/>\n"
                "SELECT ?s ?o WHERE { ?s ex:p ?o VALUES ?s { ex:s2 } }"
            )
        )
        assert _rows(before) == _rows(after)

    @pytest.mark.parametrize("use_planner", [True, False])
    def test_values_with_filter(self, use_planner):
        result = QueryEvaluator(_graph(), use_planner=use_planner).evaluate(
            parse_query(
                "PREFIX ex: <http://ex.org/>\n"
                "SELECT ?s ?n WHERE {"
                " VALUES ?s { ex:s1 ex:s2 ex:s4 }"
                " ?s ex:size ?n FILTER (?n >= 2) }"
            )
        )
        assert [b.get_term("n").lexical for b in result] is not None
        assert {str(b.get_term("s")) for b in result} == {f"{EX}s2", f"{EX}s4"}

    @pytest.mark.parametrize("use_planner", [True, False])
    def test_empty_table_produces_no_solutions(self, use_planner):
        result = QueryEvaluator(_graph(), use_planner=use_planner).evaluate(
            parse_query(
                "PREFIX ex: <http://ex.org/>\n"
                "SELECT ?s WHERE { VALUES ?s { } ?s ex:p ?o }"
            )
        )
        assert len(result) == 0

    def test_engines_agree_on_values_queries(self):
        graph = _graph(8)
        queries = [
            "PREFIX ex: <http://ex.org/>\nSELECT * WHERE { VALUES ?s { ex:s1 ex:s5 } ?s ex:p ?o }",
            "PREFIX ex: <http://ex.org/>\nSELECT DISTINCT ?o WHERE { VALUES (?s) { (ex:s1) (ex:s1) } ?s ex:p ?o }",
            "PREFIX ex: <http://ex.org/>\nSELECT ?s ?n WHERE { VALUES ?n { 1 3 } ?s ex:size ?n } ORDER BY ?s",
        ]
        for text in queries:
            planned = QueryEvaluator(graph, use_planner=True).evaluate(parse_query(text))
            naive = QueryEvaluator(graph, use_planner=False).evaluate(parse_query(text))
            assert _rows(planned) == _rows(naive), text
