"""Unit tests for the SPARQL algebra translation."""

from repro.rdf import Graph, Literal, Triple, URIRef, Variable
from repro.sparql import (
    AlgebraBGP,
    AlgebraDistinct,
    AlgebraFilter,
    AlgebraJoin,
    AlgebraLeftJoin,
    AlgebraProject,
    AlgebraSlice,
    AlgebraUnion,
    QueryEvaluator,
    algebra_to_group,
    parse_query,
    to_sexpr,
    translate_group,
    translate_query,
)

from ..conftest import FIGURE_1_QUERY

EX = "PREFIX ex: <http://ex.org/>\n"


def pattern_algebra(text: str):
    return translate_group(parse_query(text).where)


class TestTranslation:
    def test_figure1_tree_shape(self):
        node = translate_query(parse_query(FIGURE_1_QUERY))
        # distinct(project(filter(bgp)))
        assert isinstance(node, AlgebraDistinct)
        project = node.child
        assert isinstance(project, AlgebraProject)
        assert project.projection == [Variable("a")]
        filter_node = project.child
        assert isinstance(filter_node, AlgebraFilter)
        assert isinstance(filter_node.child, AlgebraBGP)
        assert len(filter_node.child.patterns) == 2

    def test_filter_scopes_over_group(self):
        node = pattern_algebra(EX + """
            SELECT ?x WHERE { ?x ex:p ?y . FILTER (?y > 3) ?x ex:q ?z . }
        """)
        assert isinstance(node, AlgebraFilter)

    def test_optional_becomes_left_join(self):
        node = pattern_algebra(EX + """
            SELECT ?x WHERE { ?x ex:p ?y . OPTIONAL { ?x ex:q ?z } }
        """)
        assert isinstance(node, AlgebraLeftJoin)
        assert isinstance(node.left, AlgebraBGP)
        assert isinstance(node.right, AlgebraBGP)

    def test_optional_filter_attached_to_left_join(self):
        node = pattern_algebra(EX + """
            SELECT ?x WHERE { ?x ex:p ?y . OPTIONAL { ?x ex:q ?z . FILTER (?z > 1) } }
        """)
        assert isinstance(node, AlgebraLeftJoin)
        assert node.expression is not None

    def test_union(self):
        node = pattern_algebra(EX + "SELECT ?x WHERE { { ?x a ex:A } UNION { ?x a ex:B } }")
        assert isinstance(node, AlgebraUnion)

    def test_nested_groups_join(self):
        node = pattern_algebra(EX + "SELECT ?x WHERE { { ?x ex:p ?y } ?y ex:q ?z }")
        assert isinstance(node, AlgebraJoin)

    def test_slice_and_modifiers(self):
        node = translate_query(parse_query(EX + "SELECT ?x WHERE { ?x ex:p ?y } LIMIT 5 OFFSET 2"))
        assert isinstance(node, AlgebraSlice)
        assert node.limit == 5
        assert node.offset == 2

    def test_variables_collected(self):
        node = pattern_algebra(EX + "SELECT * WHERE { ?x ex:p ?y . FILTER (?z > 1) }")
        assert node.variables() == {Variable("x"), Variable("y"), Variable("z")}


class TestBackTranslation:
    def test_algebra_to_group_roundtrip_semantics(self):
        graph = Graph()
        ex = "http://ex.org/"
        graph.add(Triple(URIRef(ex + "a"), URIRef(ex + "p"), Literal(5)))
        graph.add(Triple(URIRef(ex + "a"), URIRef(ex + "q"), Literal("x")))
        graph.add(Triple(URIRef(ex + "b"), URIRef(ex + "p"), Literal(50)))
        evaluator = QueryEvaluator(graph)

        query = parse_query(EX + """
            SELECT ?s WHERE { ?s ex:p ?v . OPTIONAL { ?s ex:q ?w } FILTER (?v < 10) }
        """)
        original_rows = evaluator.select(query).to_dicts()

        rebuilt = parse_query(EX + "SELECT ?s WHERE { ?s ex:p ?v }")
        rebuilt.where = algebra_to_group(translate_group(query.where))
        rebuilt_rows = evaluator.select(rebuilt).to_dicts()
        assert original_rows == rebuilt_rows

    def test_union_survives_roundtrip(self):
        query = parse_query(EX + "SELECT ?x WHERE { { ?x a ex:A } UNION { ?x a ex:B } }")
        group = algebra_to_group(translate_group(query.where))
        assert len(list(group.triples_blocks())) == 2


class TestTraversal:
    def test_walk_visits_every_node(self):
        node = translate_query(parse_query(FIGURE_1_QUERY))
        kinds = [type(n).__name__ for n in node.walk()]
        assert "AlgebraBGP" in kinds
        assert "AlgebraFilter" in kinds
        assert kinds[0] == "AlgebraDistinct"

    def test_transform_rewrites_bgp_leaves(self):
        node = translate_query(parse_query(FIGURE_1_QUERY))

        def drop_patterns(current):
            if isinstance(current, AlgebraBGP):
                return AlgebraBGP([])
            return None

        transformed = node.transform(drop_patterns)
        bgps = [n for n in transformed.walk() if isinstance(n, AlgebraBGP)]
        assert all(not bgp.patterns for bgp in bgps)
        # The original tree is untouched.
        original_bgps = [n for n in node.walk() if isinstance(n, AlgebraBGP)]
        assert any(bgp.patterns for bgp in original_bgps)

    def test_sexpr_rendering(self):
        node = translate_query(parse_query(FIGURE_1_QUERY))
        text = to_sexpr(node)
        assert text.startswith("(distinct")
        assert "(bgp" in text
        assert "(filter" in text
