"""Data-driven SPARQL conformance corpus.

Each case is a ``cases/<name>.rq`` query file with an expected-results
fixture next to it:

* ``<name>.expected.json`` for SELECT and ASK queries,
* ``<name>.expected.ttl`` for CONSTRUCT queries (compared up to blank-node
  isomorphism).

Every case executes through EVERY evaluation engine — the batched naive
and planner paths plus the dict-at-a-time reference evaluator and the
legacy streaming planner operators — and each must match the fixture.
The queried data is ``data/default.ttl`` unless the case ships a
``<name>.data.ttl`` override.

SELECT fixtures carry the solutions as ``{variable: n3-text}`` rows.
Comparison is order-insensitive (a SPARQL solution sequence is unordered)
unless the fixture sets ``"ordered": true`` — which queries with ORDER BY
do.  A fixture may instead pin only ``"cardinality"`` plus a ``"subset_of"``
row pool: the shape for LIMIT-without-ORDER-BY, where any n rows of the
full result are conformant and the two engines may legitimately pick
different ones.  Blank-node values are compared as anonymous markers (the
label is an implementation artefact).
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.rdf import Graph, SegmentStore
from repro.rdf.isomorphism import isomorphic
from repro.sparql import ENGINES, AskResult, QueryEvaluator, ResultSet, parse_query
from repro.turtle import parse_graph

CASES_DIR = Path(__file__).parent / "cases"
DEFAULT_DATA = Path(__file__).parent / "data" / "default.ttl"

CASE_NAMES = sorted(path.stem for path in CASES_DIR.glob("*.rq"))

#: Every case runs against both storage backends: the corpus is the proof
#: that a disk-backed graph answers byte-identically to the in-memory one.
BACKENDS = ("memory", "segment")


def _load_case_graph(name: str, backend: str = "memory",
                     tmp_path: Path | None = None) -> Graph:
    override = CASES_DIR / f"{name}.data.ttl"
    data_path = override if override.exists() else DEFAULT_DATA
    parsed = parse_graph(data_path.read_text(encoding="utf-8"), format="turtle")
    if backend == "memory":
        return parsed
    # A deliberately tiny write buffer forces multiple on-disk segments,
    # so queries exercise the segment binary-search path, not the buffer.
    graph = Graph(store=SegmentStore(tmp_path / "store", buffer_limit=8))
    graph.add_all(parsed)
    graph.flush()
    return graph


def _expected_fixture(name: str):
    json_path = CASES_DIR / f"{name}.expected.json"
    ttl_path = CASES_DIR / f"{name}.expected.ttl"
    if json_path.exists():
        return json.loads(json_path.read_text(encoding="utf-8"))
    if ttl_path.exists():
        return {"type": "construct", "graph": ttl_path.read_text(encoding="utf-8")}
    raise FileNotFoundError(f"conformance case {name} has no expected fixture")


def _normalise_term_text(text: str) -> str:
    # Blank-node labels are evaluator artefacts; compare them anonymously.
    return "_:b" if text.startswith("_:") else text


def _rows(result: ResultSet):
    rows = []
    for binding in result.bindings:
        row = {}
        for variable, term in binding.items():
            row[variable.name] = _normalise_term_text(term.n3())
        rows.append(row)
    return rows


def _canonical(rows):
    return sorted(tuple(sorted(row.items())) for row in rows)


def _check_select(result: ResultSet, expected) -> None:
    got = _rows(result)
    if "cardinality" in expected:
        assert len(got) == expected["cardinality"]
        pool = {tuple(sorted(row.items())) for row in expected["subset_of"]}
        for row in got:
            assert tuple(sorted(row.items())) in pool, f"unexpected row {row}"
        return
    want = expected["rows"]
    if expected.get("ordered"):
        assert got == want
    else:
        assert _canonical(got) == _canonical(want)


def _check(result, expected) -> None:
    kind = expected["type"]
    if kind == "select":
        assert isinstance(result, ResultSet)
        _check_select(result, expected)
    elif kind == "ask":
        assert isinstance(result, AskResult)
        assert bool(result) == expected["boolean"]
    elif kind == "construct":
        assert isinstance(result, Graph)
        assert isomorphic(result, parse_graph(expected["graph"], format="turtle"))
    else:  # pragma: no cover - fixture authoring error
        raise ValueError(f"unknown fixture type {kind!r}")


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("name", CASE_NAMES)
def test_conformance_case(name: str, engine: str, backend: str, tmp_path: Path) -> None:
    graph = _load_case_graph(name, backend, tmp_path)
    query = parse_query((CASES_DIR / f"{name}.rq").read_text(encoding="utf-8"))
    evaluator = QueryEvaluator(graph, engine=engine)
    _check(evaluator.evaluate(query), _expected_fixture(name))


@pytest.mark.parametrize("name", CASE_NAMES)
def test_expected_diagnostics(name: str) -> None:
    """Every case's static-analysis findings are pinned next to it.

    A ``<name>.diagnostics.json`` fixture lists the expected findings as
    ``{code, severity, line}`` entries; a case without the fixture must
    analyze clean.  This keeps the analyzer's output on the corpus under
    version control: a new or vanished diagnostic is a reviewable diff,
    not a silent behaviour change.
    """
    from repro.sparql.analysis import DIAGNOSTIC_CODES, analyze_query

    query = parse_query((CASES_DIR / f"{name}.rq").read_text(encoding="utf-8"))
    analysis = analyze_query(query)
    got = [
        {"code": d.code, "severity": d.severity, "line": d.span.line}
        for d in analysis.diagnostics
    ]
    fixture = CASES_DIR / f"{name}.diagnostics.json"
    want = json.loads(fixture.read_text(encoding="utf-8")) if fixture.exists() else []
    assert got == want
    for entry in want:
        assert entry["severity"] == DIAGNOSTIC_CODES[entry["code"]][0]


def test_corpus_is_big_enough() -> None:
    """The corpus must keep covering the advertised breadth (>= 25 cases)."""
    assert len(CASE_NAMES) >= 25


def test_every_case_has_exactly_one_fixture() -> None:
    for name in CASE_NAMES:
        json_exists = (CASES_DIR / f"{name}.expected.json").exists()
        ttl_exists = (CASES_DIR / f"{name}.expected.ttl").exists()
        assert json_exists != ttl_exists, f"case {name} needs exactly one fixture"
