"""Differential property test: every engine == the reference evaluator.

Random small graphs are queried with random BGP / OPTIONAL / UNION /
FILTER combinations through every evaluation engine — the batched
planner and naive paths, the legacy streaming planner operators, and
the dict-at-a-time reference evaluator as the oracle; the solution
multisets must be identical across all of them.  This is the regression
net for the vectorized executor, join reordering, hash vs. bind join
selection and filter pushdown: any transformation that drops, duplicates
or invents a solution shows up as a multiset mismatch.
"""

from __future__ import annotations

import tempfile
from collections import Counter
from contextlib import contextmanager

import pytest
from hypothesis import given, settings, strategies as st

from repro.rdf import Graph, Literal, SegmentStore, Triple, URIRef, Variable
from repro.sparql import (
    ENGINES,
    BinaryExpression,
    Filter,
    FunctionCall,
    GroupGraphPattern,
    OptionalPattern,
    Prologue,
    QueryEvaluator,
    SelectQuery,
    TermExpression,
    TriplesBlock,
    UnaryExpression,
    UnionPattern,
    VariableExpression,
)

SUBJECTS = [URIRef(f"http://t.example/s{i}") for i in range(3)]
PREDICATES = [URIRef(f"http://t.example/p{i}") for i in range(3)]
OBJECTS = SUBJECTS + [Literal(i) for i in range(3)]
VARIABLES = [Variable(name) for name in ("u", "v", "w")]

data_triples = st.tuples(
    st.sampled_from(SUBJECTS), st.sampled_from(PREDICATES), st.sampled_from(OBJECTS)
)

subject_terms = st.one_of(st.sampled_from(SUBJECTS), st.sampled_from(VARIABLES))
predicate_terms = st.one_of(st.sampled_from(PREDICATES), st.sampled_from(VARIABLES))
object_terms = st.one_of(st.sampled_from(OBJECTS), st.sampled_from(VARIABLES))

patterns = st.builds(Triple, subject_terms, predicate_terms, object_terms)
bgps = st.lists(patterns, min_size=1, max_size=3)


@st.composite
def filter_expressions(draw):
    variable = VariableExpression(draw(st.sampled_from(VARIABLES)))
    choice = draw(st.integers(min_value=0, max_value=3))
    if choice == 0:
        other = draw(
            st.one_of(
                st.builds(TermExpression, st.sampled_from(OBJECTS)),
                st.builds(VariableExpression, st.sampled_from(VARIABLES)),
            )
        )
        return BinaryExpression(draw(st.sampled_from(["=", "!="])), variable, other)
    if choice == 1:
        bound = Literal(draw(st.integers(min_value=0, max_value=2)))
        return BinaryExpression(
            draw(st.sampled_from(["<", ">="])), variable, TermExpression(bound)
        )
    bound_call = FunctionCall("BOUND", [variable])
    if choice == 2:
        return bound_call
    return UnaryExpression("!", bound_call)


@st.composite
def group_patterns(draw):
    elements = [TriplesBlock(draw(bgps))]
    if draw(st.booleans()):
        inner = GroupGraphPattern([TriplesBlock(draw(bgps))])
        if draw(st.booleans()):
            inner.add(Filter(draw(filter_expressions())))
        elements.append(OptionalPattern(inner))
    if draw(st.booleans()):
        alternatives = [
            GroupGraphPattern([TriplesBlock(draw(bgps))]) for _ in range(2)
        ]
        elements.append(UnionPattern(alternatives))
    if draw(st.booleans()):
        elements.append(Filter(draw(filter_expressions())))
    order = draw(st.permutations(range(len(elements))))
    return GroupGraphPattern([elements[index] for index in order])


#: Both storage backends run the same differential property: the disk
#: path must be solution-for-solution identical to the in-memory path.
BACKENDS = ("memory", "segment")


@contextmanager
def _graph_for(backend, triples):
    if backend == "memory":
        graph = Graph()
        for s, p, o in triples:
            graph.add(Triple(s, p, o))
        yield graph
        return
    with tempfile.TemporaryDirectory() as root:
        # Tiny buffer: most data lands in on-disk segments, not the buffer.
        graph = Graph(store=SegmentStore(root, buffer_limit=4))
        for s, p, o in triples:
            graph.add(Triple(s, p, o))
        graph.flush()
        try:
            yield graph
        finally:
            graph.close()


def _solution_multiset(result):
    return Counter(frozenset(binding.as_dict().items()) for binding in result.bindings)


def _assert_engines_agree(graph, query):
    oracle = QueryEvaluator(graph, engine="reference").select(query)
    expected = _solution_multiset(oracle)
    for engine in ENGINES:
        if engine == "reference":
            continue
        got = QueryEvaluator(graph, engine=engine).select(query)
        assert _solution_multiset(got) == expected, f"engine {engine} diverged"


@pytest.mark.parametrize("backend", BACKENDS)
@settings(max_examples=120, deadline=None)
@given(st.lists(data_triples, max_size=20), group_patterns())
def test_engines_match_reference_evaluator(backend, triples, where):
    query = SelectQuery(Prologue(), [], where)
    with _graph_for(backend, triples) as graph:
        _assert_engines_agree(graph, query)


@pytest.mark.parametrize("backend", BACKENDS)
@settings(max_examples=60, deadline=None)
@given(st.lists(data_triples, max_size=20), group_patterns())
def test_engines_distinct_matches_reference_evaluator(backend, triples, where):
    query = SelectQuery(Prologue(), [], where)
    query.modifiers.distinct = True
    with _graph_for(backend, triples) as graph:
        _assert_engines_agree(graph, query)
