"""Unit tests for the static query analyzer (``repro.sparql.analysis``).

Covers the diagnostic taxonomy (every SQA1xx code, with its fixed
severity, span and stable code), per-group variable scoping, constant
folding, redundancy pruning, strict-mode rejection, and the executable
guarantee behind provable emptiness: an unsatisfiable query performs
*zero* index lookups on every engine.
"""

from __future__ import annotations

import json

import pytest

from repro.rdf import Graph, Literal, Triple, URIRef, Variable
from repro.sparql import ENGINES, AskResult, QueryEvaluator, parse_query
from repro.sparql.analysis import (
    DIAGNOSTIC_CODES,
    QueryAnalysisError,
    analyze_query,
    group_scopes,
    prune_query,
    render_diagnostics,
)
from repro.sparql.ast import Filter, GroupGraphPattern

EX = "http://ex.org/"


def uri(name: str) -> URIRef:
    return URIRef(EX + name)


@pytest.fixture()
def graph() -> Graph:
    g = Graph()
    g.add(Triple(uri("alice"), uri("name"), Literal("Alice")))
    g.add(Triple(uri("alice"), uri("age"), Literal(34)))
    g.add(Triple(uri("bob"), uri("name"), Literal("Bob")))
    return g


def codes(query_text: str) -> list[str]:
    analysis = analyze_query(parse_query(query_text))
    return sorted({d.code for d in analysis.diagnostics})


# --------------------------------------------------------------------------- #
# Diagnostic objects
# --------------------------------------------------------------------------- #
class TestDiagnosticTaxonomy:
    def test_every_code_has_fixed_severity_and_description(self):
        assert set(DIAGNOSTIC_CODES) == {
            "SQA101", "SQA102", "SQA103", "SQA104", "SQA105", "SQA106",
            "SQA107", "SQA108", "SQA109", "SQA110", "SQA111",
            "SQA201", "SQA202",
        }
        for severity, description in DIAGNOSTIC_CODES.values():
            assert severity in {"error", "warning", "info"}
            assert description

    def test_emitted_diagnostics_match_the_table(self):
        analysis = analyze_query(parse_query(
            "SELECT ?nope WHERE { ?s ?p ?o FILTER(1 = 2) }"
        ))
        assert analysis.diagnostics
        for diagnostic in analysis.diagnostics:
            severity, _ = DIAGNOSTIC_CODES[diagnostic.code]
            assert diagnostic.severity == severity
            assert diagnostic.span.line >= 1
            assert diagnostic.span.column >= 1

    def test_render_is_compiler_style(self):
        analysis = analyze_query(parse_query("SELECT ?x WHERE { ?s ?p ?o }"))
        line = analysis.errors[0].render("q.rq")
        assert line.startswith("q.rq:1:8: error[SQA101]")
        assert "?x" in line

    def test_render_without_source_omits_the_prefix(self):
        analysis = analyze_query(parse_query("SELECT ?x WHERE { ?s ?p ?o }"))
        assert analysis.errors[0].render().startswith("1:8: error[SQA101]")

    def test_json_payload_round_trips(self):
        analysis = analyze_query(parse_query("SELECT ?x WHERE { ?s ?p ?o }"))
        payload = json.loads(json.dumps(analysis.to_json_list()))
        entry = payload[0]
        assert entry["code"] == "SQA101"
        assert entry["severity"] == "error"
        assert set(entry["span"]) == {"line", "column", "end_line", "end_column"}

    def test_render_diagnostics_joins_lines(self):
        analysis = analyze_query(parse_query("SELECT ?x WHERE { ?s ?p ?o }"))
        text = render_diagnostics(analysis.diagnostics, "q.rq")
        assert text.count("\n") == len(analysis.diagnostics) - 1


# --------------------------------------------------------------------------- #
# Variable scoping
# --------------------------------------------------------------------------- #
class TestGroupScopes:
    def scopes(self, query_text: str):
        return group_scopes(parse_query(query_text).where)

    def test_plain_bgp_binds_certainly(self):
        certain, possible = self.scopes("SELECT * WHERE { ?s ?p ?o }")
        assert certain == {Variable("s"), Variable("p"), Variable("o")}
        assert possible == certain

    def test_optional_binds_only_possibly(self):
        certain, possible = self.scopes(
            "SELECT * WHERE { ?s <http://e/p> ?o OPTIONAL { ?s <http://e/q> ?x } }"
        )
        assert Variable("x") not in certain
        assert Variable("x") in possible

    def test_union_certain_is_the_branch_intersection(self):
        certain, possible = self.scopes(
            "SELECT * WHERE { { ?s <http://e/p> ?a } UNION { ?s <http://e/q> ?b } }"
        )
        assert Variable("s") in certain
        assert Variable("a") not in certain and Variable("b") not in certain
        assert {Variable("a"), Variable("b")} <= possible

    def test_values_column_with_undef_is_only_possible(self):
        certain, possible = self.scopes(
            "SELECT * WHERE { ?s ?p ?o VALUES (?v ?w) { (1 2) (UNDEF 3) } }"
        )
        assert Variable("w") in certain
        assert Variable("v") not in certain
        assert Variable("v") in possible

    def test_analysis_result_exposes_the_scopes(self):
        analysis = analyze_query(parse_query(
            "SELECT ?s WHERE { ?s <http://e/p> ?o OPTIONAL { ?s <http://e/q> ?x } }"
        ))
        assert Variable("x") in analysis.possible_variables
        assert Variable("x") not in analysis.certain_variables


# --------------------------------------------------------------------------- #
# Local diagnostics, one code at a time
# --------------------------------------------------------------------------- #
class TestLocalDiagnostics:
    def test_sqa101_never_bound_projection(self):
        assert "SQA101" in codes("SELECT ?nope WHERE { ?s ?p ?o }")

    def test_sqa101_suggests_a_near_miss(self):
        analysis = analyze_query(parse_query(
            "SELECT ?nmae WHERE { ?s <http://e/p> ?name }"
        ))
        [error] = [d for d in analysis.errors if d.code == "SQA101"]
        assert error.hint == "did you mean ?name?"

    def test_optional_variable_is_a_legal_projection(self):
        query = (
            "SELECT ?x WHERE { ?s <http://e/p> ?o "
            "OPTIONAL { ?s <http://e/q> ?x } }"
        )
        assert "SQA101" not in codes(query)

    def test_sqa102_never_bound_order_by(self):
        assert "SQA102" in codes(
            "SELECT ?s WHERE { ?s <http://e/p> ?o } ORDER BY ?missing"
        )

    def test_sqa103_never_bound_filter(self):
        assert "SQA103" in codes(
            "SELECT ?s WHERE { ?s <http://e/p> ?o FILTER(?ghost > 1) }"
        )

    def test_sqa104_unused_variable_is_info(self):
        analysis = analyze_query(parse_query(
            "SELECT ?s WHERE { ?s <http://e/p> ?unused }"
        ))
        [info] = [d for d in analysis.infos if d.code == "SQA104"]
        assert "?unused" in info.message

    def test_sqa105_and_106_literal_in_illegal_position(self):
        # Neither the parser nor Triple's constructor lets a literal into
        # the subject/predicate slot, so smuggle one in the way a buggy
        # programmatic rewrite could: through the slots directly.
        pattern = Triple(uri("s"), uri("p"), Literal("o"))
        pattern._subject = Literal("subj")
        pattern._predicate = Literal("pred")
        query = parse_query("SELECT ?s WHERE { ?s ?p ?o }")
        next(iter(query.where.triples_blocks())).patterns.append(pattern)
        got = {d.code for d in analyze_query(query).diagnostics}
        assert {"SQA105", "SQA106"} <= got

    def test_sqa107_disconnected_bgp(self):
        assert "SQA107" in codes(
            "SELECT * WHERE { ?a <http://e/p> ?b . ?c <http://e/p> ?d }"
        )

    def test_connected_bgp_is_not_flagged(self):
        assert "SQA107" not in codes(
            "SELECT * WHERE { ?a <http://e/p> ?b . ?b <http://e/p> ?c }"
        )

    def test_sqa108_constant_false_filter_proves_emptiness(self):
        analysis = analyze_query(parse_query(
            "SELECT ?s WHERE { ?s ?p ?o FILTER(1 = 2) }"
        ))
        assert any(d.code == "SQA108" for d in analysis.warnings)
        assert analysis.provably_empty
        assert analysis.empty_reason

    def test_sqa109_constant_true_filter_is_redundant(self):
        analysis = analyze_query(parse_query(
            "SELECT ?s WHERE { ?s ?p ?o FILTER(1 = 1) }"
        ))
        assert any(d.code == "SQA109" for d in analysis.infos)
        assert not analysis.provably_empty

    def test_sqa110_statically_ill_typed_expression(self):
        assert "SQA110" in codes(
            'SELECT ?s WHERE { ?s ?p ?o FILTER(1 + "x" > 0) }'
        )

    def test_sqa111_empty_values_block(self):
        analysis = analyze_query(parse_query(
            "SELECT ?s WHERE { ?s ?p ?o VALUES ?v { } }"
        ))
        assert any(d.code == "SQA111" for d in analysis.warnings)
        assert analysis.provably_empty

    def test_spans_point_at_the_offending_line(self):
        analysis = analyze_query(parse_query(
            "SELECT ?nmae WHERE {\n"
            "  ?s <http://e/p> ?name .\n"
            "  FILTER(?nme > 1)\n"
            "}"
        ))
        by_code = {d.code: d for d in analysis.diagnostics}
        assert by_code["SQA101"].span.line == 1
        assert by_code["SQA103"].span.line == 3

    def test_clean_query_yields_no_diagnostics(self):
        assert codes("SELECT ?s ?o WHERE { ?s <http://e/p> ?o }") == []


# --------------------------------------------------------------------------- #
# Constant folding and pruning
# --------------------------------------------------------------------------- #
class TestFoldingAndPruning:
    def test_constant_filters_are_keyed_by_node_identity(self):
        query = parse_query(
            "SELECT ?s WHERE { ?s ?p ?o FILTER(2 > 1) FILTER(?o > 1) }"
        )
        analysis = analyze_query(query)
        filters = [
            element for element in query.where.elements
            if isinstance(element, Filter)
        ]
        assert analysis.constant_filters == {id(filters[0]): True}

    def test_prune_drops_only_the_constant_true_filter(self):
        query = parse_query(
            "SELECT ?s WHERE { ?s ?p ?o FILTER(1 = 1) FILTER(?o > 1) }"
        )
        pruned = prune_query(query, analyze_query(query))
        remaining = [
            element for element in pruned.where.elements
            if isinstance(element, Filter)
        ]
        assert len(remaining) == 1
        # the input AST is never mutated
        assert sum(isinstance(e, Filter) for e in query.where.elements) == 2

    def test_prune_reaches_nested_groups(self):
        query = parse_query(
            "SELECT ?s WHERE { { ?s ?p ?o FILTER(true) } }"
        )
        pruned = prune_query(query, analyze_query(query))
        inner = [
            element for element in pruned.where.elements
            if isinstance(element, GroupGraphPattern)
        ][0]
        assert not any(isinstance(e, Filter) for e in inner.elements)

    def test_prune_is_identity_when_nothing_folds(self):
        query = parse_query("SELECT ?s WHERE { ?s ?p ?o FILTER(?o > 1) }")
        assert prune_query(query, analyze_query(query)) is query

    def test_exists_is_never_folded(self):
        # EXISTS needs a graph, so even a variable-free expression that
        # contains one cannot fold.  The surface grammar has no EXISTS
        # (it is an AST-level convenience), so build the expression.
        from repro.sparql.analysis import fold_constant
        from repro.sparql.ast import BinaryExpression, ExistsExpression, TermExpression

        exists = ExistsExpression(parse_query(
            "SELECT * WHERE { ?s <http://e/q> ?x }"
        ).where)
        expression = BinaryExpression(
            "||", exists, TermExpression(Literal(True))
        )
        assert fold_constant(expression) is None
        assert fold_constant(TermExpression(Literal(True))) is True


# --------------------------------------------------------------------------- #
# Evaluator integration
# --------------------------------------------------------------------------- #
class TestEvaluatorIntegration:
    EMPTY_SELECT = "SELECT ?s WHERE { ?s ?p ?o FILTER(1 = 2) }"

    @pytest.mark.parametrize("engine", ENGINES)
    def test_provably_empty_select_yields_zero_rows(self, graph, engine):
        result = QueryEvaluator(graph, engine=engine).evaluate(self.EMPTY_SELECT)
        assert len(result) == 0
        assert list(result.variables) == [Variable("s")]
        assert any(d.code == "SQA108" for d in result.diagnostics)

    def test_provably_empty_ask_is_false(self, graph):
        result = QueryEvaluator(graph).evaluate(
            "ASK { ?s ?p ?o FILTER(1 = 2) }"
        )
        assert isinstance(result, AskResult)
        assert not result

    def test_provably_empty_construct_is_an_empty_graph(self, graph):
        result = QueryEvaluator(graph).evaluate(
            "CONSTRUCT { ?s <http://e/p> ?o } WHERE { ?s ?p ?o FILTER(1 = 2) }"
        )
        assert isinstance(result, Graph)
        assert len(result) == 0

    def test_unsatisfiable_query_does_zero_index_lookups(self, graph, monkeypatch):
        lookups = []
        original = Graph.triples_ids

        def counting(self, *args, **kwargs):
            lookups.append(args)
            return original(self, *args, **kwargs)

        monkeypatch.setattr(Graph, "triples_ids", counting)
        monkeypatch.setattr(
            Graph, "triples",
            lambda self, *a, **k: lookups.append(a) or iter(()),
        )
        result = QueryEvaluator(graph).evaluate(self.EMPTY_SELECT)
        assert len(result) == 0
        assert lookups == []

    def test_explain_analyze_shows_the_prune_and_no_scans(self, graph):
        result, event = QueryEvaluator(graph).analyze(self.EMPTY_SELECT)
        assert len(result) == 0
        assert "AnalysisPrune" in event.plan
        assert not any("Scan" in op["operator"] for op in event.operators)
        assert event.rows == 0

    def test_strict_mode_raises_on_errors(self, graph):
        evaluator = QueryEvaluator(graph, strict=True)
        with pytest.raises(QueryAnalysisError) as excinfo:
            evaluator.evaluate("SELECT ?nope WHERE { ?s ?p ?o }")
        assert any(d.code == "SQA101" for d in excinfo.value.diagnostics)
        assert "SQA101" in str(excinfo.value)

    def test_strict_mode_passes_warnings_through(self, graph):
        result = QueryEvaluator(graph, strict=True).evaluate(self.EMPTY_SELECT)
        assert len(result) == 0

    def test_diagnostics_attach_on_the_ordinary_path(self, graph):
        result = QueryEvaluator(graph).evaluate(
            "SELECT ?s WHERE { ?s <http://ex.org/name> ?o FILTER(1 = 1) }"
        )
        assert [d.code for d in result.diagnostics] == ["SQA104", "SQA109"]

    def test_analysis_can_be_disabled(self, graph):
        evaluator = QueryEvaluator(graph, analysis=False)
        result = evaluator.evaluate(self.EMPTY_SELECT)
        assert len(result) == 0
        assert result.diagnostics == []

    def test_constant_true_pruning_changes_no_answers(self, graph):
        with_filter = QueryEvaluator(graph).evaluate(
            "SELECT ?s ?o WHERE { ?s <http://ex.org/name> ?o FILTER(1 = 1) }"
        )
        without = QueryEvaluator(graph).evaluate(
            "SELECT ?s ?o WHERE { ?s <http://ex.org/name> ?o }"
        )
        assert sorted(map(str, with_filter)) == sorted(map(str, without))
