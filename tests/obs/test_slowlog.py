"""The slow-query log: threshold, ring bound, environment configuration."""

import json

from repro.obs.slowlog import SLOWLOG_ENV, SlowQueryLog


class TestThreshold:
    def test_fast_queries_are_not_retained(self):
        log = SlowQueryLog(threshold=0.5)
        assert log.record("SELECT 1", elapsed=0.1) is None
        assert log.entries() == []

    def test_slow_queries_are_retained_with_context(self):
        log = SlowQueryLog(threshold=0.5)
        entry = log.record(
            "SELECT * WHERE { ?s ?p ?o }",
            elapsed=0.9,
            engine="planner",
            layer="http",
            trace_id="ab" * 16,
            plan="Project\n  BGPScan",
        )
        assert entry is not None
        assert entry.elapsed == 0.9
        assert entry.trace_id == "ab" * 16
        assert entry.plan.startswith("Project")

    def test_per_call_threshold_override(self):
        log = SlowQueryLog(threshold=10.0)
        assert log.record("q", elapsed=0.2, threshold=0.1) is not None

    def test_zero_threshold_captures_everything(self):
        log = SlowQueryLog(threshold=0.0)
        assert log.record("q", elapsed=0.0) is not None

    def test_threshold_from_environment(self, monkeypatch):
        monkeypatch.setenv(SLOWLOG_ENV, "0.25")
        assert SlowQueryLog().threshold == 0.25

    def test_invalid_environment_falls_back_to_default(self, monkeypatch):
        monkeypatch.setenv(SLOWLOG_ENV, "not-a-number")
        assert SlowQueryLog().threshold == 0.75


class TestRing:
    def test_capacity_keeps_newest_entries(self):
        log = SlowQueryLog(threshold=0.0, capacity=3)
        for index in range(6):
            log.record(f"q{index}", elapsed=1.0)
        assert [entry.query for entry in log.entries()] == ["q3", "q4", "q5"]
        # Sequence numbers keep counting past evictions.
        assert [entry.sequence for entry in log.entries()] == [4, 5, 6]

    def test_as_dict_is_json_ready(self):
        log = SlowQueryLog(threshold=0.0, capacity=2)
        log.record("q", elapsed=1.5, engine="planner", rows=7)
        payload = log.as_dict()
        json.dumps(payload)  # must not raise
        assert payload["threshold"] == 0.0
        assert payload["recorded"] == 1
        [entry] = payload["entries"]
        assert entry["query"] == "q"
        assert entry["rows"] == 7  # extra kwargs ride along

    def test_clear(self):
        log = SlowQueryLog(threshold=0.0)
        log.record("q", elapsed=1.0)
        log.clear()
        assert log.entries() == []
