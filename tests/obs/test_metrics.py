"""The metrics registry: counters, gauges, histogram quantiles, exposition."""

import importlib.util
import sys
from pathlib import Path

import pytest

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


def _load_prom_checker():
    """Import tools/check_prom_format.py (not a package) for reuse here."""
    path = Path(__file__).resolve().parents[2] / "tools" / "check_prom_format.py"
    spec = importlib.util.spec_from_file_location("check_prom_format", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("check_prom_format", module)
    spec.loader.exec_module(module)
    return module


class TestCounter:
    def test_unlabeled_counts(self):
        counter = Counter("c_total")
        counter.inc()
        counter.inc(2.5)
        assert counter.value() == 3.5

    def test_labeled_series_are_independent(self):
        counter = Counter("c_total", label_names=("outcome",))
        counter.inc(outcome="hit")
        counter.inc(outcome="hit")
        counter.inc(outcome="miss")
        assert counter.value(outcome="hit") == 2
        assert counter.value(outcome="miss") == 1
        assert counter.value(outcome="never") == 0

    def test_rejects_negative_increments(self):
        with pytest.raises(ValueError):
            Counter("c_total").inc(-1)

    def test_rejects_wrong_label_set(self):
        counter = Counter("c_total", label_names=("outcome",))
        with pytest.raises(ValueError):
            counter.inc()
        with pytest.raises(ValueError):
            counter.inc(outcome="hit", extra="x")


class TestGauge:
    def test_goes_up_and_down(self):
        gauge = Gauge("g", label_names=("dataset",))
        gauge.inc(dataset="a")
        gauge.inc(dataset="a")
        gauge.dec(dataset="a")
        assert gauge.value(dataset="a") == 1
        gauge.set(7, dataset="a")
        assert gauge.value(dataset="a") == 7
        gauge.inc(-7, dataset="a")  # negative increments are legal here
        assert gauge.value(dataset="a") == 0


class TestHistogram:
    def test_count_and_sum(self):
        histogram = Histogram("h_seconds", buckets=(0.01, 0.1, 1.0))
        for value in (0.005, 0.05, 0.5, 5.0):
            histogram.observe(value)
        assert histogram.count() == 4
        assert histogram.sum() == pytest.approx(5.555)

    def test_quantiles_interpolate_within_the_bucket(self):
        histogram = Histogram("h_seconds", buckets=(0.002, 0.004, 0.3))
        for value in (0.001, 0.003, 0.25, 0.25):
            histogram.observe(value)
        # rank 2 of 4 lands exactly at the top of the (0.002, 0.004] bucket
        assert histogram.quantile(0.5) == pytest.approx(0.004)
        assert histogram.quantile(0.0) == pytest.approx(0.0)

    def test_overflow_rank_reports_last_bound(self):
        histogram = Histogram("h_seconds", buckets=(0.01,))
        histogram.observe(5.0)
        assert histogram.quantile(0.99) == pytest.approx(0.01)

    def test_empty_quantile_is_none(self):
        assert Histogram("h_seconds").quantile(0.5) is None

    def test_snapshot_shape(self):
        histogram = Histogram("h_seconds", label_names=("handler",))
        histogram.observe(0.003, handler="sparql")
        snapshot = histogram.snapshot(handler="sparql")
        assert snapshot["count"] == 1
        assert set(snapshot) == {"count", "p50", "p95", "p99"}

    def test_rejects_unsorted_buckets(self):
        with pytest.raises(ValueError):
            Histogram("h_seconds", buckets=(0.1, 0.01))

    def test_default_buckets_cover_query_latencies(self):
        assert DEFAULT_LATENCY_BUCKETS[0] <= 0.001
        assert DEFAULT_LATENCY_BUCKETS[-1] >= 10.0


class TestRegistry:
    def test_get_or_create_returns_the_same_family(self):
        registry = MetricsRegistry()
        assert registry.counter("a_total") is registry.counter("a_total")

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("a_total")
        with pytest.raises(TypeError):
            registry.gauge("a_total")
        registry.gauge("g")
        with pytest.raises(TypeError):
            # A Gauge is a Counter subclass; the registry must still refuse.
            registry.counter("g")

    def test_prometheus_rendering_passes_the_format_checker(self):
        registry = MetricsRegistry()
        registry.counter("repro_requests_total", "requests").inc(3)
        registry.gauge("repro_gauge", "g", labels=("dataset",)).set(
            2, dataset='with "quotes" and \\slashes\\'
        )
        histogram = registry.histogram(
            "repro_latency_seconds", "latency", labels=("handler",)
        )
        for value in (0.002, 0.02, 0.2, 2.0):
            histogram.observe(value, handler="sparql")
        checker = _load_prom_checker()
        problems, types, samples = checker.check(registry.render_prometheus())
        assert problems == []
        assert types == {
            "repro_requests_total": "counter",
            "repro_gauge": "gauge",
            "repro_latency_seconds": "histogram",
        }
        assert len(samples) == len(DEFAULT_LATENCY_BUCKETS) + 1 + 2 + 2

    def test_histogram_buckets_are_cumulative_with_inf(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h_seconds", buckets=(0.01, 0.1))
        for value in (0.005, 0.05, 5.0):
            histogram.observe(value)
        text = registry.render_prometheus()
        assert 'h_seconds_bucket{le="0.01"} 1' in text
        assert 'h_seconds_bucket{le="0.1"} 2' in text
        assert 'h_seconds_bucket{le="+Inf"} 3' in text
        assert "h_seconds_count 3" in text
