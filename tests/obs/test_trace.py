"""The tracer: span lifecycle, context nesting, traceparent, export."""

import contextvars
import json
import threading

import pytest

from repro.obs.export import EventSink
from repro.obs.trace import (
    NOOP_SPAN,
    Span,
    Tracer,
    format_traceparent,
    parse_traceparent,
)


@pytest.fixture()
def tracer():
    return Tracer(enabled=True)


class TestTraceparent:
    def test_round_trip(self):
        header = format_traceparent("ab" * 16, "cd" * 8)
        assert parse_traceparent(header) == ("ab" * 16, "cd" * 8)

    def test_header_shape(self):
        assert format_traceparent("ab" * 16, "cd" * 8) == (
            "00-" + "ab" * 16 + "-" + "cd" * 8 + "-01"
        )

    @pytest.mark.parametrize("header", [
        None,
        "",
        "garbage",
        "00-abc-def-01",                                   # wrong widths
        "00-" + "gg" * 16 + "-" + "cd" * 8 + "-01",        # non-hex trace id
        "00-" + "00" * 16 + "-" + "cd" * 8 + "-01",        # all-zero trace id
        "00-" + "ab" * 16 + "-" + "00" * 8 + "-01",        # all-zero span id
        "00-" + "ab" * 16 + "-" + "cd" * 8,                # missing flags
    ])
    def test_invalid_headers_rejected(self, header):
        assert parse_traceparent(header) is None


class TestSpanLifecycle:
    def test_nested_spans_share_the_trace_and_parent_correctly(self, tracer):
        with tracer.start_span("outer") as outer:
            with tracer.start_span("inner") as inner:
                assert inner.trace_id == outer.trace_id
                assert inner.parent_id == outer.span_id
        [first, second] = tracer.finished_spans()
        assert (first.name, second.name) == ("inner", "outer")  # finish order
        assert second.parent_id is None

    def test_sibling_roots_get_distinct_trace_ids(self, tracer):
        with tracer.start_span("a") as a:
            pass
        with tracer.start_span("b") as b:
            pass
        assert a.trace_id != b.trace_id

    def test_explicit_traceparent_wins_over_context(self, tracer):
        header = format_traceparent("ab" * 16, "cd" * 8)
        with tracer.start_span("outer"):
            span = tracer.start_span("remote-child", traceparent=header)
            assert span.trace_id == "ab" * 16
            assert span.parent_id == "cd" * 8
            span.finish()

    def test_exception_recorded_as_event(self, tracer):
        with pytest.raises(ValueError):
            with tracer.start_span("failing"):
                raise ValueError("boom")
        [span] = tracer.finished_spans()
        [event] = span.events
        assert event["name"] == "exception"
        assert event["type"] == "ValueError"
        assert "boom" in event["message"]

    def test_finish_is_idempotent(self, tracer):
        span = tracer.start_span("once")
        span.finish()
        end = span.end
        span.finish()
        assert span.end == end
        assert len(tracer.finished_spans()) == 1

    def test_ring_capacity_bounds_memory(self):
        tracer = Tracer(enabled=True, capacity=4)
        for index in range(10):
            tracer.start_span(f"s{index}").finish()
        names = [span.name for span in tracer.finished_spans()]
        assert names == ["s6", "s7", "s8", "s9"]

    def test_spans_cross_threads_via_copied_context(self, tracer):
        seen = {}

        def child():
            with tracer.start_span("child") as span:
                seen["trace_id"] = span.trace_id
                seen["parent_id"] = span.parent_id

        with tracer.start_span("parent") as parent:
            thread = threading.Thread(
                target=contextvars.copy_context().run, args=(child,)
            )
            thread.start()
            thread.join()
        assert seen["trace_id"] == parent.trace_id
        assert seen["parent_id"] == parent.span_id


class TestDisabledMode:
    def test_start_span_returns_the_shared_noop_singleton(self):
        tracer = Tracer(enabled=False)
        first = tracer.start_span("a", {"k": "v"})
        second = tracer.start_span("b")
        # Identity, not just equality: the disabled path allocates nothing.
        assert first is NOOP_SPAN
        assert second is NOOP_SPAN

    def test_noop_span_is_inert(self):
        with NOOP_SPAN as span:
            span.set_attribute("k", "v").add_event("e", detail=1)
        assert span.attributes == {}
        assert span.events == []
        assert span.traceparent() is None
        assert span.recording is False

    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(enabled=False)
        with tracer.start_span("invisible"):
            pass
        assert tracer.finished_spans() == []
        assert tracer.current_traceparent() is None


class TestOperatorSpans:
    STATS = [
        {"depth": 0, "operator": "Project (?s)", "span": "exec.project",
         "seconds": 0.004, "rows_in": 5, "rows_out": 5, "batches": 1},
        {"depth": 1, "operator": "BGPScan", "span": "exec.bgp_scan",
         "seconds": 0.003, "rows_in": 0, "rows_out": 5, "batches": 1},
    ]

    def test_synthesized_tree_nests_by_depth(self, tracer):
        root = tracer.add_operator_spans(self.STATS, "planner", 0.005)
        spans = {span.name: span for span in tracer.finished_spans()}
        assert set(spans) == {"exec.query", "exec.project", "exec.bgp_scan"}
        assert spans["exec.project"].parent_id == root.span_id
        assert spans["exec.bgp_scan"].parent_id == spans["exec.project"].span_id
        assert all(span.trace_id == root.trace_id for span in spans.values())

    def test_durations_come_from_the_stats(self, tracer):
        tracer.add_operator_spans(self.STATS, "planner", 0.005)
        spans = {span.name: span for span in tracer.finished_spans()}
        # The root finishes a hair after the anchor time; allow that skew.
        assert spans["exec.query"].duration == pytest.approx(0.005, abs=0.05)
        # Durations are reconstructed by float subtraction from epoch time,
        # so expect microsecond-level rounding.
        assert spans["exec.project"].duration == pytest.approx(0.004, abs=1e-5)
        assert spans["exec.bgp_scan"].duration == pytest.approx(0.003, abs=1e-5)

    def test_disabled_synthesis_is_noop(self):
        tracer = Tracer(enabled=False)
        assert tracer.add_operator_spans(self.STATS, "planner", 0.005) is NOOP_SPAN
        assert tracer.finished_spans() == []


class TestExport:
    def test_finished_spans_export_as_jsonl(self, tmp_path, monkeypatch):
        from repro.obs import trace as trace_module

        path = tmp_path / "events.jsonl"
        sink = EventSink()
        sink.configure(str(path))
        monkeypatch.setattr(trace_module, "SINK", sink)
        tracer = Tracer(enabled=True)
        with tracer.start_span("exported", {"layer": "test"}):
            pass
        [line] = path.read_text().splitlines()
        record = json.loads(line)
        assert record["kind"] == "span"
        assert record["name"] == "exported"
        assert record["attributes"] == {"layer": "test"}
        assert record["duration"] >= 0

    def test_span_json_shape(self, tracer):
        with tracer.start_span("shape") as span:
            span.add_event("marker")
        payload = span.to_json_dict()
        assert payload["kind"] == "span"
        assert set(payload) == {
            "kind", "name", "trace_id", "span_id", "parent_id",
            "start", "end", "duration", "attributes", "events",
        }
        assert isinstance(Span.__slots__, tuple)  # stays allocation-lean
