"""The JSONL event sink: atomic line writes, cached environment lookup."""

import json
import threading

from repro.obs.export import RUN_EVENTS_ENV, EventSink


class TestConfiguration:
    def test_disabled_without_destination(self, monkeypatch):
        monkeypatch.delenv(RUN_EVENTS_ENV, raising=False)
        sink = EventSink()
        assert not sink.enabled
        assert sink.emit({"x": 1}) is False

    def test_environment_is_read_on_refresh_not_per_emit(self, tmp_path, monkeypatch):
        path = tmp_path / "events.jsonl"
        monkeypatch.delenv(RUN_EVENTS_ENV, raising=False)
        sink = EventSink()
        assert not sink.enabled
        # Setting the env var alone changes nothing until refresh() —
        # emit must not consult os.environ on every event.
        monkeypatch.setenv(RUN_EVENTS_ENV, str(path))
        assert sink.emit({"x": 1}) is False
        sink.refresh()
        assert sink.emit({"x": 2}) is True
        [line] = path.read_text().splitlines()
        assert json.loads(line) == {"x": 2}

    def test_configure_overrides_environment(self, tmp_path, monkeypatch):
        monkeypatch.delenv(RUN_EVENTS_ENV, raising=False)
        path = tmp_path / "direct.jsonl"
        sink = EventSink()
        sink.configure(str(path))
        assert sink.emit({"ok": True}) is True
        assert json.loads(path.read_text()) == {"ok": True}


class TestAtomicWrites:
    def test_concurrent_emits_never_interleave_lines(self, tmp_path):
        """The regression this sink exists for: parallel federation workers
        emitting events concurrently must each produce one intact JSON line,
        not fragments spliced into each other."""
        path = tmp_path / "events.jsonl"
        sink = EventSink()
        sink.configure(str(path))
        # Large payloads make torn writes likely if emit isn't atomic.
        payload = {"blob": "x" * 4096}

        def worker(worker_id):
            for sequence in range(50):
                sink.emit({**payload, "worker": worker_id, "seq": sequence})

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        lines = path.read_text().splitlines()
        assert len(lines) == 8 * 50
        seen = set()
        for line in lines:
            record = json.loads(line)  # every line parses — no torn writes
            assert record["blob"] == payload["blob"]
            seen.add((record["worker"], record["seq"]))
        assert len(seen) == 8 * 50  # and none were lost or duplicated

    def test_lines_are_appended_not_truncated(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text('{"preexisting": true}\n')
        sink = EventSink()
        sink.configure(str(path))
        sink.emit({"new": 1})
        lines = path.read_text().splitlines()
        assert json.loads(lines[0]) == {"preexisting": True}
        assert json.loads(lines[1]) == {"new": 1}
