"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.alignment import (
    EntityAlignment,
    FunctionalDependency,
    SAMEAS_FUNCTION,
    default_registry,
)
from repro.coreference import SameAsService
from repro.datasets import build_resist_scenario
from repro.rdf import AKT, KISTI, KISTI_ID, Literal, RKB_ID, Triple, Variable

#: The KISTI instance URI space regular expression used throughout the paper.
KISTI_URI_PATTERN = r"http://kisti\.rkbexplorer\.com/id/\S*"

#: The query of Figure 1 (verbatim apart from whitespace).
FIGURE_1_QUERY = """
PREFIX id:<http://southampton.rkbexplorer.com/id/>
PREFIX akt:<http://www.aktors.org/ontology/portal#>
SELECT DISTINCT ?a WHERE {
  ?paper akt:has-author id:person-02686 .
  ?paper akt:has-author ?a .
  FILTER (!(?a = id:person-02686))
}
"""

#: The Figure 6 variant: the same constraint expressed in the FILTER.
FIGURE_6_QUERY = """
PREFIX id:<http://southampton.rkbexplorer.com/id/>
PREFIX akt:<http://www.aktors.org/ontology/portal#>
SELECT DISTINCT ?a WHERE {
  ?paper akt:has-author ?n .
  ?paper akt:has-author ?a .
  FILTER (!(?a = id:person-02686) && (?n = id:person-02686))
}
"""

#: The KISTI URI the paper reports for person-02686 (slightly shortened).
KISTI_PERSON_URI = KISTI_ID["PER_00000000000105047"]


@pytest.fixture()
def sameas_service() -> SameAsService:
    """A sameas store holding the worked example's equivalence."""
    service = SameAsService()
    service.add_equivalence(RKB_ID["person-02686"], KISTI_PERSON_URI)
    service.add_equivalence(RKB_ID["paper-00001"], KISTI_ID["PAP_000000000001"])
    return service


@pytest.fixture()
def figure2_alignment() -> EntityAlignment:
    """The akt:has-author -> kisti:hasCreatorInfo/hasCreator alignment."""
    p1, a1 = Variable("p1"), Variable("a1")
    p2, c, a2 = Variable("p2"), Variable("c"), Variable("a2")
    return EntityAlignment(
        lhs=Triple(p1, AKT["has-author"], a1),
        rhs=[
            Triple(p2, KISTI["hasCreatorInfo"], c),
            Triple(c, KISTI["hasCreator"], a2),
        ],
        functional_dependencies=[
            FunctionalDependency(p2, SAMEAS_FUNCTION, [p1, Literal(KISTI_URI_PATTERN)]),
            FunctionalDependency(a2, SAMEAS_FUNCTION, [a1, Literal(KISTI_URI_PATTERN)]),
        ],
    )


@pytest.fixture()
def registry(sameas_service):
    """Default function registry bound to the worked-example sameas store."""
    return default_registry(sameas_service)


@pytest.fixture(scope="session")
def small_scenario():
    """A small but complete integration scenario (shared across tests)."""
    return build_resist_scenario(
        n_persons=25,
        n_papers=50,
        n_projects=4,
        n_organizations=4,
        rkb_coverage=0.6,
        kisti_coverage=0.6,
        dbpedia_coverage=0.4,
        seed=99,
    )
