"""Unit tests for alignment inversion."""

import pytest

from repro.alignment import (
    AlignmentInversionError,
    EntityAlignment,
    FunctionalDependency,
    KM_TO_MILES_FUNCTION,
    SAMEAS_FUNCTION,
    class_alignment,
    invert_entity_alignment,
    invert_ontology_alignment,
    property_alignment,
)
from repro.core import GraphPatternRewriter, QueryRewriter
from repro.coreference import SameAsService
from repro.datasets import (
    RKB_DATASET_URI,
    RKB_URI_PATTERN,
    akt_to_kisti_alignment,
)
from repro.alignment import default_registry
from repro.rdf import AKT, KISTI, KISTI_ID, Literal, RKB_ID, Triple, URIRef, Variable


class TestInvertEntityAlignment:
    def test_class_alignment_inverts_cleanly(self):
        alignment = class_alignment(AKT["Person"], KISTI["Researcher"])
        inverse = invert_entity_alignment(alignment)
        assert inverse.lhs.object == KISTI["Researcher"]
        assert inverse.rhs[0].object == AKT["Person"]

    def test_property_alignment_with_sameas_swaps_pattern(self):
        x, y, x2 = Variable("x"), Variable("y"), Variable("x2")
        alignment = EntityAlignment(
            lhs=Triple(x, AKT["has-affiliation"], y),
            rhs=[Triple(x2, KISTI["affiliatedWith"], y)],
            functional_dependencies=[
                FunctionalDependency(x2, SAMEAS_FUNCTION,
                                     [x, Literal(r"http://kisti\.rkbexplorer\.com/id/\S*")]),
            ],
        )
        inverse = invert_entity_alignment(alignment, source_uri_pattern=RKB_URI_PATTERN)
        assert inverse.lhs.predicate == KISTI["affiliatedWith"]
        assert inverse.rhs[0].predicate == AKT["has-affiliation"]
        fd = inverse.functional_dependencies[0]
        assert fd.variable == Variable("x")
        assert fd.parameters[0] == Variable("x2")
        assert "southampton" in fd.parameters[1].lexical

    def test_multi_triple_rhs_not_invertible(self, figure2_alignment):
        with pytest.raises(AlignmentInversionError):
            invert_entity_alignment(figure2_alignment)

    def test_non_sameas_function_not_invertible(self):
        x, y, y2 = Variable("x"), Variable("y"), Variable("y2")
        alignment = EntityAlignment(
            lhs=Triple(x, AKT["has-pages"], y),
            rhs=[Triple(x, KISTI["pageRange"], y2)],
            functional_dependencies=[FunctionalDependency(y2, KM_TO_MILES_FUNCTION, [y])],
        )
        with pytest.raises(AlignmentInversionError):
            invert_entity_alignment(alignment)

    def test_identifier_suffixed(self):
        alignment = class_alignment(AKT["Person"], KISTI["Researcher"],
                                    identifier=URIRef("http://ex.org/a1"))
        inverse = invert_entity_alignment(alignment)
        assert str(inverse.identifier).endswith("-inverse")

    def test_inverted_rule_rewrites_target_vocabulary_queries(self):
        """KISTI-vocabulary patterns rewrite back to AKT with the inverse rule."""
        inverse = invert_entity_alignment(property_alignment(AKT["has-title"], KISTI["title"]))
        rewriter = GraphPatternRewriter([inverse], default_registry())
        result, report = rewriter.rewrite_bgp(
            [Triple(Variable("p"), KISTI["title"], Variable("t"))]
        )
        assert report.matched_count == 1
        assert result[0].predicate == AKT["has-title"]

    def test_roundtrip_class_alignment(self):
        alignment = class_alignment(AKT["Person"], KISTI["Researcher"])
        roundtripped = invert_entity_alignment(invert_entity_alignment(alignment))
        assert roundtripped == alignment


class TestInvertOntologyAlignment:
    def test_invert_the_kisti_kb(self):
        sameas = SameAsService()
        sameas.add_equivalence(RKB_ID["person-02686"], KISTI_ID["PER_00000000000105047"])
        original = akt_to_kisti_alignment()
        inverted, report = invert_ontology_alignment(
            original,
            source_dataset=RKB_DATASET_URI,
            source_uri_pattern=RKB_URI_PATTERN,
        )
        # The chain alignment (multi-triple RHS) is the only non-invertible rule.
        assert report.skipped_count == 1
        assert report.inverted_count == 23
        assert inverted.applies_to_source(
            URIRef("http://www.kisti.re.kr/isrl/ResearchRefOntology#")
        )
        assert inverted.applies_to_target_dataset(RKB_DATASET_URI)

    def test_inverted_kb_drives_query_rewriting(self):
        sameas = SameAsService()
        sameas.add_equivalence(RKB_ID["person-02686"], KISTI_ID["PER_00000000000105047"])
        inverted, _report = invert_ontology_alignment(
            akt_to_kisti_alignment(),
            source_dataset=RKB_DATASET_URI,
            source_uri_pattern=RKB_URI_PATTERN,
        )
        rewriter = QueryRewriter(list(inverted), default_registry(sameas))
        rewritten, report = rewriter.rewrite(
            __import__("repro.sparql", fromlist=["parse_query"]).parse_query("""
                PREFIX kisti:<http://www.kisti.re.kr/isrl/ResearchRefOntology#>
                SELECT ?r WHERE { ?r a kisti:Researcher . ?r kisti:name ?n }
            """)
        )
        predicates = {p.predicate for p in rewritten.all_triple_patterns()}
        assert AKT["full-name"] in predicates
        assert {p.object for p in rewritten.all_triple_patterns()} & {AKT["Person"]}
        assert report.matched_count == 2

    def test_requires_target_ontologies(self):
        from repro.alignment import OntologyAlignment

        dataset_only = OntologyAlignment(
            source_ontologies=[URIRef("http://www.aktors.org/ontology/portal#")],
            target_datasets=[URIRef("http://kisti.rkbexplorer.com/id/void")],
            entity_alignments=[class_alignment(AKT["Person"], KISTI["Researcher"])],
        )
        with pytest.raises(AlignmentInversionError):
            invert_ontology_alignment(dataset_only)
