"""Unit tests for the RDF (reification) encoding of alignments."""

import pytest

from repro.alignment import (
    AlignmentError,
    AlignmentGraphReader,
    AlignmentGraphWriter,
    EntityAlignment,
    OntologyAlignment,
    alignments_from_graph,
    alignments_from_turtle,
    alignments_to_graph,
    alignments_to_turtle,
    class_alignment,
    ontology_alignment_to_graph,
    ontology_alignments_from_graph,
    property_alignment,
    structurally_equivalent,
)
from repro.rdf import AKT, Graph, KISTI, Literal, MAP, RDF, Triple, URIRef, Variable


class TestEntityAlignmentRoundtrip:
    def test_worked_example_roundtrip(self, figure2_alignment):
        graph = alignments_to_graph([figure2_alignment])
        restored = alignments_from_graph(graph)
        assert len(restored) == 1
        assert structurally_equivalent(restored[0], figure2_alignment)

    def test_graph_uses_paper_vocabulary(self, figure2_alignment):
        graph = alignments_to_graph([figure2_alignment])
        nodes = list(graph.subjects(RDF.type, MAP.EntityAlignment))
        assert len(nodes) == 1
        node = nodes[0]
        assert len(list(graph.objects(node, MAP.lhs))) == 1
        assert len(list(graph.objects(node, MAP.rhs))) == 2
        assert len(list(graph.objects(node, MAP.hasFunctionalDependency))) == 2
        # Patterns are encoded through rdf:Statement reification.
        statements = list(graph.subjects(RDF.type, RDF.Statement))
        assert len(statements) >= 3

    def test_turtle_roundtrip(self, figure2_alignment):
        text = alignments_to_turtle([figure2_alignment])
        assert "map:EntityAlignment" in text
        restored = alignments_from_turtle(text)
        assert structurally_equivalent(restored[0], figure2_alignment)

    def test_multiple_alignments_keep_variables_separate(self):
        first = class_alignment(AKT["Person"], KISTI["Researcher"])
        second = property_alignment(AKT["has-title"], KISTI["title"])
        graph = alignments_to_graph([first, second])
        restored = alignments_from_graph(graph)
        assert len(restored) == 2
        # Order-insensitive structural comparison.
        assert any(structurally_equivalent(r, first) for r in restored)
        assert any(structurally_equivalent(r, second) for r in restored)

    def test_identifier_preserved_for_named_alignments(self):
        named = class_alignment(AKT["Person"], KISTI["Researcher"],
                                identifier=URIRef("http://ex.org/align#person"))
        restored = alignments_from_graph(alignments_to_graph([named]))
        assert restored[0].identifier == URIRef("http://ex.org/align#person")

    def test_fd_parameters_roundtrip_in_order(self, figure2_alignment):
        restored = alignments_from_graph(alignments_to_graph([figure2_alignment]))[0]
        fd = next(d for d in restored.functional_dependencies)
        assert len(fd.parameters) == 2
        assert isinstance(fd.parameters[0], Variable)
        assert isinstance(fd.parameters[1], Literal)


class TestMalformedDescriptions:
    def _base_graph(self) -> Graph:
        graph = Graph()
        node = URIRef("http://ex.org/broken")
        graph.add(Triple(node, RDF.type, MAP.EntityAlignment))
        return graph

    def test_missing_lhs_rejected(self):
        graph = self._base_graph()
        with pytest.raises(AlignmentError):
            AlignmentGraphReader(graph).read_all_entity_alignments()

    def test_multiple_lhs_rejected(self, figure2_alignment):
        graph = alignments_to_graph([figure2_alignment])
        node = list(graph.subjects(RDF.type, MAP.EntityAlignment))[0]
        extra = Graph()
        writer = AlignmentGraphWriter(graph)
        # Add a second map:lhs arc pointing at an existing statement node.
        statement = list(graph.subjects(RDF.type, RDF.Statement))[0]
        graph.add(Triple(node, MAP.lhs, statement))
        reader = AlignmentGraphReader(graph)
        lhs_values = list(graph.objects(node, MAP.lhs))
        if len(lhs_values) > 1:
            with pytest.raises(AlignmentError):
                reader.read_entity_alignment(node)

    def test_fd_without_function_uri_rejected(self):
        graph = self._base_graph()
        node = URIRef("http://ex.org/broken")
        writer = AlignmentGraphWriter(graph)
        lhs_node = writer._write_pattern(  # noqa: SLF001 - exercising low-level writer
            Triple(Variable("x"), AKT["has-title"], Variable("y")), "ea1"
        )
        graph.add(Triple(node, MAP.lhs, lhs_node))
        rhs_node = writer._write_pattern(
            Triple(Variable("x"), KISTI["title"], Variable("y")), "ea1"
        )
        graph.add(Triple(node, MAP.rhs, rhs_node))
        # A functional dependency whose rdf:predicate is a literal.
        fd_node = URIRef("http://ex.org/brokenfd")
        graph.add(Triple(node, MAP.hasFunctionalDependency, fd_node))
        graph.add(Triple(fd_node, RDF.subject, Variable("y").n3() and Literal("y")))
        graph.add(Triple(fd_node, RDF.predicate, Literal("not-a-uri")))
        graph.add(Triple(fd_node, RDF.object, RDF.nil))
        with pytest.raises(AlignmentError):
            AlignmentGraphReader(graph).read_entity_alignment(node)


class TestOntologyAlignmentRoundtrip:
    def test_full_roundtrip(self, figure2_alignment):
        original = OntologyAlignment(
            source_ontologies=[URIRef("http://www.aktors.org/ontology/portal#")],
            target_ontologies=[URIRef("http://www.kisti.re.kr/isrl/ResearchRefOntology#")],
            target_datasets=[URIRef("http://kisti.rkbexplorer.com/id/void")],
            entity_alignments=[figure2_alignment,
                               class_alignment(AKT["Person"], KISTI["Researcher"])],
            identifier=URIRef("http://ex.org/oa#akt2kisti"),
        )
        graph = ontology_alignment_to_graph(original)
        restored = ontology_alignments_from_graph(graph)
        assert len(restored) == 1
        loaded = restored[0]
        assert loaded.source_ontologies == original.source_ontologies
        assert loaded.target_ontologies == original.target_ontologies
        assert loaded.target_datasets == original.target_datasets
        assert loaded.identifier == original.identifier
        assert len(loaded) == 2

    def test_ontology_alignment_vocabulary(self, figure2_alignment):
        original = OntologyAlignment(
            source_ontologies=[URIRef("http://www.aktors.org/ontology/portal#")],
            target_datasets=[URIRef("http://kisti.rkbexplorer.com/id/void")],
            entity_alignments=[figure2_alignment],
        )
        graph = ontology_alignment_to_graph(original)
        oa_nodes = list(graph.subjects(RDF.type, MAP.OntologyAlignment))
        assert len(oa_nodes) == 1
        assert list(graph.objects(oa_nodes[0], MAP.sourceOntology))
        assert list(graph.objects(oa_nodes[0], MAP.targetDataset))
        assert list(graph.objects(oa_nodes[0], MAP.hasEntityAlignment))
