"""Unit tests for the data-manipulation function registry and built-ins."""

import pytest

from repro.alignment import (
    CONCAT_FUNCTION,
    CELSIUS_TO_FAHRENHEIT_FUNCTION,
    FunctionExecutionError,
    FunctionNotFound,
    FunctionRegistry,
    KM_TO_MILES_FUNCTION,
    LOWERCASE_FUNCTION,
    MILES_TO_KM_FUNCTION,
    SAMEAS_FUNCTION,
    SPLIT_FIRST_FUNCTION,
    SPLIT_LAST_FUNCTION,
    UPPERCASE_FUNCTION,
    URI_PREFIX_SWAP_FUNCTION,
    default_registry,
    make_sameas,
)
from repro.coreference import CoReferenceError, SameAsService
from repro.rdf import Literal, URIRef, Variable, XSD

RKB = "http://southampton.rkbexplorer.com/id/"
KISTI = "http://kisti.rkbexplorer.com/id/"
KISTI_PATTERN = Literal(r"http://kisti\.rkbexplorer\.com/id/\S*")


@pytest.fixture()
def service() -> SameAsService:
    service = SameAsService()
    service.add_equivalence(URIRef(RKB + "person-02686"), URIRef(KISTI + "PER_0105047"))
    return service


class TestRegistry:
    def test_default_registry_contains_builtins(self, service):
        registry = default_registry(service)
        for uri in (SAMEAS_FUNCTION, CONCAT_FUNCTION, KM_TO_MILES_FUNCTION,
                    URI_PREFIX_SWAP_FUNCTION, LOWERCASE_FUNCTION):
            assert uri in registry

    def test_sameas_absent_without_service(self):
        registry = default_registry()
        assert SAMEAS_FUNCTION not in registry

    def test_unknown_function_raises(self):
        registry = FunctionRegistry()
        with pytest.raises(FunctionNotFound):
            registry.get(SAMEAS_FUNCTION)
        with pytest.raises(FunctionNotFound):
            registry.call(SAMEAS_FUNCTION, [])

    def test_register_and_unregister(self):
        registry = FunctionRegistry()
        registry.register(URIRef("http://ex.org/fn"), lambda value: value)
        assert URIRef("http://ex.org/fn") in registry
        registry.unregister(URIRef("http://ex.org/fn"))
        assert URIRef("http://ex.org/fn") not in registry

    def test_call_wraps_unexpected_errors(self):
        registry = FunctionRegistry()

        def broken(value):
            raise RuntimeError("boom")

        registry.register(URIRef("http://ex.org/fn"), broken)
        with pytest.raises(FunctionExecutionError):
            registry.call(URIRef("http://ex.org/fn"), [Literal("x")])

    def test_registered_functions_sorted(self, service):
        registry = default_registry(service)
        names = registry.registered_functions()
        assert names == sorted(names, key=str)
        assert len(registry) == len(names)


class TestSameAs:
    def test_ground_uri_translated(self, service):
        sameas = make_sameas(service)
        result = sameas(URIRef(RKB + "person-02686"), KISTI_PATTERN)
        assert result == URIRef(KISTI + "PER_0105047")

    def test_unbound_variable_passes_through(self, service):
        sameas = make_sameas(service)
        assert sameas(Variable("paper"), KISTI_PATTERN) == Variable("paper")

    def test_unknown_uri_kept_by_default(self, service):
        sameas = make_sameas(service)
        orphan = URIRef(RKB + "orphan")
        assert sameas(orphan, KISTI_PATTERN) == orphan

    def test_strict_mode_raises_on_unknown(self, service):
        sameas = make_sameas(service, strict=True)
        with pytest.raises(CoReferenceError):
            sameas(URIRef(RKB + "orphan"), KISTI_PATTERN)

    def test_literal_input_rejected(self, service):
        sameas = make_sameas(service)
        with pytest.raises(FunctionExecutionError):
            sameas(Literal("not a uri"), KISTI_PATTERN)


class TestStringFunctions:
    def test_concat(self):
        registry = default_registry()
        result = registry.call(CONCAT_FUNCTION, [Literal("Nigel"), Literal(" "), Literal("Shadbolt")])
        assert result == Literal("Nigel Shadbolt")

    def test_concat_with_leading_variable_passes_through(self):
        registry = default_registry()
        assert registry.call(CONCAT_FUNCTION, [Variable("x"), Literal("!")]) == Variable("x")

    def test_split_first_and_last(self):
        registry = default_registry()
        assert registry.call(SPLIT_FIRST_FUNCTION, [Literal("Nigel Shadbolt"), Literal(" ")]) == Literal("Nigel")
        assert registry.call(SPLIT_LAST_FUNCTION, [Literal("Nigel R Shadbolt"), Literal(" ")]) == Literal("Shadbolt")

    def test_case_functions(self):
        registry = default_registry()
        assert registry.call(LOWERCASE_FUNCTION, [Literal("MiXeD")]) == Literal("mixed")
        assert registry.call(UPPERCASE_FUNCTION, [Literal("MiXeD")]) == Literal("MIXED")

    def test_uri_prefix_swap(self):
        registry = default_registry()
        result = registry.call(
            URI_PREFIX_SWAP_FUNCTION,
            [URIRef(RKB + "person-1"), Literal(RKB), Literal(KISTI)],
        )
        assert result == URIRef(KISTI + "person-1")

    def test_uri_prefix_swap_non_matching_prefix_kept(self):
        registry = default_registry()
        uri = URIRef("http://other.org/person-1")
        assert registry.call(URI_PREFIX_SWAP_FUNCTION, [uri, Literal(RKB), Literal(KISTI)]) == uri

    def test_uri_prefix_swap_rejects_literal(self):
        registry = default_registry()
        with pytest.raises(FunctionExecutionError):
            registry.call(URI_PREFIX_SWAP_FUNCTION, [Literal("x"), Literal(RKB), Literal(KISTI)])


class TestNumericFunctions:
    def test_km_to_miles_and_back(self):
        registry = default_registry()
        miles = registry.call(KM_TO_MILES_FUNCTION, [Literal(100.0)])
        assert float(miles.lexical) == pytest.approx(62.1371, rel=1e-4)
        km = registry.call(MILES_TO_KM_FUNCTION, [miles])
        assert float(km.lexical) == pytest.approx(100.0, rel=1e-4)

    def test_celsius_to_fahrenheit(self):
        registry = default_registry()
        result = registry.call(CELSIUS_TO_FAHRENHEIT_FUNCTION, [Literal(100)])
        assert float(result.lexical) == pytest.approx(212.0)
        assert result.datatype == XSD.double

    def test_numeric_conversion_of_variable_passes_through(self):
        registry = default_registry()
        assert registry.call(KM_TO_MILES_FUNCTION, [Variable("d")]) == Variable("d")

    def test_numeric_conversion_rejects_non_numeric(self):
        registry = default_registry()
        with pytest.raises(FunctionExecutionError):
            registry.call(KM_TO_MILES_FUNCTION, [Literal("not a number")])
        with pytest.raises(FunctionExecutionError):
            registry.call(KM_TO_MILES_FUNCTION, [URIRef("http://ex.org/x")])
