"""Unit tests for alignment validation and structural comparison."""

from repro.alignment import (
    EntityAlignment,
    FunctionalDependency,
    OntologyAlignment,
    SAMEAS_FUNCTION,
    class_alignment,
    default_registry,
    property_alignment,
    rename_variables,
    structurally_equivalent,
    validate_entity_alignment,
    validate_ontology_alignment,
)
from repro.rdf import AKT, KISTI, Literal, Triple, URIRef, Variable

AKT_ONT = URIRef("http://www.aktors.org/ontology/portal#")
KISTI_ONT = URIRef("http://www.kisti.re.kr/isrl/ResearchRefOntology#")
PATTERN = Literal(r"http://kisti\.rkbexplorer\.com/id/\S*")


def errors(issues):
    return [issue for issue in issues if issue.is_error()]


def warnings(issues):
    return [issue for issue in issues if not issue.is_error()]


class TestEntityAlignmentValidation:
    def test_clean_alignment_has_no_errors(self, figure2_alignment, registry):
        issues = validate_entity_alignment(figure2_alignment, registry)
        assert errors(issues) == []

    def test_fresh_variable_warning(self, figure2_alignment, registry):
        issues = validate_entity_alignment(figure2_alignment, registry)
        # ?c is fresh (no FD): one warning mentioning it.
        assert any("?c" in issue.message for issue in warnings(issues))

    def test_ground_lhs_warning(self):
        alignment = EntityAlignment(
            lhs=Triple(URIRef("http://ex.org/s"), AKT["has-title"], Literal("fixed")),
            rhs=[Triple(URIRef("http://ex.org/s"), KISTI["title"], Literal("fixed"))],
        )
        issues = validate_entity_alignment(alignment)
        assert any("fully ground" in issue.message for issue in warnings(issues))

    def test_unregistered_function_is_error(self, figure2_alignment):
        registry = default_registry()  # no sameas bound (no service)
        issues = validate_entity_alignment(figure2_alignment, registry)
        assert any("not registered" in issue.message for issue in errors(issues))

    def test_no_registry_skips_function_check(self, figure2_alignment):
        issues = validate_entity_alignment(figure2_alignment, registry=None)
        assert errors(issues) == []

    def test_fd_target_in_lhs_warning(self):
        x, y = Variable("x"), Variable("y")
        alignment = EntityAlignment(
            lhs=Triple(x, AKT["has-title"], y),
            rhs=[Triple(x, KISTI["title"], y)],
            functional_dependencies=[
                FunctionalDependency(y, SAMEAS_FUNCTION, [y, PATTERN]),
            ],
        )
        issues = validate_entity_alignment(alignment)
        assert any("overwritten" in issue.message for issue in warnings(issues))


class TestOntologyAlignmentValidation:
    def test_empty_oa_warns(self):
        oa = OntologyAlignment(source_ontologies=[AKT_ONT], target_ontologies=[KISTI_ONT])
        issues = validate_ontology_alignment(oa)
        assert any("no entity alignments" in issue.message for issue in issues)

    def test_duplicate_heads_warn(self):
        oa = OntologyAlignment(
            source_ontologies=[AKT_ONT],
            target_ontologies=[KISTI_ONT],
            entity_alignments=[
                property_alignment(AKT["has-title"], KISTI["title"]),
                property_alignment(AKT["has-title"], KISTI["name"]),
            ],
        )
        issues = validate_ontology_alignment(oa)
        assert any("share the head predicate" in issue.message for issue in issues)

    def test_both_targets_warn(self):
        oa = OntologyAlignment(
            source_ontologies=[AKT_ONT],
            target_ontologies=[KISTI_ONT],
            target_datasets=[URIRef("http://kisti.rkbexplorer.com/id/void")],
            entity_alignments=[class_alignment(AKT["Person"], KISTI["Researcher"])],
        )
        issues = validate_ontology_alignment(oa)
        assert any("both target ontologies and target datasets" in issue.message
                   for issue in issues)

    def test_nested_issues_prefixed_with_index(self, figure2_alignment):
        oa = OntologyAlignment(
            source_ontologies=[AKT_ONT],
            target_ontologies=[KISTI_ONT],
            entity_alignments=[figure2_alignment],
        )
        issues = validate_ontology_alignment(oa, default_registry())
        assert any(issue.message.startswith("[EA 0]") for issue in issues)


class TestStructuralEquivalence:
    def test_renaming_is_canonical(self, figure2_alignment):
        renamed = rename_variables(figure2_alignment)
        assert renamed.lhs.subject == Variable("v0")
        assert rename_variables(renamed) == renamed

    def test_equivalent_up_to_renaming(self, figure2_alignment):
        x, y = Variable("paper"), Variable("author")
        p2, c, a2 = Variable("kpaper"), Variable("info"), Variable("kauthor")
        clone = EntityAlignment(
            lhs=Triple(x, AKT["has-author"], y),
            rhs=[Triple(p2, KISTI["hasCreatorInfo"], c), Triple(c, KISTI["hasCreator"], a2)],
            functional_dependencies=[
                FunctionalDependency(p2, SAMEAS_FUNCTION, [x, PATTERN]),
                FunctionalDependency(a2, SAMEAS_FUNCTION, [y, PATTERN]),
            ],
        )
        assert structurally_equivalent(clone, figure2_alignment)

    def test_not_equivalent_when_structure_differs(self, figure2_alignment):
        other = property_alignment(AKT["has-author"], KISTI["hasCreator"])
        assert not structurally_equivalent(other, figure2_alignment)
