"""Unit tests for alignment expressivity levels (Section 3.2.2)."""

from repro.alignment import (
    class_alignment,
    class_to_intersection_alignment,
    class_to_value_partition_alignment,
    classify_level,
    property_alignment,
    property_chain_alignment,
)
from repro.rdf import Literal, Namespace, RDF, Triple, Variable

import pytest

WINE1 = Namespace("http://example.org/wine1#")
WINE2 = Namespace("http://example.org/wine2#")
GOODS = Namespace("http://example.org/goods#")
O1 = Namespace("http://example.org/o1#")
O2 = Namespace("http://example.org/o2#")


class TestBuilders:
    def test_class_alignment_shape(self):
        alignment = class_alignment(WINE1.Burgundy, WINE2.Wine)
        assert alignment.lhs == Triple(Variable("x"), RDF.type, WINE1.Burgundy)
        assert alignment.rhs == [Triple(Variable("x"), RDF.type, WINE2.Wine)]

    def test_property_alignment_shape(self):
        alignment = property_alignment(O1.name, O2.label)
        assert alignment.lhs.predicate == O1.name
        assert alignment.rhs[0].predicate == O2.label
        assert alignment.lhs.subject == alignment.rhs[0].subject

    def test_intersection_alignment_burgundy_example(self):
        """The paper's level-1 example: Burgundy -> Wine AND BurgundyRegionProduct."""
        alignment = class_to_intersection_alignment(
            WINE1.Burgundy, [WINE2.Wine, GOODS.BurgundyRegionProduct]
        )
        assert len(alignment.rhs) == 2
        assert {pattern.object for pattern in alignment.rhs} == {
            WINE2.Wine, GOODS.BurgundyRegionProduct
        }

    def test_intersection_requires_targets(self):
        with pytest.raises(ValueError):
            class_to_intersection_alignment(WINE1.Burgundy, [])

    def test_value_partition_whitewine_example(self):
        """The paper's level-2 example: WhiteWine -> Wine with has_color 'White'."""
        alignment = class_to_value_partition_alignment(
            O1.WhiteWine, O2.Wine, O2.has_color, Literal("White")
        )
        assert len(alignment.rhs) == 2
        assert Triple(Variable("x"), O2.has_color, Literal("White")) in alignment.rhs

    def test_property_chain_alignment(self):
        alignment = property_chain_alignment(O1.hasAuthor, [O2.hasCreatorInfo, O2.hasCreator])
        assert len(alignment.rhs) == 2
        # The chain introduces exactly one intermediate fresh variable.
        assert len(alignment.fresh_rhs_variables()) == 1

    def test_property_chain_requires_properties(self):
        with pytest.raises(ValueError):
            property_chain_alignment(O1.hasAuthor, [])

    def test_property_chain_single_step_equals_renaming(self):
        alignment = property_chain_alignment(O1.name, [O2.label])
        assert len(alignment.rhs) == 1
        assert alignment.fresh_rhs_variables() == set()


class TestClassification:
    def test_level0_class(self):
        assert classify_level(class_alignment(WINE1.Burgundy, WINE2.Wine)) == 0

    def test_level0_property(self):
        assert classify_level(property_alignment(O1.name, O2.label)) == 0

    def test_level1_intersection(self):
        alignment = class_to_intersection_alignment(
            WINE1.Burgundy, [WINE2.Wine, GOODS.BurgundyRegionProduct]
        )
        assert classify_level(alignment) == 1

    def test_level2_value_partition(self):
        alignment = class_to_value_partition_alignment(
            O1.WhiteWine, O2.Wine, O2.has_color, Literal("White")
        )
        assert classify_level(alignment) == 2

    def test_level2_chain(self):
        alignment = property_chain_alignment(O1.hasAuthor, [O2.hasCreatorInfo, O2.hasCreator])
        assert classify_level(alignment) == 2

    def test_worked_example_is_level2(self, figure2_alignment):
        assert classify_level(figure2_alignment) == 2
