"""Unit tests for the alignment model (OA = <SO, TO, TD, EA>, EA = <LHS, RHS, FD>)."""

import pytest

from repro.alignment import (
    AlignmentError,
    EntityAlignment,
    FunctionalDependency,
    OntologyAlignment,
    SAMEAS_FUNCTION,
)
from repro.rdf import AKT, BNode, KISTI, Literal, Triple, URIRef, Variable

KISTI_ONT = URIRef("http://www.kisti.re.kr/isrl/ResearchRefOntology#")
AKT_ONT = URIRef("http://www.aktors.org/ontology/portal#")
KISTI_DATASET = URIRef("http://kisti.rkbexplorer.com/id/void")
PATTERN = Literal(r"http://kisti\.rkbexplorer\.com/id/\S*")


class TestFunctionalDependency:
    def test_construction(self):
        fd = FunctionalDependency(Variable("a2"), SAMEAS_FUNCTION, [Variable("a1"), PATTERN])
        assert fd.variable == Variable("a2")
        assert fd.parameter_variables() == {Variable("a1")}
        assert not fd.is_ground()

    def test_bnode_target_normalised_to_variable(self):
        fd = FunctionalDependency(BNode("a2"), SAMEAS_FUNCTION, [BNode("a1"), PATTERN])
        assert fd.variable == Variable("a2")
        assert Variable("a1") in fd.parameter_variables()

    def test_ground_parameters(self):
        fd = FunctionalDependency(Variable("x"), SAMEAS_FUNCTION,
                                  [URIRef("http://ex.org/a"), PATTERN])
        assert fd.is_ground()

    def test_non_variable_target_rejected(self):
        with pytest.raises(AlignmentError):
            FunctionalDependency(URIRef("http://ex.org/a"), SAMEAS_FUNCTION, [PATTERN])

    def test_non_uri_function_rejected(self):
        with pytest.raises(AlignmentError):
            FunctionalDependency(Variable("x"), Literal("sameas"), [PATTERN])  # type: ignore[arg-type]

    def test_str_rendering(self):
        fd = FunctionalDependency(Variable("a2"), SAMEAS_FUNCTION, [Variable("a1"), PATTERN])
        assert "?a2" in str(fd)
        assert "sameas" in str(fd)


class TestEntityAlignment:
    def test_worked_example_structure(self, figure2_alignment):
        assert figure2_alignment.lhs.predicate == AKT["has-author"]
        assert len(figure2_alignment.rhs) == 2
        assert len(figure2_alignment.functional_dependencies) == 2

    def test_bnodes_in_patterns_become_variables(self):
        alignment = EntityAlignment(
            lhs=Triple(BNode("p1"), AKT["has-author"], BNode("a1")),
            rhs=[Triple(BNode("p1"), KISTI["hasCreator"], BNode("a1"))],
        )
        assert alignment.lhs.subject == Variable("p1")
        assert alignment.rhs[0].object == Variable("a1")

    def test_lhs_and_rhs_variables(self, figure2_alignment):
        assert figure2_alignment.lhs_variables() == {Variable("p1"), Variable("a1")}
        assert figure2_alignment.rhs_variables() == {Variable("p2"), Variable("c"), Variable("a2")}

    def test_fresh_rhs_variables_exclude_fd_targets(self, figure2_alignment):
        # ?p2 and ?a2 are produced by functional dependencies; only ?c is fresh.
        assert figure2_alignment.fresh_rhs_variables() == {Variable("c")}

    def test_functional_dependency_for(self, figure2_alignment):
        fd = figure2_alignment.functional_dependency_for(Variable("a2"))
        assert fd is not None
        assert fd.function == SAMEAS_FUNCTION
        assert figure2_alignment.functional_dependency_for(Variable("c")) is None

    def test_source_and_target_properties(self, figure2_alignment):
        assert AKT["has-author"] in figure2_alignment.source_properties()
        assert KISTI["hasCreatorInfo"] in figure2_alignment.target_properties()
        assert KISTI["hasCreator"] in figure2_alignment.target_properties()

    def test_empty_rhs_rejected(self):
        with pytest.raises(AlignmentError):
            EntityAlignment(lhs=Triple(Variable("x"), AKT["has-title"], Variable("y")), rhs=[])

    def test_fd_over_unknown_variable_rejected(self):
        with pytest.raises(AlignmentError):
            EntityAlignment(
                lhs=Triple(Variable("x"), AKT["has-title"], Variable("y")),
                rhs=[Triple(Variable("x"), KISTI["title"], Variable("y"))],
                functional_dependencies=[
                    FunctionalDependency(Variable("nowhere"), SAMEAS_FUNCTION, [Variable("x")]),
                ],
            )

    def test_fd_parameter_unknown_variable_rejected(self):
        with pytest.raises(AlignmentError):
            EntityAlignment(
                lhs=Triple(Variable("x"), AKT["has-title"], Variable("y")),
                rhs=[Triple(Variable("x"), KISTI["title"], Variable("y2"))],
                functional_dependencies=[
                    FunctionalDependency(Variable("y2"), SAMEAS_FUNCTION, [Variable("missing")]),
                ],
            )

    def test_equality_ignores_identifier(self, figure2_alignment):
        clone = EntityAlignment(
            lhs=figure2_alignment.lhs,
            rhs=list(figure2_alignment.rhs),
            functional_dependencies=list(figure2_alignment.functional_dependencies),
            identifier=URIRef("http://ex.org/different-name"),
        )
        assert clone == figure2_alignment
        assert hash(clone) == hash(figure2_alignment)

    def test_is_identity(self):
        lhs = Triple(Variable("x"), AKT["has-title"], Variable("y"))
        assert EntityAlignment(lhs=lhs, rhs=[lhs]).is_identity()
        assert not EntityAlignment(
            lhs=lhs, rhs=[Triple(Variable("x"), KISTI["title"], Variable("y"))]
        ).is_identity()

    def test_describe_mentions_all_parts(self, figure2_alignment):
        text = figure2_alignment.describe()
        assert "LHS" in text and "RHS" in text and "FD" in text


class TestOntologyAlignment:
    def make(self, **kwargs):
        defaults = dict(
            source_ontologies=[AKT_ONT],
            target_ontologies=[KISTI_ONT],
            target_datasets=[KISTI_DATASET],
        )
        defaults.update(kwargs)
        return OntologyAlignment(**defaults)

    def test_context_of_validity(self):
        alignment = self.make()
        assert alignment.applies_to_source(AKT_ONT)
        assert not alignment.applies_to_source(KISTI_ONT)
        assert alignment.applies_to_target_dataset(KISTI_DATASET)
        assert alignment.applies_to_target_ontology(KISTI_ONT)
        assert alignment.is_dataset_specific()

    def test_ontology_scoped_alignment_is_reusable(self):
        alignment = self.make(target_datasets=[])
        assert not alignment.is_dataset_specific()
        assert not alignment.applies_to_target_dataset(KISTI_DATASET)
        assert alignment.applies_to_target_ontology(KISTI_ONT)

    def test_requires_source_ontology(self):
        with pytest.raises(AlignmentError):
            OntologyAlignment(source_ontologies=[], target_ontologies=[KISTI_ONT])

    def test_requires_some_target(self):
        with pytest.raises(AlignmentError):
            OntologyAlignment(source_ontologies=[AKT_ONT])

    def test_add_and_iterate(self, figure2_alignment):
        alignment = self.make()
        alignment.add(figure2_alignment)
        assert len(alignment) == 1
        assert list(alignment) == [figure2_alignment]
