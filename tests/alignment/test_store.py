"""Unit tests for the alignment knowledge base (store + selection)."""

import pytest

from repro.alignment import (
    AlignmentStore,
    OntologyAlignment,
    class_alignment,
    property_alignment,
)
from repro.datasets import akt_to_dbpedia_alignment, akt_to_kisti_alignment
from repro.rdf import AKT, KISTI, URIRef

AKT_ONT = URIRef("http://www.aktors.org/ontology/portal#")
KISTI_ONT = URIRef("http://www.kisti.re.kr/isrl/ResearchRefOntology#")
DBPEDIA_ONT = URIRef("http://dbpedia.org/ontology/")
KISTI_DATASET = URIRef("http://kisti.rkbexplorer.com/id/void")
DBPEDIA_DATASET = URIRef("http://dbpedia.org/void")
OTHER_DATASET = URIRef("http://other.org/void")


@pytest.fixture()
def store() -> AlignmentStore:
    store = AlignmentStore()
    store.add(akt_to_kisti_alignment())
    store.add(akt_to_dbpedia_alignment())
    return store


class TestSelection:
    def test_counts_match_paper(self, store):
        counts = store.counts_by_pair()
        assert counts[((str(AKT_ONT),), (str(KISTI_DATASET),))] == 24
        assert counts[((str(AKT_ONT),), (str(DBPEDIA_DATASET),))] == 42
        assert store.entity_alignment_count() == 66
        assert len(store) == 2

    def test_selection_by_target_dataset(self, store):
        selected = store.for_target_dataset(KISTI_DATASET, source_ontology=AKT_ONT)
        assert len(selected) == 1
        assert selected[0].applies_to_target_dataset(KISTI_DATASET)

    def test_selection_filters_by_source_ontology(self, store):
        assert store.for_target_dataset(KISTI_DATASET, source_ontology=KISTI_ONT) == []

    def test_selection_by_target_ontology(self, store):
        selected = store.for_target_ontology(DBPEDIA_ONT, source_ontology=AKT_ONT)
        assert len(selected) == 1

    def test_unknown_dataset_gets_nothing(self, store):
        assert store.for_target_dataset(OTHER_DATASET) == []

    def test_ontology_scoped_alignment_reused_for_new_dataset(self):
        reusable = OntologyAlignment(
            source_ontologies=[AKT_ONT],
            target_ontologies=[KISTI_ONT],
            entity_alignments=[class_alignment(AKT["Person"], KISTI["Researcher"])],
        )
        store = AlignmentStore([reusable])
        selected = store.for_target_dataset(OTHER_DATASET, dataset_ontologies=[KISTI_ONT])
        assert selected == [reusable]
        # Without declaring the dataset's ontologies nothing is selected.
        assert store.for_target_dataset(OTHER_DATASET) == []

    def test_dataset_specific_preferred_over_reusable(self):
        specific = OntologyAlignment(
            source_ontologies=[AKT_ONT],
            target_datasets=[KISTI_DATASET],
            entity_alignments=[class_alignment(AKT["Person"], KISTI["Researcher"])],
        )
        reusable = OntologyAlignment(
            source_ontologies=[AKT_ONT],
            target_ontologies=[KISTI_ONT],
            entity_alignments=[property_alignment(AKT["has-title"], KISTI["title"])],
        )
        store = AlignmentStore([reusable, specific])
        selected = store.for_target_dataset(KISTI_DATASET, dataset_ontologies=[KISTI_ONT])
        assert selected[0] is specific
        assert selected[1] is reusable

    def test_entity_alignments_union_deduplicates(self):
        shared = class_alignment(AKT["Person"], KISTI["Researcher"])
        first = OntologyAlignment(
            source_ontologies=[AKT_ONT], target_datasets=[KISTI_DATASET],
            entity_alignments=[shared],
        )
        second = OntologyAlignment(
            source_ontologies=[AKT_ONT], target_ontologies=[KISTI_ONT],
            entity_alignments=[class_alignment(AKT["Person"], KISTI["Researcher"])],
        )
        store = AlignmentStore([first, second])
        merged = store.entity_alignments_for(dataset=KISTI_DATASET,
                                             dataset_ontologies=[KISTI_ONT])
        assert len(merged) == 1

    def test_entity_alignments_for_without_target_returns_all_for_source(self, store):
        merged = store.entity_alignments_for(source_ontology=AKT_ONT)
        assert len(merged) == 66

    def test_source_ontologies_and_target_datasets(self, store):
        assert store.source_ontologies() == {AKT_ONT}
        assert store.target_datasets() == {KISTI_DATASET, DBPEDIA_DATASET}


class TestRdfPersistence:
    def test_store_graph_roundtrip(self, store):
        graph = store.to_graph()
        reloaded = AlignmentStore()
        imported = reloaded.load_graph(graph)
        assert imported == 2
        assert reloaded.entity_alignment_count() == store.entity_alignment_count()
        counts = reloaded.counts_by_pair()
        assert counts[((str(AKT_ONT),), (str(KISTI_DATASET),))] == 24
