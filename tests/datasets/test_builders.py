"""Unit tests for the per-dataset builders (AKT / KISTI / DBpedia views)."""

import pytest

from repro.datasets import (
    AktDatasetBuilder,
    DBpediaDatasetBuilder,
    KistiDatasetBuilder,
    WorldModel,
    AKT_TERMS,
    DBPEDIA_TERMS,
    KISTI_TERMS,
)
from repro.rdf import RDF


@pytest.fixture(scope="module")
def world() -> WorldModel:
    return WorldModel(n_persons=20, n_papers=40, n_projects=3, n_organizations=3, seed=13)


class TestAktBuilder:
    def test_full_coverage_includes_everything(self, world):
        builder = AktDatasetBuilder(world, coverage=1.0)
        assert builder.covered_paper_keys == {p.key for p in world.papers}
        assert builder.covered_person_keys == {p.key for p in world.persons}

    def test_partial_coverage_is_smaller(self, world):
        builder = AktDatasetBuilder(world, coverage=0.5, seed=3)
        assert 0 < len(builder.covered_paper_keys) < len(world.papers)
        # Covered persons are exactly the authors of covered papers.
        for paper in world.papers:
            if paper.key in builder.covered_paper_keys:
                assert set(paper.author_keys) <= builder.covered_person_keys

    def test_graph_structure(self, world):
        builder = AktDatasetBuilder(world, coverage=1.0)
        graph = builder.build()
        assert len(graph) > 0
        # Every paper has has-author arcs for each author.
        author_arcs = list(graph.triples(None, AKT_TERMS["has-author"], None))
        expected = sum(len(p.author_keys) for p in world.papers)
        assert len(author_arcs) == expected
        # Typing uses the AKT classes.
        assert list(graph.triples(None, RDF.type, AKT_TERMS["Person"]))

    def test_uri_space(self, world):
        builder = AktDatasetBuilder(world)
        assert str(builder.person_uri(5)).startswith("http://southampton.rkbexplorer.com/id/person-")
        assert builder.mint("paper", 3) == builder.paper_uri(3)

    def test_description(self, world):
        builder = AktDatasetBuilder(world)
        description = builder.description(triple_count=100)
        assert description.uri == builder.dataset_uri
        assert description.triple_count == 100
        assert description.uri_pattern is not None


class TestKistiBuilder:
    def test_creatorinfo_indirection(self, world):
        builder = KistiDatasetBuilder(world, coverage=1.0)
        graph = builder.build()
        info_arcs = list(graph.triples(None, KISTI_TERMS["hasCreatorInfo"], None))
        creator_arcs = list(graph.triples(None, KISTI_TERMS["hasCreator"], None))
        expected = sum(len(p.author_keys) for p in world.papers)
        assert len(info_arcs) == expected
        assert len(creator_arcs) == expected
        # No direct paper->person arcs exist (heterogeneous modelling).
        assert not list(graph.triples(None, AKT_TERMS["has-author"], None))

    def test_partial_coverage(self, world):
        builder = KistiDatasetBuilder(world, coverage=0.4, seed=5)
        assert 0 < len(builder.covered_paper_keys) <= int(len(world.papers) * 0.4) + 1

    def test_uri_space_matches_paper_convention(self, world):
        builder = KistiDatasetBuilder(world)
        assert str(builder.person_uri(105047)).endswith("PER_000000105047")
        assert str(builder.paper_uri(1)).startswith("http://kisti.rkbexplorer.com/id/PAP_")

    def test_covered_persons_are_authors_of_covered_papers(self, world):
        builder = KistiDatasetBuilder(world, coverage=0.5, seed=9)
        authors_of_covered = set()
        for paper in world.papers:
            if paper.key in builder.covered_paper_keys:
                authors_of_covered.update(paper.author_keys)
        assert builder.covered_person_keys == authors_of_covered


class TestDBpediaBuilder:
    def test_flat_author_modelling(self, world):
        builder = DBpediaDatasetBuilder(world, coverage=1.0)
        graph = builder.build()
        author_arcs = list(graph.triples(None, DBPEDIA_TERMS["author"], None))
        expected = sum(len(p.author_keys) for p in world.papers)
        assert len(author_arcs) == expected

    def test_sparser_than_kisti_by_default(self, world):
        kisti = KistiDatasetBuilder(world)
        dbpedia = DBpediaDatasetBuilder(world)
        assert len(dbpedia.covered_paper_keys) < len(kisti.covered_paper_keys)

    def test_uri_space_uses_resource_namespace(self, world):
        builder = DBpediaDatasetBuilder(world)
        assert str(builder.person_uri(0)).startswith("http://dbpedia.org/resource/")
        assert "_0" in str(builder.person_uri(0))

    def test_scientist_typing(self, world):
        builder = DBpediaDatasetBuilder(world, coverage=1.0)
        graph = builder.build()
        scientists = list(graph.triples(None, RDF.type, DBPEDIA_TERMS["Scientist"]))
        assert scientists


class TestCrossDatasetConsistency:
    def test_urispaces_disjoint(self, world):
        akt = AktDatasetBuilder(world)
        kisti = KistiDatasetBuilder(world)
        dbpedia = DBpediaDatasetBuilder(world)
        uris = {str(akt.person_uri(1)), str(kisti.person_uri(1)), str(dbpedia.person_uri(1))}
        assert len(uris) == 3

    def test_same_seed_same_coverage(self, world):
        a = KistiDatasetBuilder(world, coverage=0.5, seed=21)
        b = KistiDatasetBuilder(world, coverage=0.5, seed=21)
        assert a.covered_paper_keys == b.covered_paper_keys
