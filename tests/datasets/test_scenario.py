"""Unit tests for the end-to-end integration scenario builder."""

from repro.datasets import build_resist_scenario


class TestScenario:
    def test_components_wired(self, small_scenario):
        assert len(small_scenario.registry) == 3
        assert small_scenario.alignment_store.entity_alignment_count() == 66
        assert small_scenario.sameas_service.bundle_count() > 0
        assert len(small_scenario.service.list_datasets()) == 3

    def test_dataset_sizes_positive(self, small_scenario):
        sizes = small_scenario.dataset_sizes()
        assert len(sizes) == 3
        assert all(size > 0 for size in sizes.values())

    def test_endpoint_accessor(self, small_scenario):
        endpoint = small_scenario.endpoint(small_scenario.kisti_dataset)
        assert endpoint.triple_count() > 0

    def test_sameas_links_persons_across_datasets(self, small_scenario):
        world = small_scenario.world
        kisti_covered = small_scenario.kisti_builder.covered_person_keys
        # Pick a person present in both RKB and KISTI.
        shared = next(iter(kisti_covered))
        rkb_uri = small_scenario.akt_builder.person_uri(shared)
        kisti_uri = small_scenario.kisti_builder.person_uri(shared)
        assert small_scenario.sameas_service.are_same(rkb_uri, kisti_uri)

    def test_gold_coauthors_based_on_world(self, small_scenario):
        person = small_scenario.world.most_prolific_author()
        gold = small_scenario.gold_coauthor_uris(person)
        assert gold
        assert all(str(uri).startswith("http://southampton") for uri in gold)

    def test_partial_sameas_coverage(self):
        scenario = build_resist_scenario(
            n_persons=15, n_papers=30, sameas_coverage=0.3, seed=11
        )
        full = build_resist_scenario(
            n_persons=15, n_papers=30, sameas_coverage=1.0, seed=11
        )
        assert scenario.sameas_service.bundle_count() < full.sameas_service.bundle_count()

    def test_deterministic_given_seed(self):
        a = build_resist_scenario(n_persons=15, n_papers=30, seed=4)
        b = build_resist_scenario(n_persons=15, n_papers=30, seed=4)
        assert a.dataset_sizes() == b.dataset_sizes()
        assert a.sameas_service.bundle_count() == b.sameas_service.bundle_count()

    def test_rkb_coverage_parameter(self):
        partial = build_resist_scenario(n_persons=15, n_papers=30, rkb_coverage=0.4, seed=4)
        full = build_resist_scenario(n_persons=15, n_papers=30, rkb_coverage=1.0, seed=4)
        partial_size = partial.dataset_sizes()[str(partial.rkb_dataset)]
        full_size = full.dataset_sizes()[str(full.rkb_dataset)]
        assert partial_size < full_size
