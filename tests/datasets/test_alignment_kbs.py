"""Unit tests for the reconstructed alignment knowledge bases (Section 3.4)."""

from repro.alignment import classify_level, validate_ontology_alignment
from repro.datasets import (
    AKT_ONTOLOGY_URI,
    DBPEDIA_DATASET_URI,
    KISTI_DATASET_URI,
    akt_to_dbpedia_alignment,
    akt_to_kisti_alignment,
    has_author_chain_alignment,
)
from repro.rdf import AKT, KISTI


class TestAktToKisti:
    def test_exactly_24_entity_alignments(self):
        assert len(akt_to_kisti_alignment()) == 24

    def test_context_of_validity(self):
        oa = akt_to_kisti_alignment()
        assert oa.applies_to_source(AKT_ONTOLOGY_URI)
        assert oa.applies_to_target_dataset(KISTI_DATASET_URI)

    def test_contains_the_worked_example_chain(self):
        oa = akt_to_kisti_alignment()
        chains = [ea for ea in oa if ea.lhs.predicate == AKT["has-author"]]
        assert len(chains) == 1
        chain = chains[0]
        assert len(chain.rhs) == 2
        assert len(chain.functional_dependencies) == 2
        assert {p.predicate for p in chain.rhs} == {
            KISTI["hasCreatorInfo"], KISTI["hasCreator"]
        }

    def test_mixed_concept_and_property_alignments(self):
        oa = akt_to_kisti_alignment()
        levels = [classify_level(ea) for ea in oa]
        # The 10 concept alignments are plain level-0 renamings; the property
        # alignments carry sameas functional dependencies (or the CreatorInfo
        # chain) and therefore classify as level 2 graph rewritings.
        assert levels.count(0) == 10
        assert levels.count(2) == 14

    def test_no_validation_errors(self):
        issues = validate_ontology_alignment(akt_to_kisti_alignment())
        assert not [issue for issue in issues if issue.is_error()]

    def test_every_head_predicate_unique(self):
        oa = akt_to_kisti_alignment()
        heads = [(ea.lhs.predicate, ea.lhs.object) for ea in oa]
        assert len(heads) == len(set(heads))


class TestAktToDbpedia:
    def test_exactly_42_entity_alignments(self):
        assert len(akt_to_dbpedia_alignment()) == 42

    def test_context_of_validity(self):
        oa = akt_to_dbpedia_alignment()
        assert oa.applies_to_source(AKT_ONTOLOGY_URI)
        assert oa.applies_to_target_dataset(DBPEDIA_DATASET_URI)

    def test_level_mix_includes_level1(self):
        oa = akt_to_dbpedia_alignment()
        levels = [classify_level(ea) for ea in oa]
        assert 1 in levels
        assert 0 in levels

    def test_no_validation_errors(self):
        issues = validate_ontology_alignment(akt_to_dbpedia_alignment())
        assert not [issue for issue in issues if issue.is_error()]


class TestChainAlignmentFactory:
    def test_custom_pattern_used_in_fds(self):
        alignment = has_author_chain_alignment(uri_pattern=r"http://other\.org/\S*")
        for dependency in alignment.functional_dependencies:
            assert "other" in dependency.parameters[1].lexical
