"""Unit tests for the synthetic world model."""

import pytest

from repro.datasets import WorldModel


class TestWorldModel:
    def test_sizes_respected(self):
        world = WorldModel(n_persons=10, n_papers=20, n_projects=3, n_organizations=2, seed=1)
        stats = world.statistics()
        assert stats["persons"] == 10
        assert stats["papers"] == 20
        assert stats["projects"] == 3
        assert stats["organizations"] == 2

    def test_deterministic_for_seed(self):
        a = WorldModel(n_persons=10, n_papers=20, seed=5)
        b = WorldModel(n_persons=10, n_papers=20, seed=5)
        assert [p.title for p in a.papers] == [p.title for p in b.papers]
        assert [p.author_keys for p in a.papers] == [p.author_keys for p in b.papers]

    def test_different_seeds_differ(self):
        a = WorldModel(n_persons=10, n_papers=20, seed=5)
        b = WorldModel(n_persons=10, n_papers=20, seed=6)
        assert [p.author_keys for p in a.papers] != [p.author_keys for p in b.papers]

    def test_authors_are_valid_person_keys(self):
        world = WorldModel(n_persons=8, n_papers=30, seed=2)
        for paper in world.papers:
            assert paper.author_keys
            assert all(0 <= key < 8 for key in paper.author_keys)

    def test_person_names_unique_enough(self):
        world = WorldModel(n_persons=30, n_papers=10, seed=3)
        names = {person.full_name for person in world.persons}
        assert len(names) == 30

    def test_coauthors_of(self):
        world = WorldModel(n_persons=10, n_papers=20, seed=4)
        person = world.most_prolific_author()
        coauthors = world.coauthors_of(person)
        assert person not in coauthors
        # Every coauthor shares at least one paper with the person.
        for other in coauthors:
            assert world.papers_of(person) & world.papers_of(other)

    def test_papers_of_and_papers_in_year(self):
        world = WorldModel(n_persons=10, n_papers=20, seed=4)
        person = world.most_prolific_author()
        assert world.papers_of(person)
        some_year = world.papers[0].year
        assert world.papers[0].key in world.papers_in_year(some_year)

    def test_most_prolific_author_is_argmax(self):
        world = WorldModel(n_persons=10, n_papers=20, seed=4)
        best = world.most_prolific_author()
        best_count = len(world.papers_of(best))
        assert all(len(world.papers_of(p.key)) <= best_count for p in world.persons)

    def test_projects_have_members_and_leader(self):
        world = WorldModel(n_persons=10, n_papers=5, n_projects=4, seed=7)
        for project in world.projects:
            assert project.leader_key in project.member_keys
            assert project.end_year >= project.start_year

    def test_citations_never_self_reference(self):
        world = WorldModel(n_persons=10, n_papers=30, seed=8)
        assert all(citing != cited for citing, cited in world.citations)

    def test_minimum_population_validation(self):
        with pytest.raises(ValueError):
            WorldModel(n_persons=1)
        with pytest.raises(ValueError):
            WorldModel(n_organizations=0)
