"""Unit tests for the no-rewriting baseline."""

from repro.baselines import IdentityFederation
from repro.federation import recall


def coauthor_query(scenario, person_key) -> str:
    person_uri = scenario.akt_person_uri(person_key)
    return f"""
    PREFIX akt:<http://www.aktors.org/ontology/portal#>
    SELECT DISTINCT ?a WHERE {{
      ?paper akt:has-author <{person_uri}> .
      ?paper akt:has-author ?a .
    }}
    """


class TestIdentityFederation:
    def test_only_source_schema_datasets_answer(self, small_scenario):
        person = small_scenario.world.most_prolific_author()
        result = IdentityFederation(small_scenario.registry).execute(
            coauthor_query(small_scenario, person)
        )
        rows = result.per_dataset_rows
        assert rows[small_scenario.rkb_dataset] > 0
        assert rows[small_scenario.kisti_dataset] == 0
        assert rows[small_scenario.dbpedia_dataset] == 0

    def test_merged_equals_source_results(self, small_scenario):
        person = small_scenario.world.most_prolific_author()
        query = coauthor_query(small_scenario, person)
        baseline = IdentityFederation(small_scenario.registry).execute(query)
        source_only = small_scenario.endpoint(small_scenario.rkb_dataset).select(query)
        assert baseline.distinct_values("a") == source_only.distinct_values("a")

    def test_recall_not_higher_than_mediated_federation(self, small_scenario):
        person = small_scenario.world.most_prolific_author()
        query = coauthor_query(small_scenario, person)
        gold = small_scenario.gold_coauthor_uris(person)

        baseline = IdentityFederation(small_scenario.registry).execute(query)
        federated = small_scenario.service.federate(
            query,
            source_ontology=small_scenario.source_ontology,
            source_dataset=small_scenario.rkb_dataset,
            mode="filter-aware",
        )
        baseline_recall = recall(baseline.distinct_values("a"), gold)
        federated_recall = recall(federated.distinct_values("a"), gold)
        assert federated_recall >= baseline_recall

    def test_dataset_restriction(self, small_scenario):
        person = small_scenario.world.most_prolific_author()
        result = IdentityFederation(small_scenario.registry).execute(
            coauthor_query(small_scenario, person),
            datasets=[small_scenario.kisti_dataset],
        )
        assert list(result.per_dataset_rows) == [small_scenario.kisti_dataset]
        assert not result.merged_bindings

    def test_unavailable_endpoint_recorded_as_error(self, small_scenario):
        person = small_scenario.world.most_prolific_author()
        endpoint = small_scenario.endpoint(small_scenario.kisti_dataset)
        endpoint.available = False
        try:
            result = IdentityFederation(small_scenario.registry).execute(
                coauthor_query(small_scenario, person)
            )
            assert small_scenario.kisti_dataset in result.errors
        finally:
            endpoint.available = True
