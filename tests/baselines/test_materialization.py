"""Unit tests for the materialisation (forward-chaining) baseline."""

import pytest

from repro.baselines import MaterializationIntegrator
from repro.datasets import RKB_URI_PATTERN, akt_to_kisti_alignment
from repro.rdf import AKT, Graph, KISTI, KISTI_ID, Literal, RDF, RKB_ID, Triple
from repro.sparql import QueryEvaluator


@pytest.fixture()
def kisti_graph(sameas_service) -> Graph:
    """A small KISTI-vocabulary dataset describing one paper and two authors."""
    graph = Graph()
    paper = KISTI_ID["PAP_000000000001"]
    author_known = KISTI_ID["PER_00000000000105047"]  # linked to RKB person-02686
    author_local = KISTI_ID["PER_00000000000999999"]  # no RKB equivalent
    graph.add(Triple(paper, RDF.type, KISTI["Paper"]))
    graph.add(Triple(paper, KISTI["title"], Literal("Linked Data Integration")))
    for index, author in enumerate([author_known, author_local]):
        info = KISTI_ID[f"CRE_{index}"]
        graph.add(Triple(info, RDF.type, KISTI["CreatorInfo"]))
        graph.add(Triple(paper, KISTI["hasCreatorInfo"], info))
        graph.add(Triple(info, KISTI["hasCreator"], author))
        graph.add(Triple(author, RDF.type, KISTI["Researcher"]))
    return graph


@pytest.fixture()
def integrator(sameas_service) -> MaterializationIntegrator:
    alignments = list(akt_to_kisti_alignment())
    return MaterializationIntegrator(alignments, sameas_service, RKB_URI_PATTERN)


class TestMaterialization:
    def test_reverse_application_of_chain_rule(self, integrator, kisti_graph):
        materialized, stats = integrator.integrate([kisti_graph])
        # The CreatorInfo chain is folded back into akt:has-author triples.
        authors = list(materialized.triples(None, AKT["has-author"], None))
        assert len(authors) == 2
        assert stats.derived_triples == len(materialized)
        assert stats.input_triples == len(kisti_graph)
        assert stats.rule_applications > 0

    def test_known_uris_translated_to_source_space(self, integrator, kisti_graph):
        materialized, stats = integrator.integrate([kisti_graph])
        objects = {t.object for t in materialized.triples(None, AKT["has-author"], None)}
        assert RKB_ID["person-02686"] in objects
        assert stats.sameas_translations > 0

    def test_unlinked_uris_kept(self, integrator, kisti_graph):
        materialized, _ = integrator.integrate([kisti_graph])
        objects = {t.object for t in materialized.triples(None, AKT["has-author"], None)}
        assert KISTI_ID["PER_00000000000999999"] in objects

    def test_class_memberships_translated(self, integrator, kisti_graph):
        materialized, _ = integrator.integrate([kisti_graph])
        assert list(materialized.triples(None, RDF.type, AKT["Person"]))
        assert list(materialized.triples(None, RDF.type, AKT["Article-Reference"]))

    def test_literal_properties_translated(self, integrator, kisti_graph):
        materialized, _ = integrator.integrate([kisti_graph])
        titles = list(materialized.triples(None, AKT["has-title"], None))
        assert len(titles) == 1
        assert titles[0].object == Literal("Linked Data Integration")

    def test_source_query_works_on_materialized_graph(self, integrator, kisti_graph):
        materialized, _ = integrator.integrate([kisti_graph])
        result = QueryEvaluator(materialized).select("""
            PREFIX akt:<http://www.aktors.org/ontology/portal#>
            SELECT DISTINCT ?a WHERE { ?p akt:has-author ?a }
        """)
        assert len(result) == 2

    def test_cost_grows_with_data_size(self, integrator, kisti_graph, sameas_service):
        """The defining weakness: work is proportional to the data, not the query."""
        bigger = Graph()
        bigger.add_all(kisti_graph)
        for index in range(50):
            paper = KISTI_ID[f"PAP_X{index}"]
            info = KISTI_ID[f"CRE_X{index}"]
            author = KISTI_ID[f"PER_X{index}"]
            bigger.add(Triple(paper, KISTI["hasCreatorInfo"], info))
            bigger.add(Triple(info, KISTI["hasCreator"], author))
        _, small_stats = integrator.integrate([kisti_graph])
        _, big_stats = integrator.integrate([bigger])
        assert big_stats.rule_applications > small_stats.rule_applications
        assert big_stats.derived_triples > small_stats.derived_triples

    def test_empty_input(self, integrator):
        materialized, stats = integrator.integrate([])
        assert len(materialized) == 0
        assert stats.input_triples == 0

    def test_integration_is_idempotent_on_output_size(self, integrator, kisti_graph):
        first, _ = integrator.integrate([kisti_graph])
        second, _ = integrator.integrate([kisti_graph, kisti_graph])
        assert len(first) == len(second)
