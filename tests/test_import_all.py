"""Collection guard: every module in the ``repro`` package must import.

The seed suite once failed with 12 opaque collection errors because of a
packaging problem; this test turns any future broken import (circular
imports, missing optional dependencies, renamed modules) into one clear
failure naming the module and the exception.
"""

import importlib
import pkgutil

import repro


def _walk_module_names():
    yield "repro"
    for module in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield module.name


def test_every_repro_module_imports():
    failures = []
    for name in _walk_module_names():
        try:
            importlib.import_module(name)
        except Exception as exc:  # noqa: BLE001 - reporting, not handling
            failures.append(f"{name}: {type(exc).__name__}: {exc}")
    assert not failures, "modules failed to import:\n" + "\n".join(failures)


def test_walk_covers_the_known_subpackages():
    names = set(_walk_module_names())
    for expected in (
        "repro.core.index",
        "repro.core.mediator",
        "repro.alignment.store",
        "repro.federation.federator",
        "repro.sparql",
        "repro.turtle",
        "repro.cli",
    ):
        assert expected in names
