"""The SPARQL Protocol server: bindings, negotiation, errors, cache, health."""

import json
import urllib.error
import urllib.parse
import urllib.request

import pytest

from repro.federation import EndpointTimeout, LocalSparqlEndpoint
from repro.rdf import URIRef
from repro.server import EndpointBackend, FederationBackend, QueryBackend, SparqlHttpServer
from repro.sparql.formats import parse_results
from repro.turtle import parse_graph

DATA = """
@prefix ex: <http://example.org/> .
ex:a ex:knows ex:b .
ex:b ex:knows ex:c .
ex:a ex:name "Alice" .
"""

SELECT = "SELECT ?s ?o WHERE { ?s <http://example.org/knows> ?o }"
ASK = "ASK { <http://example.org/a> <http://example.org/knows> <http://example.org/b> }"
CONSTRUCT = (
    "CONSTRUCT { ?s <http://example.org/linked> ?o } "
    "WHERE { ?s <http://example.org/knows> ?o }"
)


@pytest.fixture()
def endpoint():
    return LocalSparqlEndpoint(URIRef("http://example.org/dataset"), parse_graph(DATA))


@pytest.fixture()
def server(endpoint):
    with SparqlHttpServer(EndpointBackend(endpoint)) as running:
        yield running


def _get(server, query, accept=None, path="/sparql"):
    url = f"{server.url}{path}?" + urllib.parse.urlencode({"query": query})
    request = urllib.request.Request(url, headers={"Accept": accept} if accept else {})
    with urllib.request.urlopen(request) as response:
        return response.status, response.headers.get("Content-Type"), response.read().decode()


def _post(server, body, content_type, accept=None):
    headers = {"Content-Type": content_type}
    if accept:
        headers["Accept"] = accept
    request = urllib.request.Request(
        server.query_url, data=body.encode("utf-8"), headers=headers
    )
    with urllib.request.urlopen(request) as response:
        return response.status, response.headers.get("Content-Type"), response.read().decode()


def _status_of(callable_):
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        callable_()
    return excinfo.value.code


class TestQueryBindings:
    def test_get_binding_defaults_to_json(self, server):
        status, content_type, body = _get(server, SELECT)
        assert status == 200
        assert content_type.startswith("application/sparql-results+json")
        result = parse_results(body, "json")
        assert len(result) == 2

    def test_post_urlencoded(self, server):
        body = urllib.parse.urlencode({"query": SELECT})
        status, _, text = _post(server, body, "application/x-www-form-urlencoded")
        assert status == 200
        assert len(parse_results(text, "json")) == 2

    def test_post_raw_sparql_query(self, server):
        status, _, text = _post(server, SELECT, "application/sparql-query")
        assert status == 200
        assert len(parse_results(text, "json")) == 2

    def test_ask_query(self, server):
        status, _, body = _get(server, ASK)
        assert status == 200
        assert json.loads(body)["boolean"] is True

    def test_construct_returns_turtle(self, server):
        status, content_type, body = _get(server, CONSTRUCT)
        assert status == 200
        assert content_type.startswith("text/turtle")
        graph = parse_graph(body)
        assert len(graph) == 2

    def test_construct_ntriples_negotiation(self, server):
        status, content_type, body = _get(server, CONSTRUCT, accept="application/n-triples")
        assert status == 200
        assert content_type.startswith("application/n-triples")
        assert len(parse_graph(body, format="ntriples")) == 2

    def test_alternate_query_path(self, server):
        status, _, _ = _get(server, SELECT, path="/query")
        assert status == 200


class TestContentNegotiation:
    @pytest.mark.parametrize("accept,expected_type", [
        ("application/sparql-results+xml", "application/sparql-results+xml"),
        ("text/csv", "text/csv"),
        ("text/tab-separated-values", "text/tab-separated-values"),
        ("application/json", "application/sparql-results+json"),
        ("*/*", "application/sparql-results+json"),
    ])
    def test_select_formats(self, server, accept, expected_type):
        status, content_type, _ = _get(server, SELECT, accept=accept)
        assert status == 200
        assert content_type.startswith(expected_type)

    def test_quality_weights(self, server):
        accept = "text/csv;q=0.3, application/sparql-results+xml;q=0.9"
        _, content_type, _ = _get(server, SELECT, accept=accept)
        assert content_type.startswith("application/sparql-results+xml")

    def test_unacceptable_select(self, server):
        assert _status_of(lambda: _get(server, SELECT, accept="image/png")) == 406

    def test_ask_rejects_csv(self, server):
        assert _status_of(lambda: _get(server, ASK, accept="text/csv")) == 406


class TestProtocolErrors:
    def test_missing_query_parameter(self, server):
        code = _status_of(lambda: urllib.request.urlopen(server.query_url + "?other=1"))
        assert code == 400

    def test_malformed_query(self, server):
        assert _status_of(lambda: _get(server, "SELECT WHERE {")) == 400

    def test_unknown_path(self, server):
        code = _status_of(
            lambda: urllib.request.urlopen(server.url + "/nope?query=SELECT")
        )
        assert code == 404

    def test_unsupported_post_media_type(self, server):
        assert _status_of(lambda: _post(server, SELECT, "text/plain")) == 415

    def test_unavailable_endpoint_maps_to_503(self, endpoint, server):
        endpoint.available = False
        assert _status_of(lambda: _get(server, SELECT)) == 503

    def test_injected_flake_maps_to_503(self, endpoint, server):
        endpoint.fail_next(1)
        assert _status_of(lambda: _get(server, SELECT)) == 503
        status, _, _ = _get(server, SELECT)  # next attempt recovers
        assert status == 200

    def test_backend_timeout_maps_to_504(self):
        class TimingOutBackend(QueryBackend):
            def execute(self, query_text):
                raise EndpointTimeout("upstream took too long")

        with SparqlHttpServer(TimingOutBackend()) as server:
            code = _status_of(
                lambda: urllib.request.urlopen(
                    server.query_url + "?" + urllib.parse.urlencode({"query": SELECT})
                )
            )
        assert code == 504


class TestObservability:
    def test_service_description(self, server):
        with urllib.request.urlopen(server.url + "/") as response:
            payload = json.loads(response.read())
        assert payload["query"] == "/sparql"
        assert "application/sparql-results+json" in payload["result_formats"]

    def test_health_reports_endpoint(self, server):
        with urllib.request.urlopen(server.url + "/health") as response:
            payload = json.loads(response.read())
        assert payload["status"] == "ok"
        assert payload["endpoint"] == "http://example.org/dataset"
        assert payload["triples"] == 3

    def test_health_reflects_unavailability(self, endpoint, server):
        endpoint.available = False
        with urllib.request.urlopen(server.url + "/health") as response:
            payload = json.loads(response.read())
        assert payload["status"] == "unavailable"

    def test_metrics_counts_queries_and_statistics(self, endpoint, server):
        _get(server, SELECT)
        _get(server, ASK)
        with urllib.request.urlopen(server.url + "/metrics") as response:
            payload = json.loads(response.read())
        assert payload["server"]["queries"] == 2
        endpoint_stats = payload["endpoints"]["http://example.org/dataset"]
        assert endpoint_stats["select_queries"] == 1
        assert endpoint_stats["ask_queries"] == 1

    def test_metrics_json_includes_latency_and_slowlog(self, server):
        import time

        _get(server, SELECT)
        # The latency observation lands just after the response is sent.
        deadline = time.time() + 5.0
        while True:
            with urllib.request.urlopen(server.url + "/metrics") as response:
                payload = json.loads(response.read())
            if payload["latency"]["sparql"]["count"] or time.time() > deadline:
                break
            time.sleep(0.01)
        latency = payload["latency"]["sparql"]
        assert latency["count"] >= 1
        assert latency["p50"] is not None
        assert set(latency) == {"count", "p50", "p95", "p99"}
        assert {"threshold", "capacity", "recorded", "entries"} <= set(
            payload["slowlog"]
        )

    def test_slow_query_is_retained_with_its_text(self, server, monkeypatch):
        from repro.obs.slowlog import SLOW_LOG

        # Drop the threshold so even this trivial query counts as slow.
        monkeypatch.setattr(SLOW_LOG, "threshold", 0.0)
        SLOW_LOG.clear()
        try:
            _get(server, SELECT)
            with urllib.request.urlopen(server.url + "/metrics") as response:
                payload = json.loads(response.read())
            entries = payload["slowlog"]["entries"]
            assert any(
                entry["layer"] == "http" and entry["query"] == SELECT
                for entry in entries
            )
        finally:
            SLOW_LOG.clear()


class TestPrometheusExposition:
    def _scrape(self, server, accept=None, path="/metrics"):
        headers = {"Accept": accept} if accept else {}
        request = urllib.request.Request(server.url + path, headers=headers)
        with urllib.request.urlopen(request) as response:
            return response.headers.get("Content-Type"), response.read().decode()

    def test_json_stays_the_default(self, server):
        content_type, body = self._scrape(server)
        assert content_type.startswith("application/json")
        json.loads(body)

    def test_accept_text_plain_negotiates_prometheus(self, server):
        import time

        _get(server, SELECT)
        # The handler records its latency after the response bytes are out,
        # so the histogram may land an instant after _get returns.
        deadline = time.time() + 5.0
        while True:
            content_type, body = self._scrape(server, accept="text/plain")
            if "repro_http_request_seconds" in body or time.time() > deadline:
                break
            time.sleep(0.01)
        assert content_type == "text/plain; version=0.0.4; charset=utf-8"
        assert "# TYPE repro_http_requests_total counter" in body
        assert "# TYPE repro_http_request_seconds histogram" in body
        assert 'repro_http_request_seconds_bucket{handler="sparql",le="+Inf"}' in body

    def test_format_parameter_negotiates_prometheus(self, server):
        _, body = self._scrape(server, path="/metrics?format=prometheus")
        assert "# TYPE repro_http_requests_total counter" in body

    def test_exposition_passes_the_format_checker(self, server):
        import importlib.util
        import sys
        from pathlib import Path

        _get(server, SELECT)
        _get(server, ASK)
        _, body = self._scrape(server, accept="text/plain")
        path = (Path(__file__).resolve().parents[2] / "tools"
                / "check_prom_format.py")
        spec = importlib.util.spec_from_file_location("check_prom_format", path)
        module = importlib.util.module_from_spec(spec)
        sys.modules.setdefault("check_prom_format", module)
        spec.loader.exec_module(module)
        problems, types, samples = module.check(body)
        assert problems == []
        assert types["repro_http_requests_total"] == "counter"
        assert samples

    def test_counters_agree_between_json_and_prometheus(self, server):
        _get(server, SELECT)
        _, json_body = self._scrape(server)
        queries = json.loads(json_body)["server"]["queries"]
        _, prom_body = self._scrape(server, accept="text/plain")
        # The scrape above was itself a request, but not a query.
        assert f"repro_http_queries_total {queries}" in prom_body


class TestResponseCache:
    def test_repeated_query_hits_the_cache(self, endpoint, server):
        _get(server, SELECT)
        before = endpoint.statistics.select_queries
        status, _, _ = _get(server, SELECT)
        assert status == 200
        assert endpoint.statistics.select_queries == before  # served from cache
        assert server.cache.info()["hits"] >= 1

    def test_different_formats_are_cached_separately(self, endpoint, server):
        _get(server, SELECT, accept="text/csv")
        before = endpoint.statistics.select_queries
        _get(server, SELECT, accept="application/sparql-results+xml")
        assert endpoint.statistics.select_queries == before + 1

    def test_cache_can_be_disabled(self, endpoint):
        with SparqlHttpServer(EndpointBackend(endpoint), cache_size=0) as server:
            _get(server, SELECT)
            before = endpoint.statistics.select_queries
            _get(server, SELECT)
            assert endpoint.statistics.select_queries == before + 1


class TestFederationBackendCacheInvalidation:
    def test_alignment_kb_edit_invalidates_cached_responses(self):
        from repro.datasets import build_resist_scenario
        from repro.alignment import OntologyAlignment

        scenario = build_resist_scenario(n_persons=8, n_papers=12, seed=5)
        backend = FederationBackend(
            scenario.service,
            source_ontology=scenario.source_ontology,
            source_dataset=scenario.rkb_dataset,
            mode="filter-aware",
        )
        person = scenario.akt_person_uri(scenario.world.most_prolific_author())
        query = (
            "PREFIX akt:<http://www.aktors.org/ontology/portal#> "
            f"SELECT DISTINCT ?a WHERE {{ ?paper akt:has-author <{person}> . "
            "?paper akt:has-author ?a }"
        )
        with SparqlHttpServer(backend) as server:
            _get(server, query)
            generation = backend.generation
            hits_before = server.cache.info()["hits"]
            _get(server, query)
            assert server.cache.info()["hits"] == hits_before + 1

            # Editing the alignment KB bumps the store generation: the next
            # request must miss the cache and recompute.
            scenario.alignment_store.add(
                OntologyAlignment(
                    source_ontologies=[URIRef("http://example.org/ontology/src")],
                    target_ontologies=[URIRef("http://example.org/ontology/dst")],
                )
            )
            assert backend.generation != generation
            misses_before = server.cache.info()["misses"]
            _get(server, query)
            assert server.cache.info()["misses"] > misses_before


class TestReviewRegressions:
    def test_bare_endpoint_error_maps_to_502_not_dropped_connection(self):
        from repro.federation import EndpointError

        class GarblingBackend(QueryBackend):
            def execute(self, query_text):
                raise EndpointError("upstream returned an unparseable document")

        with SparqlHttpServer(GarblingBackend()) as server:
            code = _status_of(
                lambda: urllib.request.urlopen(
                    server.query_url + "?" + urllib.parse.urlencode({"query": SELECT})
                )
            )
        assert code == 502

    def test_unexpected_backend_bug_still_answers_500(self):
        class BuggyBackend(QueryBackend):
            def execute(self, query_text):
                raise RuntimeError("boom")

        with SparqlHttpServer(BuggyBackend()) as server:
            code = _status_of(
                lambda: urllib.request.urlopen(
                    server.query_url + "?" + urllib.parse.urlencode({"query": SELECT})
                )
            )
        assert code == 500

    def test_error_counter_counts_each_5xx_once(self, endpoint, server):
        endpoint.fail_next(1)
        assert _status_of(lambda: _get(server, SELECT)) == 503
        with urllib.request.urlopen(server.url + "/metrics") as response:
            payload = json.loads(response.read())
        assert payload["server"]["errors"] == 1

    def test_graph_mutation_invalidates_endpoint_backend_cache(self, endpoint, server):
        from repro.rdf import Triple, URIRef as U

        first = json.loads(_get(server, SELECT)[2])
        assert len(first["results"]["bindings"]) == 2
        # The response is cached; a data change must not serve it stale.
        endpoint.load([Triple(
            U("http://example.org/c"), U("http://example.org/knows"),
            U("http://example.org/d"),
        )])
        second = json.loads(_get(server, SELECT)[2])
        assert len(second["results"]["bindings"]) == 3


class TestAnalyzeRoute:
    """GET/POST /analyze: EXPLAIN ANALYZE over the wire."""

    def test_get_returns_event_report_and_rows(self, server):
        status, content_type, body = _get(server, SELECT, path="/analyze")
        assert status == 200
        assert content_type.startswith("application/json")
        payload = json.loads(body)
        assert payload["rows"] == 2
        assert payload["event"]["engine"] == "planner"
        assert payload["event"]["operators"]
        assert "EXPLAIN ANALYZE" in payload["report"]

    def test_post_urlencoded(self, server):
        body = urllib.parse.urlencode({"query": ASK}).encode()
        request = urllib.request.Request(
            server.url + "/analyze", data=body,
            headers={"Content-Type": "application/x-www-form-urlencoded"},
        )
        with urllib.request.urlopen(request) as response:
            payload = json.loads(response.read())
        assert payload["boolean"] is True

    def test_construct_reports_triples(self, server):
        _, _, body = _get(server, CONSTRUCT, path="/analyze")
        payload = json.loads(body)
        assert payload["triples"] == 2

    def test_malformed_query_maps_to_400(self, server):
        assert _status_of(lambda: _get(server, "SELEKT", path="/analyze")) == 400

    def test_analyze_is_never_cached(self, endpoint, server):
        _get(server, SELECT, path="/analyze")
        before = endpoint.statistics.select_queries
        _get(server, SELECT, path="/analyze")
        # A second analyze must re-execute: timings are per-run.
        assert endpoint.statistics.select_queries == before + 1

    def test_service_document_advertises_analyze(self, server):
        with urllib.request.urlopen(server.url + "/") as response:
            payload = json.loads(response.read())
        assert payload["analyze"] == "/analyze"

    def test_federation_backend_analyze(self):
        from repro.datasets import build_resist_scenario

        scenario = build_resist_scenario(n_persons=8, n_papers=12, seed=5)
        backend = FederationBackend(
            scenario.service,
            source_ontology=scenario.source_ontology,
            source_dataset=scenario.rkb_dataset,
            mode="filter-aware",
            strategy="decompose",
        )
        person = scenario.akt_person_uri(scenario.world.most_prolific_author())
        query = (
            "PREFIX akt:<http://www.aktors.org/ontology/portal#> "
            f"SELECT DISTINCT ?a WHERE {{ ?paper akt:has-author <{person}> . "
            "?paper akt:has-author ?a }"
        )
        with SparqlHttpServer(backend) as server:
            _, _, body = _get(server, query, path="/analyze")
        payload = json.loads(body)
        assert payload["event"]["engine"] == "decompose"
        assert payload["event"]["endpoints"]
        assert payload["rows"] >= 1


# --------------------------------------------------------------------------- #
# Strict mode: static analysis rejects bad queries with structured JSON
# --------------------------------------------------------------------------- #
class TestStrictMode:
    @pytest.fixture()
    def strict_server(self, endpoint):
        with SparqlHttpServer(EndpointBackend(endpoint, strict=True)) as running:
            yield running

    def test_error_diagnostics_reject_with_structured_json(self, strict_server):
        url = f"{strict_server.url}/sparql?" + urllib.parse.urlencode(
            {"query": "SELECT ?nope WHERE { ?s ?p ?o }"}
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(url)
        response = excinfo.value
        assert response.status == 400
        assert response.headers.get("Content-Type", "").startswith("application/json")
        payload = json.loads(response.read().decode())
        assert payload["error"]
        [error] = [d for d in payload["diagnostics"] if d["severity"] == "error"]
        assert error["code"] == "SQA101"
        assert error["span"]["line"] == 1

    def test_warnings_do_not_reject(self, strict_server):
        status, content_type, body = _get(
            strict_server, "SELECT ?s WHERE { ?s ?p ?o FILTER(1 = 2) }",
            accept="application/sparql-results+json",
        )
        assert status == 200
        payload = json.loads(body)
        assert payload["results"]["bindings"] == []
        codes = [d["code"] for d in payload["diagnostics"]]
        assert "SQA108" in codes

    def test_non_strict_server_answers_with_warning_field(self, server):
        status, _, body = _get(
            server, "SELECT ?s WHERE { ?s ?p ?o FILTER(1 = 2) }",
            accept="application/sparql-results+json",
        )
        assert status == 200
        payload = json.loads(body)
        assert any(d["code"] == "SQA108" for d in payload["diagnostics"])
