"""Unit tests for namespaces and the prefix manager."""

import pytest

from repro.rdf import (
    AKT,
    KISTI,
    Namespace,
    NamespaceManager,
    RDF,
    URIRef,
)


class TestNamespace:
    def test_attribute_access(self):
        ns = Namespace("http://example.org/vocab#")
        assert ns.Person == URIRef("http://example.org/vocab#Person")

    def test_item_access_with_hyphen(self):
        assert AKT["has-author"] == URIRef("http://www.aktors.org/ontology/portal#has-author")

    def test_contains(self):
        assert AKT["has-author"] in AKT
        assert KISTI.hasCreator not in AKT

    def test_local_name(self):
        assert AKT.local_name(AKT["has-author"]) == "has-author"
        with pytest.raises(ValueError):
            AKT.local_name(KISTI.hasCreator)

    def test_equality(self):
        assert Namespace("http://a/") == Namespace("http://a/")
        assert Namespace("http://a/") != Namespace("http://b/")

    def test_private_attribute_raises(self):
        with pytest.raises(AttributeError):
            AKT._missing  # noqa: B018


class TestNamespaceManager:
    def test_default_bindings_installed(self):
        manager = NamespaceManager()
        assert manager.namespace("rdf") == str(RDF)
        assert manager.namespace("akt") == str(AKT)

    def test_empty_manager(self):
        manager = NamespaceManager(install_defaults=False)
        assert len(manager) == 0
        assert manager.namespace("rdf") is None

    def test_bind_and_expand(self):
        manager = NamespaceManager(install_defaults=False)
        manager.bind("ex", "http://example.org/")
        assert manager.expand("ex:thing") == URIRef("http://example.org/thing")

    def test_expand_unbound_prefix(self):
        manager = NamespaceManager(install_defaults=False)
        with pytest.raises(KeyError):
            manager.expand("nope:thing")

    def test_expand_requires_colon(self):
        manager = NamespaceManager()
        with pytest.raises(ValueError):
            manager.expand("nocolon")

    def test_compact_prefers_longest_namespace(self):
        manager = NamespaceManager(install_defaults=False)
        manager.bind("a", "http://example.org/")
        manager.bind("b", "http://example.org/deeper/")
        assert manager.compact(URIRef("http://example.org/deeper/x")) == "b:x"

    def test_compact_rejects_slashy_local_names(self):
        manager = NamespaceManager(install_defaults=False)
        manager.bind("a", "http://example.org/")
        assert manager.compact(URIRef("http://example.org/a/b")) is None

    def test_compact_unknown_namespace(self):
        manager = NamespaceManager(install_defaults=False)
        assert manager.compact(URIRef("http://unknown.org/x")) is None

    def test_bind_no_replace(self):
        manager = NamespaceManager(install_defaults=False)
        manager.bind("ex", "http://one.org/")
        manager.bind("ex", "http://two.org/", replace=False)
        assert manager.namespace("ex") == "http://one.org/"

    def test_rebind_updates_reverse_mapping(self):
        manager = NamespaceManager(install_defaults=False)
        manager.bind("ex", "http://one.org/")
        manager.bind("ex", "http://two.org/")
        assert manager.namespace("ex") == "http://two.org/"
        assert manager.prefix("http://two.org/") == "ex"

    def test_copy_is_independent(self):
        manager = NamespaceManager(install_defaults=False)
        manager.bind("ex", "http://one.org/")
        clone = manager.copy()
        clone.bind("other", "http://two.org/")
        assert "other" in clone
        assert "other" not in manager

    def test_namespaces_iteration_sorted(self):
        manager = NamespaceManager(install_defaults=False)
        manager.bind("z", "http://z.org/")
        manager.bind("a", "http://a.org/")
        assert [prefix for prefix, _ in manager.namespaces()] == ["a", "z"]
