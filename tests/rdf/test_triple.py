"""Unit tests for triples and triple patterns."""

import pytest

from repro.rdf import BNode, Literal, Quad, Triple, URIRef, Variable

EX = "http://example.org/"


def uri(name: str) -> URIRef:
    return URIRef(EX + name)


class TestTripleConstruction:
    def test_valid_ground_triple(self):
        triple = Triple(uri("s"), uri("p"), Literal("o"))
        assert triple.subject == uri("s")
        assert triple.predicate == uri("p")
        assert triple.object == Literal("o")

    def test_literal_subject_rejected(self):
        with pytest.raises(TypeError):
            Triple(Literal("bad"), uri("p"), uri("o"))

    def test_literal_predicate_rejected(self):
        with pytest.raises(TypeError):
            Triple(uri("s"), Literal("bad"), uri("o"))

    def test_bnode_predicate_rejected(self):
        with pytest.raises(TypeError):
            Triple(uri("s"), BNode("b"), uri("o"))

    def test_variable_positions_allowed(self):
        triple = Triple(Variable("s"), Variable("p"), Variable("o"))
        assert triple.is_pattern()


class TestTripleBehaviour:
    def test_iteration_and_indexing(self):
        triple = Triple(uri("s"), uri("p"), uri("o"))
        assert list(triple) == [uri("s"), uri("p"), uri("o")]
        assert triple[0] == uri("s")
        assert triple[2] == uri("o")
        assert len(triple) == 3

    def test_equality_and_hash(self):
        a = Triple(uri("s"), uri("p"), uri("o"))
        b = Triple(uri("s"), uri("p"), uri("o"))
        c = Triple(uri("s"), uri("p"), uri("other"))
        assert a == b
        assert hash(a) == hash(b)
        assert a != c
        assert a in {b}

    def test_is_ground_and_pattern(self):
        assert Triple(uri("s"), uri("p"), uri("o")).is_ground()
        assert Triple(Variable("s"), uri("p"), uri("o")).is_pattern()
        assert Triple(BNode("s"), uri("p"), uri("o")).is_pattern()

    def test_variables_and_bnodes(self):
        triple = Triple(Variable("x"), uri("p"), BNode("b"))
        assert triple.variables() == {Variable("x")}
        assert triple.bnodes() == {BNode("b")}
        assert triple.variable_like_terms() == {Variable("x"), BNode("b")}

    def test_map_terms(self):
        triple = Triple(Variable("x"), uri("p"), Variable("y"))
        mapped = triple.map_terms(lambda t: uri("a") if isinstance(t, Variable) else t)
        assert mapped == Triple(uri("a"), uri("p"), uri("a"))

    def test_bnodes_as_variables(self):
        triple = Triple(BNode("p1"), uri("p"), BNode("a1"))
        converted = triple.bnodes_as_variables()
        assert converted == Triple(Variable("p1"), uri("p"), Variable("a1"))

    def test_n3_and_str(self):
        triple = Triple(uri("s"), uri("p"), Literal("o"))
        assert triple.n3().startswith("<http://example.org/s>")
        assert str(triple).endswith(" .")

    def test_ordering(self):
        a = Triple(uri("a"), uri("p"), uri("o"))
        b = Triple(uri("b"), uri("p"), uri("o"))
        assert sorted([b, a]) == [a, b]


class TestQuad:
    def test_quad_equality(self):
        triple = Triple(uri("s"), uri("p"), uri("o"))
        assert Quad(triple, uri("g")) == Quad(triple, uri("g"))
        assert Quad(triple, uri("g")) != Quad(triple, None)

    def test_quad_requires_triple(self):
        with pytest.raises(TypeError):
            Quad(("s", "p", "o"), uri("g"))  # type: ignore[arg-type]

    def test_quad_graph_name_type(self):
        triple = Triple(uri("s"), uri("p"), uri("o"))
        with pytest.raises(TypeError):
            Quad(triple, "not-a-uri")  # type: ignore[arg-type]

    def test_as_tuple(self):
        triple = Triple(uri("s"), uri("p"), uri("o"))
        assert Quad(triple, uri("g")).as_tuple() == (uri("s"), uri("p"), uri("o"), uri("g"))
