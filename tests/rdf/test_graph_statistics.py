"""Incremental graph statistics and exact cardinality answers."""

from __future__ import annotations

import pytest

from repro.rdf import RDF, Graph, Literal, Triple, URIRef, Variable


def u(name: str) -> URIRef:
    return URIRef(f"http://stats.example/{name}")


@pytest.fixture()
def graph() -> Graph:
    g = Graph()
    g.add(Triple(u("a"), RDF.type, u("Person")))
    g.add(Triple(u("b"), RDF.type, u("Person")))
    g.add(Triple(u("c"), RDF.type, u("Robot")))
    g.add(Triple(u("a"), u("knows"), u("b")))
    g.add(Triple(u("a"), u("knows"), u("c")))
    g.add(Triple(u("b"), u("name"), Literal("b")))
    return g


def _brute_count(graph: Graph, s, p, o) -> int:
    return sum(1 for _ in graph.triples(s, p, o))


def test_counters_track_adds(graph: Graph) -> None:
    stats = graph.stats
    assert stats.subject_counts[u("a")] == 3
    assert stats.predicate_counts[RDF.type] == 3
    assert stats.predicate_counts[u("knows")] == 2
    assert stats.object_counts[u("Person")] == 2
    assert stats.class_counts == {u("Person"): 2, u("Robot"): 1}


def test_counters_track_removals(graph: Graph) -> None:
    graph.discard(Triple(u("a"), RDF.type, u("Person")))
    stats = graph.stats
    assert stats.subject_counts[u("a")] == 2
    assert stats.class_counts[u("Person")] == 1
    graph.discard(Triple(u("b"), RDF.type, u("Person")))
    assert u("Person") not in stats.class_counts
    assert u("Person") not in stats.object_counts


def test_duplicate_add_does_not_double_count(graph: Graph) -> None:
    before = dict(graph.stats.predicate_counts)
    graph.add(Triple(u("a"), u("knows"), u("b")))
    assert graph.stats.predicate_counts == before


def test_clear_resets_statistics(graph: Graph) -> None:
    graph.clear()
    assert graph.stats.subject_counts == {}
    assert graph.stats.class_counts == {}
    assert graph.cardinality(None, None, None) == 0


def test_cardinality_is_exact_for_every_pattern_shape(graph: Graph) -> None:
    terms = [None, u("a"), u("b"), RDF.type, u("knows"), u("Person"), Literal("b")]
    for s in terms:
        for p in terms:
            for o in terms:
                assert graph.cardinality(s, p, o) == _brute_count(graph, s, p, o), (s, p, o)


def test_variables_act_as_wildcards(graph: Graph) -> None:
    assert graph.cardinality(Variable("x"), RDF.type, Variable("y")) == 3


def test_invalid_positions_match_nothing(graph: Graph) -> None:
    # A variable bound to a literal can end up as a subject/predicate lookup;
    # that must count (and match) zero, not crash.
    assert graph.cardinality(Literal("b"), None, None) == 0
    assert graph.cardinality(None, Literal("b"), None) == 0
    assert list(graph.triples(Literal("b"), None, None)) == []
    assert list(graph.triples(u("a"), Literal("b"), u("b"))) == []


def test_histograms_come_from_statistics(graph: Graph) -> None:
    assert graph.predicate_histogram() == {
        RDF.type: 3, u("knows"): 2, u("name"): 1,
    }
    assert graph.class_histogram() == {u("Person"): 2, u("Robot"): 1}


def test_readonly_view_forwards_cardinality(graph: Graph) -> None:
    from repro.rdf import GraphView

    view = GraphView(graph)
    assert view.cardinality(None, RDF.type, None) == 3
    assert view.stats is graph.stats
