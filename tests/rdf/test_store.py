"""The Store contract, the persistent SegmentStore, and the Graph facade API.

Three layers of coverage:

* contract tests parameterized over both backends — every pattern shape,
  exact cardinalities, statistics and version semantics must be identical
  whether triples live in nested dicts or in on-disk segments;
* SegmentStore specifics — durability across reopen, write-buffer flushes,
  tombstoned deletes, compaction, corruption handling, and the I/O
  accounting that proves queries don't read the whole file;
* the redesigned construction API — ``Graph(store=...)``, ``Graph.load``,
  ``open_graph``/``open_store`` and the ``ReadOnlyGraphView`` shim.
"""

from __future__ import annotations

from collections import Counter
from itertools import product

import pytest
from hypothesis import given, settings, strategies as st

from repro.rdf import (
    RDF,
    Graph,
    GraphView,
    Literal,
    MemoryStore,
    ReadOnlyGraphView,
    SegmentStore,
    Store,
    StoreError,
    Triple,
    URIRef,
    open_graph,
    open_store,
)

EX = "http://example.org/"


def u(name: str) -> URIRef:
    return URIRef(EX + name)


BACKENDS = ("memory", "segment")


def make_store(backend: str, tmp_path, **options) -> Store:
    if backend == "memory":
        return MemoryStore()
    options.setdefault("buffer_limit", 4)  # force multi-segment layouts
    return SegmentStore(tmp_path / "store", **options)


def sample_triples() -> list[Triple]:
    triples = [
        Triple(u("alice"), u("knows"), u("bob")),
        Triple(u("alice"), u("knows"), u("carol")),
        Triple(u("bob"), u("knows"), u("carol")),
        Triple(u("alice"), u("name"), Literal("Alice")),
        Triple(u("bob"), u("name"), Literal("Bob")),
        Triple(u("alice"), RDF.type, u("Person")),
        Triple(u("bob"), RDF.type, u("Person")),
        Triple(u("carol"), RDF.type, u("Robot")),
        Triple(u("carol"), u("age"), Literal(7)),
    ]
    assert len(set(triples)) == len(triples)
    return triples


@pytest.fixture(params=BACKENDS)
def populated(request, tmp_path):
    """A graph over either backend holding :func:`sample_triples`."""
    graph = Graph(store=make_store(request.param, tmp_path))
    graph.add_all(sample_triples())
    graph.flush()
    yield graph
    graph.close()


# --------------------------------------------------------------------------- #
# Contract: both backends answer identically
# --------------------------------------------------------------------------- #
class TestStoreContract:
    def test_len_and_contains(self, populated):
        assert len(populated) == len(sample_triples())
        for triple in sample_triples():
            assert triple in populated
        assert Triple(u("carol"), u("knows"), u("alice")) not in populated

    def test_every_pattern_shape_matches_brute_force(self, populated):
        full = set(sample_triples())
        subjects = {t.subject for t in full} | {None, u("nobody")}
        predicates = {t.predicate for t in full} | {None}
        objects = {t.object for t in full} | {None}
        for s, p, o in product(subjects, predicates, objects):
            want = {t for t in full
                    if (s is None or t.subject == s)
                    and (p is None or t.predicate == p)
                    and (o is None or t.object == o)}
            got = set(populated.triples(s, p, o))
            assert got == want, f"pattern ({s}, {p}, {o})"
            assert populated.cardinality(s, p, o) == len(want)

    def test_triples_ids_round_trip(self, populated):
        dictionary = populated.dictionary
        decoded = {
            Triple(dictionary.decode(s), dictionary.decode(p), dictionary.decode(o))
            for s, p, o in populated.triples_ids()
        }
        assert decoded == set(sample_triples())

    def test_triples_ids_bound_positions(self, populated):
        dictionary = populated.dictionary
        knows = dictionary.lookup(u("knows"))
        rows = list(populated.triples_ids(0, knows, 0))
        assert len(rows) == 3
        assert all(p == knows for _, p, _ in rows)
        alice = dictionary.lookup(u("alice"))
        assert len(list(populated.triples_ids(alice, knows, 0))) == 2

    def test_stats_are_exact(self, populated):
        stats = populated.stats
        assert stats.predicate_counts[u("knows")] == 3
        assert stats.predicate_counts[RDF.type] == 3
        assert stats.subject_counts[u("alice")] == 4
        assert stats.class_counts == {u("Person"): 2, u("Robot"): 1}

    def test_duplicate_add_is_a_noop(self, populated):
        version = populated.version
        populated.add(sample_triples()[0])
        assert len(populated) == len(sample_triples())
        assert populated.version == version
        assert populated.stats.predicate_counts[u("knows")] == 3

    def test_discard_updates_everything(self, populated):
        victim = Triple(u("alice"), u("knows"), u("bob"))
        version = populated.version
        populated.discard(victim)
        assert victim not in populated
        assert len(populated) == len(sample_triples()) - 1
        assert populated.version > version
        assert populated.stats.predicate_counts[u("knows")] == 2
        assert populated.cardinality(u("alice"), u("knows"), None) == 1
        assert set(populated.triples(None, u("knows"), u("bob"))) == set()

    def test_discard_absent_is_a_noop(self, populated):
        version = populated.version
        populated.discard(Triple(u("nobody"), u("knows"), u("nobody")))
        assert populated.version == version
        assert len(populated) == len(sample_triples())

    def test_remove_raises_for_absent(self, populated):
        with pytest.raises(KeyError):
            populated.remove(Triple(u("nobody"), u("knows"), u("nobody")))

    def test_remove_last_rdf_type_clears_class_count(self, populated):
        populated.discard(Triple(u("carol"), RDF.type, u("Robot")))
        assert u("Robot") not in populated.stats.class_counts
        assert populated.stats.class_counts == {u("Person"): 2}

    def test_clear(self, populated):
        populated.clear()
        assert len(populated) == 0
        assert not populated
        assert list(populated.triples()) == []
        assert populated.stats.predicate_counts == {}
        assert populated.cardinality() == 0

    def test_cross_backend_equality(self, populated):
        memory = Graph(triples=sample_triples())
        assert populated == memory
        assert memory == populated
        memory.discard(sample_triples()[0])
        assert populated != memory


# --------------------------------------------------------------------------- #
# Property test: stats stay exact under random add/remove interleavings
# --------------------------------------------------------------------------- #
_TERMS = [URIRef(f"{EX}t{i}") for i in range(3)]
_PREDS = [URIRef(f"{EX}p{i}") for i in range(2)] + [RDF.type]
_OBJS = _TERMS + [Literal("x")]

_operations = st.lists(
    st.tuples(
        st.sampled_from(["add", "remove"]),
        st.sampled_from(_TERMS),
        st.sampled_from(_PREDS),
        st.sampled_from(_OBJS),
    ),
    max_size=40,
)


def _recount(model: set[Triple]):
    subjects = Counter(t.subject for t in model)
    predicates = Counter(t.predicate for t in model)
    objects = Counter(t.object for t in model)
    classes = Counter(t.object for t in model if t.predicate == RDF.type)
    return subjects, predicates, objects, classes


@pytest.mark.parametrize("backend", BACKENDS)
@settings(max_examples=60, deadline=None)
@given(operations=_operations)
def test_stats_equal_recount_after_interleaving(backend, operations, tmp_path_factory):
    graph = Graph(store=make_store(backend, tmp_path_factory.mktemp("interleave")))
    model: set[Triple] = set()
    try:
        for action, s, p, o in operations:
            triple = Triple(s, p, o)
            if action == "add":
                graph.add(triple)
                model.add(triple)
            else:
                graph.discard(triple)
                model.discard(triple)
        assert len(graph) == len(model)
        assert set(graph.triples()) == model
        subjects, predicates, objects, classes = _recount(model)
        stats = graph.stats
        assert stats.subject_counts == dict(subjects)
        assert stats.predicate_counts == dict(predicates)
        assert stats.object_counts == dict(objects)
        assert stats.class_counts == dict(classes)
        for s, p, o in product(_TERMS + [None], _PREDS + [None], _OBJS + [None]):
            want = sum(
                (s is None or t.subject == s)
                and (p is None or t.predicate == p)
                and (o is None or t.object == o)
                for t in model
            )
            assert graph.cardinality(s, p, o) == want, f"pattern ({s}, {p}, {o})"
    finally:
        graph.close()


# --------------------------------------------------------------------------- #
# SegmentStore specifics
# --------------------------------------------------------------------------- #
class TestSegmentStore:
    def test_buffer_flushes_at_limit(self, tmp_path):
        store = SegmentStore(tmp_path, buffer_limit=3)
        graph = Graph(store=store)
        graph.add_all(sample_triples()[:2])
        assert store.buffered == 2 and store.segment_names == []
        graph.add(sample_triples()[2])
        assert store.buffered == 0 and len(store.segment_names) == 1
        graph.close()

    def test_cold_open_is_rebuild_free_and_identical(self, tmp_path):
        first = Graph(store=SegmentStore(tmp_path, buffer_limit=4))
        first.add_all(sample_triples())
        first.close()

        reopened = open_graph(tmp_path)
        store = reopened.store
        assert isinstance(store, SegmentStore)
        # Opening read only the manifest, term log and per-segment metadata.
        assert store.io.records_read == 0
        assert reopened == Graph(triples=sample_triples())
        assert reopened.stats.class_counts == {u("Person"): 2, u("Robot"): 1}
        assert reopened.cardinality(None, u("knows"), None) == 3
        reopened.close()

    def test_deletes_survive_restart(self, tmp_path):
        graph = Graph(store=SegmentStore(tmp_path, buffer_limit=2))
        graph.add_all(sample_triples())
        victim = Triple(u("alice"), u("knows"), u("bob"))
        graph.discard(victim)          # segment-resident -> tombstone
        graph.close()

        reopened = open_graph(tmp_path)
        assert victim not in reopened
        assert len(reopened) == len(sample_triples()) - 1
        assert reopened.stats.predicate_counts[u("knows")] == 2
        reopened.close()

    def test_discard_from_buffer_never_tombstones(self, tmp_path):
        store = SegmentStore(tmp_path, buffer_limit=100)
        graph = Graph(store=store)
        triple = sample_triples()[0]
        graph.add(triple)
        graph.discard(triple)
        assert store.tombstoned == 0 and len(graph) == 0
        graph.close()

    def test_readding_tombstoned_triple_resurrects_it(self, tmp_path):
        store = SegmentStore(tmp_path, buffer_limit=1)
        graph = Graph(store=store)
        triple = sample_triples()[0]
        graph.add(triple)              # flushed straight to a segment
        graph.discard(triple)
        assert store.tombstoned == 1
        graph.add(triple)
        assert store.tombstoned == 0 and triple in graph
        assert store.buffered == 0     # the segment copy became visible again
        graph.close()

    def test_compact_merges_segments_and_drops_tombstones(self, tmp_path):
        store = SegmentStore(tmp_path, buffer_limit=2)
        graph = Graph(store=store)
        graph.add_all(sample_triples())
        victim = Triple(u("bob"), u("knows"), u("carol"))
        graph.discard(victim)
        assert len(store.segment_names) > 1 and store.tombstoned == 1
        old_files = sorted(p.name for p in tmp_path.glob("seg-*"))

        assert store.compact()
        assert len(store.segment_names) == 1
        assert store.tombstoned == 0
        assert len(graph) == len(sample_triples()) - 1
        # Old segment files are physically gone.
        for name in old_files:
            assert not (tmp_path / name).exists()
        graph.close()

        reopened = open_graph(tmp_path)
        expected = Graph(triples=[t for t in sample_triples() if t != victim])
        assert reopened == expected
        reopened.close()

    def test_compact_on_compact_store_is_a_noop(self, tmp_path):
        store = SegmentStore(tmp_path, buffer_limit=100)
        Graph(store=store).add_all(sample_triples())
        store.flush()
        assert store.compact() is False
        store.close()

    def test_clear_removes_files(self, tmp_path):
        store = SegmentStore(tmp_path, buffer_limit=2)
        graph = Graph(store=store)
        graph.add_all(sample_triples())
        graph.clear()
        assert len(graph) == 0
        assert list(tmp_path.glob("seg-*")) == []
        graph.close()
        assert len(open_graph(tmp_path)) == 0

    def test_bounded_scan_reads_less_than_full_scan(self, tmp_path):
        graph = Graph(store=SegmentStore(tmp_path, buffer_limit=1000))
        for i in range(300):
            graph.add(Triple(u(f"s{i}"), u("p"), Literal(i)))
        graph.add(Triple(u("s0"), u("q"), Literal("needle")))
        graph.flush()
        store = graph.store
        store.io.records_read = 0
        rows = list(graph.triples(None, u("q"), None))
        assert len(rows) == 1
        # Binary search + one-record range: far below the 301-triple scan.
        assert store.io.records_read < 50
        graph.close()

    def test_closed_store_rejects_mutation(self, tmp_path):
        store = SegmentStore(tmp_path)
        store.close()
        with pytest.raises(StoreError):
            store.add(u("a"), u("p"), u("b"))
        store.close()  # idempotent

    def test_unsupported_manifest_format_raises(self, tmp_path):
        (tmp_path / "MANIFEST.json").write_text('{"format": 99, "segments": []}')
        with pytest.raises(StoreError):
            SegmentStore(tmp_path)

    def test_corrupt_term_log_raises(self, tmp_path):
        store = SegmentStore(tmp_path)
        Graph(store=store).add(sample_triples()[0])
        store.close()
        with open(tmp_path / "terms.jsonl", "a", encoding="utf-8") as sink:
            sink.write("not json\n")
        with pytest.raises(StoreError):
            SegmentStore(tmp_path)

    def test_dictionary_ids_stable_across_restart(self, tmp_path):
        graph = Graph(store=SegmentStore(tmp_path))
        graph.add_all(sample_triples())
        before = {term: graph.dictionary.lookup(term)
                  for t in sample_triples() for term in t.as_tuple()}
        graph.close()
        reopened = open_graph(tmp_path)
        for term, term_id in before.items():
            assert reopened.dictionary.lookup(term) == term_id
        reopened.close()

    def test_buffer_limit_validation(self, tmp_path):
        with pytest.raises(ValueError):
            SegmentStore(tmp_path, buffer_limit=0)


# --------------------------------------------------------------------------- #
# The redesigned construction API
# --------------------------------------------------------------------------- #
class TestGraphApi:
    def test_default_graph_uses_memory_store(self):
        graph = Graph()
        assert isinstance(graph.store, MemoryStore)

    def test_graph_wraps_explicit_store(self, tmp_path):
        store = SegmentStore(tmp_path)
        graph = Graph(store=store)
        assert graph.store is store
        graph.close()

    def test_open_graph_factory(self, tmp_path):
        assert isinstance(open_graph(None).store, MemoryStore)
        persistent = open_graph(tmp_path / "g")
        assert isinstance(persistent.store, SegmentStore)
        persistent.close()

    def test_open_store_factory(self, tmp_path):
        assert isinstance(open_store(None), MemoryStore)
        store = open_store(tmp_path / "s", buffer_limit=7)
        assert isinstance(store, SegmentStore) and store.buffer_limit == 7
        store.close()

    def test_graph_load_from_file(self, tmp_path):
        source = tmp_path / "data.ttl"
        source.write_text("@prefix ex: <http://example.org/> . ex:a ex:p ex:b .")
        graph = Graph.load(source)
        assert len(graph) == 1 and Triple(u("a"), u("p"), u("b")) in graph

    def test_graph_load_ntriples_by_suffix(self, tmp_path):
        source = tmp_path / "data.nt"
        source.write_text(
            "<http://example.org/a> <http://example.org/p> <http://example.org/b> .\n")
        assert len(Graph.load(source)) == 1

    def test_graph_load_into_store(self, tmp_path):
        source = tmp_path / "data.ttl"
        source.write_text("@prefix ex: <http://example.org/> . ex:a ex:p ex:b .")
        graph = Graph.load(source, store=SegmentStore(tmp_path / "store"))
        graph.close()
        reopened = open_graph(tmp_path / "store")
        assert Triple(u("a"), u("p"), u("b")) in reopened
        reopened.close()

    def test_readonly_view_shim_warns_once_per_construction(self):
        graph = Graph(triples=sample_triples())
        with pytest.warns(DeprecationWarning, match="GraphView"):
            view = ReadOnlyGraphView(graph)
        assert isinstance(view, GraphView)
        assert len(view) == len(graph)

    def test_graph_view_does_not_warn(self, recwarn):
        GraphView(Graph())
        assert not [w for w in recwarn.list
                    if issubclass(w.category, DeprecationWarning)]

    def test_public_api_surface(self):
        import repro

        for name in ("open_graph", "open_store", "Graph", "GraphView", "Store",
                     "MemoryStore", "SegmentStore", "shard_graph",
                     "FederatedQueryEngine", "Mediator", "QueryEvaluator"):
            assert name in repro.__all__ or hasattr(repro, name), name
            assert getattr(repro, name) is not None
