"""Unit tests for rdf:List helpers (used by FD parameter lists)."""

import pytest

from repro.rdf import (
    CollectionError,
    Graph,
    Literal,
    RDF,
    Triple,
    URIRef,
    build_list,
    is_list_node,
    read_list,
)

EX = "http://example.org/"


def uri(name: str) -> URIRef:
    return URIRef(EX + name)


class TestBuildList:
    def test_empty_list_is_nil(self):
        graph = Graph()
        assert build_list(graph, []) == RDF.nil
        assert len(graph) == 0

    def test_single_item(self):
        graph = Graph()
        head = build_list(graph, [Literal("only")])
        assert read_list(graph, head) == [Literal("only")]

    def test_multiple_items_preserve_order(self):
        graph = Graph()
        items = [uri("a"), Literal("b"), uri("c")]
        head = build_list(graph, items)
        assert read_list(graph, head) == items

    def test_list_structure_size(self):
        graph = Graph()
        build_list(graph, [uri("a"), uri("b")])
        # Two rdf:first + two rdf:rest arcs.
        assert len(graph) == 4


class TestReadList:
    def test_read_nil(self):
        assert read_list(Graph(), RDF.nil) == []

    def test_missing_first_raises(self):
        graph = Graph()
        node = uri("broken")
        graph.add(Triple(node, RDF.rest, RDF.nil))
        with pytest.raises(CollectionError):
            read_list(graph, node)

    def test_missing_rest_raises(self):
        graph = Graph()
        node = uri("broken")
        graph.add(Triple(node, RDF.first, Literal("x")))
        with pytest.raises(CollectionError):
            read_list(graph, node)

    def test_cyclic_list_raises(self):
        graph = Graph()
        a, b = uri("a"), uri("b")
        graph.add(Triple(a, RDF.first, Literal("1")))
        graph.add(Triple(a, RDF.rest, b))
        graph.add(Triple(b, RDF.first, Literal("2")))
        graph.add(Triple(b, RDF.rest, a))
        with pytest.raises(CollectionError):
            read_list(graph, a)


class TestIsListNode:
    def test_nil_is_a_list(self):
        assert is_list_node(Graph(), RDF.nil)

    def test_head_node_is_a_list(self):
        graph = Graph()
        head = build_list(graph, [uri("x")])
        assert is_list_node(graph, head)

    def test_random_node_is_not_a_list(self):
        graph = Graph()
        graph.add(Triple(uri("a"), uri("p"), uri("b")))
        assert not is_list_node(graph, uri("a"))
