"""Unit tests for the named-graph Dataset."""

import pytest

from repro.rdf import Dataset, Graph, Quad, Triple, URIRef

EX = "http://example.org/"


def uri(name: str) -> URIRef:
    return URIRef(EX + name)


@pytest.fixture()
def dataset() -> Dataset:
    ds = Dataset()
    ds.add(Triple(uri("s1"), uri("p"), uri("o1")))
    ds.add(Triple(uri("s2"), uri("p"), uri("o2")), graph_name=uri("g1"))
    ds.add(Triple(uri("s3"), uri("p"), uri("o3")), graph_name=uri("g2"))
    return ds


class TestDataset:
    def test_default_graph(self, dataset):
        assert len(dataset.default_graph) == 1

    def test_named_graph_access(self, dataset):
        assert len(dataset.graph(uri("g1"))) == 1
        assert uri("g1") in dataset

    def test_graph_create_on_demand(self):
        ds = Dataset()
        graph = ds.graph(uri("new"))
        assert isinstance(graph, Graph)
        assert uri("new") in ds

    def test_graph_no_create(self):
        ds = Dataset()
        with pytest.raises(KeyError):
            ds.graph(uri("missing"), create=False)

    def test_graph_names_sorted(self, dataset):
        assert dataset.graph_names() == [uri("g1"), uri("g2")]

    def test_len_counts_all_graphs(self, dataset):
        assert len(dataset) == 3

    def test_quads_across_graphs(self, dataset):
        quads = list(dataset.quads(None, uri("p"), None))
        assert len(quads) == 3
        graph_names = {quad.graph_name for quad in quads}
        assert graph_names == {None, uri("g1"), uri("g2")}

    def test_quads_restricted_to_graph(self, dataset):
        quads = list(dataset.quads(graph_name=uri("g1")))
        assert len(quads) == 1
        assert quads[0].triple.subject == uri("s2")

    def test_add_quad(self):
        ds = Dataset()
        ds.add_quad(Quad(Triple(uri("s"), uri("p"), uri("o")), uri("g")))
        assert len(ds.graph(uri("g"))) == 1

    def test_union_graph(self, dataset):
        union = dataset.union_graph()
        assert len(union) == 3

    def test_remove_graph(self, dataset):
        dataset.remove_graph(uri("g1"))
        assert uri("g1") not in dataset
        assert len(dataset) == 2

    def test_load_bulk(self):
        ds = Dataset()
        ds.load([Triple(uri("a"), uri("p"), uri("b")),
                 Triple(uri("c"), uri("p"), uri("d"))], graph_name=uri("bulk"))
        assert len(ds.graph(uri("bulk"))) == 2

    def test_graphs_iteration_order(self, dataset):
        graphs = list(dataset.graphs())
        assert graphs[0] is dataset.default_graph
        assert [g.identifier for g in graphs[1:]] == [uri("g1"), uri("g2")]
