"""Unit tests for blank-node-aware graph comparison."""

from repro.rdf import (
    BNode,
    Graph,
    Literal,
    Triple,
    URIRef,
    canonical_hash,
    isomorphic,
)

EX = "http://example.org/"


def uri(name: str) -> URIRef:
    return URIRef(EX + name)


def graph_of(*triples: Triple) -> Graph:
    graph = Graph()
    graph.add_all(triples)
    return graph


class TestIsomorphic:
    def test_identical_ground_graphs(self):
        a = graph_of(Triple(uri("s"), uri("p"), uri("o")))
        b = graph_of(Triple(uri("s"), uri("p"), uri("o")))
        assert isomorphic(a, b)

    def test_different_ground_graphs(self):
        a = graph_of(Triple(uri("s"), uri("p"), uri("o")))
        b = graph_of(Triple(uri("s"), uri("p"), uri("other")))
        assert not isomorphic(a, b)

    def test_different_sizes(self):
        a = graph_of(Triple(uri("s"), uri("p"), uri("o")))
        b = Graph()
        assert not isomorphic(a, b)

    def test_bnode_renaming_is_isomorphic(self):
        a = graph_of(
            Triple(BNode("x"), uri("p"), uri("o")),
            Triple(BNode("x"), uri("q"), Literal("v")),
        )
        b = graph_of(
            Triple(BNode("y"), uri("p"), uri("o")),
            Triple(BNode("y"), uri("q"), Literal("v")),
        )
        assert isomorphic(a, b)

    def test_bnode_structure_mismatch(self):
        # One graph uses the same bnode twice, the other two different bnodes.
        a = graph_of(
            Triple(BNode("x"), uri("p"), uri("o1")),
            Triple(BNode("x"), uri("p"), uri("o2")),
        )
        b = graph_of(
            Triple(BNode("y"), uri("p"), uri("o1")),
            Triple(BNode("z"), uri("p"), uri("o2")),
        )
        assert not isomorphic(a, b)

    def test_chained_bnodes(self):
        a = graph_of(
            Triple(uri("s"), uri("p"), BNode("a")),
            Triple(BNode("a"), uri("q"), BNode("b")),
            Triple(BNode("b"), uri("r"), Literal("end")),
        )
        b = graph_of(
            Triple(uri("s"), uri("p"), BNode("n1")),
            Triple(BNode("n1"), uri("q"), BNode("n2")),
            Triple(BNode("n2"), uri("r"), Literal("end")),
        )
        assert isomorphic(a, b)

    def test_swapped_chain_not_isomorphic(self):
        a = graph_of(
            Triple(uri("s"), uri("p"), BNode("a")),
            Triple(BNode("a"), uri("q"), Literal("one")),
        )
        b = graph_of(
            Triple(uri("s"), uri("p"), BNode("a")),
            Triple(BNode("a"), uri("q"), Literal("two")),
        )
        assert not isomorphic(a, b)

    def test_accepts_plain_triple_lists(self):
        triples = [Triple(uri("s"), uri("p"), BNode("x"))]
        other = [Triple(uri("s"), uri("p"), BNode("y"))]
        assert isomorphic(triples, other)

    def test_parallel_bnodes_same_signature(self):
        """Two interchangeable bnodes still admit a correct bijection."""
        a = graph_of(
            Triple(uri("s"), uri("p"), BNode("x")),
            Triple(uri("s"), uri("p"), BNode("y")),
        )
        b = graph_of(
            Triple(uri("s"), uri("p"), BNode("u")),
            Triple(uri("s"), uri("p"), BNode("v")),
        )
        assert isomorphic(a, b)


class TestCanonicalHash:
    def test_hash_invariant_under_renaming(self):
        a = graph_of(
            Triple(BNode("x"), uri("p"), uri("o")),
            Triple(BNode("x"), uri("q"), Literal("v")),
        )
        b = graph_of(
            Triple(BNode("renamed"), uri("p"), uri("o")),
            Triple(BNode("renamed"), uri("q"), Literal("v")),
        )
        assert canonical_hash(a) == canonical_hash(b)

    def test_hash_differs_for_different_graphs(self):
        a = graph_of(Triple(uri("s"), uri("p"), uri("o1")))
        b = graph_of(Triple(uri("s"), uri("p"), uri("o2")))
        assert canonical_hash(a) != canonical_hash(b)
