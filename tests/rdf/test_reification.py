"""Unit tests for statement reification (the paper's alignment encoding)."""

import pytest

from repro.rdf import (
    BNode,
    Graph,
    Literal,
    RDF,
    ReificationError,
    Triple,
    URIRef,
    dereify,
    dereify_all,
    is_statement_node,
    reify,
)

EX = "http://example.org/"


def uri(name: str) -> URIRef:
    return URIRef(EX + name)


class TestReify:
    def test_reify_produces_four_triples(self):
        graph = Graph()
        node = reify(graph, Triple(uri("s"), uri("p"), uri("o")))
        assert len(graph) == 4
        assert Triple(node, RDF.type, RDF.Statement) in graph
        assert graph.value(node, RDF.subject, None) == uri("s")
        assert graph.value(node, RDF.predicate, None) == uri("p")
        assert graph.value(node, RDF.object, None) == uri("o")

    def test_reify_with_explicit_node(self):
        graph = Graph()
        node = reify(graph, Triple(uri("s"), uri("p"), Literal("o")), statement_node=uri("st"))
        assert node == uri("st")
        assert is_statement_node(graph, uri("st"))

    def test_reify_pattern_with_bnodes(self):
        """Alignment patterns use blank nodes in subject/object positions."""
        graph = Graph()
        node = reify(graph, Triple(BNode("p1"), uri("has-author"), BNode("a1")))
        reconstructed = dereify(graph, node)
        assert reconstructed.subject == BNode("p1")
        assert reconstructed.object == BNode("a1")


class TestDereify:
    def test_roundtrip(self):
        graph = Graph()
        original = Triple(uri("s"), uri("p"), Literal("value"))
        node = reify(graph, original)
        assert dereify(graph, node) == original

    def test_missing_component_raises(self):
        graph = Graph()
        node = uri("st")
        graph.add(Triple(node, RDF.type, RDF.Statement))
        graph.add(Triple(node, RDF.subject, uri("s")))
        graph.add(Triple(node, RDF.predicate, uri("p")))
        with pytest.raises(ReificationError):
            dereify(graph, node)

    def test_ambiguous_component_raises(self):
        graph = Graph()
        node = uri("st")
        graph.add(Triple(node, RDF.type, RDF.Statement))
        graph.add(Triple(node, RDF.subject, uri("s")))
        graph.add(Triple(node, RDF.predicate, uri("p")))
        graph.add(Triple(node, RDF.object, uri("o1")))
        graph.add(Triple(node, RDF.object, uri("o2")))
        with pytest.raises(ReificationError):
            dereify(graph, node)

    def test_invalid_reconstruction_raises(self):
        graph = Graph()
        node = uri("st")
        graph.add(Triple(node, RDF.type, RDF.Statement))
        graph.add(Triple(node, RDF.subject, uri("s")))
        graph.add(Triple(node, RDF.predicate, uri("p")))
        # A literal "predicate" cannot be dereified into a valid triple when
        # placed in the predicate slot; simulate by using a literal subject.
        graph.remove(Triple(node, RDF.subject, uri("s")))
        graph.add(Triple(node, RDF.subject, Literal("bad")))
        graph.add(Triple(node, RDF.object, uri("o")))
        with pytest.raises(ReificationError):
            dereify(graph, node)


class TestDereifyAll:
    def test_returns_every_statement(self):
        graph = Graph()
        reify(graph, Triple(uri("s1"), uri("p"), uri("o1")))
        reify(graph, Triple(uri("s2"), uri("p"), uri("o2")))
        statements = dereify_all(graph)
        assert len(statements) == 2
        assert {triple.subject for _node, triple in statements} == {uri("s1"), uri("s2")}

    def test_empty_graph(self):
        assert dereify_all(Graph()) == []

    def test_is_statement_node_negative(self):
        graph = Graph()
        graph.add(Triple(uri("x"), uri("p"), uri("o")))
        assert not is_statement_node(graph, uri("x"))
