"""Unit tests for the indexed Graph."""

import pytest

from repro.rdf import Graph, Literal, RDF, Triple, URIRef, Variable

EX = "http://example.org/"


def uri(name: str) -> URIRef:
    return URIRef(EX + name)


@pytest.fixture()
def sample_graph() -> Graph:
    graph = Graph()
    graph.add(Triple(uri("alice"), RDF.type, uri("Person")))
    graph.add(Triple(uri("bob"), RDF.type, uri("Person")))
    graph.add(Triple(uri("paper1"), RDF.type, uri("Paper")))
    graph.add(Triple(uri("paper1"), uri("author"), uri("alice")))
    graph.add(Triple(uri("paper1"), uri("author"), uri("bob")))
    graph.add(Triple(uri("paper1"), uri("title"), Literal("A paper")))
    return graph


class TestMutation:
    def test_add_and_len(self, sample_graph):
        assert len(sample_graph) == 6

    def test_add_is_idempotent(self, sample_graph):
        before = len(sample_graph)
        sample_graph.add(Triple(uri("alice"), RDF.type, uri("Person")))
        assert len(sample_graph) == before

    def test_add_tuple_form(self):
        graph = Graph()
        graph.add((uri("s"), uri("p"), uri("o")))
        assert Triple(uri("s"), uri("p"), uri("o")) in graph

    def test_add_rejects_variables(self):
        graph = Graph()
        with pytest.raises(ValueError):
            graph.add(Triple(Variable("x"), uri("p"), uri("o")))

    def test_remove(self, sample_graph):
        triple = Triple(uri("paper1"), uri("title"), Literal("A paper"))
        sample_graph.remove(triple)
        assert triple not in sample_graph
        with pytest.raises(KeyError):
            sample_graph.remove(triple)

    def test_discard_missing_is_noop(self, sample_graph):
        before = len(sample_graph)
        sample_graph.discard(Triple(uri("x"), uri("y"), uri("z")))
        assert len(sample_graph) == before

    def test_remove_pattern(self, sample_graph):
        removed = sample_graph.remove_pattern(uri("paper1"), uri("author"), None)
        assert removed == 2
        assert not list(sample_graph.triples(uri("paper1"), uri("author"), None))

    def test_clear(self, sample_graph):
        sample_graph.clear()
        assert len(sample_graph) == 0
        assert not list(sample_graph.triples())


class TestPatternMatching:
    def test_fully_bound_lookup(self, sample_graph):
        matches = list(sample_graph.triples(uri("paper1"), uri("author"), uri("alice")))
        assert len(matches) == 1

    def test_subject_predicate_lookup(self, sample_graph):
        matches = list(sample_graph.triples(uri("paper1"), uri("author"), None))
        assert {m.object for m in matches} == {uri("alice"), uri("bob")}

    def test_predicate_object_lookup(self, sample_graph):
        matches = list(sample_graph.triples(None, RDF.type, uri("Person")))
        assert {m.subject for m in matches} == {uri("alice"), uri("bob")}

    def test_subject_object_lookup(self, sample_graph):
        matches = list(sample_graph.triples(uri("paper1"), None, uri("alice")))
        assert [m.predicate for m in matches] == [uri("author")]

    def test_single_position_lookups(self, sample_graph):
        assert len(list(sample_graph.triples(uri("paper1"), None, None))) == 4
        assert len(list(sample_graph.triples(None, uri("author"), None))) == 2
        assert len(list(sample_graph.triples(None, None, uri("Person")))) == 2

    def test_full_scan(self, sample_graph):
        assert len(list(sample_graph.triples())) == 6

    def test_variables_act_as_wildcards(self, sample_graph):
        matches = list(sample_graph.triples(Variable("s"), uri("author"), Variable("o")))
        assert len(matches) == 2

    def test_match_pattern_helper(self, sample_graph):
        pattern = Triple(Variable("s"), uri("author"), Variable("o"))
        assert len(list(sample_graph.match_pattern(pattern))) == 2

    def test_no_match_returns_empty(self, sample_graph):
        assert list(sample_graph.triples(uri("nobody"), None, None)) == []

    def test_index_consistency_after_removal(self, sample_graph):
        sample_graph.remove(Triple(uri("paper1"), uri("author"), uri("alice")))
        assert list(sample_graph.triples(None, uri("author"), uri("alice"))) == []
        assert len(list(sample_graph.triples(None, uri("author"), None))) == 1


class TestProjections:
    def test_subjects(self, sample_graph):
        assert set(sample_graph.subjects(RDF.type, uri("Person"))) == {uri("alice"), uri("bob")}

    def test_objects(self, sample_graph):
        assert set(sample_graph.objects(uri("paper1"), uri("author"))) == {uri("alice"), uri("bob")}

    def test_predicates(self, sample_graph):
        assert uri("author") in set(sample_graph.predicates(uri("paper1"), None))

    def test_value(self, sample_graph):
        assert sample_graph.value(uri("paper1"), uri("title"), None) == Literal("A paper")
        assert sample_graph.value(uri("paper1"), uri("missing"), None) is None
        assert sample_graph.value(uri("paper1"), uri("missing"), None, default=Literal("x")) == Literal("x")

    def test_value_requires_exactly_one_wildcard(self, sample_graph):
        with pytest.raises(ValueError):
            sample_graph.value(uri("paper1"), None, None)

    def test_subjects_of_type(self, sample_graph):
        assert set(sample_graph.subjects_of_type(uri("Paper"))) == {uri("paper1")}


class TestStatistics:
    def test_predicate_histogram(self, sample_graph):
        histogram = sample_graph.predicate_histogram()
        assert histogram[uri("author")] == 2
        assert histogram[RDF.type] == 3

    def test_class_histogram(self, sample_graph):
        histogram = sample_graph.class_histogram()
        assert histogram[uri("Person")] == 2
        assert histogram[uri("Paper")] == 1

    def test_vocabularies(self, sample_graph):
        vocabularies = sample_graph.vocabularies()
        assert EX in vocabularies
        assert str(RDF) in vocabularies


class TestSetAlgebra:
    def test_union(self, sample_graph):
        other = Graph()
        other.add(Triple(uri("carol"), RDF.type, uri("Person")))
        combined = sample_graph + other
        assert len(combined) == len(sample_graph) + 1
        # Originals untouched.
        assert Triple(uri("carol"), RDF.type, uri("Person")) not in sample_graph

    def test_difference(self, sample_graph):
        other = Graph()
        other.add(Triple(uri("alice"), RDF.type, uri("Person")))
        difference = sample_graph - other
        assert Triple(uri("alice"), RDF.type, uri("Person")) not in difference
        assert len(difference) == len(sample_graph) - 1

    def test_intersection(self, sample_graph):
        other = Graph()
        other.add(Triple(uri("alice"), RDF.type, uri("Person")))
        other.add(Triple(uri("not"), uri("in"), uri("sample")))
        intersection = sample_graph & other
        assert len(intersection) == 1

    def test_iadd(self, sample_graph):
        sample_graph += [Triple(uri("carol"), RDF.type, uri("Person"))]
        assert Triple(uri("carol"), RDF.type, uri("Person")) in sample_graph

    def test_copy_independent(self, sample_graph):
        clone = sample_graph.copy()
        clone.add(Triple(uri("new"), uri("p"), uri("o")))
        assert len(clone) == len(sample_graph) + 1

    def test_equality_is_set_equality(self, sample_graph):
        assert sample_graph == sample_graph.copy()
        assert sample_graph != Graph()


class TestSerialisationHooks:
    def test_turtle_roundtrip_via_graph_methods(self, sample_graph):
        text = sample_graph.serialize(format="turtle")
        parsed = Graph.parse(text, format="turtle")
        assert parsed == sample_graph

    def test_ntriples_roundtrip_via_graph_methods(self, sample_graph):
        text = sample_graph.serialize(format="ntriples")
        parsed = Graph.parse(text, format="ntriples")
        assert parsed == sample_graph
