"""Unit tests for the RDF term model."""

import pytest
from decimal import Decimal

from repro.rdf import (
    BNode,
    Literal,
    URIRef,
    Variable,
    XSD,
    fresh_bnode,
    is_ground,
    is_variable_like,
    reset_bnode_counter,
)
from repro.rdf.terms import resolve_relative


class TestURIRef:
    def test_value_and_str(self):
        uri = URIRef("http://example.org/thing")
        assert str(uri) == "http://example.org/thing"
        assert uri.value == "http://example.org/thing"

    def test_n3_form(self):
        assert URIRef("http://example.org/x").n3() == "<http://example.org/x>"

    def test_equality_and_hash(self):
        assert URIRef("http://a") == URIRef("http://a")
        assert URIRef("http://a") != URIRef("http://b")
        assert hash(URIRef("http://a")) == hash(URIRef("http://a"))

    def test_uri_not_equal_to_literal_with_same_text(self):
        assert URIRef("http://a") != Literal("http://a")

    def test_invalid_characters_rejected(self):
        with pytest.raises(ValueError):
            URIRef("http://example.org/has space")
        with pytest.raises(ValueError):
            URIRef("<http://example.org/x>")

    def test_defrag(self):
        assert URIRef("http://ex.org/onto#Person").defrag() == URIRef("http://ex.org/onto")
        assert URIRef("http://ex.org/onto").defrag() == URIRef("http://ex.org/onto")

    def test_namespace_split_hash(self):
        ns, local = URIRef("http://ex.org/onto#Person").namespace_split()
        assert ns == "http://ex.org/onto#"
        assert local == "Person"

    def test_namespace_split_slash(self):
        ns, local = URIRef("http://ex.org/data/person-1").namespace_split()
        assert ns == "http://ex.org/data/"
        assert local == "person-1"

    def test_startswith(self):
        assert URIRef("http://ex.org/x").startswith("http://ex.org/")
        assert not URIRef("http://ex.org/x").startswith("https://")

    def test_base_resolution(self):
        assert URIRef("person", base="http://ex.org/data/") == URIRef("http://ex.org/data/person")
        assert URIRef("#frag", base="http://ex.org/doc") == URIRef("http://ex.org/doc#frag")
        assert URIRef("http://other.org/x", base="http://ex.org/") == URIRef("http://other.org/x")


class TestResolveRelative:
    def test_absolute_path(self):
        assert resolve_relative("http://ex.org/a/b", "/c") == "http://ex.org/c"

    def test_relative_path(self):
        assert resolve_relative("http://ex.org/a/b", "c") == "http://ex.org/a/c"

    def test_scheme_relative(self):
        assert resolve_relative("https://ex.org/a", "//other.org/b") == "https://other.org/b"

    def test_empty_reference(self):
        assert resolve_relative("http://ex.org/a", "") == "http://ex.org/a"


class TestLiteral:
    def test_plain_literal(self):
        literal = Literal("hello")
        assert literal.lexical == "hello"
        assert literal.lang is None
        assert literal.datatype is None
        assert literal.n3() == '"hello"'

    def test_language_literal(self):
        literal = Literal("bonjour", lang="FR")
        assert literal.lang == "fr"
        assert literal.n3() == '"bonjour"@fr'

    def test_integer_inference(self):
        literal = Literal(42)
        assert literal.datatype == XSD.integer
        assert literal.to_python() == 42

    def test_float_inference(self):
        literal = Literal(3.5)
        assert literal.datatype == XSD.double
        assert literal.to_python() == pytest.approx(3.5)

    def test_boolean_inference(self):
        assert Literal(True).lexical == "true"
        assert Literal(False).to_python() is False

    def test_decimal_inference(self):
        literal = Literal(Decimal("10.25"))
        assert literal.datatype == XSD.decimal
        assert literal.to_python() == Decimal("10.25")

    def test_lang_and_datatype_conflict(self):
        with pytest.raises(ValueError):
            Literal("x", lang="en", datatype=XSD.string)

    def test_malformed_language_tag(self):
        with pytest.raises(ValueError):
            Literal("x", lang="not a tag")

    def test_equality_includes_datatype_and_lang(self):
        assert Literal("1") != Literal("1", datatype=XSD.integer)
        assert Literal("a", lang="en") != Literal("a", lang="de")
        assert Literal("a", lang="en") == Literal("a", lang="EN")

    def test_value_equality_across_numeric_datatypes(self):
        assert Literal("1", datatype=XSD.integer).value_equals(Literal("1", datatype=XSD.int))
        assert not Literal("1", datatype=XSD.integer).value_equals(Literal("2", datatype=XSD.integer))

    def test_malformed_numeric_falls_back_to_string(self):
        literal = Literal("not-a-number", datatype=XSD.integer)
        assert literal.to_python() == "not-a-number"

    def test_n3_escaping(self):
        literal = Literal('say "hi"\nplease')
        assert '\\"' in literal.n3()
        assert "\\n" in literal.n3()

    def test_is_numeric(self):
        assert Literal(1).is_numeric()
        assert Literal("1", datatype=XSD.double).is_numeric()
        assert not Literal("1").is_numeric()


class TestBNode:
    def test_label_normalisation(self):
        assert BNode("_:b1") == BNode("b1")
        assert BNode("b1").n3() == "_:b1"

    def test_auto_label(self):
        reset_bnode_counter()
        node = BNode()
        assert node.value

    def test_fresh_bnode_unique(self):
        reset_bnode_counter()
        assert fresh_bnode() != fresh_bnode()

    def test_malformed_label(self):
        with pytest.raises(ValueError):
            BNode("has space")

    def test_to_variable(self):
        assert BNode("p1").to_variable() == Variable("p1")


class TestVariable:
    def test_name_normalisation(self):
        assert Variable("?x") == Variable("x") == Variable("$x")
        assert Variable("x").n3() == "?x"
        assert Variable("x").name == "x"

    def test_malformed_name(self):
        with pytest.raises(ValueError):
            Variable("")
        with pytest.raises(ValueError):
            Variable("a b")

    def test_variable_not_equal_to_bnode(self):
        assert Variable("x") != BNode("x")


class TestTermPredicates:
    def test_is_ground(self):
        assert is_ground(URIRef("http://x"))
        assert is_ground(Literal("x"))
        assert not is_ground(BNode("b"))
        assert not is_ground(Variable("v"))

    def test_is_variable_like(self):
        assert is_variable_like(Variable("v"))
        assert is_variable_like(BNode("b"))
        assert not is_variable_like(URIRef("http://x"))
        assert not is_variable_like(Literal("x"))

    def test_total_ordering_across_kinds(self):
        terms = [Literal("z"), URIRef("http://a"), Variable("v"), BNode("b")]
        ordered = sorted(terms)
        # Variables sort first, then URIs, then bnodes, then literals.
        assert isinstance(ordered[0], Variable)
        assert isinstance(ordered[-1], Literal)
