"""``python -m repro.lint_main`` — module form of the ``repro-lint`` script.

Lets the static query analyzer run without installing the console scripts
(the CI lint job only installs the pinned linters): equivalent to running
``repro-lint``.
"""

import sys

from .cli import main_lint

if __name__ == "__main__":
    sys.exit(main_lint())
