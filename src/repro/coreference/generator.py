"""Synthetic co-reference bundle generation.

The original experiments relied on the public sameas.org service, which
held (for example) more than 200 URIs equivalent to the author URI used in
the worked example.  Offline we generate the equivalences ourselves: given
entity identifiers and the URI-minting conventions of each synthetic
dataset, this module produces the ``owl:sameAs`` links connecting the
per-dataset URIs of the same real-world entity, with a configurable
coverage ratio (not every entity is linked — exactly the situation that
limits recall in practice).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from collections.abc import Callable, Sequence

from ..rdf import Graph, URIRef
from .service import SameAsService

__all__ = ["CoReferenceSpec", "CoReferenceGenerator"]


@dataclass
class CoReferenceSpec:
    """Description of one dataset's URI space for an entity kind.

    ``minter`` maps a stable entity key (e.g. ``("person", 12)``) to the
    URI that dataset uses for the entity.
    """

    dataset_name: str
    minter: Callable[[str, int], URIRef]


@dataclass
class CoReferenceGenerator:
    """Generate owl:sameAs bundles linking per-dataset URIs.

    Parameters
    ----------
    specs:
        One :class:`CoReferenceSpec` per dataset participating in the
        integration scenario.
    coverage:
        Probability that a given entity's URIs are actually linked in the
        co-reference store (1.0 = perfect linkage).
    seed:
        Seed for the deterministic pseudo-random coverage sampling.
    """

    specs: Sequence[CoReferenceSpec]
    coverage: float = 1.0
    seed: int = 7

    def bundles_for(self, kind: str, count: int) -> list[list[URIRef]]:
        """URIs bundles for ``count`` entities of ``kind`` (one per entity)."""
        rng = random.Random((self.seed, kind, count).__hash__())
        bundles: list[list[URIRef]] = []
        for index in range(count):
            if rng.random() > self.coverage:
                continue
            bundle = [spec.minter(kind, index) for spec in self.specs]
            bundles.append(bundle)
        return bundles

    def populate(self, service: SameAsService, kind: str, count: int) -> int:
        """Add bundles for ``count`` entities of ``kind`` to ``service``.

        Returns the number of bundles added.
        """
        bundles = self.bundles_for(kind, count)
        for bundle in bundles:
            service.add_bundle(bundle)
        return len(bundles)

    def build_service(self, counts: dict[str, int]) -> SameAsService:
        """Create a fresh service with bundles for every entity kind."""
        service = SameAsService()
        for kind, count in counts.items():
            self.populate(service, kind, count)
        return service

    def sameas_graph(self, counts: dict[str, int]) -> Graph:
        """The owl:sameAs graph corresponding to :meth:`build_service`."""
        return self.build_service(counts).to_graph()
