"""Local co-reference resolution service (stand-in for sameas.org).

The paper's ``sameas(x, regex)`` data-manipulation function wraps the
sameas.org REST service: given a URI it returns the equivalent URI (under
``owl:sameAs``) that matches a regular expression describing the target
dataset's URI space, and returns the input unchanged when the input is an
unbounded variable.  Formally (Section 3.3.1)::

    sameas(x, y) = x                          if x is unbounded
                 = z  with z in [x] and z ~ y otherwise

where ``[x]`` is the owl:sameAs equivalence class of ``x``.

:class:`SameAsService` implements the store behind that function: an
equivalence-class registry populated from ``owl:sameAs`` links (explicit
pairs or an RDF graph), with regex-filtered lookup.  It is deliberately
local and deterministic so experiments are reproducible offline.
"""

from __future__ import annotations

import re
import threading
from collections.abc import Iterable

from ..rdf import Graph, OWL, Triple, URIRef
from .unionfind import UnionFind

__all__ = ["SameAsService", "CoReferenceError"]


class CoReferenceError(KeyError):
    """Raised when a strict lookup finds no equivalent URI."""


class SameAsService:
    """An in-memory co-reference (owl:sameAs) bundle store."""

    def __init__(self, pairs: Iterable[tuple[URIRef, URIRef]] = ()) -> None:
        self._bundles: UnionFind[URIRef] = UnionFind()
        self._lookups = 0
        self._generation = 0
        # Lookup patterns repeat endlessly (one per target dataset), so
        # compile each once; guarded together with the counters because the
        # federation layer calls into the service from worker threads.
        self._patterns: dict[str, re.Pattern[str]] = {}
        self._lock = threading.RLock()
        for left, right in pairs:
            self.add_equivalence(left, right)

    @property
    def generation(self) -> int:
        """Monotonic counter bumped by every mutation.

        Rewrite results depend on the co-reference store (the ``sameas``
        functional dependency and FILTER URI translation), so caches key
        on this value alongside the alignment KB generation.
        """
        return self._generation

    # ------------------------------------------------------------------ #
    # Population
    # ------------------------------------------------------------------ #
    def add_equivalence(self, left: URIRef, right: URIRef) -> None:
        """Assert that two URIs denote the same entity."""
        if not isinstance(left, URIRef) or not isinstance(right, URIRef):
            raise TypeError("sameAs equivalences must relate URIs")
        with self._lock:
            self._bundles.union(left, right)
            self._generation += 1

    def add_bundle(self, uris: Iterable[URIRef]) -> None:
        """Assert that every URI in ``uris`` denotes the same entity."""
        uris = list(uris)
        for uri in uris[1:]:
            self.add_equivalence(uris[0], uri)
        if len(uris) == 1:
            with self._lock:
                self._bundles.add(uris[0])
                self._generation += 1

    def load_graph(self, graph: Graph) -> int:
        """Import every ``owl:sameAs`` triple from an RDF graph.

        Returns the number of links imported.
        """
        count = 0
        for triple in graph.triples(None, OWL.sameAs, None):
            if isinstance(triple.subject, URIRef) and isinstance(triple.object, URIRef):
                self.add_equivalence(triple.subject, triple.object)
                count += 1
        return count

    def to_graph(self) -> Graph:
        """Export the bundles as an ``owl:sameAs`` graph (star per bundle)."""
        graph = Graph()
        for bundle in self.bundles():
            members = sorted(bundle, key=str)
            canonical = members[0]
            for member in members[1:]:
                graph.add(Triple(member, OWL.sameAs, canonical))
        return graph

    # ------------------------------------------------------------------ #
    # Lookup
    # ------------------------------------------------------------------ #
    def equivalence_class(self, uri: URIRef) -> set[URIRef]:
        """The bundle ``[uri]`` (always contains ``uri`` itself)."""
        return set(self._bundles.members(uri)) | {uri}

    def are_same(self, left: URIRef, right: URIRef) -> bool:
        """True when the two URIs are known to co-refer."""
        return left == right or self._bundles.connected(left, right)

    def lookup(self, uri: URIRef, pattern: str) -> URIRef | None:
        """The equivalent of ``uri`` whose string matches ``pattern``.

        ``pattern`` is a regular expression anchored at the start of the
        URI (the paper uses prefix patterns such as
        ``http://kisti.rkbexplorer.com/id/\\S*``).  When several members
        match, the lexicographically smallest is returned so results are
        deterministic.  Returns ``None`` when no member matches.
        """
        compiled = self._compiled(pattern)
        with self._lock:
            self._lookups += 1
        candidates = [
            member
            for member in self.equivalence_class(uri)
            if compiled.match(str(member))
        ]
        if not candidates:
            return None
        return sorted(candidates, key=str)[0]

    def _compiled(self, pattern: str) -> re.Pattern[str]:
        """The compiled form of ``pattern``, cached per service instance."""
        compiled = self._patterns.get(pattern)
        if compiled is None:
            compiled = re.compile(pattern)
            with self._lock:
                self._patterns.setdefault(pattern, compiled)
        return compiled

    def lookup_strict(self, uri: URIRef, pattern: str) -> URIRef:
        """Like :meth:`lookup` but raising :class:`CoReferenceError` on a miss."""
        result = self.lookup(uri, pattern)
        if result is None:
            raise CoReferenceError(f"no equivalent of {uri} matching {pattern!r}")
        return result

    def translate_or_keep(self, uri: URIRef, pattern: str) -> URIRef:
        """The matching equivalent when one exists, else ``uri`` unchanged.

        This is the behaviour the rewriting algorithm needs for ground URIs
        that have no counterpart in the target dataset: leaving the URI
        untouched yields an unsatisfiable pattern on the target endpoint
        (an empty result) rather than an error, mirroring the original
        system.
        """
        return self.lookup(uri, pattern) or uri

    # ------------------------------------------------------------------ #
    # Statistics
    # ------------------------------------------------------------------ #
    def bundles(self) -> list[set[URIRef]]:
        """All equivalence classes with at least one member."""
        return self._bundles.classes()

    def bundle_count(self) -> int:
        return len(self.bundles())

    def uri_count(self) -> int:
        return len(self._bundles)

    @property
    def lookup_count(self) -> int:
        """Number of :meth:`lookup` calls served (experiment bookkeeping)."""
        return self._lookups

    def statistics(self) -> dict[str, float]:
        """Summary statistics of the bundle store."""
        bundles = self.bundles()
        sizes = [len(bundle) for bundle in bundles] or [0]
        return {
            "uris": self.uri_count(),
            "bundles": len(bundles),
            "largest_bundle": max(sizes),
            "mean_bundle_size": sum(sizes) / len(sizes) if bundles else 0.0,
        }

    def __len__(self) -> int:
        return self.uri_count()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SameAsService {self.uri_count()} URIs in {self.bundle_count()} bundles>"
