"""Disjoint-set (union-find) structure used by the co-reference service.

``owl:sameAs`` is an equivalence relation; the sameas.org service the paper
wraps maintains *bundles* of equivalent URIs.  A union-find with path
compression and union by rank gives near-constant-time bundle lookups.

Two properties matter for the federation layer, which calls
:meth:`UnionFind.members` once per URI per merged row from several worker
threads at once:

* a root→members index is maintained incrementally on :meth:`union`, so
  :meth:`members` costs O(|class|) instead of scanning every known item;
* all operations are guarded by a re-entrant lock (``find`` mutates the
  parent table through path compression, so even reads write).
"""

from __future__ import annotations

import threading
from collections.abc import Hashable, Iterable, Iterator
from typing import Generic, TypeVar

__all__ = ["UnionFind"]

T = TypeVar("T", bound=Hashable)


class UnionFind(Generic[T]):
    """Thread-safe union-find over arbitrary hashable items."""

    def __init__(self, items: Iterable[T] = ()) -> None:
        self._parent: dict[T, T] = {}
        self._rank: dict[T, int] = {}
        #: root → set of all items in that class, kept exact by union().
        self._members: dict[T, set[T]] = {}
        self._lock = threading.RLock()
        for item in items:
            self.add(item)

    def add(self, item: T) -> None:
        """Register an item as its own singleton class (idempotent)."""
        with self._lock:
            if item not in self._parent:
                self._parent[item] = item
                self._rank[item] = 0
                self._members[item] = {item}

    def __contains__(self, item: T) -> bool:
        with self._lock:
            return item in self._parent

    def __len__(self) -> int:
        with self._lock:
            return len(self._parent)

    def find(self, item: T) -> T:
        """Representative of the item's class (with path compression)."""
        with self._lock:
            return self._find(item)

    def _find(self, item: T) -> T:
        if item not in self._parent:
            raise KeyError(f"unknown item: {item!r}")
        root = item
        while self._parent[root] != root:
            root = self._parent[root]
        # Path compression.
        while self._parent[item] != root:
            self._parent[item], item = root, self._parent[item]
        return root

    def union(self, left: T, right: T) -> T:
        """Merge the classes of ``left`` and ``right``; returns the new root."""
        with self._lock:
            self.add(left)
            self.add(right)
            left_root = self._find(left)
            right_root = self._find(right)
            if left_root == right_root:
                return left_root
            if self._rank[left_root] < self._rank[right_root]:
                left_root, right_root = right_root, left_root
            self._parent[right_root] = left_root
            if self._rank[left_root] == self._rank[right_root]:
                self._rank[left_root] += 1
            self._members[left_root] |= self._members.pop(right_root)
            return left_root

    def connected(self, left: T, right: T) -> bool:
        """True when the two items are in the same class."""
        with self._lock:
            if left not in self._parent or right not in self._parent:
                return False
            return self._find(left) == self._find(right)

    def members(self, item: T) -> set[T]:
        """Every item in the same class as ``item`` (including itself)."""
        with self._lock:
            if item not in self._parent:
                return {item}
            return set(self._members[self._find(item)])

    def classes(self) -> list[set[T]]:
        """All equivalence classes as a list of sets."""
        with self._lock:
            return [set(members) for members in self._members.values()]

    def __iter__(self) -> Iterator[T]:
        with self._lock:
            return iter(list(self._parent))
