"""Disjoint-set (union-find) structure used by the co-reference service.

``owl:sameAs`` is an equivalence relation; the sameas.org service the paper
wraps maintains *bundles* of equivalent URIs.  A union-find with path
compression and union by rank gives near-constant-time bundle lookups.
"""

from __future__ import annotations

from typing import Dict, Generic, Hashable, Iterable, Iterator, List, Set, TypeVar

__all__ = ["UnionFind"]

T = TypeVar("T", bound=Hashable)


class UnionFind(Generic[T]):
    """Union-find over arbitrary hashable items."""

    def __init__(self, items: Iterable[T] = ()) -> None:
        self._parent: Dict[T, T] = {}
        self._rank: Dict[T, int] = {}
        for item in items:
            self.add(item)

    def add(self, item: T) -> None:
        """Register an item as its own singleton class (idempotent)."""
        if item not in self._parent:
            self._parent[item] = item
            self._rank[item] = 0

    def __contains__(self, item: T) -> bool:
        return item in self._parent

    def __len__(self) -> int:
        return len(self._parent)

    def find(self, item: T) -> T:
        """Representative of the item's class (with path compression)."""
        if item not in self._parent:
            raise KeyError(f"unknown item: {item!r}")
        root = item
        while self._parent[root] != root:
            root = self._parent[root]
        # Path compression.
        while self._parent[item] != root:
            self._parent[item], item = root, self._parent[item]
        return root

    def union(self, left: T, right: T) -> T:
        """Merge the classes of ``left`` and ``right``; returns the new root."""
        self.add(left)
        self.add(right)
        left_root = self.find(left)
        right_root = self.find(right)
        if left_root == right_root:
            return left_root
        if self._rank[left_root] < self._rank[right_root]:
            left_root, right_root = right_root, left_root
        self._parent[right_root] = left_root
        if self._rank[left_root] == self._rank[right_root]:
            self._rank[left_root] += 1
        return left_root

    def connected(self, left: T, right: T) -> bool:
        """True when the two items are in the same class."""
        if left not in self._parent or right not in self._parent:
            return False
        return self.find(left) == self.find(right)

    def members(self, item: T) -> Set[T]:
        """Every item in the same class as ``item`` (including itself)."""
        if item not in self._parent:
            return {item}
        root = self.find(item)
        return {other for other in self._parent if self.find(other) == root}

    def classes(self) -> List[Set[T]]:
        """All equivalence classes as a list of sets."""
        buckets: Dict[T, Set[T]] = {}
        for item in self._parent:
            buckets.setdefault(self.find(item), set()).add(item)
        return list(buckets.values())

    def __iter__(self) -> Iterator[T]:
        return iter(self._parent)
