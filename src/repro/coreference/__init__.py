"""Co-reference resolution substrate (local stand-in for sameas.org)."""

from .generator import CoReferenceGenerator, CoReferenceSpec
from .service import CoReferenceError, SameAsService
from .unionfind import UnionFind

__all__ = [
    "UnionFind",
    "SameAsService",
    "CoReferenceError",
    "CoReferenceGenerator",
    "CoReferenceSpec",
]
