"""Per-endpoint execution policies and circuit breakers.

The original deployment talked to remote SPARQL endpoints over HTTP, where
slow and flaky responders are the norm, not the exception.  A federated
query is only as fast as its slowest endpoint and only as reliable as the
federation layer's failure handling, so execution is governed per endpoint
by an :class:`ExecutionPolicy` (attempt timeout, bounded retries with
exponential backoff) and a :class:`CircuitBreaker` that stops hammering an
endpoint after repeated consecutive failures.

The breaker follows the classic three-state protocol:

* ``closed`` — requests flow; consecutive failures are counted.
* ``open`` — entered after ``failure_threshold`` consecutive failures;
  every request is refused without touching the endpoint.
* ``half-open`` — entered ``reset_timeout`` seconds after opening; a
  single probe request is let through.  Success closes the breaker,
  failure re-opens it.

The clock is injectable so tests can drive state transitions without
sleeping.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from collections.abc import Callable

__all__ = ["ExecutionPolicy", "CircuitBreaker", "CircuitState"]


class CircuitState:
    """Breaker state names (plain strings keep reports readable)."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"


@dataclass(frozen=True)
class ExecutionPolicy:
    """How the federation layer drives one endpoint.

    Attributes
    ----------
    timeout:
        Per-attempt wall-clock budget in seconds (``None`` = unbounded).
    max_retries:
        Extra attempts after the first failure (0 = fail fast).
    backoff:
        Delay before the first retry, in seconds.
    backoff_factor:
        Multiplier applied to the delay on every further retry.
    failure_threshold:
        Consecutive failures after which the circuit breaker opens.
    reset_timeout:
        Seconds the breaker stays open before letting a probe through.
    """

    timeout: float | None = None
    max_retries: int = 0
    backoff: float = 0.05
    backoff_factor: float = 2.0
    failure_threshold: int = 5
    reset_timeout: float = 30.0

    def __post_init__(self) -> None:
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError("timeout must be positive (or None)")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.backoff < 0 or self.backoff_factor < 1.0:
            raise ValueError("backoff must be >= 0 and backoff_factor >= 1")
        if self.failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")

    @property
    def max_attempts(self) -> int:
        return self.max_retries + 1

    def retry_delay(self, retry_index: int) -> float:
        """Backoff before retry number ``retry_index`` (0-based)."""
        return self.backoff * (self.backoff_factor ** retry_index)


class CircuitBreaker:
    """Thread-safe three-state circuit breaker for one endpoint."""

    def __init__(
        self,
        failure_threshold: int = 5,
        reset_timeout: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CircuitState.CLOSED
        self._consecutive_failures = 0
        self._opened_at: float | None = None
        self._probe_in_flight = False

    # ------------------------------------------------------------------ #
    # State
    # ------------------------------------------------------------------ #
    @property
    def state(self) -> str:
        with self._lock:
            self._maybe_half_open()
            return self._state

    @property
    def consecutive_failures(self) -> int:
        with self._lock:
            return self._consecutive_failures

    def _maybe_half_open(self) -> None:
        if (
            self._state == CircuitState.OPEN
            and self._opened_at is not None
            and self._clock() - self._opened_at >= self.reset_timeout
        ):
            self._state = CircuitState.HALF_OPEN
            self._probe_in_flight = False

    # ------------------------------------------------------------------ #
    # Protocol
    # ------------------------------------------------------------------ #
    def allow(self) -> bool:
        """May a request be issued right now?

        In the half-open state only a single probe is allowed until its
        outcome is recorded.
        """
        with self._lock:
            self._maybe_half_open()
            if self._state == CircuitState.CLOSED:
                return True
            if self._state == CircuitState.HALF_OPEN and not self._probe_in_flight:
                self._probe_in_flight = True
                return True
            return False

    def record_success(self) -> None:
        """The endpoint answered: close the breaker and reset counters."""
        with self._lock:
            self._state = CircuitState.CLOSED
            self._consecutive_failures = 0
            self._opened_at = None
            self._probe_in_flight = False

    def record_failure(self) -> None:
        """The endpoint failed: count it, opening the breaker at threshold."""
        with self._lock:
            self._consecutive_failures += 1
            if (
                self._state == CircuitState.HALF_OPEN
                or self._consecutive_failures >= self.failure_threshold
            ):
                self._state = CircuitState.OPEN
                self._opened_at = self._clock()
                self._probe_in_flight = False

    def reset(self) -> None:
        """Force the breaker back to pristine closed state."""
        self.record_success()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<CircuitBreaker {self.state} "
            f"({self.consecutive_failures}/{self.failure_threshold} failures)>"
        )
