"""Dataset registry: voiD descriptions plus live endpoints.

The registry is the runtime companion of the voiD KB: for every registered
dataset it stores the :class:`DatasetDescription` *and* the endpoint object
that actually answers queries (a :class:`LocalSparqlEndpoint` in this
reproduction, an HTTP client in the original system).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional

from ..rdf import Graph, URIRef
from .endpoint import SparqlEndpoint
from .void import DatasetDescription, descriptions_to_graph

__all__ = ["RegisteredDataset", "DatasetRegistry"]


@dataclass(frozen=True)
class RegisteredDataset:
    """A dataset known to the mediator: description + endpoint."""

    description: DatasetDescription
    endpoint: SparqlEndpoint

    @property
    def uri(self) -> URIRef:
        return self.description.uri

    @property
    def ontologies(self):
        return self.description.ontologies

    @property
    def uri_pattern(self) -> Optional[str]:
        return self.description.uri_pattern


class DatasetRegistry:
    """URI-keyed registry of datasets available for federation."""

    def __init__(self, datasets: Iterable[RegisteredDataset] = ()) -> None:
        self._datasets: Dict[URIRef, RegisteredDataset] = {}
        for dataset in datasets:
            self.register(dataset)

    # ------------------------------------------------------------------ #
    # Registration
    # ------------------------------------------------------------------ #
    def register(self, dataset: RegisteredDataset) -> "DatasetRegistry":
        """Add (or replace) a dataset."""
        self._datasets[dataset.uri] = dataset
        return self

    def register_endpoint(
        self, description: DatasetDescription, endpoint: SparqlEndpoint
    ) -> RegisteredDataset:
        """Convenience: build and register a :class:`RegisteredDataset`."""
        dataset = RegisteredDataset(description, endpoint)
        self.register(dataset)
        return dataset

    def unregister(self, uri: URIRef) -> None:
        self._datasets.pop(uri, None)

    # ------------------------------------------------------------------ #
    # Lookup
    # ------------------------------------------------------------------ #
    def __contains__(self, uri: URIRef) -> bool:
        return uri in self._datasets

    def __len__(self) -> int:
        return len(self._datasets)

    def __iter__(self) -> Iterator[RegisteredDataset]:
        for uri in sorted(self._datasets, key=str):
            yield self._datasets[uri]

    def get(self, uri: URIRef) -> RegisteredDataset:
        """The dataset registered under ``uri``; raises ``KeyError`` if absent."""
        if uri not in self._datasets:
            raise KeyError(f"unknown dataset: {uri}")
        return self._datasets[uri]

    def datasets(self) -> List[RegisteredDataset]:
        return list(iter(self))

    def dataset_uris(self) -> List[URIRef]:
        return [dataset.uri for dataset in self]

    def using_ontology(self, ontology: URIRef) -> List[RegisteredDataset]:
        """Datasets whose voiD description lists ``ontology`` as a vocabulary."""
        return [dataset for dataset in self if ontology in dataset.ontologies]

    # ------------------------------------------------------------------ #
    # voiD KB export
    # ------------------------------------------------------------------ #
    def void_graph(self) -> Graph:
        """The voiD KB describing every registered dataset."""
        return descriptions_to_graph(dataset.description for dataset in self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<DatasetRegistry {len(self)} datasets>"
