"""Dataset registry: voiD descriptions plus live endpoints.

The registry is the runtime companion of the voiD KB: for every registered
dataset it stores the :class:`DatasetDescription` *and* the endpoint object
that actually answers queries (a :class:`LocalSparqlEndpoint` in this
reproduction, an HTTP client in the original system).

It also owns the *health* side of federation: a per-dataset
:class:`ExecutionPolicy` (timeout/retry budget) and a per-dataset
:class:`CircuitBreaker` tracking consecutive endpoint failures, so every
federated engine sharing the registry sees the same endpoint health state.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from collections.abc import Callable, Iterable, Iterator

from ..obs.metrics import abandoned_attempts_gauge
from ..rdf import Graph, URIRef
from .endpoint import EndpointStatistics, SparqlEndpoint
from .policy import CircuitBreaker, ExecutionPolicy
from .void import DatasetDescription, descriptions_from_graph, descriptions_to_graph

__all__ = ["RegisteredDataset", "DatasetRegistry", "EndpointHealth"]


class EndpointHealth(str):
    """One dataset's health: breaker state plus endpoint statistics.

    Subclasses ``str`` (the breaker state: ``closed``/``open``/
    ``half-open``) so every existing ``health()[uri] == "closed"``
    comparison keeps working, while ``/metrics`` and the federated CLI can
    read query/failure counts off the same object.
    """

    state: str
    consecutive_failures: int
    statistics: EndpointStatistics | None
    abandoned_attempts: int

    def __new__(
        cls,
        state: str,
        consecutive_failures: int = 0,
        statistics: EndpointStatistics | None = None,
        abandoned_attempts: int = 0,
    ) -> EndpointHealth:
        self = super().__new__(cls, state)
        self.state = str(state)
        self.consecutive_failures = consecutive_failures
        self.statistics = statistics
        self.abandoned_attempts = abandoned_attempts
        return self

    def as_dict(self) -> dict:
        """JSON-ready payload (what ``/health`` serves per dataset)."""
        payload: dict = {
            "state": self.state,
            "consecutive_failures": self.consecutive_failures,
            "abandoned_attempts": self.abandoned_attempts,
        }
        if self.statistics is not None:
            payload["statistics"] = self.statistics.as_dict()
        return payload


@dataclass(frozen=True)
class RegisteredDataset:
    """A dataset known to the mediator: description + endpoint."""

    description: DatasetDescription
    endpoint: SparqlEndpoint

    @property
    def uri(self) -> URIRef:
        return self.description.uri

    @property
    def ontologies(self):
        return self.description.ontologies

    @property
    def uri_pattern(self) -> str | None:
        return self.description.uri_pattern


class DatasetRegistry:
    """URI-keyed registry of datasets available for federation.

    ``default_policy`` governs endpoints without an explicit per-dataset
    policy; circuit breakers are created lazily from the effective policy's
    ``failure_threshold`` / ``reset_timeout``.
    """

    def __init__(
        self,
        datasets: Iterable[RegisteredDataset] = (),
        default_policy: ExecutionPolicy | None = None,
    ) -> None:
        self._datasets: dict[URIRef, RegisteredDataset] = {}
        self.default_policy = default_policy or ExecutionPolicy()
        self._policies: dict[URIRef, ExecutionPolicy] = {}
        self._breakers: dict[URIRef, CircuitBreaker] = {}
        self._lock = threading.RLock()
        for dataset in datasets:
            self.register(dataset)

    # ------------------------------------------------------------------ #
    # Registration
    # ------------------------------------------------------------------ #
    def register(self, dataset: RegisteredDataset) -> DatasetRegistry:
        """Add (or replace) a dataset."""
        with self._lock:
            self._datasets[dataset.uri] = dataset
            # A replaced dataset may point at a different endpoint, so its
            # recorded health is no longer meaningful.
            self._breakers.pop(dataset.uri, None)
        return self

    def register_endpoint(
        self, description: DatasetDescription, endpoint: SparqlEndpoint
    ) -> RegisteredDataset:
        """Convenience: build and register a :class:`RegisteredDataset`."""
        dataset = RegisteredDataset(description, endpoint)
        self.register(dataset)
        return dataset

    def unregister(self, uri: URIRef) -> None:
        with self._lock:
            self._datasets.pop(uri, None)
            self._policies.pop(uri, None)
            self._breakers.pop(uri, None)

    def refresh_statistics(self, uri: URIRef | None = None) -> int:
        """Refresh voiD vocabulary statistics from the endpoints' live graphs.

        For every dataset (or just ``uri``) whose endpoint exposes its graph
        (:class:`LocalSparqlEndpoint` does; remote proxies do not), the
        stored description's ``void:propertyPartition`` /
        ``void:classPartition`` entries and triple count are rebuilt from
        :attr:`repro.rdf.Graph.stats`.  Returns how many descriptions were
        refreshed.  Endpoint health (policies, breakers) is untouched — the
        data changed, not the endpoint.
        """
        refreshed = 0
        with self._lock:
            targets = [uri] if uri is not None else list(self._datasets)
            for dataset_uri in targets:
                dataset = self._datasets.get(dataset_uri)
                if dataset is None:
                    continue
                graph = getattr(dataset.endpoint, "graph", None)
                if graph is None or not hasattr(graph, "stats"):
                    continue
                self._datasets[dataset_uri] = RegisteredDataset(
                    dataset.description.with_statistics(graph), dataset.endpoint
                )
                refreshed += 1
        return refreshed

    # ------------------------------------------------------------------ #
    # Execution policies and endpoint health
    # ------------------------------------------------------------------ #
    def set_policy(self, uri: URIRef, policy: ExecutionPolicy) -> None:
        """Attach a per-dataset execution policy (overrides the default)."""
        with self._lock:
            self._policies[uri] = policy
            # Threshold/reset may have changed; rebuild the breaker lazily.
            self._breakers.pop(uri, None)

    def policy_for(self, uri: URIRef) -> ExecutionPolicy:
        """The effective execution policy for ``uri``."""
        with self._lock:
            return self._policies.get(uri, self.default_policy)

    def breaker_for(self, uri: URIRef) -> CircuitBreaker:
        """The circuit breaker tracking ``uri``'s endpoint health."""
        with self._lock:
            breaker = self._breakers.get(uri)
            if breaker is None:
                policy = self.policy_for(uri)
                breaker = CircuitBreaker(
                    failure_threshold=policy.failure_threshold,
                    reset_timeout=policy.reset_timeout,
                )
                self._breakers[uri] = breaker
            return breaker

    def health(self) -> dict[URIRef, EndpointHealth]:
        """Per-dataset health: breaker state enriched with endpoint statistics.

        Values compare equal to their state string (``closed``/``open``/
        ``half-open``) and additionally expose ``consecutive_failures`` and
        the endpoint's :class:`EndpointStatistics` when it keeps any.
        """
        with self._lock:
            snapshot = dict(self._datasets)
        gauge = abandoned_attempts_gauge()
        report: dict[URIRef, EndpointHealth] = {}
        for uri in sorted(snapshot, key=str):
            breaker = self.breaker_for(uri)
            report[uri] = EndpointHealth(
                breaker.state,
                consecutive_failures=breaker.consecutive_failures,
                statistics=getattr(snapshot[uri].endpoint, "statistics", None),
                abandoned_attempts=int(gauge.value(dataset=str(uri))),
            )
        return report

    def reset_breakers(self) -> None:
        """Forget all recorded endpoint failures."""
        with self._lock:
            self._breakers.clear()

    # ------------------------------------------------------------------ #
    # Lookup
    # ------------------------------------------------------------------ #
    def __contains__(self, uri: URIRef) -> bool:
        with self._lock:
            return uri in self._datasets

    def __len__(self) -> int:
        with self._lock:
            return len(self._datasets)

    def __iter__(self) -> Iterator[RegisteredDataset]:
        with self._lock:
            snapshot = dict(self._datasets)
        for uri in sorted(snapshot, key=str):
            yield snapshot[uri]

    def get(self, uri: URIRef) -> RegisteredDataset:
        """The dataset registered under ``uri``; raises ``KeyError`` if absent."""
        with self._lock:
            if uri not in self._datasets:
                raise KeyError(f"unknown dataset: {uri}")
            return self._datasets[uri]

    def datasets(self) -> list[RegisteredDataset]:
        return list(iter(self))

    def dataset_uris(self) -> list[URIRef]:
        return [dataset.uri for dataset in self]

    def using_ontology(self, ontology: URIRef) -> list[RegisteredDataset]:
        """Datasets whose voiD description lists ``ontology`` as a vocabulary."""
        return [dataset for dataset in self if ontology in dataset.ontologies]

    # ------------------------------------------------------------------ #
    # voiD KB export / import
    # ------------------------------------------------------------------ #
    def void_graph(self) -> Graph:
        """The voiD KB describing every registered dataset."""
        return descriptions_to_graph(dataset.description for dataset in self)

    def load_void_graph(
        self,
        graph: Graph,
        endpoint_factory: Callable[[DatasetDescription], SparqlEndpoint] | None = None,
    ) -> list[RegisteredDataset]:
        """Register every dataset described in a voiD graph.

        The read half of the voiD KB round trip: descriptions are parsed
        with :func:`descriptions_from_graph` and each one is registered
        with an endpoint built by ``endpoint_factory`` (default: an
        :class:`~repro.federation.http_endpoint.HttpSparqlEndpoint` at the
        description's ``void:sparqlEndpoint`` URL, which is what consuming
        a remote federation's published voiD KB means in practice).
        Returns the datasets registered, in description order.
        """
        if endpoint_factory is None:
            from .http_endpoint import HttpSparqlEndpoint

            def endpoint_factory(description: DatasetDescription) -> SparqlEndpoint:
                return HttpSparqlEndpoint(description.endpoint_uri)

        registered = []
        for description in descriptions_from_graph(graph):
            registered.append(
                self.register_endpoint(description, endpoint_factory(description))
            )
        return registered

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<DatasetRegistry {len(self)} datasets>"
