"""Mediator service facade (the REST API tier of Figure 5).

The original deployment exposed the rewriter through a GWT web UI and a
REST API backed by a Jena store holding the alignment KB and the voiD KB.
:class:`MediatorService` is the programmatic equivalent: one object that
owns the two knowledge bases, the co-reference service, the dataset
registry and the mediator, and that exposes the operations the UI offered —
list datasets, translate a query for a chosen dataset, and translate *and
run* it against the dataset's endpoint.

Request/response dataclasses mirror what the REST layer would serialise to
JSON, which keeps the facade easy to wrap in an actual HTTP server without
touching the core.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from ..alignment import AlignmentStore
from ..coreference import SameAsService
from ..core import MediationResult, Mediator, TargetProfile
from ..rdf import Graph, URIRef
from ..sparql import Query, parse_query
from .federator import FederatedQueryEngine, FederatedResult
from .registry import DatasetRegistry

__all__ = ["DatasetInfo", "TranslationResponse", "ExecutionResponse", "MediatorService"]


@dataclass(frozen=True)
class DatasetInfo:
    """What the UI shows in its dataset drop-down."""

    uri: str
    title: str | None
    endpoint: str
    ontologies: list[str]
    triple_count: int


@dataclass
class TranslationResponse:
    """Response of the ``translate`` operation."""

    target_dataset: str
    source_query: str
    translated_query: str
    alignments_considered: int
    triples_matched: int
    triples_unmatched: int
    mode: str


@dataclass
class ExecutionResponse:
    """Response of the ``translate_and_run`` operation."""

    translation: TranslationResponse
    row_count: int
    rows: list[dict[str, str]]


class MediatorService:
    """Three-tier mediator: knowledge bases + rewriting + dispatch."""

    def __init__(
        self,
        alignment_store: AlignmentStore,
        registry: DatasetRegistry,
        sameas_service: SameAsService | None = None,
        parallel: bool = True,
        max_workers: int | None = None,
        strategy: str = "fanout",
        ask_probes: bool = True,
        bind_join_batch: int | None = None,
    ) -> None:
        self.alignment_store = alignment_store
        self.registry = registry
        self.sameas_service = sameas_service or SameAsService()
        self.mediator = Mediator(alignment_store, self.sameas_service)
        for dataset in registry:
            self.mediator.register_target(
                TargetProfile(
                    dataset=dataset.uri,
                    ontologies=tuple(dataset.ontologies),
                    uri_pattern=dataset.uri_pattern,
                )
            )
        self.federation = FederatedQueryEngine(
            self.mediator, registry, self.sameas_service,
            parallel=parallel, max_workers=max_workers,
            strategy=strategy, ask_probes=ask_probes,
            bind_join_batch=bind_join_batch,
        )

    # ------------------------------------------------------------------ #
    # Knowledge-base views (what the Jena back end stores in Figure 5)
    # ------------------------------------------------------------------ #
    def alignment_kb(self) -> Graph:
        """The alignment KB as RDF."""
        return self.alignment_store.to_graph()

    def void_kb(self) -> Graph:
        """The voiD KB as RDF."""
        return self.registry.void_graph()

    # ------------------------------------------------------------------ #
    # Operations offered by the UI / REST API
    # ------------------------------------------------------------------ #
    def list_datasets(self) -> list[DatasetInfo]:
        """Datasets available as rewriting/execution targets."""
        infos = []
        for dataset in self.registry:
            infos.append(
                DatasetInfo(
                    uri=str(dataset.uri),
                    title=dataset.description.title,
                    endpoint=str(dataset.description.endpoint_uri),
                    ontologies=[str(uri) for uri in dataset.ontologies],
                    triple_count=dataset.endpoint.triple_count()
                    if hasattr(dataset.endpoint, "triple_count")
                    else -1,
                )
            )
        return infos

    def translate(
        self,
        query: Query | str,
        target_dataset: URIRef,
        source_ontology: URIRef | None = None,
        mode: str = "bgp",
    ) -> TranslationResponse:
        """Rewrite ``query`` for ``target_dataset`` (the UI's main button)."""
        if isinstance(query, str):
            query = parse_query(query)
        mediation = self.mediator.translate(query, target_dataset, source_ontology, mode)
        return self._translation_response(query, mediation)

    def translate_and_run(
        self,
        query: Query | str,
        target_dataset: URIRef,
        source_ontology: URIRef | None = None,
        mode: str = "bgp",
    ) -> ExecutionResponse:
        """Rewrite and execute on the target's endpoint (the UI's second button)."""
        if isinstance(query, str):
            query = parse_query(query)
        mediation = self.mediator.translate(query, target_dataset, source_ontology, mode)
        endpoint = self.registry.get(target_dataset).endpoint
        result = endpoint.select(mediation.rewritten_query)
        return ExecutionResponse(
            translation=self._translation_response(query, mediation),
            row_count=len(result),
            rows=result.to_dicts(),
        )

    def federate(
        self,
        query: Query | str,
        source_ontology: URIRef | None = None,
        source_dataset: URIRef | None = None,
        mode: str = "bgp",
        datasets: Sequence[URIRef] | None = None,
        canonical_pattern: str | None = None,
        parallel: bool | None = None,
        strategy: str | None = None,
    ) -> FederatedResult:
        """Run the query over every registered dataset and merge the results."""
        return self.federation.execute(
            query,
            source_ontology=source_ontology,
            source_dataset=source_dataset,
            mode=mode,
            datasets=datasets,
            canonical_pattern=canonical_pattern,
            parallel=parallel,
            strategy=strategy,
        )

    def federate_many(
        self,
        queries: Sequence[Query | str],
        source_ontology: URIRef | None = None,
        source_dataset: URIRef | None = None,
        mode: str = "bgp",
        datasets: Sequence[URIRef] | None = None,
        canonical_pattern: str | None = None,
        parallel: bool | None = None,
        strategy: str | None = None,
    ) -> list[FederatedResult]:
        """Batch variant of :meth:`federate` (one result per input query).

        Translations are batched through the mediator's ``rewrite_many``
        so alignment selection and index compilation are shared across the
        whole batch.
        """
        return self.federation.execute_many(
            queries,
            source_ontology=source_ontology,
            source_dataset=source_dataset,
            mode=mode,
            datasets=datasets,
            canonical_pattern=canonical_pattern,
            parallel=parallel,
            strategy=strategy,
        )

    def analyze(
        self,
        query: Query | str,
        source_ontology: URIRef | None = None,
        source_dataset: URIRef | None = None,
        mode: str = "bgp",
        datasets: Sequence[URIRef] | None = None,
        canonical_pattern: str | None = None,
        parallel: bool | None = None,
        strategy: str | None = None,
    ):
        """EXPLAIN ANALYZE for a federated query: ``(result, event)``.

        Same routing as :meth:`federate`; the event carries per-operator
        metrics (decompose) or per-dataset traffic (fan-out) — see
        :meth:`repro.federation.FederatedQueryEngine.analyze`.
        """
        return self.federation.analyze(
            query,
            source_ontology=source_ontology,
            source_dataset=source_dataset,
            mode=mode,
            datasets=datasets,
            canonical_pattern=canonical_pattern,
            parallel=parallel,
            strategy=strategy,
        )

    def explain(
        self,
        query: Query | str,
        source_ontology: URIRef | None = None,
        source_dataset: URIRef | None = None,
        mode: str = "bgp",
        datasets: Sequence[URIRef] | None = None,
        strategy: str | None = None,
    ) -> dict[str, str]:
        """Per-dataset physical plans for a federated query (no execution)."""
        plans = self.federation.explain(
            query,
            source_ontology=source_ontology,
            source_dataset=source_dataset,
            mode=mode,
            datasets=datasets,
            strategy=strategy,
        )
        return {str(uri): text for uri, text in plans.items()}

    # ------------------------------------------------------------------ #
    @staticmethod
    def _translation_response(query: Query, mediation: MediationResult) -> TranslationResponse:
        return TranslationResponse(
            target_dataset=str(mediation.target.dataset),
            source_query=query.serialize(),
            translated_query=mediation.query_text,
            alignments_considered=mediation.alignments_considered,
            triples_matched=mediation.report.matched_count,
            triples_unmatched=mediation.report.unmatched_count,
            mode=mediation.mode,
        )
