"""Federation layer: endpoints, voiD registry, federated execution, service facade."""

from .endpoint import (
    EndpointError,
    EndpointStatistics,
    EndpointTimeout,
    EndpointUnavailable,
    LocalSparqlEndpoint,
    SparqlEndpoint,
)
from .decompose import (
    DEFAULT_BIND_JOIN_BATCH,
    DecomposedPlan,
    PatternSources,
    QueryUnit,
    SourceDecision,
    SourceSelector,
    decompose_query,
    execute_decomposed,
)
from .http_endpoint import HttpSparqlEndpoint
from .federator import (
    DatasetResult,
    FederatedQueryEngine,
    FederatedResult,
    f1_score,
    precision,
    recall,
)
from .policy import CircuitBreaker, CircuitState, ExecutionPolicy
from .registry import DatasetRegistry, EndpointHealth, RegisteredDataset
from .service import DatasetInfo, ExecutionResponse, MediatorService, TranslationResponse
from .shard import ShardedGraph, shard_for_subject, shard_graph
from .void import DatasetDescription, descriptions_from_graph, descriptions_to_graph

__all__ = [
    "SparqlEndpoint", "LocalSparqlEndpoint", "HttpSparqlEndpoint",
    "EndpointStatistics",
    "EndpointError", "EndpointUnavailable", "EndpointTimeout",
    "ExecutionPolicy", "CircuitBreaker", "CircuitState",
    "DatasetDescription", "descriptions_to_graph", "descriptions_from_graph",
    "DatasetRegistry", "RegisteredDataset", "EndpointHealth",
    "FederatedQueryEngine", "FederatedResult", "DatasetResult",
    "DecomposedPlan", "QueryUnit", "PatternSources", "SourceDecision",
    "SourceSelector", "decompose_query", "execute_decomposed",
    "DEFAULT_BIND_JOIN_BATCH",
    "recall", "precision", "f1_score",
    "ShardedGraph", "shard_graph", "shard_for_subject",
    "MediatorService", "DatasetInfo", "TranslationResponse", "ExecutionResponse",
]
