"""Federated query execution with co-reference-aware result merging.

The introduction of the paper motivates rewriting with *recall*: "the
information space on the Web of Data is highly redundant and data
repositories need to be integrated in order to provide high recall result
sets".  The federator implements that integration step:

1. the mediator rewrites the source query once per target dataset,
2. every rewritten query is executed on its dataset's endpoint,
3. the per-dataset result sets are merged; bindings whose URIs co-refer
   (per the sameas service) are collapsed onto a canonical representative
   so the merged result counts *entities*, not URIs.

:func:`recall` / :func:`precision` provide the evaluation metrics used by
Experiment E6.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

from ..coreference import SameAsService
from ..core import MediationResult, Mediator
from ..rdf import Term, URIRef, Variable
from ..sparql import Binding, Query, ResultSet, parse_query
from .endpoint import EndpointError
from .registry import DatasetRegistry, RegisteredDataset

__all__ = ["DatasetResult", "FederatedResult", "FederatedQueryEngine", "recall", "precision", "f1_score"]


@dataclass
class DatasetResult:
    """Result of running one (rewritten) query on one dataset."""

    dataset_uri: URIRef
    mediation: Optional[MediationResult]
    result: Optional[ResultSet]
    error: Optional[str] = None

    @property
    def succeeded(self) -> bool:
        return self.result is not None and self.error is None

    @property
    def row_count(self) -> int:
        return len(self.result) if self.result is not None else 0


@dataclass
class FederatedResult:
    """Merged outcome of a federated query."""

    variables: List[Variable]
    per_dataset: List[DatasetResult] = field(default_factory=list)
    merged_bindings: List[Binding] = field(default_factory=list)

    def merged(self) -> ResultSet:
        """The merged (co-reference-canonicalised, deduplicated) result set."""
        return ResultSet(self.variables, self.merged_bindings)

    def distinct_values(self, variable: Union[Variable, str]) -> Set[Term]:
        return self.merged().distinct_values(variable)

    def successful_datasets(self) -> List[URIRef]:
        return [entry.dataset_uri for entry in self.per_dataset if entry.succeeded]

    def failed_datasets(self) -> List[URIRef]:
        return [entry.dataset_uri for entry in self.per_dataset if not entry.succeeded]

    @property
    def total_rows(self) -> int:
        """Rows retrieved before merging (sum over datasets)."""
        return sum(entry.row_count for entry in self.per_dataset)


class FederatedQueryEngine:
    """Run a source query over every registered dataset through the mediator."""

    def __init__(
        self,
        mediator: Mediator,
        registry: DatasetRegistry,
        sameas_service: Optional[SameAsService] = None,
    ) -> None:
        self.mediator = mediator
        self.registry = registry
        self.sameas_service = sameas_service or mediator.sameas_service

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def execute(
        self,
        query: Union[Query, str],
        source_ontology: Optional[URIRef] = None,
        source_dataset: Optional[URIRef] = None,
        mode: str = "bgp",
        datasets: Optional[Sequence[URIRef]] = None,
        canonical_pattern: Optional[str] = None,
    ) -> FederatedResult:
        """Run ``query`` over the federation.

        ``source_dataset`` names the dataset the query was originally
        written for: that dataset receives the query *unrewritten*; every
        other dataset receives the mediated translation.  ``datasets``
        restricts the fan-out; ``canonical_pattern`` selects the URI space
        results are canonicalised into (defaults to the source dataset's
        pattern, falling back to plain deduplication).
        """
        if isinstance(query, str):
            query = parse_query(query)
        targets = self._select_targets(datasets)
        variables = self._result_variables(query)

        if canonical_pattern is None and source_dataset is not None and source_dataset in self.registry:
            canonical_pattern = self.registry.get(source_dataset).uri_pattern

        outcome = FederatedResult(variables=list(variables))
        for target in targets:
            outcome.per_dataset.append(
                self._run_on_dataset(query, target, source_ontology, source_dataset, mode)
            )
        outcome.merged_bindings = self._merge(
            (entry.result for entry in outcome.per_dataset if entry.result is not None),
            variables,
            canonical_pattern,
        )
        return outcome

    def execute_many(
        self,
        queries: Sequence[Union[Query, str]],
        source_ontology: Optional[URIRef] = None,
        source_dataset: Optional[URIRef] = None,
        mode: str = "bgp",
        datasets: Optional[Sequence[URIRef]] = None,
        canonical_pattern: Optional[str] = None,
    ) -> List[FederatedResult]:
        """Run a batch of queries over the federation (same order as input).

        The mediator's :meth:`~repro.core.Mediator.rewrite_many` batch API
        pre-translates the whole batch per target dataset, so alignment
        selection/compilation is paid once per target instead of once per
        (query, target) pair; the per-query :meth:`execute` calls then
        replay the cached rewrites.
        """
        parsed: List[Query] = [
            parse_query(query) if isinstance(query, str) else query for query in queries
        ]
        warm_targets = [
            target for target in self._select_targets(datasets)
            if source_dataset is None or target.uri != source_dataset
        ]
        # Warming is only useful while the whole batch fits in the rewrite
        # cache; beyond that the replay loop would evict-and-recompute every
        # entry, doubling the work instead of saving it.
        if len(parsed) * max(1, len(warm_targets)) <= self.mediator.result_cache_limit // 2:
            for target in warm_targets:
                try:
                    self.mediator.rewrite_many(parsed, target.uri, source_ontology, mode)
                except (EndpointError, KeyError, ValueError):
                    # Per-dataset failures are reported by execute(), per query.
                    continue
        return [
            self.execute(query, source_ontology, source_dataset, mode, datasets,
                         canonical_pattern)
            for query in parsed
        ]

    def _select_targets(self, datasets: Optional[Sequence[URIRef]]) -> List[RegisteredDataset]:
        if datasets is None:
            return self.registry.datasets()
        return [self.registry.get(uri) for uri in datasets]

    @staticmethod
    def _result_variables(query: Query) -> List[Variable]:
        projection = getattr(query, "projection", None)
        if projection:
            return list(projection)
        return sorted(query.variables(), key=str)

    def _run_on_dataset(
        self,
        query: Query,
        target: RegisteredDataset,
        source_ontology: Optional[URIRef],
        source_dataset: Optional[URIRef],
        mode: str,
    ) -> DatasetResult:
        mediation: Optional[MediationResult] = None
        try:
            if source_dataset is not None and target.uri == source_dataset:
                executable: Query = query
            else:
                mediation = self.mediator.translate(query, target.uri, source_ontology, mode)
                executable = mediation.rewritten_query
            result = target.endpoint.select(executable)
            return DatasetResult(target.uri, mediation, result)
        except (EndpointError, KeyError, ValueError) as exc:
            return DatasetResult(target.uri, mediation, None, error=str(exc))

    # ------------------------------------------------------------------ #
    # Merging
    # ------------------------------------------------------------------ #
    def _merge(
        self,
        result_sets: Iterable[ResultSet],
        variables: Sequence[Variable],
        canonical_pattern: Optional[str],
    ) -> List[Binding]:
        merged: List[Binding] = []
        seen: Set[frozenset] = set()
        for result_set in result_sets:
            for binding in result_set:
                canonical = self._canonicalise(binding, variables, canonical_pattern)
                key = frozenset(canonical.as_dict().items())
                if key not in seen:
                    seen.add(key)
                    merged.append(canonical)
        return merged

    def _canonicalise(
        self,
        binding: Binding,
        variables: Sequence[Variable],
        canonical_pattern: Optional[str],
    ) -> Binding:
        data: Dict[Variable, Term] = {}
        for variable in variables:
            term = binding.get_term(variable)
            if term is None:
                continue
            if isinstance(term, URIRef):
                term = self._canonical_uri(term, canonical_pattern)
            data[variable] = term
        return Binding(data)

    def _canonical_uri(self, uri: URIRef, canonical_pattern: Optional[str]) -> URIRef:
        if canonical_pattern:
            translated = self.sameas_service.lookup(uri, canonical_pattern)
            if translated is not None:
                return translated
        # No preferred URI space: use the lexicographically smallest member
        # of the bundle so co-referent URIs from different datasets collapse.
        bundle = self.sameas_service.equivalence_class(uri)
        return sorted(bundle, key=str)[0]


# --------------------------------------------------------------------------- #
# Evaluation metrics
# --------------------------------------------------------------------------- #
def recall(retrieved: Set, relevant: Set) -> float:
    """|retrieved ∩ relevant| / |relevant| (1.0 when nothing is relevant)."""
    if not relevant:
        return 1.0
    return len(set(retrieved) & set(relevant)) / len(set(relevant))


def precision(retrieved: Set, relevant: Set) -> float:
    """|retrieved ∩ relevant| / |retrieved| (1.0 when nothing is retrieved)."""
    if not retrieved:
        return 1.0
    return len(set(retrieved) & set(relevant)) / len(set(retrieved))


def f1_score(retrieved: Set, relevant: Set) -> float:
    """Harmonic mean of precision and recall."""
    p = precision(retrieved, relevant)
    r = recall(retrieved, relevant)
    if p + r == 0:
        return 0.0
    return 2 * p * r / (p + r)
