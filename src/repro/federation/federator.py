"""Federated query execution with co-reference-aware result merging.

The introduction of the paper motivates rewriting with *recall*: "the
information space on the Web of Data is highly redundant and data
repositories need to be integrated in order to provide high recall result
sets".  The federator implements that integration step:

1. the mediator rewrites the source query once per target dataset,
2. every rewritten query is executed on its dataset's endpoint —
   concurrently, under the per-endpoint :class:`ExecutionPolicy` (attempt
   timeout, bounded retries with exponential backoff) and circuit breaker
   recorded in the :class:`DatasetRegistry`,
3. the per-dataset result sets are merged; bindings whose URIs co-refer
   (per the sameas service) are collapsed onto a canonical representative
   so the merged result counts *entities*, not URIs.

Results are deterministic regardless of completion order: per-dataset
outcomes are collected by target index and merged in registry order, so
concurrent and sequential execution produce byte-identical merged result
sets.

:func:`recall` / :func:`precision` provide the evaluation metrics used by
Experiment E6.
"""

from __future__ import annotations

import contextvars
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from collections.abc import Iterable, Sequence

from ..coreference import SameAsService
from ..core import MediationResult, Mediator
from ..obs.metrics import abandoned_attempts_gauge
from ..obs.trace import get_tracer
from ..rdf import Term, URIRef, Variable
from ..sparql import Binding, Query, ResultSet, parse_query
from .endpoint import EndpointError, EndpointTimeout
from .policy import ExecutionPolicy
from .registry import DatasetRegistry, RegisteredDataset

__all__ = ["DatasetResult", "FederatedResult", "FederatedQueryEngine", "recall", "precision", "f1_score"]

#: Default upper bound on concurrent endpoint requests per engine.
_DEFAULT_MAX_WORKERS = 16


@dataclass
class DatasetResult:
    """Result of running one (rewritten) query on one dataset.

    Under the fan-out strategy one entry describes one whole-query request
    (``result`` holds the endpoint's rows).  Under the decompose strategy a
    dataset may serve many sub-queries (exclusive groups, bound-join
    batches, ASK probes); then ``requests``/``rows_shipped`` aggregate the
    traffic and ``result`` stays ``None`` — the merged answer lives on the
    :class:`FederatedResult`.
    """

    dataset_uri: URIRef
    mediation: MediationResult | None
    result: ResultSet | None
    error: str | None = None
    #: Endpoint attempts made (> 1 when the policy retried).
    attempts: int = 1
    #: Wall-clock seconds spent on this dataset (mediation + endpoint).
    elapsed: float = 0.0
    #: Endpoint requests issued (decompose strategy; includes ASK probes).
    requests: int = 0
    #: Rows received from this endpoint across all sub-queries (decompose).
    rows_shipped: int | None = None

    @property
    def succeeded(self) -> bool:
        if self.error is not None:
            return False
        return self.result is not None or self.rows_shipped is not None

    @property
    def row_count(self) -> int:
        if self.rows_shipped is not None:
            return self.rows_shipped
        return len(self.result) if self.result is not None else 0


@dataclass
class FederatedResult:
    """Merged outcome of a federated query."""

    variables: list[Variable]
    per_dataset: list[DatasetResult] = field(default_factory=list)
    merged_bindings: list[Binding] = field(default_factory=list)
    #: Wall-clock seconds for the whole fan-out + merge.
    elapsed: float = 0.0
    #: Execution strategy that produced the result.
    strategy: str = "fanout"
    #: The decomposed plan, when ``strategy == "decompose"``.
    decomposition: DecomposedPlan | None = None
    #: Per-query run event (operator timings, endpoints contacted, rows
    #: shipped) when the strategy executed on the batched operator layer.
    run_event: QueryRunEvent | None = None

    def merged(self) -> ResultSet:
        """The merged (co-reference-canonicalised, deduplicated) result set."""
        return ResultSet(self.variables, self.merged_bindings)

    def distinct_values(self, variable: Variable | str) -> set[Term]:
        return self.merged().distinct_values(variable)

    def successful_datasets(self) -> list[URIRef]:
        return [entry.dataset_uri for entry in self.per_dataset if entry.succeeded]

    def failed_datasets(self) -> list[URIRef]:
        return [entry.dataset_uri for entry in self.per_dataset if not entry.succeeded]

    @property
    def total_rows(self) -> int:
        """Rows retrieved before merging (sum over datasets)."""
        return sum(entry.row_count for entry in self.per_dataset)

    @property
    def total_attempts(self) -> int:
        """Endpoint attempts across the fan-out (retries included)."""
        return sum(entry.attempts for entry in self.per_dataset)

    @property
    def total_requests(self) -> int:
        """Endpoint requests issued (sub-queries and probes; decompose)."""
        return sum(entry.requests for entry in self.per_dataset)

    @property
    def endpoints_contacted(self) -> int:
        """How many datasets actually received at least one request."""
        return sum(
            1 for entry in self.per_dataset
            if entry.attempts > 0 or entry.requests > 0
        )

    @property
    def diagnostics(self) -> list:
        """Static-analysis diagnostics surfaced while planning.

        Populated under the decompose strategy (the plan runs the local
        and federation analyzers before contacting any endpoint); empty
        for plain fan-out.
        """
        if self.decomposition is not None:
            return self.decomposition.diagnostics
        return []


class FederatedQueryEngine:
    """Run a source query over every registered dataset through the mediator.

    Parameters
    ----------
    mediator / registry / sameas_service:
        The rewriting core, the dataset registry (which also tracks
        per-endpoint policies and circuit breakers) and the co-reference
        store used for merging.
    parallel:
        Default execution mode: fan out over a thread pool (``True``) or
        query endpoints one after another (``False``).  Either way the
        merged output is identical; per-call ``parallel=`` overrides.
    max_workers:
        Upper bound on concurrent endpoint requests.
    strategy:
        Default execution strategy: ``"fanout"`` ships the whole rewritten
        query to every dataset; ``"decompose"`` runs per-pattern source
        selection, exclusive groups and bound joins
        (:mod:`repro.federation.decompose`).  Per-call ``strategy=``
        overrides.
    ask_probes / probe_timeout:
        Whether source selection may issue ``ASK`` probes for patterns the
        VoID statistics cannot settle, and the per-probe time budget.
    bind_join_batch:
        Left rows shipped per bound-join batch (decompose strategy).
    """

    def __init__(
        self,
        mediator: Mediator,
        registry: DatasetRegistry,
        sameas_service: SameAsService | None = None,
        parallel: bool = True,
        max_workers: int | None = None,
        strategy: str = "fanout",
        ask_probes: bool = True,
        probe_timeout: float | None = 2.0,
        bind_join_batch: int | None = None,
    ) -> None:
        from .decompose import DEFAULT_BIND_JOIN_BATCH

        if strategy not in ("fanout", "decompose"):
            raise ValueError(f"unknown federation strategy: {strategy!r}")
        self.mediator = mediator
        self.registry = registry
        self.sameas_service = sameas_service or mediator.sameas_service
        self.parallel = parallel
        self.max_workers = max_workers or _DEFAULT_MAX_WORKERS
        self.strategy = strategy
        self.ask_probes = ask_probes
        self.probe_timeout = probe_timeout
        self.bind_join_batch = bind_join_batch or DEFAULT_BIND_JOIN_BATCH
        self._selector = None

    @property
    def source_selector(self):
        """The engine's (lazily created) shared source selector.

        Shared so relevance decisions are cached across queries; the cache
        invalidates itself on alignment-KB generation changes and local
        graph mutations.
        """
        if self._selector is None:
            from .decompose import SourceSelector

            self._selector = SourceSelector(
                self, ask_probes=self.ask_probes, probe_timeout=self.probe_timeout
            )
        else:
            self._selector.ask_probes = self.ask_probes
            self._selector.probe_timeout = self.probe_timeout
        return self._selector

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def execute(
        self,
        query: Query | str,
        source_ontology: URIRef | None = None,
        source_dataset: URIRef | None = None,
        mode: str = "bgp",
        datasets: Sequence[URIRef] | None = None,
        canonical_pattern: str | None = None,
        parallel: bool | None = None,
        strategy: str | None = None,
    ) -> FederatedResult:
        """Run ``query`` over the federation.

        ``source_dataset`` names the dataset the query was originally
        written for: that dataset receives the query *unrewritten*; every
        other dataset receives the mediated translation.  ``datasets``
        restricts the fan-out; ``canonical_pattern`` selects the URI space
        results are canonicalised into (defaults to the source dataset's
        pattern, falling back to plain deduplication).  ``parallel``
        overrides the engine's default execution mode for this call;
        ``strategy`` overrides the engine's default execution strategy
        (``"fanout"`` or ``"decompose"``).
        """
        if isinstance(query, str):
            query = parse_query(query)
        effective_strategy = strategy or self.strategy
        if effective_strategy == "decompose":
            from .decompose import execute_decomposed

            return execute_decomposed(
                self, query, self._select_targets(datasets),
                source_ontology, source_dataset, mode, canonical_pattern,
                selector=self.source_selector,
                bind_join_batch=self.bind_join_batch,
            )
        if effective_strategy != "fanout":
            raise ValueError(f"unknown federation strategy: {effective_strategy!r}")
        started = time.perf_counter()
        targets = self._select_targets(datasets)
        variables = self._result_variables(query)

        if canonical_pattern is None and source_dataset is not None and source_dataset in self.registry:
            canonical_pattern = self.registry.get(source_dataset).uri_pattern

        outcome = FederatedResult(variables=list(variables))
        outcome.per_dataset = self._fan_out(
            query, targets, source_ontology, source_dataset, mode,
            self.parallel if parallel is None else parallel,
        )
        outcome.merged_bindings = self._merge(
            (entry.result for entry in outcome.per_dataset if entry.result is not None),
            variables,
            canonical_pattern,
        )
        outcome.elapsed = time.perf_counter() - started
        return outcome

    def analyze(
        self,
        query: Query | str,
        **kwargs,
    ) -> tuple[FederatedResult, QueryRunEvent]:
        """EXPLAIN ANALYZE for a federated query: ``(result, event)``.

        Accepts the same keyword arguments as :meth:`execute`.  Under the
        decompose strategy the event carries the mediator pipeline's
        per-operator metrics; under fan-out it summarises the per-dataset
        traffic (requests, attempts, rows shipped).
        """
        from ..sparql.exec import QueryRunEvent

        query_text = query if isinstance(query, str) else query.serialize()
        outcome = self.execute(query, **kwargs)
        event = outcome.run_event
        if event is None:
            event = QueryRunEvent(
                query=query_text,
                engine=f"federate-{outcome.strategy}",
                elapsed=outcome.elapsed,
                rows=len(outcome.merged_bindings),
                endpoints=[
                    {
                        "dataset": str(entry.dataset_uri),
                        "requests": entry.requests or entry.attempts,
                        "attempts": entry.attempts,
                        "rows_shipped": entry.row_count,
                        "errors": [entry.error] if entry.error else [],
                    }
                    for entry in outcome.per_dataset
                ],
                rows_shipped=outcome.total_rows,
            )
            outcome.run_event = event
        event.query = query_text
        return outcome, event

    def lint(
        self,
        query: Query | str,
        source_ontology: URIRef | None = None,
        source_dataset: URIRef | None = None,
        mode: str = "bgp",
        datasets: Sequence[URIRef] | None = None,
    ) -> list:
        """Static diagnostics for ``query`` without executing it.

        Runs the local analyzer and — unless the query is already provably
        empty — the federation analyzer over the registered (breaker-closed)
        datasets.  Source selection may issue ASK probes when the engine is
        configured for them, but the query itself never reaches an endpoint.
        Returns :class:`repro.sparql.analysis.Diagnostic` objects.
        """
        from ..sparql.analysis import analyze_federation, analyze_query

        if isinstance(query, str):
            query = parse_query(query)
        local = analyze_query(query)
        diagnostics = list(local.diagnostics)
        if local.provably_empty:
            return diagnostics
        usable = [
            target
            for target in self._select_targets(datasets)
            if self.registry.breaker_for(target.uri).state != "open"
        ]
        federation = analyze_federation(
            query, self.source_selector, usable,
            source_ontology, source_dataset, mode, analysis=local,
        )
        diagnostics.extend(federation.diagnostics)
        return diagnostics

    def execute_many(
        self,
        queries: Sequence[Query | str],
        source_ontology: URIRef | None = None,
        source_dataset: URIRef | None = None,
        mode: str = "bgp",
        datasets: Sequence[URIRef] | None = None,
        canonical_pattern: str | None = None,
        parallel: bool | None = None,
        strategy: str | None = None,
    ) -> list[FederatedResult]:
        """Run a batch of queries over the federation (same order as input).

        The mediator's :meth:`~repro.core.Mediator.rewrite_many` batch API
        pre-translates the whole batch per target dataset, so alignment
        selection/compilation is paid once per target instead of once per
        (query, target) pair; the per-query :meth:`execute` calls then
        replay the cached rewrites.
        """
        parsed: list[Query] = [
            parse_query(query) if isinstance(query, str) else query for query in queries
        ]
        warm_targets = [
            target for target in self._select_targets(datasets)
            if source_dataset is None or target.uri != source_dataset
        ]
        # Warming is only useful while the whole batch fits in the rewrite
        # cache; beyond that the replay loop would evict-and-recompute every
        # entry, doubling the work instead of saving it.
        if len(parsed) * max(1, len(warm_targets)) <= self.mediator.result_cache_limit // 2:
            for target in warm_targets:
                try:
                    self.mediator.rewrite_many(parsed, target.uri, source_ontology, mode)
                except (EndpointError, KeyError, ValueError):
                    # Per-dataset failures are reported by execute(), per query.
                    continue
        return [
            self.execute(query, source_ontology, source_dataset, mode, datasets,
                         canonical_pattern, parallel, strategy)
            for query in parsed
        ]

    def explain(
        self,
        query: Query | str,
        source_ontology: URIRef | None = None,
        source_dataset: URIRef | None = None,
        mode: str = "bgp",
        datasets: Sequence[URIRef] | None = None,
        strategy: str | None = None,
    ) -> dict[URIRef, str]:
        """Per-dataset EXPLAIN for a federated query, without executing it.

        Under the fan-out strategy each target receives exactly the query
        :meth:`execute` would send it (the source dataset its original
        query, every other dataset the mediated rewrite) and reports the
        physical plan its endpoint's planner would run; endpoints that
        expose no ``explain`` (remote transports) report the rewritten
        query text instead.  Under the decompose strategy each target
        reports its slice of the decomposed plan — the sub-queries of the
        units it serves (exclusive groups, bound-join fragments) or the
        reason it is skipped.  ``ASK`` probes may contact endpoints when
        source selection needs them.
        """
        if isinstance(query, str):
            query = parse_query(query)
        if (strategy or self.strategy) == "decompose":
            plan = self.decompose_plan(query, source_ontology, source_dataset,
                                       mode, datasets)
            return self._explain_decomposed(plan, datasets)
        plans: dict[URIRef, str] = {}
        for target in self._select_targets(datasets):
            try:
                if source_dataset is not None and target.uri == source_dataset:
                    executable: Query = query
                else:
                    executable = self.mediator.translate(
                        query, target.uri, source_ontology, mode
                    ).rewritten_query
                if hasattr(target.endpoint, "explain"):
                    plans[target.uri] = target.endpoint.explain(executable)
                else:
                    plans[target.uri] = executable.serialize()
            except (EndpointError, KeyError, ValueError) as exc:
                plans[target.uri] = f"error: {exc}"
        return plans

    def decompose_plan(
        self,
        query: Query | str,
        source_ontology: URIRef | None = None,
        source_dataset: URIRef | None = None,
        mode: str = "bgp",
        datasets: Sequence[URIRef] | None = None,
    ):
        """The decomposed plan for ``query`` (source selection, units, joins).

        Builds the plan without executing the query; ``ASK`` probes may
        contact endpoints when the VoID statistics cannot settle a pattern
        and the engine is configured for probing.
        """
        from .decompose import decompose_query

        if isinstance(query, str):
            query = parse_query(query)
        return decompose_query(
            self, query, self._select_targets(datasets),
            source_ontology, source_dataset, mode,
            selector=self.source_selector,
            bind_join_batch=self.bind_join_batch,
        )

    def _explain_decomposed(
        self, plan, datasets: Sequence[URIRef] | None
    ) -> dict[URIRef, str]:
        """Slice a decomposed plan into the per-dataset EXPLAIN payloads."""
        per_dataset: dict[URIRef, str] = {}
        for target in self._select_targets(datasets):
            if plan.fallback_reason is not None:
                per_dataset[target.uri] = f"fan-out fallback: {plan.fallback_reason}"
                continue
            if target.uri in plan.skipped:
                per_dataset[target.uri] = f"skipped: {plan.skipped[target.uri]}"
                continue
            if plan.empty_reason is not None:
                per_dataset[target.uri] = f"not contacted: {plan.empty_reason}"
                continue
            lines: list[str] = []
            for index, unit in enumerate(plan.units):
                if target.uri not in unit.sources:
                    continue
                from .decompose import _unit_kind

                lines.append(f"unit {index + 1} [{_unit_kind(unit)}]")
                sub_query = unit.sub_queries.get(target.uri)
                if sub_query:
                    lines.extend(f"  {line}" for line in sub_query.strip().splitlines())
            per_dataset[target.uri] = "\n".join(lines) if lines else "no unit assigned"
        return per_dataset

    def _select_targets(self, datasets: Sequence[URIRef] | None) -> list[RegisteredDataset]:
        if datasets is None:
            return self.registry.datasets()
        return [self.registry.get(uri) for uri in datasets]

    @staticmethod
    def _result_variables(query: Query) -> list[Variable]:
        projection = getattr(query, "projection", None)
        if projection:
            return list(projection)
        return sorted(query.variables(), key=str)

    # ------------------------------------------------------------------ #
    # Fan-out
    # ------------------------------------------------------------------ #
    def _fan_out(
        self,
        query: Query,
        targets: Sequence[RegisteredDataset],
        source_ontology: URIRef | None,
        source_dataset: URIRef | None,
        mode: str,
        parallel: bool,
    ) -> list[DatasetResult]:
        """One :class:`DatasetResult` per target, in target order."""
        if not parallel or len(targets) <= 1:
            return [
                self._run_on_dataset(query, target, source_ontology, source_dataset, mode)
                for target in targets
            ]
        results: list[DatasetResult | None] = [None] * len(targets)
        with ThreadPoolExecutor(
            max_workers=min(len(targets), self.max_workers),
            thread_name_prefix="federate",
        ) as pool:
            # copy_context() per task (a Context cannot be entered by two
            # threads at once): each worker sees the submitting thread's
            # active span, so per-dataset spans nest under the request.
            futures = {
                pool.submit(
                    contextvars.copy_context().run,
                    self._run_on_dataset, query, target,
                    source_ontology, source_dataset, mode,
                ): index
                for index, target in enumerate(targets)
            }
            for future, index in futures.items():
                results[index] = future.result()
        return [entry for entry in results if entry is not None]

    def _run_on_dataset(
        self,
        query: Query,
        target: RegisteredDataset,
        source_ontology: URIRef | None,
        source_dataset: URIRef | None,
        mode: str,
    ) -> DatasetResult:
        """Rewrite for one dataset, then execute under its policy."""
        started = time.perf_counter()
        mediation: MediationResult | None = None
        try:
            if source_dataset is not None and target.uri == source_dataset:
                executable: Query = query
            else:
                mediation = self.mediator.translate(query, target.uri, source_ontology, mode)
                executable = mediation.rewritten_query
        except (EndpointError, KeyError, ValueError) as exc:
            return DatasetResult(target.uri, mediation, None, error=str(exc),
                                 attempts=0, elapsed=time.perf_counter() - started)

        result, attempts, last_error = self.call_endpoint(target, executable)
        return DatasetResult(target.uri, mediation, result, error=last_error,
                             attempts=attempts,
                             elapsed=time.perf_counter() - started)

    def call_endpoint(
        self,
        target: RegisteredDataset,
        executable: Query,
        kind: str = "select",
        timeout: float | None = None,
    ) -> tuple[ResultSet | None, int, str | None]:
        """One endpoint call governed by the dataset's policy and breaker.

        Returns ``(result, attempts, error)`` with exactly one of
        ``result``/``error`` set.  ``kind`` selects the endpoint operation
        (``select`` or ``ask``); ``timeout`` overrides the policy's
        per-attempt budget (used for cheap ASK probes).  This is the shared
        execution primitive of both strategies: the fan-out path issues one
        whole-query call per dataset, the decomposer issues many sub-query
        and probe calls — all through the same resilience machinery.
        """
        policy = self.registry.policy_for(target.uri)
        breaker = self.registry.breaker_for(target.uri)
        effective_timeout = policy.timeout if timeout is None else timeout
        last_error: str | None = None
        attempts = 0
        with get_tracer().start_span(
            "endpoint.call",
            {"dataset": str(target.uri), "kind": kind, "layer": "federation"},
        ) as span:
            for attempt in range(policy.max_attempts):
                if not breaker.allow():
                    last_error = f"circuit open for {target.uri}"
                    if span.recording:
                        span.add_event("breaker_open")
                    break
                attempts += 1
                before = breaker.state if span.recording else None
                try:
                    result = self._attempt(target, executable, effective_timeout, kind)
                    breaker.record_success()
                    if span.recording:
                        span.set_attribute("attempts", attempts)
                        if breaker.state != before:
                            span.add_event(
                                "breaker_transition",
                                from_state=before, to_state=breaker.state,
                            )
                    return result, attempts, None
                except (EndpointError, KeyError, ValueError) as exc:
                    breaker.record_failure()
                    last_error = str(exc)
                    if span.recording and breaker.state != before:
                        span.add_event(
                            "breaker_transition",
                            from_state=before, to_state=breaker.state,
                        )
                    if attempt < policy.max_retries:
                        delay = policy.retry_delay(attempt)
                        if span.recording:
                            span.add_event(
                                "retry",
                                attempt=attempts, error=last_error, delay=delay,
                            )
                        if delay > 0:
                            time.sleep(delay)
                except BaseException:
                    # Unexpected failure: still settle the breaker (a half-open
                    # probe reservation would otherwise leak and wedge the
                    # breaker refusing forever), then propagate the bug.
                    breaker.record_failure()
                    raise
            if span.recording:
                span.set_attribute("attempts", attempts)
                if last_error is not None:
                    span.set_attribute("error", last_error)
        return None, attempts, last_error

    @staticmethod
    def _attempt(
        target: RegisteredDataset,
        executable: Query,
        timeout: float | None,
        kind: str = "select",
    ):
        """One endpoint attempt, bounded by ``timeout`` seconds.

        Endpoints expose no cancellation, so the attempt runs on a daemon
        thread and is abandoned on timeout — exactly how an HTTP client
        would drop a socket while the server keeps computing.  Abandoned
        attempts are visible while they last: the per-dataset
        ``repro_abandoned_attempts`` gauge is incremented by the waiter
        when it gives up and decremented by the attempt thread when it
        finally finishes, so a non-zero value means a thread is still
        burning cycles behind a timeout that already fired.
        """
        operation = getattr(target.endpoint, kind)
        if timeout is None:
            return operation(executable)
        box: dict[str, object] = {}
        done = threading.Event()
        # Waiter and attempt thread agree under this lock on whether the
        # attempt was abandoned; whichever side arrives second settles the
        # gauge, so an attempt finishing in the same instant the timeout
        # fires can never leak an increment.
        state_lock = threading.Lock()
        state = {"abandoned": False, "finished": False}
        gauge = abandoned_attempts_gauge()
        dataset = str(target.uri)

        def run() -> None:
            try:
                box["result"] = operation(executable)
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                box["error"] = exc
            finally:
                done.set()
                with state_lock:
                    state["finished"] = True
                    if state["abandoned"]:
                        gauge.dec(dataset=dataset)

        context = contextvars.copy_context()
        thread = threading.Thread(
            target=lambda: context.run(run), daemon=True, name=f"attempt-{target.uri}"
        )
        thread.start()
        if not done.wait(timeout):
            with state_lock:
                if not state["finished"]:
                    state["abandoned"] = True
                    gauge.inc(dataset=dataset)
            raise EndpointTimeout(
                f"endpoint for {target.uri} timed out after {timeout:g}s"
            )
        if "error" in box:
            raise box["error"]  # type: ignore[misc]
        return box["result"]  # type: ignore[return-value]

    # ------------------------------------------------------------------ #
    # Merging
    # ------------------------------------------------------------------ #
    def _merge(
        self,
        result_sets: Iterable[ResultSet],
        variables: Sequence[Variable],
        canonical_pattern: str | None,
    ) -> list[Binding]:
        merged: list[Binding] = []
        seen: set[frozenset] = set()
        for result_set in result_sets:
            for binding in result_set:
                canonical = self._canonicalise(binding, variables, canonical_pattern)
                key = frozenset(canonical.as_dict().items())
                if key not in seen:
                    seen.add(key)
                    merged.append(canonical)
        return merged

    def _canonicalise(
        self,
        binding: Binding,
        variables: Sequence[Variable],
        canonical_pattern: str | None,
    ) -> Binding:
        data: dict[Variable, Term] = {}
        for variable in variables:
            term = binding.get_term(variable)
            if term is None:
                continue
            if isinstance(term, URIRef):
                term = self._canonical_uri(term, canonical_pattern)
            data[variable] = term
        return Binding(data)

    def _canonical_uri(self, uri: URIRef, canonical_pattern: str | None) -> URIRef:
        if canonical_pattern:
            translated = self.sameas_service.lookup(uri, canonical_pattern)
            if translated is not None:
                return translated
        # No preferred URI space: use the lexicographically smallest member
        # of the bundle so co-referent URIs from different datasets collapse.
        bundle = self.sameas_service.equivalence_class(uri)
        return sorted(bundle, key=str)[0]


# --------------------------------------------------------------------------- #
# Evaluation metrics
# --------------------------------------------------------------------------- #
def recall(retrieved: set, relevant: set) -> float:
    """|retrieved ∩ relevant| / |relevant| (1.0 when nothing is relevant)."""
    if not relevant:
        return 1.0
    return len(set(retrieved) & set(relevant)) / len(set(relevant))


def precision(retrieved: set, relevant: set) -> float:
    """|retrieved ∩ relevant| / |retrieved| (1.0 when nothing is retrieved)."""
    if not retrieved:
        return 1.0
    return len(set(retrieved) & set(relevant)) / len(set(retrieved))


def f1_score(retrieved: set, relevant: set) -> float:
    """Harmonic mean of precision and recall."""
    p = precision(retrieved, relevant)
    r = recall(retrieved, relevant)
    if p + r == 0:
        return 0.0
    return 2 * p * r / (p + r)
