"""SPARQL endpoint abstraction.

The original system dispatched rewritten queries to remote endpoints over
SPARQL/HTTP (Figure 5).  Offline we model an endpoint as "something that
answers SPARQL queries": :class:`LocalSparqlEndpoint` wraps an in-memory
graph behind the same interface a remote endpoint would offer, including
simulated network latency, failure injection and invocation accounting, so
the federation layer's resilience machinery (timeouts, retries, circuit
breakers) is exercisable entirely offline.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass
from collections.abc import Iterable

from ..rdf import Graph, GraphView, Triple, URIRef
from ..sparql import (
    AskQuery,
    AskResult,
    ConstructQuery,
    Query,
    QueryEvaluator,
    ResultSet,
    parse_query,
)

__all__ = [
    "SparqlEndpoint",
    "LocalSparqlEndpoint",
    "EndpointStatistics",
    "EndpointError",
    "EndpointUnavailable",
    "EndpointTimeout",
]


class EndpointError(RuntimeError):
    """Base error for endpoint interaction failures."""


class EndpointUnavailable(EndpointError):
    """Raised when a (simulated) endpoint is switched off or flakes."""


class EndpointTimeout(EndpointError):
    """Raised when an endpoint attempt exceeded its policy's time budget."""


class SparqlEndpoint:
    """Abstract endpoint interface used by the federation layer."""

    #: URI identifying the endpoint (the value stored in the voiD profile).
    uri: URIRef

    def select(self, query: Query | str) -> ResultSet:
        """Run a SELECT query and return its result set."""
        raise NotImplementedError

    def ask(self, query: Query | str) -> AskResult:
        """Run an ASK query."""
        raise NotImplementedError

    def construct(self, query: Query | str) -> Graph:
        """Run a CONSTRUCT query."""
        raise NotImplementedError


@dataclass
class EndpointStatistics:
    """Bookkeeping about the traffic an endpoint has served.

    ``injected_failures`` counts failures the endpoint itself produced
    (failure injection on :class:`LocalSparqlEndpoint`, HTTP error bodies
    on a remote endpoint); ``transport_failures`` counts attempts that
    never produced an answer at all (connection refused, socket timeout) —
    only the HTTP client increments it.
    """

    select_queries: int = 0
    ask_queries: int = 0
    construct_queries: int = 0
    injected_failures: int = 0
    transport_failures: int = 0

    @property
    def total_queries(self) -> int:
        return self.select_queries + self.ask_queries + self.construct_queries

    @property
    def total_failures(self) -> int:
        return self.injected_failures + self.transport_failures

    def as_dict(self) -> dict:
        """JSON-ready payload (served by ``/metrics`` and ``health()``)."""
        return {
            "select_queries": self.select_queries,
            "ask_queries": self.ask_queries,
            "construct_queries": self.construct_queries,
            "total_queries": self.total_queries,
            "injected_failures": self.injected_failures,
            "transport_failures": self.transport_failures,
            "total_failures": self.total_failures,
        }


class LocalSparqlEndpoint(SparqlEndpoint):
    """An in-process endpoint over an in-memory RDF graph.

    Parameters
    ----------
    uri:
        The endpoint URI recorded in the dataset's voiD description.
    graph:
        The data served by the endpoint.
    name:
        Human-readable label used in logs and experiment tables.
    available:
        When false every query raises :class:`EndpointUnavailable`
        (failure-injection hook used by the federation tests).
    latency:
        Simulated per-query network/evaluation delay in seconds.  The
        endpoint sleeps this long before answering, which is what makes
        concurrent fan-out measurably faster than sequential execution in
        the offline benchmarks.
    failure_rate:
        Probability in [0, 1] that a query fails with
        :class:`EndpointUnavailable` (drawn from a private ``Random``
        seeded with ``seed``, so flakiness is reproducible).
    seed:
        Seed for the failure-injection random stream.
    """

    def __init__(
        self,
        uri: URIRef,
        graph: Graph,
        name: str | None = None,
        available: bool = True,
        latency: float = 0.0,
        failure_rate: float = 0.0,
        seed: int = 0,
    ) -> None:
        if not 0.0 <= failure_rate <= 1.0:
            raise ValueError("failure_rate must be within [0, 1]")
        if latency < 0:
            raise ValueError("latency must be >= 0")
        self.uri = uri
        self.name = name or str(uri)
        self.available = available
        self.latency = latency
        self.failure_rate = failure_rate
        self._rng = random.Random(seed)
        self._fail_next = 0
        self._graph = graph
        self._evaluator = QueryEvaluator(graph)
        self.statistics = EndpointStatistics()
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # Data access
    # ------------------------------------------------------------------ #
    @property
    def graph(self) -> GraphView:
        """Read-only view of the endpoint's data."""
        return GraphView(self._graph)

    def triple_count(self) -> int:
        return len(self._graph)

    def load(self, triples: Iterable[Triple]) -> LocalSparqlEndpoint:
        """Bulk-load triples (used by the scenario builders)."""
        self._graph.add_all(triples)
        return self

    # ------------------------------------------------------------------ #
    # Failure injection
    # ------------------------------------------------------------------ #
    def fail_next(self, count: int = 1) -> LocalSparqlEndpoint:
        """Make the next ``count`` queries fail deterministically.

        Used to test bounded retries: ``fail_next(2)`` plus a policy with
        ``max_retries >= 2`` succeeds on the third attempt.
        """
        with self._lock:
            self._fail_next = max(0, count)
        return self

    def _simulate(self, kind: str) -> None:
        """Account for the query, then apply latency and injected failures."""
        if not self.available:
            raise EndpointUnavailable(f"endpoint {self.name} is unavailable")
        with self._lock:
            setattr(self.statistics, kind, getattr(self.statistics, kind) + 1)
            flake = False
            if self._fail_next > 0:
                self._fail_next -= 1
                flake = True
            elif self.failure_rate and self._rng.random() < self.failure_rate:
                flake = True
            if flake:
                self.statistics.injected_failures += 1
        if self.latency:
            time.sleep(self.latency)
        if flake:
            raise EndpointUnavailable(f"endpoint {self.name} flaked (injected failure)")

    # ------------------------------------------------------------------ #
    # Query interface
    # ------------------------------------------------------------------ #
    def select(self, query: Query | str) -> ResultSet:
        self._simulate("select_queries")
        result = self._evaluator.evaluate(self._coerce(query))
        if not isinstance(result, ResultSet):
            raise EndpointError("query did not produce SELECT results")
        return result

    def ask(self, query: Query | str) -> AskResult:
        self._simulate("ask_queries")
        result = self._evaluator.evaluate(self._coerce(query))
        if not isinstance(result, AskResult):
            raise EndpointError("query did not produce an ASK result")
        return result

    def construct(self, query: Query | str) -> Graph:
        self._simulate("construct_queries")
        result = self._evaluator.evaluate(self._coerce(query))
        if not isinstance(result, Graph):
            raise EndpointError("query did not produce a CONSTRUCT graph")
        return result

    def explain(self, query: Query | str) -> str:
        """The endpoint evaluator's EXPLAIN plan for ``query`` (no execution).

        Not counted as endpoint traffic and exempt from failure injection —
        planning never touches the data, only the statistics.
        """
        return self._evaluator.explain(self._coerce(query))

    def analyze(self, query: Query | str):
        """EXPLAIN ANALYZE: evaluate ``query`` and return ``(result, event)``.

        The event carries per-operator rows/batches/wall-time from the
        batched executor (see :meth:`repro.sparql.QueryEvaluator.analyze`).
        Counted as endpoint traffic like a normal query of the same form.
        """
        coerced = self._coerce(query)
        if isinstance(coerced, AskQuery):
            kind = "ask_queries"
        elif isinstance(coerced, ConstructQuery):
            kind = "construct_queries"
        else:
            kind = "select_queries"
        self._simulate(kind)
        return self._evaluator.analyze(coerced)

    @staticmethod
    def _coerce(query: Query | str) -> Query:
        if isinstance(query, str):
            return parse_query(query)
        return query

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<LocalSparqlEndpoint {self.name} ({self.triple_count()} triples)>"
