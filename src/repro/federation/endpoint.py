"""SPARQL endpoint abstraction.

The original system dispatched rewritten queries to remote endpoints over
SPARQL/HTTP (Figure 5).  Offline we model an endpoint as "something that
answers SPARQL queries": :class:`LocalSparqlEndpoint` wraps an in-memory
graph behind the same interface a remote endpoint would offer, including
simple failure injection and invocation accounting so experiments can
report how many endpoint calls the federation layer makes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Union

from ..rdf import Graph, ReadOnlyGraphView, Triple, URIRef
from ..sparql import AskResult, Query, QueryEvaluator, ResultSet, parse_query

__all__ = ["SparqlEndpoint", "LocalSparqlEndpoint", "EndpointError", "EndpointUnavailable"]


class EndpointError(RuntimeError):
    """Base error for endpoint interaction failures."""


class EndpointUnavailable(EndpointError):
    """Raised when a (simulated) endpoint is switched off."""


class SparqlEndpoint:
    """Abstract endpoint interface used by the federation layer."""

    #: URI identifying the endpoint (the value stored in the voiD profile).
    uri: URIRef

    def select(self, query: Union[Query, str]) -> ResultSet:
        """Run a SELECT query and return its result set."""
        raise NotImplementedError

    def ask(self, query: Union[Query, str]) -> AskResult:
        """Run an ASK query."""
        raise NotImplementedError

    def construct(self, query: Union[Query, str]) -> Graph:
        """Run a CONSTRUCT query."""
        raise NotImplementedError


@dataclass
class EndpointStatistics:
    """Bookkeeping about the traffic an endpoint has served."""

    select_queries: int = 0
    ask_queries: int = 0
    construct_queries: int = 0

    @property
    def total_queries(self) -> int:
        return self.select_queries + self.ask_queries + self.construct_queries


class LocalSparqlEndpoint(SparqlEndpoint):
    """An in-process endpoint over an in-memory RDF graph.

    Parameters
    ----------
    uri:
        The endpoint URI recorded in the dataset's voiD description.
    graph:
        The data served by the endpoint.
    name:
        Human-readable label used in logs and experiment tables.
    available:
        When false every query raises :class:`EndpointUnavailable`
        (failure-injection hook used by the federation tests).
    """

    def __init__(
        self,
        uri: URIRef,
        graph: Graph,
        name: Optional[str] = None,
        available: bool = True,
    ) -> None:
        self.uri = uri
        self.name = name or str(uri)
        self.available = available
        self._graph = graph
        self._evaluator = QueryEvaluator(graph)
        self.statistics = EndpointStatistics()

    # ------------------------------------------------------------------ #
    # Data access
    # ------------------------------------------------------------------ #
    @property
    def graph(self) -> ReadOnlyGraphView:
        """Read-only view of the endpoint's data."""
        return ReadOnlyGraphView(self._graph)

    def triple_count(self) -> int:
        return len(self._graph)

    def load(self, triples: Iterable[Triple]) -> "LocalSparqlEndpoint":
        """Bulk-load triples (used by the scenario builders)."""
        self._graph.add_all(triples)
        return self

    # ------------------------------------------------------------------ #
    # Query interface
    # ------------------------------------------------------------------ #
    def _check_available(self) -> None:
        if not self.available:
            raise EndpointUnavailable(f"endpoint {self.name} is unavailable")

    def select(self, query: Union[Query, str]) -> ResultSet:
        self._check_available()
        self.statistics.select_queries += 1
        result = self._evaluator.evaluate(self._coerce(query))
        if not isinstance(result, ResultSet):
            raise EndpointError("query did not produce SELECT results")
        return result

    def ask(self, query: Union[Query, str]) -> AskResult:
        self._check_available()
        self.statistics.ask_queries += 1
        result = self._evaluator.evaluate(self._coerce(query))
        if not isinstance(result, AskResult):
            raise EndpointError("query did not produce an ASK result")
        return result

    def construct(self, query: Union[Query, str]) -> Graph:
        self._check_available()
        self.statistics.construct_queries += 1
        result = self._evaluator.evaluate(self._coerce(query))
        if not isinstance(result, Graph):
            raise EndpointError("query did not produce a CONSTRUCT graph")
        return result

    @staticmethod
    def _coerce(query: Union[Query, str]) -> Query:
        if isinstance(query, str):
            return parse_query(query)
        return query

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<LocalSparqlEndpoint {self.name} ({self.triple_count()} triples)>"
