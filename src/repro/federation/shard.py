"""Subject-hash sharding of one logical graph across local endpoints.

The PR 5 decomposer already federates over *heterogeneous* sources by
reading their voiD statistics; sharding reuses exactly that machinery for
*scale-out*: one logical graph is split across N :class:`LocalSparqlEndpoint`
shards by a deterministic hash of the triple's subject, each shard publishes
its own per-predicate/per-class voiD partitions, and the decomposer then
treats the shards as ordinary sources — routing each triple pattern to the
shards that can match it and joining across shards with bound joins.

Hashing on the *subject* keeps every triple about one resource on one
shard, so star-shaped queries (the common SPARQL shape) join locally; only
path-shaped joins cross shards.  The hash is content-stable (CRC-32 of the
term's lexical form), never Python's salted ``hash()``, so a dataset shards
identically across processes and restarts — a requirement for pointing
shard endpoints at persistent :class:`~repro.rdf.SegmentStore` directories.
"""

from __future__ import annotations

import zlib
from collections.abc import Callable, Iterable
from dataclasses import dataclass

from ..rdf import BNode, Graph, Literal, Store, Term, URIRef
from .endpoint import LocalSparqlEndpoint
from .registry import DatasetRegistry
from .void import DatasetDescription

__all__ = ["ShardedGraph", "shard_for_subject", "shard_graph"]


def _stable_key(term: Term) -> bytes:
    """A process-independent byte key for a subject term."""
    if isinstance(term, URIRef):
        return b"u:" + term.value.encode("utf-8")
    if isinstance(term, BNode):
        return b"b:" + term.value.encode("utf-8")
    if isinstance(term, Literal):  # never a legal subject, but stay total
        return b"l:" + term.lexical.encode("utf-8")
    return repr(term).encode("utf-8")


def shard_for_subject(subject: Term, shards: int) -> int:
    """The shard index ``subject`` routes to (deterministic across runs)."""
    if shards < 1:
        raise ValueError("shards must be >= 1")
    return zlib.crc32(_stable_key(subject)) % shards


@dataclass(frozen=True)
class ShardedGraph:
    """One logical graph materialised as N federated shard endpoints."""

    registry: DatasetRegistry
    endpoints: tuple[LocalSparqlEndpoint, ...]
    descriptions: tuple[DatasetDescription, ...]
    graphs: tuple[Graph, ...]

    @property
    def shards(self) -> int:
        return len(self.endpoints)

    def __len__(self) -> int:
        return sum(len(graph) for graph in self.graphs)


def shard_graph(
    source: Iterable,
    shards: int,
    base_uri: str = "http://localhost/shard",
    registry: DatasetRegistry | None = None,
    store_factory: Callable[[int], Store] | None = None,
    title: str | None = None,
) -> ShardedGraph:
    """Split ``source`` into ``shards`` subject-hashed endpoint shards.

    Each shard becomes a :class:`LocalSparqlEndpoint` whose voiD
    description carries the shard's *own* statistics
    (``void:propertyPartition`` / ``void:classPartition``), emitted via
    :meth:`DatasetDescription.with_statistics` — so the federation
    decomposer prunes shards per triple pattern exactly as it prunes
    unrelated datasets.  All shards are registered into ``registry`` (a
    fresh one by default) and the populated registry is returned alongside
    the endpoints, ready to hand to :class:`FederatedQueryEngine` — use
    ``strategy="decompose"`` so cross-shard joins are executed as bound
    joins rather than lost to per-shard evaluation.

    ``store_factory`` chooses each shard's backend (e.g.
    ``lambda i: SegmentStore(root / f"shard-{i}")``); the default is
    in-memory.  ``source`` is any triple iterable — a :class:`Graph`, a
    :class:`GraphView` or a plain sequence.
    """
    if shards < 1:
        raise ValueError("shards must be >= 1")
    graphs = tuple(
        Graph(store=store_factory(index)) if store_factory is not None else Graph()
        for index in range(shards)
    )
    for triple in source:
        graphs[shard_for_subject(triple.subject, shards)].add(triple)

    registry = registry if registry is not None else DatasetRegistry()
    label = title or "shard"
    endpoints = []
    descriptions = []
    for index, graph in enumerate(graphs):
        graph.flush()
        description = DatasetDescription(
            uri=URIRef(f"{base_uri}/{index}/void"),
            endpoint_uri=URIRef(f"{base_uri}/{index}/sparql"),
            title=f"{label} {index}/{shards}",
        ).with_statistics(graph)
        endpoint = LocalSparqlEndpoint(
            description.endpoint_uri, graph, name=f"{label}-{index}"
        )
        registry.register_endpoint(description, endpoint)
        endpoints.append(endpoint)
        descriptions.append(description)
    return ShardedGraph(
        registry=registry,
        endpoints=tuple(endpoints),
        descriptions=tuple(descriptions),
        graphs=graphs,
    )
