"""voiD dataset descriptions (the mediator's *voiD KB* of Figure 5).

The deployed system "maintains a simple knowledge base in RDF describing
data sets, and their SPARQL endpoints, using the voiD vocabulary ... every
data set is uniquely identified within the system with an URI".
:class:`DatasetDescription` is the in-memory form of one such description
and converts to/from the voiD RDF encoding, so the registry can persist its
knowledge base exactly as the paper's system does.

Beyond the core profile (endpoint, vocabularies, URI space), a description
may advertise the dataset's *vocabulary statistics* — per-predicate triple
counts (``void:propertyPartition``) and per-class entity counts
(``void:classPartition``).  These are what the federation decomposer's
source selection consumes: a triple pattern whose ground predicate (or
``rdf:type`` class) is absent from a dataset's partitions provably matches
nothing there, so the endpoint need not be contacted at all.
:meth:`DatasetDescription.with_statistics` derives the partitions from a
graph's incrementally maintained :class:`~repro.rdf.GraphStatistics`, so
republishing after a data change is O(distinct predicates + classes).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from collections.abc import Iterable

from ..rdf import (
    DC,
    Graph,
    Literal,
    RDF,
    Triple,
    URIRef,
    VOID,
    XSD,
    fresh_bnode,
)

__all__ = ["DatasetDescription", "descriptions_to_graph", "descriptions_from_graph"]

#: Property linking a dataset to the regular expression of its URI space.
#: voiD has ``void:uriRegexPattern`` for exactly this purpose.
URI_PATTERN_PROPERTY = VOID.uriRegexPattern


@dataclass(frozen=True)
class DatasetDescription:
    """A voiD-style description of one dataset.

    Attributes
    ----------
    uri:
        Dataset identity (e.g. ``http://kisti.rkbexplorer.com/id/void``).
    endpoint_uri:
        The dataset's SPARQL endpoint (``void:sparqlEndpoint``).
    ontologies:
        Vocabularies the dataset adopts (``void:vocabulary``).
    uri_pattern:
        Regular expression of the instance URI space
        (``void:uriRegexPattern``) — the second argument of ``sameas``.
    title:
        Human readable name (``dc:title``).
    triple_count:
        Advertised size (``void:triples``), informational.
    property_partitions:
        ``(predicate, triple count)`` pairs (``void:propertyPartition``).
    class_partitions:
        ``(class, entity count)`` pairs (``void:classPartition``).
    """

    uri: URIRef
    endpoint_uri: URIRef
    ontologies: tuple[URIRef, ...] = ()
    uri_pattern: str | None = None
    title: str | None = None
    triple_count: int | None = None
    property_partitions: tuple[tuple[URIRef, int], ...] = ()
    class_partitions: tuple[tuple[URIRef, int], ...] = ()

    # ------------------------------------------------------------------ #
    # Vocabulary statistics
    # ------------------------------------------------------------------ #
    @property
    def advertises_vocabulary(self) -> bool:
        """Whether the description carries per-predicate partitions."""
        return bool(self.property_partitions)

    def predicates(self) -> frozenset[URIRef]:
        """Predicates the dataset advertises (empty = not advertised)."""
        return frozenset(predicate for predicate, _ in self.property_partitions)

    def classes(self) -> frozenset[URIRef]:
        """``rdf:type`` classes the dataset advertises."""
        return frozenset(cls for cls, _ in self.class_partitions)

    def predicate_count(self, predicate: URIRef) -> int | None:
        """Advertised triple count for ``predicate`` (``None`` = unknown)."""
        for candidate, count in self.property_partitions:
            if candidate == predicate:
                return count
        return None

    def with_statistics(self, graph) -> DatasetDescription:
        """A copy whose partitions/size reflect ``graph``'s live statistics.

        Reads the per-predicate and per-class counters the graph maintains
        incrementally (:attr:`repro.rdf.Graph.stats`), so refreshing after
        mutations never rescans the data.
        """
        stats = graph.stats
        properties = tuple(
            (predicate, count)
            for predicate, count in sorted(
                stats.predicate_counts.items(), key=lambda item: str(item[0])
            )
            if isinstance(predicate, URIRef)
        )
        classes = tuple(
            (cls, count)
            for cls, count in sorted(
                stats.class_counts.items(), key=lambda item: str(item[0])
            )
            if isinstance(cls, URIRef)
        )
        return replace(
            self,
            triple_count=len(graph),
            property_partitions=properties,
            class_partitions=classes,
        )

    # ------------------------------------------------------------------ #
    # RDF encoding
    # ------------------------------------------------------------------ #
    def to_triples(self) -> list[Triple]:
        """The voiD triples describing this dataset."""
        triples = [
            Triple(self.uri, RDF.type, VOID.Dataset),
            Triple(self.uri, VOID.sparqlEndpoint, self.endpoint_uri),
        ]
        for ontology in self.ontologies:
            triples.append(Triple(self.uri, VOID.vocabulary, ontology))
        if self.uri_pattern is not None:
            triples.append(Triple(self.uri, URI_PATTERN_PROPERTY, Literal(self.uri_pattern)))
        if self.title is not None:
            triples.append(Triple(self.uri, DC.title, Literal(self.title)))
        if self.triple_count is not None:
            triples.append(
                Triple(self.uri, VOID.triples, Literal(self.triple_count, datatype=XSD.integer))
            )
        for predicate, count in self.property_partitions:
            partition = fresh_bnode("pp")
            triples.append(Triple(self.uri, VOID.propertyPartition, partition))
            triples.append(Triple(partition, VOID.property, predicate))
            triples.append(Triple(partition, VOID.triples, Literal(count, datatype=XSD.integer)))
        for cls, count in self.class_partitions:
            partition = fresh_bnode("cp")
            triples.append(Triple(self.uri, VOID.classPartition, partition))
            triples.append(Triple(partition, VOID["class"], cls))
            triples.append(Triple(partition, VOID.entities, Literal(count, datatype=XSD.integer)))
        return triples

    @classmethod
    def from_graph(cls, graph: Graph, uri: URIRef) -> DatasetDescription:
        """Read one dataset description rooted at ``uri``."""
        endpoint = graph.value(uri, VOID.sparqlEndpoint, None)
        if endpoint is None:
            raise ValueError(f"dataset {uri} has no void:sparqlEndpoint")
        ontologies = tuple(
            sorted(
                (term for term in graph.objects(uri, VOID.vocabulary) if isinstance(term, URIRef)),
                key=str,
            )
        )
        pattern_term = graph.value(uri, URI_PATTERN_PROPERTY, None)
        title_term = graph.value(uri, DC.title, None)
        count_term = graph.value(uri, VOID.triples, None)
        triple_count = None
        if isinstance(count_term, Literal):
            value = count_term.to_python()
            if isinstance(value, int):
                triple_count = value
        return cls(
            uri=uri,
            endpoint_uri=endpoint,  # type: ignore[arg-type]
            ontologies=ontologies,
            uri_pattern=pattern_term.lexical if isinstance(pattern_term, Literal) else None,
            title=title_term.lexical if isinstance(title_term, Literal) else None,
            triple_count=triple_count,
            property_partitions=cls._read_partitions(
                graph, uri, VOID.propertyPartition, VOID.property, VOID.triples
            ),
            class_partitions=cls._read_partitions(
                graph, uri, VOID.classPartition, VOID["class"], VOID.entities
            ),
        )

    @staticmethod
    def _read_partitions(
        graph: Graph,
        uri: URIRef,
        link: URIRef,
        key_property: URIRef,
        count_property: URIRef,
    ) -> tuple[tuple[URIRef, int], ...]:
        """Read ``(key, count)`` partition pairs hanging off ``link``."""
        partitions: dict[URIRef, int] = {}
        for node in graph.objects(uri, link):
            key = graph.value(node, key_property, None)
            if not isinstance(key, URIRef):
                continue
            count_term = graph.value(node, count_property, None)
            count = count_term.to_python() if isinstance(count_term, Literal) else None
            partitions[key] = count if isinstance(count, int) else 0
        return tuple(sorted(partitions.items(), key=lambda item: str(item[0])))


def descriptions_to_graph(descriptions: Iterable[DatasetDescription]) -> Graph:
    """Serialise dataset descriptions into one voiD graph."""
    graph = Graph()
    for description in descriptions:
        graph.add_all(description.to_triples())
    return graph


def descriptions_from_graph(graph: Graph) -> list[DatasetDescription]:
    """Read every ``void:Dataset`` description from a graph."""
    descriptions = []
    for uri in sorted(graph.subjects(RDF.type, VOID.Dataset), key=lambda t: t.sort_key()):
        if isinstance(uri, URIRef):
            descriptions.append(DatasetDescription.from_graph(graph, uri))
    return descriptions
