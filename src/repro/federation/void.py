"""voiD dataset descriptions (the mediator's *voiD KB* of Figure 5).

The deployed system "maintains a simple knowledge base in RDF describing
data sets, and their SPARQL endpoints, using the voiD vocabulary ... every
data set is uniquely identified within the system with an URI".
:class:`DatasetDescription` is the in-memory form of one such description
and converts to/from the voiD RDF encoding, so the registry can persist its
knowledge base exactly as the paper's system does.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Tuple

from ..rdf import (
    DC,
    Graph,
    Literal,
    RDF,
    Term,
    Triple,
    URIRef,
    VOID,
    XSD,
)

__all__ = ["DatasetDescription", "descriptions_to_graph", "descriptions_from_graph"]

#: Property linking a dataset to the regular expression of its URI space.
#: voiD has ``void:uriRegexPattern`` for exactly this purpose.
URI_PATTERN_PROPERTY = VOID.uriRegexPattern


@dataclass(frozen=True)
class DatasetDescription:
    """A voiD-style description of one dataset.

    Attributes
    ----------
    uri:
        Dataset identity (e.g. ``http://kisti.rkbexplorer.com/id/void``).
    endpoint_uri:
        The dataset's SPARQL endpoint (``void:sparqlEndpoint``).
    ontologies:
        Vocabularies the dataset adopts (``void:vocabulary``).
    uri_pattern:
        Regular expression of the instance URI space
        (``void:uriRegexPattern``) — the second argument of ``sameas``.
    title:
        Human readable name (``dc:title``).
    triple_count:
        Advertised size (``void:triples``), informational.
    """

    uri: URIRef
    endpoint_uri: URIRef
    ontologies: Tuple[URIRef, ...] = ()
    uri_pattern: Optional[str] = None
    title: Optional[str] = None
    triple_count: Optional[int] = None

    # ------------------------------------------------------------------ #
    # RDF encoding
    # ------------------------------------------------------------------ #
    def to_triples(self) -> List[Triple]:
        """The voiD triples describing this dataset."""
        triples = [
            Triple(self.uri, RDF.type, VOID.Dataset),
            Triple(self.uri, VOID.sparqlEndpoint, self.endpoint_uri),
        ]
        for ontology in self.ontologies:
            triples.append(Triple(self.uri, VOID.vocabulary, ontology))
        if self.uri_pattern is not None:
            triples.append(Triple(self.uri, URI_PATTERN_PROPERTY, Literal(self.uri_pattern)))
        if self.title is not None:
            triples.append(Triple(self.uri, DC.title, Literal(self.title)))
        if self.triple_count is not None:
            triples.append(
                Triple(self.uri, VOID.triples, Literal(self.triple_count, datatype=XSD.integer))
            )
        return triples

    @classmethod
    def from_graph(cls, graph: Graph, uri: URIRef) -> "DatasetDescription":
        """Read one dataset description rooted at ``uri``."""
        endpoint = graph.value(uri, VOID.sparqlEndpoint, None)
        if endpoint is None:
            raise ValueError(f"dataset {uri} has no void:sparqlEndpoint")
        ontologies = tuple(
            sorted(
                (term for term in graph.objects(uri, VOID.vocabulary) if isinstance(term, URIRef)),
                key=str,
            )
        )
        pattern_term = graph.value(uri, URI_PATTERN_PROPERTY, None)
        title_term = graph.value(uri, DC.title, None)
        count_term = graph.value(uri, VOID.triples, None)
        triple_count = None
        if isinstance(count_term, Literal):
            value = count_term.to_python()
            if isinstance(value, int):
                triple_count = value
        return cls(
            uri=uri,
            endpoint_uri=endpoint,  # type: ignore[arg-type]
            ontologies=ontologies,
            uri_pattern=pattern_term.lexical if isinstance(pattern_term, Literal) else None,
            title=title_term.lexical if isinstance(title_term, Literal) else None,
            triple_count=triple_count,
        )


def descriptions_to_graph(descriptions: Iterable[DatasetDescription]) -> Graph:
    """Serialise dataset descriptions into one voiD graph."""
    graph = Graph()
    for description in descriptions:
        graph.add_all(description.to_triples())
    return graph


def descriptions_from_graph(graph: Graph) -> List[DatasetDescription]:
    """Read every ``void:Dataset`` description from a graph."""
    descriptions = []
    for uri in sorted(graph.subjects(RDF.type, VOID.Dataset), key=lambda t: t.sort_key()):
        if isinstance(uri, URIRef):
            descriptions.append(DatasetDescription.from_graph(graph, uri))
    return descriptions
