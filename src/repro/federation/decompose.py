"""Federated query decomposition: source selection, exclusive groups, bound joins.

The fan-out strategy ships the *whole* rewritten query to *every*
registered endpoint and merges the answers — fine for three datasets,
wasteful at scale: every endpoint evaluates every pattern, including
endpoints that provably hold nothing relevant.  This module implements the
FedX-style alternative:

1. **Source selection** — for every triple pattern of the source query,
   decide per dataset whether the pattern's *translation* for that dataset
   can match anything there.  The decision is answered from the dataset's
   VoID vocabulary statistics (``void:propertyPartition`` /
   ``void:classPartition``, refreshed from the graph's live
   :class:`~repro.rdf.GraphStatistics` for in-process endpoints) and falls
   back to an ``ASK`` probe for patterns the statistics cannot settle.
   Decisions are cached per alignment-KB generation (a KB edit changes the
   translations, hence the decisions).
2. **Exclusive groups** — patterns whose sole relevant source coincides are
   shipped to that dataset as *one* sub-query, so the endpoint evaluates
   the group's joins locally.
3. **Bound joins** — cross-source joins run at the mediator: the rows
   produced so far are shipped to the next unit's sources in configurable
   batches, injected as ``VALUES`` blocks, so endpoints only evaluate the
   pattern against bindings that can still join (instead of shipping their
   full extension).

Decomposed execution preserves the fan-out semantics on the scenarios the
experiments cover (per-dataset URI spaces, sameAs-linked replicas): the
differential suite in ``tests/federation/test_decompose_differential.py``
and the loopback variant pin ``--strategy decompose`` to the fan-out
results on E6/E7, in-process and over HTTP.

Supported query shape: SELECT whose WHERE clause is a basic graph pattern
plus FILTERs (no OPTIONAL/UNION/nested groups, no blank nodes in patterns,
no EXISTS in filters).  Anything else falls back to fan-out — the
:class:`DecomposedPlan` records why.

Solution modifiers are applied *globally* here (standard SPARQL
semantics): ``LIMIT 10`` yields ten merged federation rows and stops
pulling bound-join batches once they are found.  The fan-out strategy
instead ships the modifiers to every endpoint and merges the per-endpoint
slices, so the two strategies can legitimately differ on LIMIT/OFFSET
queries; the differential guarantee covers modifier-free and
ORDER-BY-only queries.
"""

from __future__ import annotations

import contextvars
import time
from dataclasses import dataclass, field
from collections.abc import Iterator, Sequence
from typing import TYPE_CHECKING

from ..obs.trace import get_tracer
from ..rdf import BNode, Graph, RDF, TermDictionary, Triple, URIRef, Variable
from ..sparql import (
    AskQuery,
    Binding,
    Filter,
    GroupGraphPattern,
    InlineData,
    Prologue,
    Query,
    SelectQuery,
    TriplesBlock,
)
from ..sparql.ast import (
    BinaryExpression,
    ExistsExpression,
    Expression,
    FunctionCall,
    UnaryExpression,
)
from ..sparql.exec import (
    UNBOUND,
    Batch,
    ExecContext,
    QueryRunEvent,
    Schema,
    VecBindJoinOp,
    VecDistinctOp,
    VecFilterOp,
    VecOperator,
    VecOrderByOp,
    VecProjectOp,
    VecSliceOp,
    extend_schema,
    seed_batches,
)
from .registry import RegisteredDataset

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .federator import FederatedQueryEngine, FederatedResult

__all__ = [
    "DEFAULT_BIND_JOIN_BATCH",
    "SourceDecision",
    "PatternSources",
    "QueryUnit",
    "DecomposedPlan",
    "SourceSelector",
    "decompose_query",
    "execute_decomposed",
]

#: Default number of left rows shipped per bound-join batch.
DEFAULT_BIND_JOIN_BATCH = 32

#: Filters are evaluated at the mediator against no graph at all; only
#: EXISTS expressions would need one, and those force the fan-out fallback.
_EMPTY_GRAPH = Graph()


# --------------------------------------------------------------------------- #
# Plan data model
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class SourceDecision:
    """Why one dataset is (ir)relevant for one source-level pattern."""

    dataset_uri: URIRef
    relevant: bool
    reason: str
    #: Cardinality estimate for the pattern on this dataset (for ordering).
    estimate: float = 0.0


@dataclass
class PatternSources:
    """Source-selection outcome for one source-level triple pattern."""

    pattern: Triple
    decisions: list[SourceDecision] = field(default_factory=list)

    def relevant_uris(self) -> list[URIRef]:
        return [d.dataset_uri for d in self.decisions if d.relevant]

    def decision_for(self, uri: URIRef) -> SourceDecision | None:
        for decision in self.decisions:
            if decision.dataset_uri == uri:
                return decision
        return None


@dataclass
class QueryUnit:
    """One execution unit: a pattern group and the sources it runs on."""

    patterns: list[Triple]
    sources: list[URIRef]
    exclusive: bool = False
    #: Join variables shared with the rows produced by earlier units
    #: (filled in once the join order is fixed).
    join_variables: list[Variable] = field(default_factory=list)
    estimate: float = 0.0
    #: Rendered sub-query text per source (for EXPLAIN).
    sub_queries: dict[URIRef, str] = field(default_factory=dict)

    def variables(self) -> set[Variable]:
        result: set[Variable] = set()
        for pattern in self.patterns:
            result |= pattern.variables()
        return result


@dataclass
class DecomposedPlan:
    """The decomposer's output: ordered units plus the selection evidence."""

    units: list[QueryUnit] = field(default_factory=list)
    pattern_sources: list[PatternSources] = field(default_factory=list)
    #: Datasets excluded from the whole query, with the reason
    #: (no relevant pattern, open breaker, translation failure).
    skipped: dict[URIRef, str] = field(default_factory=dict)
    #: Set when some required pattern has no relevant source at all: the
    #: result is provably empty and no endpoint is contacted.
    empty_reason: str | None = None
    #: Set when the query shape forces the fan-out fallback.
    fallback_reason: str | None = None
    bind_join_batch: int = DEFAULT_BIND_JOIN_BATCH
    #: ASK probes issued during source selection.
    probes: int = 0
    #: Static-analysis diagnostics (local analyzer + federation analyzer),
    #: surfaced before any endpoint sees the query.
    diagnostics: list = field(default_factory=list)

    @property
    def decomposed(self) -> bool:
        return self.fallback_reason is None

    def explain(self) -> str:
        """EXPLAIN-style rendering of the decomposed plan."""
        lines = [f"decomposed federated plan (bind-join batch {self.bind_join_batch})"]
        if self.fallback_reason is not None:
            lines.append(f"  fallback to fan-out: {self.fallback_reason}")
            return "\n".join(lines)
        if self.empty_reason is not None:
            lines.append(f"  empty result: {self.empty_reason}")
            lines.append("  no endpoint is contacted")
        for index, unit in enumerate(self.units):
            kind = _unit_kind(unit)
            if index == 0:
                join = "seed scan"
            elif unit.join_variables:
                rendered = " ".join(f"?{v.name}" for v in unit.join_variables)
                join = f"bound join on ({rendered})"
            else:
                join = "cross join"
            lines.append(f"  unit {index + 1} [{kind}; {join}; est={unit.estimate:.1f}]")
            for pattern in unit.patterns:
                lines.append(f"    pattern {_pattern_text(pattern)}")
            for uri in unit.sources:
                lines.append(f"    source {uri}")
                sub_query = unit.sub_queries.get(uri)
                if sub_query:
                    for sub_line in sub_query.strip().splitlines():
                        lines.append(f"      | {sub_line}")
        if self.skipped:
            for uri in sorted(self.skipped, key=str):
                lines.append(f"  skipped {uri}: {self.skipped[uri]}")
        if self.probes:
            lines.append(f"  ASK probes issued: {self.probes}")
        return "\n".join(lines)


def _pattern_text(pattern: Triple) -> str:
    return " ".join(term.n3() for term in pattern)


def _unit_kind(unit: QueryUnit) -> str:
    """Human label for a unit: only multi-pattern sole-source units are
    *groups* in the FedX sense; a lone pattern is just exclusive."""
    if unit.exclusive and len(unit.patterns) > 1:
        return "exclusive group"
    if unit.exclusive:
        return "exclusive pattern"
    return "pattern"


# --------------------------------------------------------------------------- #
# Expression inspection (what the mediator can evaluate itself)
# --------------------------------------------------------------------------- #
def _expression_mediator_safe(expression: Expression) -> bool:
    """Whether a FILTER can run at the mediator (no EXISTS subqueries)."""
    if isinstance(expression, ExistsExpression):
        return False
    if isinstance(expression, BinaryExpression):
        return _expression_mediator_safe(expression.left) and _expression_mediator_safe(
            expression.right
        )
    if isinstance(expression, UnaryExpression):
        return _expression_mediator_safe(expression.operand)
    if isinstance(expression, FunctionCall):
        return all(_expression_mediator_safe(arg) for arg in expression.arguments)
    return True


# --------------------------------------------------------------------------- #
# Source selection
# --------------------------------------------------------------------------- #
class SourceSelector:
    """Per-pattern, per-dataset relevance decisions.

    Decisions are derived from (in order of preference)

    1. the endpoint's live graph statistics (in-process endpoints),
    2. the dataset's advertised VoID partitions (remote endpoints),
    3. an ``ASK`` probe of the translated pattern (unknown vocabulary),
       falling back to *broadcast* (assume relevant) when the probe itself
       fails or times out — never losing answers to a flaky probe.

    The cache is keyed by the alignment KB generation (translations change
    with the KB) and, for in-process endpoints, the graph version (the
    vocabulary changes with the data).
    """

    def __init__(
        self,
        engine: FederatedQueryEngine,
        ask_probes: bool = True,
        probe_timeout: float | None = 2.0,
    ) -> None:
        self._engine = engine
        self.ask_probes = ask_probes
        self.probe_timeout = probe_timeout
        self._cache: dict[tuple, SourceDecision] = {}
        self._cache_generation: int | None = None
        #: Probe traffic of the most recent selection round, per dataset:
        #: ``uri -> (requests, attempts, last_error)``.
        self.probe_traffic: dict[URIRef, list[int]] = {}
        self.probes_issued = 0

    # -- cache ----------------------------------------------------------- #
    def _check_generation(self) -> None:
        generation = self._engine.mediator.alignment_store.generation
        if generation != self._cache_generation:
            self._cache.clear()
            self._cache_generation = generation

    def _cache_key(
        self,
        pattern: Triple,
        target: RegisteredDataset,
        source_ontology: URIRef | None,
        source_dataset: URIRef | None,
        mode: str,
    ) -> tuple:
        graph = getattr(target.endpoint, "graph", None)
        version = getattr(graph, "version", -1)
        return (
            target.uri,
            version,
            _pattern_text(pattern),
            source_ontology,
            source_dataset == target.uri,
            mode,
            # A decision taken without probing ("broadcast") must not
            # shadow the probed decision once probes are (re-)enabled.
            self.ask_probes,
        )

    # -- vocabulary ------------------------------------------------------ #
    @staticmethod
    def _vocabulary(
        target: RegisteredDataset,
    ) -> tuple[frozenset | None, frozenset | None]:
        """``(predicates, classes)`` the dataset can serve; ``None`` = unknown."""
        graph = getattr(target.endpoint, "graph", None)
        if graph is not None and hasattr(graph, "stats"):
            stats = graph.stats
            predicates = frozenset(
                term for term in stats.predicate_counts if isinstance(term, URIRef)
            )
            classes = frozenset(
                term for term in stats.class_counts if isinstance(term, URIRef)
            )
            return predicates, classes
        description = target.description
        if description.advertises_vocabulary:
            predicates = description.predicates()
            if RDF.type in predicates and not description.class_partitions:
                classes: frozenset | None = None
            else:
                classes = description.classes()
            return predicates, classes
        return None, None

    @staticmethod
    def _estimate(target: RegisteredDataset, patterns: Sequence[Triple]) -> float:
        """Cardinality estimate for a translated pattern group on a dataset."""
        graph = getattr(target.endpoint, "graph", None)
        estimates: list[float] = []
        for pattern in patterns:
            if graph is not None and hasattr(graph, "cardinality"):
                estimates.append(
                    float(graph.cardinality(pattern.subject, pattern.predicate, pattern.object))
                )
            elif isinstance(pattern.predicate, URIRef):
                advertised = target.description.predicate_count(pattern.predicate)
                if advertised is not None:
                    estimates.append(float(advertised))
        if estimates:
            return min(estimates)
        if target.description.triple_count is not None:
            return float(target.description.triple_count)
        return 1000.0

    # -- translation ----------------------------------------------------- #
    def translate_patterns(
        self,
        patterns: Sequence[Triple],
        target: RegisteredDataset,
        source_ontology: URIRef | None,
        source_dataset: URIRef | None,
        mode: str,
    ) -> list[Triple]:
        """The dataset-local form of a source pattern group."""
        if source_dataset is not None and target.uri == source_dataset:
            return list(patterns)
        query = SelectQuery(
            Prologue(), [], GroupGraphPattern([TriplesBlock(list(patterns))])
        )
        mediation = self._engine.mediator.translate(
            query, target.uri, source_ontology, mode
        )
        return mediation.rewritten_query.all_triple_patterns()

    # -- decisions ------------------------------------------------------- #
    def decide(
        self,
        pattern: Triple,
        target: RegisteredDataset,
        source_ontology: URIRef | None,
        source_dataset: URIRef | None,
        mode: str,
    ) -> SourceDecision:
        """Is ``pattern`` (translated for ``target``) answerable there?"""
        self._check_generation()
        key = self._cache_key(pattern, target, source_ontology, source_dataset, mode)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        decision = self._decide_uncached(
            pattern, target, source_ontology, source_dataset, mode
        )
        self._cache[key] = decision
        return decision

    def _decide_uncached(
        self,
        pattern: Triple,
        target: RegisteredDataset,
        source_ontology: URIRef | None,
        source_dataset: URIRef | None,
        mode: str,
    ) -> SourceDecision:
        try:
            translated = self.translate_patterns(
                [pattern], target, source_ontology, source_dataset, mode
            )
        except (KeyError, ValueError) as exc:
            # Fan-out reports the same failure as a zero-row dataset error,
            # so excluding the dataset preserves the merged result.
            return SourceDecision(target.uri, False, f"translation failed: {exc}")

        predicates, classes = self._vocabulary(target)
        unknown: list[Triple] = []
        for candidate in translated:
            predicate = candidate.predicate
            if isinstance(predicate, URIRef) and predicates is not None:
                if predicate not in predicates:
                    return SourceDecision(
                        target.uri, False,
                        f"vocabulary: {predicate.n3()} not in dataset",
                    )
                if (
                    predicate == RDF.type
                    and isinstance(candidate.object, URIRef)
                    and classes is not None
                    and candidate.object not in classes
                ):
                    return SourceDecision(
                        target.uri, False,
                        f"class: {candidate.object.n3()} not in dataset",
                    )
            elif isinstance(predicate, URIRef) and predicates is None:
                unknown.append(candidate)
            else:
                # Variable predicate: statistics cannot refute it.
                unknown.append(candidate)
        estimate = self._estimate(target, translated)
        if not unknown:
            return SourceDecision(target.uri, True, "vocabulary", estimate)
        if not self.ask_probes:
            return SourceDecision(target.uri, True, "broadcast (probes disabled)", estimate)
        return self._probe(target, translated, estimate)

    def _probe(
        self,
        target: RegisteredDataset,
        translated: Sequence[Triple],
        estimate: float,
    ) -> SourceDecision:
        """ASK the endpoint whether the translated group matches anything.

        Probes run under the dataset's policy and circuit breaker through
        the engine's shared execution primitive; a probe that fails or
        times out falls back to *broadcast* for the pattern (the endpoint
        will be queried normally) rather than silently dropping answers.
        """
        probe = AskQuery(
            Prologue(), GroupGraphPattern([TriplesBlock(list(translated))])
        )
        self.probes_issued += 1
        traffic = self.probe_traffic.setdefault(target.uri, [0, 0])
        traffic[0] += 1
        result, attempts, error = self._engine.call_endpoint(
            target, probe, kind="ask", timeout=self.probe_timeout
        )
        traffic[1] += attempts
        if error is not None or result is None:
            return SourceDecision(
                target.uri, True, f"broadcast (probe failed: {error})", estimate
            )
        if bool(result):
            return SourceDecision(target.uri, True, "ask-probe", estimate)
        return SourceDecision(target.uri, False, "ask-probe: no match")


# --------------------------------------------------------------------------- #
# Decomposition
# --------------------------------------------------------------------------- #
def decompose_query(
    engine: FederatedQueryEngine,
    query: Query,
    targets: Sequence[RegisteredDataset],
    source_ontology: URIRef | None = None,
    source_dataset: URIRef | None = None,
    mode: str = "bgp",
    selector: SourceSelector | None = None,
    bind_join_batch: int = DEFAULT_BIND_JOIN_BATCH,
    render_sub_queries: bool = True,
) -> DecomposedPlan:
    """Build the decomposed plan for ``query`` over ``targets``.

    Never executes the query itself (ASK probes may contact endpoints when
    the selector is configured for them).
    """
    from ..sparql.analysis import analyze_federation, analyze_query

    plan = DecomposedPlan(bind_join_batch=bind_join_batch)
    if selector is None:
        selector = SourceSelector(engine)

    # Local static analysis first: a query the analyzer proves empty
    # (unsatisfiable FILTER, empty VALUES, ...) never reaches source
    # selection — zero ASK probes, zero endpoint requests.
    local = analyze_query(query)
    plan.diagnostics = list(local.diagnostics)
    if local.provably_empty:
        plan.empty_reason = local.empty_reason
        return plan

    # Probe traffic is attributed to the call that triggers the probes;
    # whatever an earlier explain/plan left behind is not this call's.
    selector.probe_traffic.clear()

    usable: list[RegisteredDataset] = []
    for target in targets:
        state = engine.registry.breaker_for(target.uri).state
        if state == "open":
            plan.skipped[target.uri] = "circuit open"
            continue
        usable.append(target)

    federation = analyze_federation(
        query, selector, usable, source_ontology, source_dataset, mode
    )
    plan.diagnostics.extend(federation.diagnostics)
    plan.pattern_sources = federation.pattern_sources
    plan.probes = federation.probes
    if federation.fallback_reason is not None:
        plan.fallback_reason = federation.fallback_reason
        return plan
    plan.empty_reason = federation.empty_reason

    for target in usable:
        if not any(
            sources.decision_for(target.uri) is not None
            and sources.decision_for(target.uri).relevant  # type: ignore[union-attr]
            for sources in plan.pattern_sources
        ):
            plan.skipped.setdefault(target.uri, "no relevant pattern")

    if plan.empty_reason is not None:
        return plan

    targets_by_uri = {target.uri: target for target in usable}
    units = _build_units(plan.pattern_sources)
    plan.units = _order_units(units, targets_by_uri, plan.pattern_sources)

    if render_sub_queries:
        bound: set[Variable] = set()
        for unit in plan.units:
            unit.join_variables = sorted(unit.variables() & bound, key=str)
            bound |= unit.variables()
            for uri in unit.sources:
                try:
                    executable = _unit_query(
                        engine, unit, targets_by_uri[uri],
                        source_ontology, source_dataset, mode, selector,
                    )
                except (KeyError, ValueError) as exc:
                    unit.sub_queries[uri] = f"error: {exc}"
                    continue
                if unit.join_variables:
                    marker = " ".join(f"?{v.name}" for v in unit.join_variables)
                    executable.where.elements.insert(
                        0,
                        InlineData(list(unit.join_variables), []),
                    )
                    unit.sub_queries[uri] = executable.serialize().replace(
                        f"VALUES ({marker}) {{\n  }}",
                        f"VALUES ({marker}) {{ ...bound-join batch... }}",
                    )
                else:
                    unit.sub_queries[uri] = executable.serialize()
    return plan


def _supported_shape(
    query: Query,
) -> tuple[list[Triple], list[Filter], str | None]:
    """``(patterns, filters, fallback_reason)`` for the query's WHERE clause."""
    if not isinstance(query, SelectQuery):
        return [], [], f"unsupported query form: {type(query).__name__}"
    patterns: list[Triple] = []
    filters: list[Filter] = []
    for element in query.where.elements:
        if isinstance(element, TriplesBlock):
            patterns.extend(element.patterns)
        elif isinstance(element, Filter):
            if not _expression_mediator_safe(element.expression):
                return [], [], "FILTER contains EXISTS"
            filters.append(element)
        else:
            return [], [], f"unsupported pattern element: {type(element).__name__}"
    if not patterns:
        return [], [], "query has no triple patterns"
    for pattern in patterns:
        if any(isinstance(term, BNode) for term in pattern):
            return [], [], "blank nodes in patterns are query-scoped"
    return patterns, filters, None


def _build_units(pattern_sources: Sequence[PatternSources]) -> list[QueryUnit]:
    """Group exclusive (single-source) patterns per dataset; rest stand alone."""
    exclusive: dict[URIRef, QueryUnit] = {}
    units: list[QueryUnit] = []
    for sources in pattern_sources:
        relevant = sources.relevant_uris()
        if len(relevant) == 1:
            unit = exclusive.get(relevant[0])
            if unit is None:
                unit = QueryUnit([], [relevant[0]], exclusive=True)
                exclusive[relevant[0]] = unit
                units.append(unit)
            unit.patterns.append(sources.pattern)
        else:
            units.append(QueryUnit([sources.pattern], list(relevant)))
    return units


def _order_units(
    units: list[QueryUnit],
    targets_by_uri: dict[URIRef, RegisteredDataset],
    pattern_sources: Sequence[PatternSources],
) -> list[QueryUnit]:
    """Greedy deterministic join order: cheapest first, stay connected."""
    estimates: dict[URIRef, dict[str, float]] = {}
    for sources in pattern_sources:
        for decision in sources.decisions:
            if decision.relevant:
                estimates.setdefault(decision.dataset_uri, {})[
                    _pattern_text(sources.pattern)
                ] = decision.estimate

    for unit in units:
        total = 0.0
        for uri in unit.sources:
            per_pattern = [
                estimates.get(uri, {}).get(_pattern_text(pattern), 1000.0)
                for pattern in unit.patterns
            ]
            total += min(per_pattern) if per_pattern else 0.0
        unit.estimate = total

    def sort_key(unit: QueryUnit) -> tuple:
        return (unit.estimate, " | ".join(sorted(_pattern_text(p) for p in unit.patterns)))

    remaining = list(units)
    ordered: list[QueryUnit] = []
    bound: set[Variable] = set()
    while remaining:
        connected = [unit for unit in remaining if unit.variables() & bound]
        pool = connected if connected else remaining
        best = min(pool, key=sort_key)
        remaining.remove(best)
        ordered.append(best)
        bound |= best.variables()
    return ordered


def _unit_query(
    engine: FederatedQueryEngine,
    unit: QueryUnit,
    target: RegisteredDataset,
    source_ontology: URIRef | None,
    source_dataset: URIRef | None,
    mode: str,
    selector: SourceSelector,
) -> SelectQuery:
    """The executable sub-query shipping ``unit`` to ``target``.

    Projects the unit's *source-level* variables: variables introduced by
    the translation (e.g. KISTI's CreatorInfo hop) are existential per
    dataset and must not leak into the mediator-side join.
    """
    translated = selector.translate_patterns(
        unit.patterns, target, source_ontology, source_dataset, mode
    )
    projection = sorted(unit.variables(), key=str)
    return SelectQuery(
        Prologue(),
        projection,
        GroupGraphPattern([TriplesBlock(list(translated))]),
    )


# --------------------------------------------------------------------------- #
# Execution
# --------------------------------------------------------------------------- #
class _Traffic:
    """Per-dataset accounting for decomposed execution."""

    __slots__ = ("requests", "attempts", "rows", "errors")

    def __init__(self) -> None:
        self.requests = 0
        self.attempts = 0
        self.rows = 0
        self.errors: list[str] = []


def execute_decomposed(
    engine: FederatedQueryEngine,
    query: SelectQuery,
    targets: Sequence[RegisteredDataset],
    source_ontology: URIRef | None,
    source_dataset: URIRef | None,
    mode: str,
    canonical_pattern: str | None,
    selector: SourceSelector,
    bind_join_batch: int = DEFAULT_BIND_JOIN_BATCH,
) -> FederatedResult:
    """Execute ``query`` with the decompose strategy.

    Falls back to the engine's fan-out path when the plan says so.  The
    result carries the plan under :attr:`FederatedResult.decomposition`.
    """
    from .federator import DatasetResult, FederatedResult

    started = time.perf_counter()
    with get_tracer().start_span(
        "planner.decompose", {"layer": "planner", "strategy": "decompose"}
    ) as plan_span:
        plan = decompose_query(
            engine, query, targets, source_ontology, source_dataset, mode,
            selector=selector, bind_join_batch=bind_join_batch,
            render_sub_queries=False,
        )
        if plan_span.recording:
            plan_span.set_attribute("units", len(plan.units))
            plan_span.set_attribute("decomposed", plan.decomposed)
            if plan.fallback_reason:
                plan_span.set_attribute("fallback_reason", plan.fallback_reason)
    if not plan.decomposed:
        outcome = engine.execute(
            query,
            source_ontology=source_ontology,
            source_dataset=source_dataset,
            mode=mode,
            datasets=[target.uri for target in targets],
            canonical_pattern=canonical_pattern,
            strategy="fanout",
        )
        outcome.strategy = "decompose"
        outcome.decomposition = plan
        return outcome

    traffic: dict[URIRef, _Traffic] = {target.uri: _Traffic() for target in targets}
    for uri, (requests, attempts) in selector.probe_traffic.items():
        if uri in traffic:
            entry = traffic[uri]
            entry.requests += requests
            entry.attempts += attempts
    selector.probe_traffic.clear()

    variables = engine._result_variables(query)
    if canonical_pattern is None and source_dataset is not None:
        if source_dataset in engine.registry:
            canonical_pattern = engine.registry.get(source_dataset).uri_pattern

    merged: list[Binding] = []
    run_event: QueryRunEvent | None = None
    if plan.empty_reason is None:
        targets_by_uri = {target.uri: target for target in targets}
        executor = _PlanExecutor(
            engine, plan, targets_by_uri, source_ontology, source_dataset,
            mode, selector, traffic,
        )
        merged = executor.execute(query, variables, canonical_pattern)
        run_event = executor.run_event(query)
        tracer = get_tracer()
        if tracer.enabled and executor.root is not None:
            # The mediator pipeline's hot loop carries no tracing; its
            # operator spans are synthesized from the recorded stats.
            tracer.add_operator_spans(
                executor.root.operator_stats(), "decompose", executor._elapsed
            )

    per_dataset: list[DatasetResult] = []
    for target in targets:
        entry = traffic[target.uri]
        error = "; ".join(entry.errors) if entry.errors else None
        rows_shipped: int | None = entry.rows
        if plan.skipped.get(target.uri) == "circuit open":
            # Not being contacted because the breaker refuses is an outage,
            # exactly as the fan-out strategy reports it — not a success.
            error = error or f"circuit open for {target.uri}"
            rows_shipped = None
        per_dataset.append(
            DatasetResult(
                dataset_uri=target.uri,
                mediation=None,
                result=None,
                error=error,
                attempts=entry.attempts,
                requests=entry.requests,
                rows_shipped=rows_shipped,
            )
        )

    outcome = FederatedResult(
        variables=list(variables),
        per_dataset=per_dataset,
        merged_bindings=merged,
        strategy="decompose",
        decomposition=plan,
    )
    outcome.elapsed = time.perf_counter() - started
    if run_event is not None:
        run_event.elapsed = outcome.elapsed
        outcome.run_event = run_event
    return outcome


class _VecUnitOp(VecOperator):
    """One decomposed unit as a batched operator at the mediator.

    With join variables, left rows are shipped to the unit's sources in
    ``bind_join_batch``-row ``VALUES`` blocks and merged back by interned
    key tuples; without them the unit is fetched once per execution and
    cross-joined.  Fetched terms are interned into the mediator's own term
    dictionary, so the merge is integer-tuple work like every other join.
    """

    span_name = "federation.unit"

    def __init__(
        self,
        ctx: ExecContext,
        in_schema: Schema,
        unit: QueryUnit,
        executor: _PlanExecutor,
    ) -> None:
        super().__init__(ctx)
        self.unit = unit
        self._executor = executor
        self.in_schema = in_schema
        #: Matches the projection order of :func:`_unit_query`.
        self._unit_vars = sorted(unit.variables(), key=str)
        self.schema = extend_schema(in_schema, self._unit_vars)
        self._join_vars = list(unit.join_variables)
        self._appended = [
            variable for variable in self._unit_vars if variable not in set(in_schema)
        ]
        in_positions = {v: i for i, v in enumerate(in_schema)}
        self._key_cols = [in_positions[v] for v in self._join_vars]
        self.est = unit.estimate
        self._cross_cache: list[tuple] | None = None

    def reset(self) -> None:
        self._cross_cache = None
        super().reset()

    def _intern_fetched(self, fetched: Sequence[Binding]) -> list[tuple]:
        """``(key ids, appended ids)`` per fetched row."""
        intern = self.ctx.dictionary.intern
        rows = []
        for row in fetched:
            key = tuple(
                intern(term) if (term := row.get_term(v)) is not None else UNBOUND
                for v in self._join_vars
            )
            appended = tuple(
                intern(term) if (term := row.get_term(v)) is not None else UNBOUND
                for v in self._appended
            )
            rows.append((key, appended))
        return rows

    def _run(self, batches: Iterator[Batch]) -> Iterator[Batch]:
        if not self._join_vars:
            yield from self._cross_join(batches)
            return
        yield from self._bound_join(batches)

    def _cross_join(self, batches: Iterator[Batch]) -> Iterator[Batch]:
        """No shared variables: fetch the unit once, cross with the input."""
        schema = self.schema
        for batch in batches:
            if not batch.rows:
                yield Batch(schema, [])
                continue
            if self._cross_cache is None:
                fetched = self._executor._unit_rows(self.unit, None)
                self._cross_cache = [
                    appended for _, appended in self._intern_fetched(fetched)
                ]
            out = [
                row + appended
                for row in batch.rows
                for appended in self._cross_cache
            ]
            yield Batch(schema, out)

    def _bound_join(self, batches: Iterator[Batch]) -> Iterator[Batch]:
        """Ship left rows in batches, injected as a VALUES block."""
        batch_size = max(1, self._executor.bind_join_batch)
        terms = self.ctx.dictionary.terms
        join_vars = self._join_vars
        key_cols = self._key_cols
        schema = self.schema

        def flush(chunk: list[tuple]) -> Batch:
            by_key: dict[tuple, list[tuple]] = {}
            for row in chunk:
                key = tuple(row[index] for index in key_cols)
                by_key.setdefault(key, []).append(row)
            decoded = {
                key: tuple(terms[value] if value else None for value in key)
                for key in by_key
            }
            inline = InlineData(
                list(join_vars),
                sorted(
                    decoded.values(),
                    key=lambda key: tuple(str(term) for term in key),
                ),
            )
            out: list[tuple] = []
            for fetched_key, appended in self._intern_fetched(
                self._executor._unit_rows(self.unit, inline)
            ):
                for left in by_key.get(fetched_key, ()):
                    out.append(left + appended)
            return Batch(schema, out)

        chunk: list[tuple] = []
        for batch in batches:
            for row in batch.rows:
                chunk.append(row)
                if len(chunk) >= batch_size:
                    yield flush(chunk)
                    chunk = []
        if chunk:
            yield flush(chunk)

    def describe(self) -> str:
        kind = _unit_kind(self.unit)
        if self._join_vars:
            rendered = " ".join(f"?{v.name}" for v in self._join_vars)
            join = f"bound join on ({rendered})"
        else:
            join = "cross join" if self.in_schema else "seed scan"
        sources = ", ".join(str(uri) for uri in self.unit.sources)
        return f"Unit [{kind}; {join}; est={self.est:.1f}] <- {sources}"


class _VecCanonicalOp(VecOperator):
    """Collapse URIs onto their canonical representative (id -> id cache)."""

    span_name = "federation.canonicalise"

    def __init__(
        self,
        ctx: ExecContext,
        child: VecOperator,
        engine: FederatedQueryEngine,
        canonical_pattern: str | None,
    ) -> None:
        super().__init__(ctx)
        self._child = child
        self._engine = engine
        self._pattern = canonical_pattern
        self.schema = child.schema
        self.est = child.est
        self._cache: dict[int, int] = {}

    def _canonical(self, value: int) -> int:
        mapped = self._cache.get(value)
        if mapped is None:
            term = self.ctx.dictionary.terms[value]
            if isinstance(term, URIRef):
                mapped = self.ctx.dictionary.intern(
                    self._engine._canonical_uri(term, self._pattern)
                )
            else:
                mapped = value
            self._cache[value] = mapped
        return mapped

    def _run(self, batches: Iterator[Batch]) -> Iterator[Batch]:
        canonical = self._canonical
        schema = self.schema
        for batch in self._child.execute(batches):
            rows = [
                tuple(canonical(value) if value else UNBOUND for value in row)
                for row in batch.rows
            ]
            yield Batch(schema, rows)

    def children(self) -> Sequence[VecOperator]:
        return (self._child,)

    def describe(self) -> str:
        return "Canonicalise URIs"


class _PlanExecutor:
    """Executes a decomposed plan on the batched operator layer.

    The mediator-side pipeline — unit joins, URI canonicalisation, the
    source-level FILTERs and the solution modifiers — is the same operator
    set the local engines use (:mod:`repro.sparql.exec`), running over a
    mediator-private term dictionary against no graph at all.  The
    observable behaviour mirrors the fan-out pipeline: canonicalise before
    filtering, always deduplicate the projected rows, and stop pulling
    bound-join batches once LIMIT is satisfied.
    """

    def __init__(
        self,
        engine: FederatedQueryEngine,
        plan: DecomposedPlan,
        targets_by_uri: dict[URIRef, RegisteredDataset],
        source_ontology: URIRef | None,
        source_dataset: URIRef | None,
        mode: str,
        selector: SourceSelector,
        traffic: dict[URIRef, _Traffic],
    ) -> None:
        self._engine = engine
        self._plan = plan
        self._targets = targets_by_uri
        self._source_ontology = source_ontology
        self._source_dataset = source_dataset
        self._mode = mode
        self._selector = selector
        self._traffic = traffic
        self.bind_join_batch = plan.bind_join_batch
        self.root: VecOperator | None = None
        self.ctx: ExecContext | None = None
        self._elapsed = 0.0

    # -- sub-query dispatch ------------------------------------------------ #
    def _fetch(
        self,
        unit: QueryUnit,
        target: RegisteredDataset,
        inline: InlineData | None,
    ) -> list[Binding]:
        """Run one sub-query on one source, under its policy and breaker."""
        entry = self._traffic[target.uri]
        try:
            executable = _unit_query(
                self._engine, unit, target,
                self._source_ontology, self._source_dataset, self._mode,
                self._selector,
            )
        except (KeyError, ValueError) as exc:
            entry.errors.append(str(exc))
            return []
        if inline is not None:
            executable.where.elements.insert(0, inline)
        entry.requests += 1
        result, attempts, error = self._engine.call_endpoint(target, executable)
        entry.attempts += attempts
        if error is not None or result is None:
            entry.errors.append(error or "endpoint returned nothing")
            return []
        entry.rows += len(result)
        return list(result)

    def _unit_rows(self, unit: QueryUnit, inline: InlineData | None) -> list[Binding]:
        """One round of a unit: every source answers, results in source order.

        Sources are independent, so (like the fan-out path) they are
        queried concurrently when the engine is parallel — a bound-join
        batch over k high-latency endpoints costs one round trip, not k.
        """
        sources = unit.sources
        if len(sources) > 1 and self._engine.parallel:
            from concurrent.futures import ThreadPoolExecutor

            with ThreadPoolExecutor(
                max_workers=min(len(sources), self._engine.max_workers),
                thread_name_prefix="decompose",
            ) as pool:
                # copy_context() per task: per-source endpoint spans keep
                # the submitting thread's span (the request) as parent.
                futures = [
                    pool.submit(
                        contextvars.copy_context().run,
                        self._fetch, unit, self._targets[uri], inline,
                    )
                    for uri in sources
                ]
                per_source = [future.result() for future in futures]
        else:
            per_source = [
                self._fetch(unit, self._targets[uri], inline) for uri in sources
            ]
        rows: list[Binding] = []
        for fetched in per_source:
            rows.extend(fetched)
        return rows

    # -- pipeline compilation ---------------------------------------------- #
    def compile(
        self,
        query: SelectQuery,
        variables: Sequence[Variable],
        canonical_pattern: str | None,
    ) -> VecOperator:
        """Build the mediator pipeline: units -> canonicalise -> FILTER ->
        ORDER BY -> project -> DISTINCT -> OFFSET/LIMIT."""
        ctx = ExecContext(_EMPTY_GRAPH, dictionary=TermDictionary())
        root: VecOperator | None = None
        schema: Schema = ()
        bound: set[Variable] = set()
        for unit in self._plan.units:
            unit.join_variables = sorted(unit.variables() & bound, key=str)
            bound |= unit.variables()
            op = _VecUnitOp(ctx, schema, unit, self)
            root = op if root is None else VecBindJoinOp(ctx, root, op)
            schema = op.schema
        if root is None:  # pragma: no cover - plans always carry units
            raise ValueError("decomposed plan has no units to execute")
        root = _VecCanonicalOp(ctx, root, self._engine, canonical_pattern)
        filters = [
            element.expression
            for element in query.where.elements
            if isinstance(element, Filter)
        ]
        if filters:
            root = VecFilterOp(ctx, root, filters, graph=_EMPTY_GRAPH)
        modifiers = query.modifiers
        if modifiers.order_by:
            root = VecOrderByOp(ctx, root, modifiers.order_by, graph=_EMPTY_GRAPH)
        root = VecProjectOp(ctx, root, list(variables))
        root = VecDistinctOp(ctx, root)
        if modifiers.offset or modifiers.limit is not None:
            root = VecSliceOp(ctx, root, modifiers.offset, modifiers.limit)
        self.root = root
        self.ctx = ctx
        return root

    # -- execution ----------------------------------------------------------- #
    def execute(
        self,
        query: SelectQuery,
        variables: Sequence[Variable],
        canonical_pattern: str | None,
    ) -> list[Binding]:
        root = self.compile(query, variables, canonical_pattern)
        ctx = self.ctx
        assert ctx is not None
        root.reset()
        started = time.perf_counter()
        merged: list[Binding] = []
        for batch in root.execute(seed_batches()):
            for row in batch.rows:
                merged.append(ctx.decode_binding(batch.schema, row))
        self._elapsed = time.perf_counter() - started
        return merged

    def run_event(self, query: SelectQuery) -> QueryRunEvent:
        """The federation run event of the most recent :meth:`execute`."""
        endpoints = [
            {
                "dataset": str(uri),
                "requests": entry.requests,
                "attempts": entry.attempts,
                "rows_shipped": entry.rows,
                "errors": list(entry.errors),
            }
            for uri, entry in sorted(self._traffic.items(), key=lambda kv: str(kv[0]))
        ]
        root = self.root
        return QueryRunEvent(
            query=query.serialize() if hasattr(query, "serialize") else str(query),
            engine="decompose",
            elapsed=self._elapsed,
            rows=root.metrics.rows_out if root is not None else 0,
            operators=root.operator_stats() if root is not None else [],
            adaptivity=list(self.ctx.decisions) if self.ctx is not None else [],
            endpoints=endpoints,
            rows_shipped=sum(entry.rows for entry in self._traffic.values()),
            plan="\n".join(root.report_lines(0)) if root is not None else "",
        )
