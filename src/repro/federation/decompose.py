"""Federated query decomposition: source selection, exclusive groups, bound joins.

The fan-out strategy ships the *whole* rewritten query to *every*
registered endpoint and merges the answers — fine for three datasets,
wasteful at scale: every endpoint evaluates every pattern, including
endpoints that provably hold nothing relevant.  This module implements the
FedX-style alternative:

1. **Source selection** — for every triple pattern of the source query,
   decide per dataset whether the pattern's *translation* for that dataset
   can match anything there.  The decision is answered from the dataset's
   VoID vocabulary statistics (``void:propertyPartition`` /
   ``void:classPartition``, refreshed from the graph's live
   :class:`~repro.rdf.GraphStatistics` for in-process endpoints) and falls
   back to an ``ASK`` probe for patterns the statistics cannot settle.
   Decisions are cached per alignment-KB generation (a KB edit changes the
   translations, hence the decisions).
2. **Exclusive groups** — patterns whose sole relevant source coincides are
   shipped to that dataset as *one* sub-query, so the endpoint evaluates
   the group's joins locally.
3. **Bound joins** — cross-source joins run at the mediator: the rows
   produced so far are shipped to the next unit's sources in configurable
   batches, injected as ``VALUES`` blocks, so endpoints only evaluate the
   pattern against bindings that can still join (instead of shipping their
   full extension).

Decomposed execution preserves the fan-out semantics on the scenarios the
experiments cover (per-dataset URI spaces, sameAs-linked replicas): the
differential suite in ``tests/federation/test_decompose_differential.py``
and the loopback variant pin ``--strategy decompose`` to the fan-out
results on E6/E7, in-process and over HTTP.

Supported query shape: SELECT whose WHERE clause is a basic graph pattern
plus FILTERs (no OPTIONAL/UNION/nested groups, no blank nodes in patterns,
no EXISTS in filters).  Anything else falls back to fan-out — the
:class:`DecomposedPlan` records why.

Solution modifiers are applied *globally* here (standard SPARQL
semantics): ``LIMIT 10`` yields ten merged federation rows and stops
pulling bound-join batches once they are found.  The fan-out strategy
instead ships the modifiers to every endpoint and merges the per-endpoint
slices, so the two strategies can legitimately differ on LIMIT/OFFSET
queries; the differential guarantee covers modifier-free and
ORDER-BY-only queries.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Sequence, Set, Tuple

from ..rdf import BNode, Graph, RDF, Triple, URIRef, Variable
from ..sparql import (
    AskQuery,
    Binding,
    Filter,
    GroupGraphPattern,
    InlineData,
    Prologue,
    Query,
    SelectQuery,
    TriplesBlock,
)
from ..sparql.ast import (
    BinaryExpression,
    ExistsExpression,
    Expression,
    FunctionCall,
    UnaryExpression,
)
from ..sparql.evaluator import _order
from ..sparql.expressions import expression_satisfied
from .registry import RegisteredDataset

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .federator import FederatedQueryEngine, FederatedResult

__all__ = [
    "DEFAULT_BIND_JOIN_BATCH",
    "SourceDecision",
    "PatternSources",
    "QueryUnit",
    "DecomposedPlan",
    "SourceSelector",
    "decompose_query",
    "execute_decomposed",
]

#: Default number of left rows shipped per bound-join batch.
DEFAULT_BIND_JOIN_BATCH = 32

#: Filters are evaluated at the mediator against no graph at all; only
#: EXISTS expressions would need one, and those force the fan-out fallback.
_EMPTY_GRAPH = Graph()


# --------------------------------------------------------------------------- #
# Plan data model
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class SourceDecision:
    """Why one dataset is (ir)relevant for one source-level pattern."""

    dataset_uri: URIRef
    relevant: bool
    reason: str
    #: Cardinality estimate for the pattern on this dataset (for ordering).
    estimate: float = 0.0


@dataclass
class PatternSources:
    """Source-selection outcome for one source-level triple pattern."""

    pattern: Triple
    decisions: List[SourceDecision] = field(default_factory=list)

    def relevant_uris(self) -> List[URIRef]:
        return [d.dataset_uri for d in self.decisions if d.relevant]

    def decision_for(self, uri: URIRef) -> Optional[SourceDecision]:
        for decision in self.decisions:
            if decision.dataset_uri == uri:
                return decision
        return None


@dataclass
class QueryUnit:
    """One execution unit: a pattern group and the sources it runs on."""

    patterns: List[Triple]
    sources: List[URIRef]
    exclusive: bool = False
    #: Join variables shared with the rows produced by earlier units
    #: (filled in once the join order is fixed).
    join_variables: List[Variable] = field(default_factory=list)
    estimate: float = 0.0
    #: Rendered sub-query text per source (for EXPLAIN).
    sub_queries: Dict[URIRef, str] = field(default_factory=dict)

    def variables(self) -> Set[Variable]:
        result: Set[Variable] = set()
        for pattern in self.patterns:
            result |= pattern.variables()
        return result


@dataclass
class DecomposedPlan:
    """The decomposer's output: ordered units plus the selection evidence."""

    units: List[QueryUnit] = field(default_factory=list)
    pattern_sources: List[PatternSources] = field(default_factory=list)
    #: Datasets excluded from the whole query, with the reason
    #: (no relevant pattern, open breaker, translation failure).
    skipped: Dict[URIRef, str] = field(default_factory=dict)
    #: Set when some required pattern has no relevant source at all: the
    #: result is provably empty and no endpoint is contacted.
    empty_reason: Optional[str] = None
    #: Set when the query shape forces the fan-out fallback.
    fallback_reason: Optional[str] = None
    bind_join_batch: int = DEFAULT_BIND_JOIN_BATCH
    #: ASK probes issued during source selection.
    probes: int = 0

    @property
    def decomposed(self) -> bool:
        return self.fallback_reason is None

    def explain(self) -> str:
        """EXPLAIN-style rendering of the decomposed plan."""
        lines = [f"decomposed federated plan (bind-join batch {self.bind_join_batch})"]
        if self.fallback_reason is not None:
            lines.append(f"  fallback to fan-out: {self.fallback_reason}")
            return "\n".join(lines)
        if self.empty_reason is not None:
            lines.append(f"  empty result: {self.empty_reason}")
            lines.append("  no endpoint is contacted")
        for index, unit in enumerate(self.units):
            kind = _unit_kind(unit)
            if index == 0:
                join = "seed scan"
            elif unit.join_variables:
                rendered = " ".join(f"?{v.name}" for v in unit.join_variables)
                join = f"bound join on ({rendered})"
            else:
                join = "cross join"
            lines.append(f"  unit {index + 1} [{kind}; {join}; est={unit.estimate:.1f}]")
            for pattern in unit.patterns:
                lines.append(f"    pattern {_pattern_text(pattern)}")
            for uri in unit.sources:
                lines.append(f"    source {uri}")
                sub_query = unit.sub_queries.get(uri)
                if sub_query:
                    for sub_line in sub_query.strip().splitlines():
                        lines.append(f"      | {sub_line}")
        if self.skipped:
            for uri in sorted(self.skipped, key=str):
                lines.append(f"  skipped {uri}: {self.skipped[uri]}")
        if self.probes:
            lines.append(f"  ASK probes issued: {self.probes}")
        return "\n".join(lines)


def _pattern_text(pattern: Triple) -> str:
    return " ".join(term.n3() for term in pattern)


def _unit_kind(unit: QueryUnit) -> str:
    """Human label for a unit: only multi-pattern sole-source units are
    *groups* in the FedX sense; a lone pattern is just exclusive."""
    if unit.exclusive and len(unit.patterns) > 1:
        return "exclusive group"
    if unit.exclusive:
        return "exclusive pattern"
    return "pattern"


# --------------------------------------------------------------------------- #
# Expression inspection (what the mediator can evaluate itself)
# --------------------------------------------------------------------------- #
def _expression_mediator_safe(expression: Expression) -> bool:
    """Whether a FILTER can run at the mediator (no EXISTS subqueries)."""
    if isinstance(expression, ExistsExpression):
        return False
    if isinstance(expression, BinaryExpression):
        return _expression_mediator_safe(expression.left) and _expression_mediator_safe(
            expression.right
        )
    if isinstance(expression, UnaryExpression):
        return _expression_mediator_safe(expression.operand)
    if isinstance(expression, FunctionCall):
        return all(_expression_mediator_safe(arg) for arg in expression.arguments)
    return True


# --------------------------------------------------------------------------- #
# Source selection
# --------------------------------------------------------------------------- #
class SourceSelector:
    """Per-pattern, per-dataset relevance decisions.

    Decisions are derived from (in order of preference)

    1. the endpoint's live graph statistics (in-process endpoints),
    2. the dataset's advertised VoID partitions (remote endpoints),
    3. an ``ASK`` probe of the translated pattern (unknown vocabulary),
       falling back to *broadcast* (assume relevant) when the probe itself
       fails or times out — never losing answers to a flaky probe.

    The cache is keyed by the alignment KB generation (translations change
    with the KB) and, for in-process endpoints, the graph version (the
    vocabulary changes with the data).
    """

    def __init__(
        self,
        engine: "FederatedQueryEngine",
        ask_probes: bool = True,
        probe_timeout: Optional[float] = 2.0,
    ) -> None:
        self._engine = engine
        self.ask_probes = ask_probes
        self.probe_timeout = probe_timeout
        self._cache: Dict[tuple, SourceDecision] = {}
        self._cache_generation: Optional[int] = None
        #: Probe traffic of the most recent selection round, per dataset:
        #: ``uri -> (requests, attempts, last_error)``.
        self.probe_traffic: Dict[URIRef, List[int]] = {}
        self.probes_issued = 0

    # -- cache ----------------------------------------------------------- #
    def _check_generation(self) -> None:
        generation = self._engine.mediator.alignment_store.generation
        if generation != self._cache_generation:
            self._cache.clear()
            self._cache_generation = generation

    def _cache_key(
        self,
        pattern: Triple,
        target: RegisteredDataset,
        source_ontology: Optional[URIRef],
        source_dataset: Optional[URIRef],
        mode: str,
    ) -> tuple:
        graph = getattr(target.endpoint, "graph", None)
        version = getattr(graph, "version", -1)
        return (
            target.uri,
            version,
            _pattern_text(pattern),
            source_ontology,
            source_dataset == target.uri,
            mode,
            # A decision taken without probing ("broadcast") must not
            # shadow the probed decision once probes are (re-)enabled.
            self.ask_probes,
        )

    # -- vocabulary ------------------------------------------------------ #
    @staticmethod
    def _vocabulary(
        target: RegisteredDataset,
    ) -> Tuple[Optional[frozenset], Optional[frozenset]]:
        """``(predicates, classes)`` the dataset can serve; ``None`` = unknown."""
        graph = getattr(target.endpoint, "graph", None)
        if graph is not None and hasattr(graph, "stats"):
            stats = graph.stats
            predicates = frozenset(
                term for term in stats.predicate_counts if isinstance(term, URIRef)
            )
            classes = frozenset(
                term for term in stats.class_counts if isinstance(term, URIRef)
            )
            return predicates, classes
        description = target.description
        if description.advertises_vocabulary:
            predicates = description.predicates()
            if RDF.type in predicates and not description.class_partitions:
                classes: Optional[frozenset] = None
            else:
                classes = description.classes()
            return predicates, classes
        return None, None

    @staticmethod
    def _estimate(target: RegisteredDataset, patterns: Sequence[Triple]) -> float:
        """Cardinality estimate for a translated pattern group on a dataset."""
        graph = getattr(target.endpoint, "graph", None)
        estimates: List[float] = []
        for pattern in patterns:
            if graph is not None and hasattr(graph, "cardinality"):
                estimates.append(
                    float(graph.cardinality(pattern.subject, pattern.predicate, pattern.object))
                )
            elif isinstance(pattern.predicate, URIRef):
                advertised = target.description.predicate_count(pattern.predicate)
                if advertised is not None:
                    estimates.append(float(advertised))
        if estimates:
            return min(estimates)
        if target.description.triple_count is not None:
            return float(target.description.triple_count)
        return 1000.0

    # -- translation ----------------------------------------------------- #
    def translate_patterns(
        self,
        patterns: Sequence[Triple],
        target: RegisteredDataset,
        source_ontology: Optional[URIRef],
        source_dataset: Optional[URIRef],
        mode: str,
    ) -> List[Triple]:
        """The dataset-local form of a source pattern group."""
        if source_dataset is not None and target.uri == source_dataset:
            return list(patterns)
        query = SelectQuery(
            Prologue(), [], GroupGraphPattern([TriplesBlock(list(patterns))])
        )
        mediation = self._engine.mediator.translate(
            query, target.uri, source_ontology, mode
        )
        return mediation.rewritten_query.all_triple_patterns()

    # -- decisions ------------------------------------------------------- #
    def decide(
        self,
        pattern: Triple,
        target: RegisteredDataset,
        source_ontology: Optional[URIRef],
        source_dataset: Optional[URIRef],
        mode: str,
    ) -> SourceDecision:
        """Is ``pattern`` (translated for ``target``) answerable there?"""
        self._check_generation()
        key = self._cache_key(pattern, target, source_ontology, source_dataset, mode)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        decision = self._decide_uncached(
            pattern, target, source_ontology, source_dataset, mode
        )
        self._cache[key] = decision
        return decision

    def _decide_uncached(
        self,
        pattern: Triple,
        target: RegisteredDataset,
        source_ontology: Optional[URIRef],
        source_dataset: Optional[URIRef],
        mode: str,
    ) -> SourceDecision:
        try:
            translated = self.translate_patterns(
                [pattern], target, source_ontology, source_dataset, mode
            )
        except (KeyError, ValueError) as exc:
            # Fan-out reports the same failure as a zero-row dataset error,
            # so excluding the dataset preserves the merged result.
            return SourceDecision(target.uri, False, f"translation failed: {exc}")

        predicates, classes = self._vocabulary(target)
        unknown: List[Triple] = []
        for candidate in translated:
            predicate = candidate.predicate
            if isinstance(predicate, URIRef) and predicates is not None:
                if predicate not in predicates:
                    return SourceDecision(
                        target.uri, False,
                        f"vocabulary: {predicate.n3()} not in dataset",
                    )
                if (
                    predicate == RDF.type
                    and isinstance(candidate.object, URIRef)
                    and classes is not None
                    and candidate.object not in classes
                ):
                    return SourceDecision(
                        target.uri, False,
                        f"class: {candidate.object.n3()} not in dataset",
                    )
            elif isinstance(predicate, URIRef) and predicates is None:
                unknown.append(candidate)
            else:
                # Variable predicate: statistics cannot refute it.
                unknown.append(candidate)
        estimate = self._estimate(target, translated)
        if not unknown:
            return SourceDecision(target.uri, True, "vocabulary", estimate)
        if not self.ask_probes:
            return SourceDecision(target.uri, True, "broadcast (probes disabled)", estimate)
        return self._probe(target, translated, estimate)

    def _probe(
        self,
        target: RegisteredDataset,
        translated: Sequence[Triple],
        estimate: float,
    ) -> SourceDecision:
        """ASK the endpoint whether the translated group matches anything.

        Probes run under the dataset's policy and circuit breaker through
        the engine's shared execution primitive; a probe that fails or
        times out falls back to *broadcast* for the pattern (the endpoint
        will be queried normally) rather than silently dropping answers.
        """
        probe = AskQuery(
            Prologue(), GroupGraphPattern([TriplesBlock(list(translated))])
        )
        self.probes_issued += 1
        traffic = self.probe_traffic.setdefault(target.uri, [0, 0])
        traffic[0] += 1
        result, attempts, error = self._engine.call_endpoint(
            target, probe, kind="ask", timeout=self.probe_timeout
        )
        traffic[1] += attempts
        if error is not None or result is None:
            return SourceDecision(
                target.uri, True, f"broadcast (probe failed: {error})", estimate
            )
        if bool(result):
            return SourceDecision(target.uri, True, "ask-probe", estimate)
        return SourceDecision(target.uri, False, "ask-probe: no match")


# --------------------------------------------------------------------------- #
# Decomposition
# --------------------------------------------------------------------------- #
def decompose_query(
    engine: "FederatedQueryEngine",
    query: Query,
    targets: Sequence[RegisteredDataset],
    source_ontology: Optional[URIRef] = None,
    source_dataset: Optional[URIRef] = None,
    mode: str = "bgp",
    selector: Optional[SourceSelector] = None,
    bind_join_batch: int = DEFAULT_BIND_JOIN_BATCH,
    render_sub_queries: bool = True,
) -> DecomposedPlan:
    """Build the decomposed plan for ``query`` over ``targets``.

    Never executes the query itself (ASK probes may contact endpoints when
    the selector is configured for them).
    """
    plan = DecomposedPlan(bind_join_batch=bind_join_batch)
    if selector is None:
        selector = SourceSelector(engine)

    patterns, filters, fallback = _supported_shape(query)
    if fallback is not None:
        plan.fallback_reason = fallback
        return plan
    del filters  # filters run at the mediator; nothing to plan for them.

    # Probe traffic is attributed to the call that triggers the probes;
    # whatever an earlier explain/plan left behind is not this call's.
    selector.probe_traffic.clear()

    usable: List[RegisteredDataset] = []
    for target in targets:
        state = engine.registry.breaker_for(target.uri).state
        if state == "open":
            plan.skipped[target.uri] = "circuit open"
            continue
        usable.append(target)

    probes_before = selector.probes_issued
    for pattern in patterns:
        sources = PatternSources(pattern)
        for target in usable:
            sources.decisions.append(
                selector.decide(pattern, target, source_ontology, source_dataset, mode)
            )
        plan.pattern_sources.append(sources)
        if not sources.relevant_uris():
            plan.empty_reason = (
                f"pattern {_pattern_text(pattern)} matches no registered dataset"
            )
    plan.probes = selector.probes_issued - probes_before

    for target in usable:
        if not any(
            sources.decision_for(target.uri) is not None
            and sources.decision_for(target.uri).relevant  # type: ignore[union-attr]
            for sources in plan.pattern_sources
        ):
            plan.skipped.setdefault(target.uri, "no relevant pattern")

    if plan.empty_reason is not None:
        return plan

    targets_by_uri = {target.uri: target for target in usable}
    units = _build_units(plan.pattern_sources)
    plan.units = _order_units(units, targets_by_uri, plan.pattern_sources)

    if render_sub_queries:
        bound: Set[Variable] = set()
        for unit in plan.units:
            unit.join_variables = sorted(unit.variables() & bound, key=str)
            bound |= unit.variables()
            for uri in unit.sources:
                try:
                    executable = _unit_query(
                        engine, unit, targets_by_uri[uri],
                        source_ontology, source_dataset, mode, selector,
                    )
                except (KeyError, ValueError) as exc:
                    unit.sub_queries[uri] = f"error: {exc}"
                    continue
                if unit.join_variables:
                    marker = " ".join(f"?{v.name}" for v in unit.join_variables)
                    executable.where.elements.insert(
                        0,
                        InlineData(list(unit.join_variables), []),
                    )
                    unit.sub_queries[uri] = executable.serialize().replace(
                        f"VALUES ({marker}) {{\n  }}",
                        f"VALUES ({marker}) {{ ...bound-join batch... }}",
                    )
                else:
                    unit.sub_queries[uri] = executable.serialize()
    return plan


def _supported_shape(
    query: Query,
) -> Tuple[List[Triple], List[Filter], Optional[str]]:
    """``(patterns, filters, fallback_reason)`` for the query's WHERE clause."""
    if not isinstance(query, SelectQuery):
        return [], [], f"unsupported query form: {type(query).__name__}"
    patterns: List[Triple] = []
    filters: List[Filter] = []
    for element in query.where.elements:
        if isinstance(element, TriplesBlock):
            patterns.extend(element.patterns)
        elif isinstance(element, Filter):
            if not _expression_mediator_safe(element.expression):
                return [], [], "FILTER contains EXISTS"
            filters.append(element)
        else:
            return [], [], f"unsupported pattern element: {type(element).__name__}"
    if not patterns:
        return [], [], "query has no triple patterns"
    for pattern in patterns:
        if any(isinstance(term, BNode) for term in pattern):
            return [], [], "blank nodes in patterns are query-scoped"
    return patterns, filters, None


def _build_units(pattern_sources: Sequence[PatternSources]) -> List[QueryUnit]:
    """Group exclusive (single-source) patterns per dataset; rest stand alone."""
    exclusive: Dict[URIRef, QueryUnit] = {}
    units: List[QueryUnit] = []
    for sources in pattern_sources:
        relevant = sources.relevant_uris()
        if len(relevant) == 1:
            unit = exclusive.get(relevant[0])
            if unit is None:
                unit = QueryUnit([], [relevant[0]], exclusive=True)
                exclusive[relevant[0]] = unit
                units.append(unit)
            unit.patterns.append(sources.pattern)
        else:
            units.append(QueryUnit([sources.pattern], list(relevant)))
    return units


def _order_units(
    units: List[QueryUnit],
    targets_by_uri: Dict[URIRef, RegisteredDataset],
    pattern_sources: Sequence[PatternSources],
) -> List[QueryUnit]:
    """Greedy deterministic join order: cheapest first, stay connected."""
    estimates: Dict[URIRef, Dict[str, float]] = {}
    for sources in pattern_sources:
        for decision in sources.decisions:
            if decision.relevant:
                estimates.setdefault(decision.dataset_uri, {})[
                    _pattern_text(sources.pattern)
                ] = decision.estimate

    for unit in units:
        total = 0.0
        for uri in unit.sources:
            per_pattern = [
                estimates.get(uri, {}).get(_pattern_text(pattern), 1000.0)
                for pattern in unit.patterns
            ]
            total += min(per_pattern) if per_pattern else 0.0
        unit.estimate = total

    def sort_key(unit: QueryUnit) -> tuple:
        return (unit.estimate, " | ".join(sorted(_pattern_text(p) for p in unit.patterns)))

    remaining = list(units)
    ordered: List[QueryUnit] = []
    bound: Set[Variable] = set()
    while remaining:
        connected = [unit for unit in remaining if unit.variables() & bound]
        pool = connected if connected else remaining
        best = min(pool, key=sort_key)
        remaining.remove(best)
        ordered.append(best)
        bound |= best.variables()
    return ordered


def _unit_query(
    engine: "FederatedQueryEngine",
    unit: QueryUnit,
    target: RegisteredDataset,
    source_ontology: Optional[URIRef],
    source_dataset: Optional[URIRef],
    mode: str,
    selector: SourceSelector,
) -> SelectQuery:
    """The executable sub-query shipping ``unit`` to ``target``.

    Projects the unit's *source-level* variables: variables introduced by
    the translation (e.g. KISTI's CreatorInfo hop) are existential per
    dataset and must not leak into the mediator-side join.
    """
    translated = selector.translate_patterns(
        unit.patterns, target, source_ontology, source_dataset, mode
    )
    projection = sorted(unit.variables(), key=str)
    return SelectQuery(
        Prologue(),
        projection,
        GroupGraphPattern([TriplesBlock(list(translated))]),
    )


# --------------------------------------------------------------------------- #
# Execution
# --------------------------------------------------------------------------- #
class _Traffic:
    """Per-dataset accounting for decomposed execution."""

    __slots__ = ("requests", "attempts", "rows", "errors")

    def __init__(self) -> None:
        self.requests = 0
        self.attempts = 0
        self.rows = 0
        self.errors: List[str] = []


def execute_decomposed(
    engine: "FederatedQueryEngine",
    query: SelectQuery,
    targets: Sequence[RegisteredDataset],
    source_ontology: Optional[URIRef],
    source_dataset: Optional[URIRef],
    mode: str,
    canonical_pattern: Optional[str],
    selector: SourceSelector,
    bind_join_batch: int = DEFAULT_BIND_JOIN_BATCH,
) -> "FederatedResult":
    """Execute ``query`` with the decompose strategy.

    Falls back to the engine's fan-out path when the plan says so.  The
    result carries the plan under :attr:`FederatedResult.decomposition`.
    """
    from .federator import DatasetResult, FederatedResult

    started = time.perf_counter()
    plan = decompose_query(
        engine, query, targets, source_ontology, source_dataset, mode,
        selector=selector, bind_join_batch=bind_join_batch,
        render_sub_queries=False,
    )
    if not plan.decomposed:
        outcome = engine.execute(
            query,
            source_ontology=source_ontology,
            source_dataset=source_dataset,
            mode=mode,
            datasets=[target.uri for target in targets],
            canonical_pattern=canonical_pattern,
            strategy="fanout",
        )
        outcome.strategy = "decompose"
        outcome.decomposition = plan
        return outcome

    traffic: Dict[URIRef, _Traffic] = {target.uri: _Traffic() for target in targets}
    for uri, (requests, attempts) in selector.probe_traffic.items():
        if uri in traffic:
            entry = traffic[uri]
            entry.requests += requests
            entry.attempts += attempts
    selector.probe_traffic.clear()

    variables = engine._result_variables(query)
    if canonical_pattern is None and source_dataset is not None:
        if source_dataset in engine.registry:
            canonical_pattern = engine.registry.get(source_dataset).uri_pattern

    merged: List[Binding] = []
    if plan.empty_reason is None:
        targets_by_uri = {target.uri: target for target in targets}
        executor = _PlanExecutor(
            engine, plan, targets_by_uri, source_ontology, source_dataset,
            mode, selector, traffic,
        )
        merged = _finalise(
            executor.rows(), query, variables, canonical_pattern, engine
        )

    per_dataset: List[DatasetResult] = []
    for target in targets:
        entry = traffic[target.uri]
        error = "; ".join(entry.errors) if entry.errors else None
        rows_shipped: Optional[int] = entry.rows
        if plan.skipped.get(target.uri) == "circuit open":
            # Not being contacted because the breaker refuses is an outage,
            # exactly as the fan-out strategy reports it — not a success.
            error = error or f"circuit open for {target.uri}"
            rows_shipped = None
        per_dataset.append(
            DatasetResult(
                dataset_uri=target.uri,
                mediation=None,
                result=None,
                error=error,
                attempts=entry.attempts,
                requests=entry.requests,
                rows_shipped=rows_shipped,
            )
        )

    outcome = FederatedResult(
        variables=list(variables),
        per_dataset=per_dataset,
        merged_bindings=merged,
        strategy="decompose",
        decomposition=plan,
    )
    outcome.elapsed = time.perf_counter() - started
    return outcome


class _PlanExecutor:
    """Streams the rows of a decomposed plan (joins run at the mediator)."""

    def __init__(
        self,
        engine: "FederatedQueryEngine",
        plan: DecomposedPlan,
        targets_by_uri: Dict[URIRef, RegisteredDataset],
        source_ontology: Optional[URIRef],
        source_dataset: Optional[URIRef],
        mode: str,
        selector: SourceSelector,
        traffic: Dict[URIRef, _Traffic],
    ) -> None:
        self._engine = engine
        self._plan = plan
        self._targets = targets_by_uri
        self._source_ontology = source_ontology
        self._source_dataset = source_dataset
        self._mode = mode
        self._selector = selector
        self._traffic = traffic

    # -- sub-query dispatch ------------------------------------------------ #
    def _fetch(
        self,
        unit: QueryUnit,
        target: RegisteredDataset,
        inline: Optional[InlineData],
    ) -> List[Binding]:
        """Run one sub-query on one source, under its policy and breaker."""
        entry = self._traffic[target.uri]
        try:
            executable = _unit_query(
                self._engine, unit, target,
                self._source_ontology, self._source_dataset, self._mode,
                self._selector,
            )
        except (KeyError, ValueError) as exc:
            entry.errors.append(str(exc))
            return []
        if inline is not None:
            executable.where.elements.insert(0, inline)
        entry.requests += 1
        result, attempts, error = self._engine.call_endpoint(target, executable)
        entry.attempts += attempts
        if error is not None or result is None:
            entry.errors.append(error or "endpoint returned nothing")
            return []
        entry.rows += len(result)
        return list(result)

    # -- join pipeline ----------------------------------------------------- #
    def rows(self) -> Iterator[Binding]:
        stream: Iterator[Binding] = iter((Binding(),))
        bound: Set[Variable] = set()
        for unit in self._plan.units:
            unit.join_variables = sorted(unit.variables() & bound, key=str)
            bound |= unit.variables()
            stream = self._join_unit(unit, stream)
        return stream

    def _join_unit(
        self, unit: QueryUnit, lefts: Iterator[Binding]
    ) -> Iterator[Binding]:
        if not unit.join_variables:
            return self._cross_join(unit, lefts)
        return self._bound_join(unit, lefts)

    def _unit_rows(self, unit: QueryUnit, inline: Optional[InlineData]) -> List[Binding]:
        """One round of a unit: every source answers, results in source order.

        Sources are independent, so (like the fan-out path) they are
        queried concurrently when the engine is parallel — a bound-join
        batch over k high-latency endpoints costs one round trip, not k.
        """
        sources = unit.sources
        if len(sources) > 1 and self._engine.parallel:
            from concurrent.futures import ThreadPoolExecutor

            with ThreadPoolExecutor(
                max_workers=min(len(sources), self._engine.max_workers),
                thread_name_prefix="decompose",
            ) as pool:
                futures = [
                    pool.submit(self._fetch, unit, self._targets[uri], inline)
                    for uri in sources
                ]
                per_source = [future.result() for future in futures]
        else:
            per_source = [
                self._fetch(unit, self._targets[uri], inline) for uri in sources
            ]
        rows: List[Binding] = []
        for fetched in per_source:
            rows.extend(fetched)
        return rows

    def _cross_join(
        self, unit: QueryUnit, lefts: Iterator[Binding]
    ) -> Iterator[Binding]:
        """No shared variables: fetch the unit once, cross with the input."""
        rows: Optional[List[Binding]] = None
        for left in lefts:
            if rows is None:
                rows = self._unit_rows(unit, None)
            for row in rows:
                if left.compatible(row):
                    yield left.merge(row)

    def _bound_join(
        self, unit: QueryUnit, lefts: Iterator[Binding]
    ) -> Iterator[Binding]:
        """Ship left rows in batches, injected as a VALUES block."""
        batch_size = max(1, self._plan.bind_join_batch)
        join_variables = unit.join_variables
        while True:
            batch: List[Binding] = []
            for left in lefts:
                batch.append(left)
                if len(batch) >= batch_size:
                    break
            if not batch:
                return
            by_key: Dict[tuple, List[Binding]] = {}
            for left in batch:
                key = tuple(left.get_term(variable) for variable in join_variables)
                by_key.setdefault(key, []).append(left)
            inline = InlineData(
                list(join_variables),
                sorted(by_key, key=lambda key: tuple(str(term) for term in key)),
            )
            for row in self._unit_rows(unit, inline):
                key = tuple(row.get_term(variable) for variable in join_variables)
                for left in by_key.get(key, ()):
                    yield left.merge(row)


# --------------------------------------------------------------------------- #
# Finalisation (canonicalise, FILTER, modifiers)
# --------------------------------------------------------------------------- #
def _finalise(
    rows: Iterator[Binding],
    query: SelectQuery,
    variables: Sequence[Variable],
    canonical_pattern: Optional[str],
    engine: "FederatedQueryEngine",
) -> List[Binding]:
    """Canonicalise, filter, and apply the solution modifiers.

    Mirrors the fan-out pipeline's observable behaviour: URIs are collapsed
    onto their canonical representative *before* the source-level FILTERs
    run (fan-out ships per-dataset translated filters instead; on
    sameAs-complete scenarios the two agree), and the merged output is
    always deduplicated, exactly like the fan-out merge.  Everything
    streams unless ORDER BY forces materialisation, so LIMIT stops pulling
    bound-join batches as soon as it is satisfied.
    """
    filters = [
        element for element in query.where.elements if isinstance(element, Filter)
    ]
    modifiers = query.modifiers

    def canonical() -> Iterator[Binding]:
        for row in rows:
            data = {}
            for variable in row:
                term = row.get_term(variable)
                if isinstance(term, URIRef):
                    term = engine._canonical_uri(term, canonical_pattern)
                data[variable] = term
            candidate = Binding(data)
            if all(
                expression_satisfied(f.expression, candidate, _EMPTY_GRAPH)
                for f in filters
            ):
                yield candidate

    stream: Iterator[Binding] = canonical()
    if modifiers.order_by:
        stream = iter(_order(list(stream), modifiers.order_by, _EMPTY_GRAPH))

    def projected() -> Iterator[Binding]:
        seen: Set[frozenset] = set()
        for row in stream:
            candidate = row.project(variables)
            key = frozenset(candidate.as_dict().items())
            if key not in seen:
                seen.add(key)
                yield candidate

    result: List[Binding] = []
    offset = modifiers.offset or 0
    skipped = 0
    for row in projected():
        if skipped < offset:
            skipped += 1
            continue
        result.append(row)
        if modifiers.limit is not None and len(result) >= modifiers.limit:
            break
    return result
