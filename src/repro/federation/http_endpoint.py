"""Remote SPARQL endpoints over HTTP (the client half of the protocol).

:class:`HttpSparqlEndpoint` implements the :class:`SparqlEndpoint`
interface against a W3C SPARQL 1.1 Protocol service using only stdlib
``urllib``.  Transport and protocol failures are mapped onto the same
exception vocabulary :class:`LocalSparqlEndpoint` raises —
:class:`EndpointUnavailable` for refused connections, HTTP error statuses
and malformed bodies, :class:`EndpointTimeout` for socket timeouts — so
the federation layer's retry/backoff/circuit-breaker policies (PR 2)
apply to remote endpoints unchanged.

The client speaks the protocol's POST binding by default
(``application/x-www-form-urlencoded`` with a ``query`` parameter, which
has no URL-length ceiling) and can be switched to the GET binding.  SELECT
and ASK responses are negotiated as SPARQL results JSON; CONSTRUCT
responses as Turtle.
"""

from __future__ import annotations

import socket
import threading
import urllib.error
import urllib.parse
import urllib.request


from ..obs.trace import get_tracer
from ..rdf import Graph, URIRef
from ..sparql import AskResult, Query, ResultSet
from ..sparql.formats import (
    FormatError,
    GRAPH_MEDIA_TYPES,
    RESULT_MEDIA_TYPES,
    parse_results,
    read_graph,
)
from .endpoint import (
    EndpointError,
    EndpointStatistics,
    EndpointTimeout,
    EndpointUnavailable,
    SparqlEndpoint,
)

__all__ = ["HttpSparqlEndpoint"]

#: How much of an HTTP error body to quote in exception messages.
_ERROR_SNIPPET = 200


class HttpSparqlEndpoint(SparqlEndpoint):
    """A SPARQL endpoint reached over HTTP.

    Parameters
    ----------
    uri:
        Identity of the endpoint (the value recorded in voiD profiles and
        used by the registry's policies/breakers).
    url:
        The HTTP URL queries are sent to; defaults to ``str(uri)`` when the
        identity already is the service URL.
    name:
        Human-readable label for logs and error messages.
    timeout:
        Socket timeout in seconds for each request (``None`` = the socket
        default).  This is the transport-level guard; the federation
        layer's :class:`ExecutionPolicy` timeout still applies on top.
    method:
        ``"post"`` (default) or ``"get"`` protocol binding.
    result_format:
        Results format requested for SELECT/ASK (``json`` or ``xml``).
    graph_format:
        RDF format requested for CONSTRUCT (``turtle`` or ``ntriples``).
    """

    def __init__(
        self,
        uri: URIRef | str,
        url: str | None = None,
        name: str | None = None,
        timeout: float | None = None,
        method: str = "post",
        result_format: str = "json",
        graph_format: str = "turtle",
    ) -> None:
        if method not in ("post", "get"):
            raise ValueError(f"method must be 'post' or 'get', not {method!r}")
        if result_format not in ("json", "xml"):
            raise ValueError(f"result_format must be 'json' or 'xml', not {result_format!r}")
        if graph_format not in GRAPH_MEDIA_TYPES:
            raise ValueError(f"unsupported graph_format: {graph_format!r}")
        self.uri = URIRef(str(uri))
        self.url = url if url is not None else str(uri)
        self.name = name or self.url
        self.timeout = timeout
        self.method = method
        self.result_format = result_format
        self.graph_format = graph_format
        self.statistics = EndpointStatistics()
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # Query interface
    # ------------------------------------------------------------------ #
    def select(self, query: Query | str) -> ResultSet:
        body = self._request(query, RESULT_MEDIA_TYPES[self.result_format], "select_queries")
        result = self._parse_results(body)
        if not isinstance(result, ResultSet):
            raise EndpointError(f"endpoint {self.name} did not return SELECT results")
        return result

    def ask(self, query: Query | str) -> AskResult:
        body = self._request(query, RESULT_MEDIA_TYPES[self.result_format], "ask_queries")
        result = self._parse_results(body)
        if not isinstance(result, AskResult):
            raise EndpointError(f"endpoint {self.name} did not return an ASK result")
        return result

    def construct(self, query: Query | str) -> Graph:
        body = self._request(query, GRAPH_MEDIA_TYPES[self.graph_format], "construct_queries")
        try:
            return read_graph(body, format=self.graph_format)
        except Exception as exc:
            self._count_failure("injected_failures")
            raise EndpointError(
                f"endpoint {self.name} returned an unparseable RDF body: {exc}"
            ) from exc

    # ------------------------------------------------------------------ #
    # Transport
    # ------------------------------------------------------------------ #
    def _request(self, query: Query | str, accept: str, kind: str) -> str:
        query_text = query.serialize() if isinstance(query, Query) else str(query)
        with self._lock:
            setattr(self.statistics, kind, getattr(self.statistics, kind) + 1)
        url, data = self._encode(query_text)
        request = urllib.request.Request(url, data=data, headers={"Accept": accept})
        if data is not None:
            request.add_header("Content-Type", "application/x-www-form-urlencoded")
        # The client span's own id rides the outbound traceparent header,
        # so the remote server's request span becomes its child and the
        # federated sub-query joins this trace across the socket.
        with get_tracer().start_span(
            "http.client.request",
            {"endpoint": self.name, "url": self.url, "layer": "client"},
        ) as span:
            traceparent = span.traceparent()
            if traceparent is not None:
                request.add_header("traceparent", traceparent)
            try:
                with urllib.request.urlopen(request, timeout=self.timeout) as response:
                    body = response.read().decode("utf-8")
            except urllib.error.HTTPError as exc:
                # The server answered, with an error status: the endpoint is
                # reachable but refused or failed the query.
                snippet = self._body_snippet(exc)
                self._count_failure("injected_failures")
                if span.recording:
                    span.set_attribute("status", exc.code)
                if exc.code == 504:
                    raise EndpointTimeout(
                        f"endpoint {self.name} reported an upstream timeout (504): {snippet}"
                    ) from exc
                raise EndpointUnavailable(
                    f"endpoint {self.name} answered HTTP {exc.code}: {snippet}"
                ) from exc
            except urllib.error.URLError as exc:
                self._count_failure("transport_failures")
                if isinstance(exc.reason, (socket.timeout, TimeoutError)):
                    raise EndpointTimeout(self._timeout_message()) from exc
                raise EndpointUnavailable(
                    f"endpoint {self.name} is unreachable: {exc.reason}"
                ) from exc
            except (socket.timeout, TimeoutError) as exc:
                self._count_failure("transport_failures")
                raise EndpointTimeout(self._timeout_message()) from exc
            if span.recording:
                span.set_attribute("status", 200)
                span.set_attribute("bytes", len(body))
        return body

    def _timeout_message(self) -> str:
        budget = f" after {self.timeout:g}s" if self.timeout is not None else ""
        return f"endpoint {self.name} timed out{budget}"

    def _encode(self, query_text: str) -> tuple[str, bytes | None]:
        """(url, body) for the configured protocol binding."""
        encoded = urllib.parse.urlencode({"query": query_text})
        if self.method == "get":
            separator = "&" if "?" in self.url else "?"
            return f"{self.url}{separator}{encoded}", None
        return self.url, encoded.encode("utf-8")

    def _parse_results(self, body: str) -> ResultSet | AskResult:
        try:
            return parse_results(body, format=self.result_format)
        except FormatError as exc:
            self._count_failure("injected_failures")
            raise EndpointError(
                f"endpoint {self.name} returned a malformed result document: {exc}"
            ) from exc

    def _count_failure(self, kind: str) -> None:
        with self._lock:
            setattr(self.statistics, kind, getattr(self.statistics, kind) + 1)

    @staticmethod
    def _body_snippet(error: urllib.error.HTTPError) -> str:
        try:
            body = error.read().decode("utf-8", errors="replace").strip()
        except Exception:  # pragma: no cover - sockets can fail mid-read
            return ""
        return body[:_ERROR_SNIPPET]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<HttpSparqlEndpoint {self.name} ({self.method.upper()} {self.url})>"
