"""``python -m repro.serve_main`` — module form of the ``repro-serve`` script.

Lets the HTTP server be launched without installing the console scripts
(CI smoke steps, subprocess tests): equivalent to running ``repro-serve``.
"""

import sys

from .cli import main_serve

if __name__ == "__main__":
    sys.exit(main_serve())
