"""``python -m repro.store_main`` — module form of the ``repro-store`` script.

Lets store directories be built and inspected without installing the
console scripts (CI jobs, subprocess tests): equivalent to ``repro-store``.
"""

import sys

from .cli import main_store

if __name__ == "__main__":
    sys.exit(main_store())
