"""Labeled metrics: counters, gauges, histograms, Prometheus exposition.

A :class:`MetricsRegistry` holds named metric families; each family keeps
one value (or bucket vector) per label combination.  Registries are cheap,
so the HTTP server gives every server instance its own (per-server request
counters stay independent, as the JSON ``/metrics`` payload always
promised), while process-wide instrumentation — the mediator's rewrite
cache, the federation layer's abandoned-attempt gauge — lives in the
module-level :data:`REGISTRY`.

Histograms use fixed latency buckets sized for query serving
(:data:`DEFAULT_LATENCY_BUCKETS`) and estimate p50/p95/p99 by linear
interpolation within the bucket that crosses the target rank — the same
estimate a Prometheus ``histogram_quantile`` query would produce.

``render_prometheus`` emits the text exposition format (version 0.0.4):
``# HELP`` / ``# TYPE`` comments, ``name{label="value"} value`` samples,
and the ``_bucket``/``_sum``/``_count`` series for histograms, with a
cumulative ``+Inf`` bucket.  ``tools/check_prom_format.py`` validates the
output in CI.
"""

from __future__ import annotations

import math
import threading
from typing import Any

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "abandoned_attempts_gauge",
    "rewrite_cache_counter",
]

#: Histogram bucket upper bounds (seconds) for query-serving latencies:
#: sub-millisecond local lookups through multi-second federated fan-outs.
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

LabelKey = tuple[tuple[str, str], ...]


def _label_key(label_names: tuple[str, ...], labels: dict[str, Any]) -> LabelKey:
    if set(labels) != set(label_names):
        raise ValueError(
            f"expected labels {sorted(label_names)}, got {sorted(labels)}"
        )
    return tuple((name, str(labels[name])) for name in label_names)


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _render_labels(key: LabelKey, extra: tuple[tuple[str, str], ...] = ()) -> str:
    pairs = [*key, *extra]
    if not pairs:
        return ""
    inner = ",".join(f'{name}="{_escape_label(value)}"' for name, value in pairs)
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


class Counter:
    """A monotonically increasing labeled counter."""

    kind = "counter"

    def __init__(self, name: str, help: str = "", label_names: tuple[str, ...] = ()) -> None:
        self.name = name
        self.help = help
        self.label_names = tuple(label_names)
        self._lock = threading.Lock()
        self._values: dict[LabelKey, float] = {}

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        key = _label_key(self.label_names, labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: Any) -> float:
        key = _label_key(self.label_names, labels)
        with self._lock:
            return self._values.get(key, 0.0)

    def samples(self) -> list[tuple[LabelKey, float]]:
        with self._lock:
            return sorted(self._values.items())

    def render(self) -> list[str]:
        lines = [f"# HELP {self.name} {self.help}", f"# TYPE {self.name} {self.kind}"]
        series = self.samples() or ([((), 0.0)] if not self.label_names else [])
        for key, value in series:
            lines.append(f"{self.name}{_render_labels(key)} {_format_value(value)}")
        return lines

    def snapshot(self) -> dict[str, float]:
        """JSON-ready mapping of rendered label sets to values."""
        return {
            _render_labels(key) or "total": value for key, value in self.samples()
        }


class Gauge(Counter):
    """A labeled value that can go up and down."""

    kind = "gauge"

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        key = _label_key(self.label_names, labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: Any) -> None:
        self.inc(-amount, **labels)

    def set(self, value: float, **labels: Any) -> None:
        key = _label_key(self.label_names, labels)
        with self._lock:
            self._values[key] = float(value)


class Histogram:
    """A labeled histogram with cumulative buckets and quantile estimates."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        label_names: tuple[str, ...] = (),
        buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS,
    ) -> None:
        if list(buckets) != sorted(buckets) or len(set(buckets)) != len(buckets):
            raise ValueError("histogram buckets must be strictly increasing")
        self.name = name
        self.help = help
        self.label_names = tuple(label_names)
        self.buckets = tuple(float(bound) for bound in buckets)
        self._lock = threading.Lock()
        #: Per label set: [per-bucket counts..., overflow count].
        self._counts: dict[LabelKey, list[int]] = {}
        self._sums: dict[LabelKey, float] = {}

    def observe(self, value: float, **labels: Any) -> None:
        key = _label_key(self.label_names, labels)
        index = len(self.buckets)
        for position, bound in enumerate(self.buckets):
            if value <= bound:
                index = position
                break
        with self._lock:
            counts = self._counts.get(key)
            if counts is None:
                counts = [0] * (len(self.buckets) + 1)
                self._counts[key] = counts
            counts[index] += 1
            self._sums[key] = self._sums.get(key, 0.0) + value

    def count(self, **labels: Any) -> int:
        key = _label_key(self.label_names, labels)
        with self._lock:
            return sum(self._counts.get(key, ()))

    def sum(self, **labels: Any) -> float:
        key = _label_key(self.label_names, labels)
        with self._lock:
            return self._sums.get(key, 0.0)

    def quantile(self, q: float, **labels: Any) -> float | None:
        """Estimated ``q``-quantile (0..1) by in-bucket interpolation."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be within [0, 1]")
        key = _label_key(self.label_names, labels)
        with self._lock:
            counts = list(self._counts.get(key, ()))
        total = sum(counts)
        if total == 0:
            return None
        rank = q * total
        cumulative = 0
        lower = 0.0
        for position, bound in enumerate(self.buckets):
            previous = cumulative
            cumulative += counts[position]
            if cumulative >= rank and counts[position]:
                fraction = (rank - previous) / counts[position]
                return lower + (bound - lower) * min(1.0, max(0.0, fraction))
            lower = bound
        # The rank landed in the overflow bucket: report its lower bound.
        return self.buckets[-1] if self.buckets else None

    def _series(self) -> list[tuple[LabelKey, list[int], float]]:
        with self._lock:
            return [
                (key, list(counts), self._sums.get(key, 0.0))
                for key, counts in sorted(self._counts.items())
            ]

    def render(self) -> list[str]:
        lines = [f"# HELP {self.name} {self.help}", f"# TYPE {self.name} {self.kind}"]
        for key, counts, total_sum in self._series():
            cumulative = 0
            for position, bound in enumerate(self.buckets):
                cumulative += counts[position]
                labels = _render_labels(key, (("le", _format_value(bound)),))
                lines.append(f"{self.name}_bucket{labels} {cumulative}")
            cumulative += counts[-1]
            labels = _render_labels(key, (("le", "+Inf"),))
            lines.append(f"{self.name}_bucket{labels} {cumulative}")
            lines.append(f"{self.name}_sum{_render_labels(key)} {_format_value(total_sum)}")
            lines.append(f"{self.name}_count{_render_labels(key)} {cumulative}")
        return lines

    def snapshot(self, **labels: Any) -> dict[str, float | int | None]:
        """JSON-ready latency digest: count, p50/p95/p99."""
        return {
            "count": self.count(**labels),
            "p50": self.quantile(0.50, **labels),
            "p95": self.quantile(0.95, **labels),
            "p99": self.quantile(0.99, **labels),
        }


Metric = Counter | Gauge | Histogram


class MetricsRegistry:
    """Get-or-create registry of metric families, keyed by name."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, Metric] = {}

    def _get_or_create(self, name: str, factory, kind: type) -> Metric:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = factory()
                self._metrics[name] = metric
        if not isinstance(metric, kind) or type(metric) is not kind:
            raise TypeError(
                f"metric {name!r} already registered as {type(metric).__name__}, "
                f"not {kind.__name__}"
            )
        return metric

    def counter(
        self, name: str, help: str = "", labels: tuple[str, ...] = ()
    ) -> Counter:
        metric = self._get_or_create(name, lambda: Counter(name, help, labels), Counter)
        assert isinstance(metric, Counter)
        return metric

    def gauge(self, name: str, help: str = "", labels: tuple[str, ...] = ()) -> Gauge:
        metric = self._get_or_create(name, lambda: Gauge(name, help, labels), Gauge)
        assert isinstance(metric, Gauge)
        return metric

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: tuple[str, ...] = (),
        buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        metric = self._get_or_create(
            name, lambda: Histogram(name, help, labels, buckets), Histogram
        )
        assert isinstance(metric, Histogram)
        return metric

    def metrics(self) -> list[Metric]:
        with self._lock:
            return [self._metrics[name] for name in sorted(self._metrics)]

    def render_prometheus(self) -> str:
        """The registry in Prometheus text exposition format (0.0.4)."""
        lines: list[str] = []
        for metric in self.metrics():
            lines.extend(metric.render())
        return "\n".join(lines) + "\n" if lines else ""


#: The process-global registry for cross-cutting instrumentation.
REGISTRY = MetricsRegistry()


def rewrite_cache_counter() -> Counter:
    """Mediator rewrite-cache lookups, labeled by hit/miss outcome."""
    return REGISTRY.counter(
        "repro_rewrite_cache_lookups_total",
        "Mediator rewrite-cache lookups by outcome",
        labels=("outcome",),
    )


def abandoned_attempts_gauge() -> Gauge:
    """In-flight endpoint attempts abandoned after a policy timeout.

    Incremented when the federation layer gives up waiting on an attempt
    (the daemon thread keeps running, exactly like an HTTP client dropping
    a socket) and decremented when that thread finally finishes — so a
    non-zero value means abandoned work is still burning cycles.
    """
    return REGISTRY.gauge(
        "repro_abandoned_attempts",
        "In-flight abandoned endpoint attempts per dataset",
        labels=("dataset",),
    )
