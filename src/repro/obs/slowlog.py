"""A threshold-triggered ring buffer of recent slow queries.

Any layer that times a query end-to-end (the evaluator, the HTTP server)
offers the elapsed time to :data:`SLOW_LOG`; entries crossing the
threshold are retained — query text, elapsed seconds, the plan that ran,
the trace id when tracing was on — in a bounded deque, newest last.  The
default threshold comes from ``REPRO_SLOWLOG_SECONDS`` (read once at
construction); ``0`` captures everything, unset uses a serving-oriented
default of 0.75s.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass, field
from typing import Any

__all__ = ["SLOWLOG_ENV", "SlowQueryEntry", "SlowQueryLog", "SLOW_LOG"]

#: Environment variable: slow-query threshold in (float) seconds.
SLOWLOG_ENV = "REPRO_SLOWLOG_SECONDS"

#: Threshold applied when the environment does not specify one.
_DEFAULT_THRESHOLD = 0.75


@dataclass
class SlowQueryEntry:
    """One retained slow query."""

    query: str
    elapsed: float
    threshold: float
    engine: str
    layer: str
    trace_id: str | None = None
    plan: str | None = None
    sequence: int = 0
    extra: dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "sequence": self.sequence,
            "query": self.query,
            "elapsed": self.elapsed,
            "threshold": self.threshold,
            "engine": self.engine,
            "layer": self.layer,
            "trace_id": self.trace_id,
            "plan": self.plan,
        }
        if self.extra:
            payload.update(self.extra)
        return payload


class SlowQueryLog:
    """Bounded ring of :class:`SlowQueryEntry`, newest last."""

    def __init__(self, threshold: float | None = None, capacity: int = 32) -> None:
        if threshold is None:
            raw = os.environ.get(SLOWLOG_ENV)
            if raw:
                try:
                    threshold = float(raw)
                except ValueError:
                    threshold = _DEFAULT_THRESHOLD
            else:
                threshold = _DEFAULT_THRESHOLD
        self.threshold = float(threshold)
        self.capacity = int(capacity)
        self._lock = threading.Lock()
        self._entries: list[SlowQueryEntry] = []
        self._sequence = 0

    def record(
        self,
        query: str,
        elapsed: float,
        engine: str = "?",
        layer: str = "evaluator",
        trace_id: str | None = None,
        plan: str | None = None,
        threshold: float | None = None,
        **extra: Any,
    ) -> SlowQueryEntry | None:
        """Retain the query if ``elapsed`` crosses the threshold.

        Returns the retained entry, or None when the query was fast
        enough.  ``threshold`` overrides the log-wide default per call.
        """
        limit = self.threshold if threshold is None else float(threshold)
        if elapsed < limit:
            return None
        entry = SlowQueryEntry(
            query=query,
            elapsed=elapsed,
            threshold=limit,
            engine=engine,
            layer=layer,
            trace_id=trace_id,
            plan=plan,
            extra=dict(extra),
        )
        with self._lock:
            self._sequence += 1
            entry.sequence = self._sequence
            self._entries.append(entry)
            if len(self._entries) > self.capacity:
                del self._entries[: len(self._entries) - self.capacity]
        return entry

    def entries(self) -> list[SlowQueryEntry]:
        with self._lock:
            return list(self._entries)

    def as_dict(self) -> dict[str, Any]:
        entries = self.entries()
        return {
            "threshold": self.threshold,
            "capacity": self.capacity,
            "recorded": entries[-1].sequence if entries else 0,
            "entries": [entry.as_dict() for entry in entries],
        }

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()


#: The process-wide slow-query log.
SLOW_LOG = SlowQueryLog()
