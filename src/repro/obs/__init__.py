"""Observability: tracing, metrics and the slow-query log.

This package is the cross-cutting instrumentation layer of the stack:

* :mod:`repro.obs.trace` — distributed tracing with W3C ``traceparent``
  propagation (spans join one trace across real HTTP sockets),
* :mod:`repro.obs.metrics` — a labeled Counter/Gauge/Histogram registry
  with Prometheus text exposition,
* :mod:`repro.obs.slowlog` — a threshold-triggered ring buffer of recent
  slow queries with their plans,
* :mod:`repro.obs.export` — the serialized JSONL sink behind
  ``REPRO_RUN_EVENTS`` (run events and trace spans share one file).

Everything here is stdlib-only and must stay importable from any layer
(core, federation, sparql, server) without introducing import cycles:
nothing in this package imports from the rest of :mod:`repro`.
"""

from .export import RUN_EVENTS_ENV, SINK, EventSink
from .metrics import (
    DEFAULT_LATENCY_BUCKETS,
    REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    abandoned_attempts_gauge,
    rewrite_cache_counter,
)
from .slowlog import SLOW_LOG, SLOWLOG_ENV, SlowQueryEntry, SlowQueryLog
from .trace import (
    NOOP_SPAN,
    TRACE_ENV,
    Span,
    Tracer,
    current_traceparent,
    format_traceparent,
    get_tracer,
    parse_traceparent,
)

__all__ = [
    "RUN_EVENTS_ENV",
    "SINK",
    "EventSink",
    "DEFAULT_LATENCY_BUCKETS",
    "REGISTRY",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "abandoned_attempts_gauge",
    "rewrite_cache_counter",
    "SLOW_LOG",
    "SLOWLOG_ENV",
    "SlowQueryEntry",
    "SlowQueryLog",
    "NOOP_SPAN",
    "TRACE_ENV",
    "Span",
    "Tracer",
    "current_traceparent",
    "format_traceparent",
    "get_tracer",
    "parse_traceparent",
]
