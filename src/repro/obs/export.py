"""The JSONL export sink behind ``REPRO_RUN_EVENTS``.

Run events (:class:`repro.sparql.exec.QueryRunEvent`) and trace spans
(:class:`repro.obs.trace.Span`) are appended to the same JSONL file, one
JSON object per line.  Span lines are distinguished by ``"kind": "span"``;
run-event lines carry no ``kind`` key, which keeps the file format
backward-compatible with every existing ``REPRO_RUN_EVENTS`` consumer
(``benchmarks/compare.py --events`` skips span lines).

Two defects of the original ``maybe_emit_event`` are fixed here:

* concurrent federation threads appended lines without any locking, so a
  long line could interleave with another thread's write mid-record.  The
  sink serializes every emission behind one lock and issues exactly one
  ``write()`` call per line.
* ``os.environ`` was consulted on *every* event.  The sink caches the
  lookup; the cache is refreshed at well-defined configuration points
  (evaluator construction, server construction, tracer enablement) via
  :meth:`EventSink.refresh` instead of per event.
"""

from __future__ import annotations

import json
import os
import threading
from typing import Any

__all__ = ["RUN_EVENTS_ENV", "EventSink", "SINK"]

#: Environment variable: when set to a path, run events and trace spans
#: are appended there as JSON lines.
RUN_EVENTS_ENV = "REPRO_RUN_EVENTS"


class EventSink:
    """Serialized JSONL appender with a cached destination path.

    The destination is read from the environment once and cached;
    :meth:`refresh` re-reads it (called when an evaluator, server or
    tracer is configured — the points where a changed environment should
    become visible).  :meth:`configure` sets the path programmatically,
    bypassing the environment entirely.
    """

    def __init__(self, env_var: str = RUN_EVENTS_ENV) -> None:
        self.env_var = env_var
        self._lock = threading.Lock()
        self._path: str | None = None
        self._known = False

    # ------------------------------------------------------------------ #
    # Destination management
    # ------------------------------------------------------------------ #
    def refresh(self) -> str | None:
        """Re-read the destination from the environment and cache it."""
        path = os.environ.get(self.env_var) or None
        with self._lock:
            self._path = path
            self._known = True
        return path

    def configure(self, path: str | None) -> None:
        """Set (or clear) the destination explicitly."""
        with self._lock:
            self._path = path
            self._known = True

    @property
    def path(self) -> str | None:
        """The cached destination (first access consults the environment)."""
        with self._lock:
            if self._known:
                return self._path
        return self.refresh()

    @property
    def enabled(self) -> bool:
        return self.path is not None

    # ------------------------------------------------------------------ #
    # Emission
    # ------------------------------------------------------------------ #
    def emit(self, payload: dict[str, Any]) -> bool:
        """Append ``payload`` as one JSON line; returns whether it was written.

        The line is rendered outside the lock (JSON encoding is the
        expensive part) and written with a single ``write()`` call under
        the lock, so concurrent emitters cannot interleave records.
        """
        path = self.path
        if not path:
            return False
        line = json.dumps(payload, sort_keys=True) + "\n"
        with self._lock:
            with open(path, "a", encoding="utf-8") as handle:
                handle.write(line)
        return True


#: The process-wide sink used by run-event emission and span export.
SINK = EventSink()
