"""Distributed tracing with W3C ``traceparent`` propagation.

A :class:`Span` is one timed operation; spans form a tree under a shared
128-bit trace id.  The active span is carried in a :data:`contextvars.
ContextVar`, so nesting works across plain calls and — with
:func:`contextvars.copy_context` at submission points — across thread
pools.  Crossing a real socket is handled by the W3C Trace Context header:
``format_traceparent`` on the client, ``parse_traceparent`` on the server,
so a federated sub-query joins the caller's trace even though it travels
over HTTP.

Tracing is **off by default** and the disabled path is deliberately cheap:
``Tracer.start_span`` returns one shared no-op singleton without
allocating, and the batched executor is never touched at all — per-operator
spans are synthesized *after* execution from the existing
:class:`~repro.sparql.exec.OpMetrics` timings (``add_operator_spans``), so
the hot loop carries zero tracing overhead in either mode.

Finished spans are kept in a bounded in-memory ring (for tests and the
slow-query log) and exported as JSONL via the ``REPRO_RUN_EVENTS`` sink
(``"kind": "span"`` lines), where ``repro-trace`` renders them.
"""

from __future__ import annotations

import os
import threading
import time
from collections import deque
from contextvars import ContextVar
from typing import Any

from .export import SINK

__all__ = [
    "TRACE_ENV",
    "Span",
    "Tracer",
    "NOOP_SPAN",
    "get_tracer",
    "set_tracer",
    "parse_traceparent",
    "format_traceparent",
    "current_traceparent",
]

#: Environment variable: any non-empty value enables tracing at import.
TRACE_ENV = "REPRO_TRACE"

#: W3C Trace Context version rendered into outgoing headers.
_TRACEPARENT_VERSION = "00"

#: The active span of the current execution context.
_current_span: ContextVar[Span | None] = ContextVar("repro_current_span", default=None)


def _new_trace_id() -> str:
    """A 128-bit trace id as 32 lowercase hex characters."""
    return os.urandom(16).hex()


def _new_span_id() -> str:
    """A 64-bit span id as 16 lowercase hex characters."""
    return os.urandom(8).hex()


def parse_traceparent(header: str | None) -> tuple[str, str] | None:
    """``(trace_id, parent_span_id)`` from a ``traceparent`` header.

    Accepts the W3C ``version-traceid-spanid-flags`` shape and rejects
    malformed values (wrong field widths, non-hex digits, the all-zero
    ids the spec declares invalid).
    """
    if not header:
        return None
    parts = header.strip().split("-")
    if len(parts) != 4:
        return None
    version, trace_id, span_id, flags = parts
    if len(version) != 2 or len(trace_id) != 32 or len(span_id) != 16 or len(flags) != 2:
        return None
    try:
        for part in parts:
            int(part, 16)
    except ValueError:
        return None
    if trace_id == "0" * 32 or span_id == "0" * 16:
        return None
    return trace_id, span_id


def format_traceparent(trace_id: str, span_id: str) -> str:
    """Render a W3C ``traceparent`` header value (sampled flag set)."""
    return f"{_TRACEPARENT_VERSION}-{trace_id}-{span_id}-01"


class Span:
    """One timed operation in a trace.

    Usable as a context manager (entering activates it in the current
    context; exiting ends it and restores the previous active span).
    Attribute/event mutation is single-writer by construction — a span is
    owned by the context that created it — so no lock is needed.
    """

    __slots__ = (
        "name", "trace_id", "span_id", "parent_id",
        "start", "end", "attributes", "events",
        "_tracer", "_token",
    )

    #: Real spans record; the no-op singleton advertises False so call
    #: sites can skip computing expensive attributes.
    recording = True

    def __init__(
        self,
        tracer: Tracer,
        name: str,
        trace_id: str,
        span_id: str,
        parent_id: str | None,
        attributes: dict[str, Any] | None = None,
    ) -> None:
        self._tracer = tracer
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.start = time.time()
        self.end: float | None = None
        self.attributes: dict[str, Any] = dict(attributes) if attributes else {}
        self.events: list[dict[str, Any]] = []
        self._token = None

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #
    def set_attribute(self, key: str, value: Any) -> Span:
        self.attributes[key] = value
        return self

    def add_event(self, name: str, **attributes: Any) -> Span:
        """Record a point-in-time event (retry, breaker transition, error)."""
        event: dict[str, Any] = {"name": name, "time": time.time()}
        if attributes:
            event.update(attributes)
        self.events.append(event)
        return self

    def traceparent(self) -> str:
        """The ``traceparent`` header identifying *this* span as parent."""
        return format_traceparent(self.trace_id, self.span_id)

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    @property
    def duration(self) -> float:
        if self.end is None:
            return 0.0
        return self.end - self.start

    def finish(self) -> None:
        """End the span (idempotent) and hand it to the tracer."""
        if self.end is not None:
            return
        self.end = time.time()
        self._tracer._record(self)

    def __enter__(self) -> Span:
        self._token = _current_span.set(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._token is not None:
            _current_span.reset(self._token)
            self._token = None
        if exc_type is not None:
            self.add_event("exception", type=exc_type.__name__, message=str(exc))
        self.finish()

    def to_json_dict(self) -> dict[str, Any]:
        return {
            "kind": "span",
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "attributes": self.attributes,
            "events": self.events,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Span {self.name} {self.trace_id[:8]}…/{self.span_id}>"


class _NoopSpan:
    """The shared disabled-mode span: every operation is a cheap no-op.

    A single module-level instance is returned for every ``start_span``
    call while tracing is disabled, so the disabled path allocates
    nothing per call.
    """

    __slots__ = ()

    recording = False
    name = ""
    trace_id = ""
    span_id = ""
    parent_id = None
    attributes: dict[str, Any] = {}
    events: list[dict[str, Any]] = []
    duration = 0.0

    def set_attribute(self, key: str, value: Any) -> _NoopSpan:
        return self

    def add_event(self, name: str, **attributes: Any) -> _NoopSpan:
        return self

    def traceparent(self) -> None:
        return None

    def finish(self) -> None:
        return None

    def __enter__(self) -> _NoopSpan:
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


#: The singleton returned by ``start_span`` while tracing is disabled.
NOOP_SPAN = _NoopSpan()


class Tracer:
    """Creates spans, tracks the active one, keeps a ring of finished ones."""

    def __init__(self, enabled: bool = False, capacity: int = 1024) -> None:
        self._lock = threading.Lock()
        self._finished: deque[Span] = deque(maxlen=capacity)
        self.enabled = enabled

    # ------------------------------------------------------------------ #
    # Enablement
    # ------------------------------------------------------------------ #
    def enable(self) -> Tracer:
        """Turn tracing on (also refreshes the JSONL export destination)."""
        SINK.refresh()
        self.enabled = True
        return self

    def disable(self) -> Tracer:
        self.enabled = False
        return self

    # ------------------------------------------------------------------ #
    # Span creation
    # ------------------------------------------------------------------ #
    def start_span(
        self,
        name: str,
        attributes: dict[str, Any] | None = None,
        traceparent: str | None = None,
    ) -> Span | _NoopSpan:
        """A new span under the current one (or a remote ``traceparent``).

        An explicit ``traceparent`` (an incoming HTTP header) wins over the
        context: the new span joins the remote caller's trace.  With no
        parent anywhere a fresh 128-bit trace id is minted.
        """
        if not self.enabled:
            return NOOP_SPAN
        remote = parse_traceparent(traceparent)
        if remote is not None:
            trace_id, parent_id = remote
        else:
            parent = _current_span.get()
            if parent is not None and parent.recording:
                trace_id, parent_id = parent.trace_id, parent.span_id
            else:
                trace_id, parent_id = _new_trace_id(), None
        return Span(self, name, trace_id, _new_span_id(), parent_id, attributes)

    def current_span(self) -> Span | None:
        return _current_span.get()

    def current_traceparent(self) -> str | None:
        """The header to inject into an outbound request (None when off)."""
        if not self.enabled:
            return None
        span = _current_span.get()
        if span is None or not span.recording:
            return None
        return span.traceparent()

    # ------------------------------------------------------------------ #
    # Post-hoc operator spans (the exec layer's timing hooks)
    # ------------------------------------------------------------------ #
    def add_operator_spans(
        self,
        stats: list[dict[str, Any]],
        engine: str,
        elapsed: float,
        query: str | None = None,
    ) -> Span | _NoopSpan:
        """Synthesize per-operator spans from ``operator_stats`` output.

        The batched executor's hot loop is never instrumented directly;
        its existing :class:`~repro.sparql.exec.OpMetrics` counters carry
        per-operator inclusive wall time, and this method converts them
        into a span subtree after the fact — a root ``exec.query`` span of
        duration ``elapsed`` with one child span per operator, nested by
        the stats entries' recorded depth.  Span start times are anchored
        backwards from "now", so durations are exact while offsets are
        approximate.
        """
        if not self.enabled:
            return NOOP_SPAN
        now = time.time()
        root = self.start_span("exec.query", {"engine": engine, "layer": "exec"})
        assert isinstance(root, Span)
        root.start = now - elapsed
        if query:
            root.set_attribute("query", query)
        stack: list[tuple[int, Span]] = [(-1, root)]
        for entry in stats:
            depth = int(entry.get("depth", 0))
            while stack and stack[-1][0] >= depth:
                stack.pop()
            parent = stack[-1][1] if stack else root
            span = Span(
                self,
                str(entry.get("span") or entry.get("operator") or "exec.operator"),
                root.trace_id,
                _new_span_id(),
                parent.span_id,
                {
                    "operator": entry.get("operator"),
                    "rows_in": entry.get("rows_in"),
                    "rows_out": entry.get("rows_out"),
                    "batches": entry.get("batches"),
                    "layer": "exec",
                },
            )
            seconds = float(entry.get("seconds") or 0.0)
            span.start = now - seconds
            span.end = now
            self._record(span)
            stack.append((depth, span))
        root.set_attribute("rows", stats[0].get("rows_out") if stats else 0)
        root.finish()
        return root

    # ------------------------------------------------------------------ #
    # Finished spans
    # ------------------------------------------------------------------ #
    def _record(self, span: Span) -> None:
        with self._lock:
            self._finished.append(span)
        SINK.emit(span.to_json_dict())

    def finished_spans(self) -> list[Span]:
        with self._lock:
            return list(self._finished)

    def clear(self) -> None:
        with self._lock:
            self._finished.clear()


#: The process-wide tracer (enable with REPRO_TRACE=1 or ``enable()``).
_TRACER = Tracer(enabled=bool(os.environ.get(TRACE_ENV)))


def get_tracer() -> Tracer:
    return _TRACER


def set_tracer(tracer: Tracer) -> Tracer:
    """Swap the process tracer (tests); returns the previous one."""
    global _TRACER
    previous = _TRACER
    _TRACER = tracer
    return previous


def current_traceparent() -> str | None:
    """Module-level convenience for outbound header injection."""
    return _TRACER.current_traceparent()
