"""Serialisation of query ASTs back to SPARQL text.

The rewriter produces a modified AST; this module renders it so the query
can be shipped to a (possibly remote) SPARQL endpoint — exactly what the
paper's mediator does after translation (Figure 3 shows such an output).
Prefixes declared in the prologue are used to compact URIs; URIs with no
matching prefix are emitted in ``<...>`` form.
"""

from __future__ import annotations


from ..rdf import BNode, Literal, NamespaceManager, RDF, Term, URIRef, Variable
from ..turtle.ntriples import escape
from .ast import (
    AskQuery,
    BinaryExpression,
    ConstructQuery,
    ExistsExpression,
    Expression,
    Filter,
    FunctionCall,
    GroupGraphPattern,
    InlineData,
    OptionalPattern,
    Query,
    SelectQuery,
    TermExpression,
    TriplesBlock,
    UnaryExpression,
    UnionPattern,
    VariableExpression,
)

__all__ = ["serialize_query", "serialize_expression", "serialize_pattern_group"]

_BUILTIN_SPELLING = {
    "BOUND": "BOUND", "REGEX": "REGEX", "STR": "STR", "LANG": "LANG",
    "LANGMATCHES": "LANGMATCHES", "DATATYPE": "DATATYPE", "ISURI": "isURI",
    "ISIRI": "isIRI", "ISLITERAL": "isLITERAL", "ISBLANK": "isBLANK",
    "SAMETERM": "sameTerm",
}


class _Writer:
    def __init__(self, namespace_manager: NamespaceManager | None) -> None:
        self._nsm = namespace_manager

    # -- terms --------------------------------------------------------------- #
    def term(self, term: Term) -> str:
        if isinstance(term, Variable):
            return f"?{term.name}"
        if isinstance(term, URIRef):
            if self._nsm is not None:
                compact = self._nsm.compact(term)
                if compact:
                    return compact
            return term.n3()
        if isinstance(term, Literal):
            return self._literal(term)
        if isinstance(term, BNode):
            return term.n3()
        return term.n3()

    def _literal(self, literal: Literal) -> str:
        body = f'"{escape(literal.lexical)}"'
        if literal.lang:
            return f"{body}@{literal.lang}"
        if literal.datatype is not None:
            datatype = literal.datatype
            if self._nsm is not None:
                compact = self._nsm.compact(datatype)
                if compact:
                    return f"{body}^^{compact}"
            return f"{body}^^{datatype.n3()}"
        return body

    def predicate(self, term: Term) -> str:
        if term == RDF.type:
            return "a"
        return self.term(term)

    # -- expressions ---------------------------------------------------------- #
    def expression(self, expression: Expression) -> str:
        if isinstance(expression, TermExpression):
            return self.term(expression.term)
        if isinstance(expression, VariableExpression):
            return f"?{expression.variable.name}"
        if isinstance(expression, UnaryExpression):
            return f"{expression.operator}{self._maybe_parenthesise(expression.operand)}"
        if isinstance(expression, BinaryExpression):
            left = self._maybe_parenthesise(expression.left)
            right = self._maybe_parenthesise(expression.right)
            return f"{left} {expression.operator} {right}"
        if isinstance(expression, FunctionCall):
            return self._function_call(expression)
        if isinstance(expression, ExistsExpression):
            keyword = "NOT EXISTS" if expression.negated else "EXISTS"
            return f"{keyword} {self.group(expression.group, indent=1)}"
        raise TypeError(f"unsupported expression node: {expression!r}")

    def _maybe_parenthesise(self, expression: Expression) -> str:
        text = self.expression(expression)
        if isinstance(expression, BinaryExpression):
            return f"({text})"
        return text

    def _function_call(self, call: FunctionCall) -> str:
        arguments = ", ".join(self.expression(argument) for argument in call.arguments)
        name = call.name
        if name in _BUILTIN_SPELLING:
            return f"{_BUILTIN_SPELLING[name]}({arguments})"
        # Extension function identified by IRI.
        iri = URIRef(name)
        if self._nsm is not None:
            compact = self._nsm.compact(iri)
            if compact:
                return f"{compact}({arguments})"
        return f"{iri.n3()}({arguments})"

    # -- patterns ------------------------------------------------------------- #
    def group(self, group: GroupGraphPattern, indent: int = 0) -> str:
        pad = "  " * indent
        lines: list[str] = [pad + "{"]
        for element in group.elements:
            lines.extend(self._element(element, indent + 1))
        lines.append(pad + "}")
        return "\n".join(lines)

    def _element(self, element, indent: int) -> list[str]:
        pad = "  " * indent
        if isinstance(element, TriplesBlock):
            return [f"{pad}{self.triple(pattern)} ." for pattern in element.patterns]
        if isinstance(element, Filter):
            return [f"{pad}FILTER ({self.expression(element.expression)})"]
        if isinstance(element, OptionalPattern):
            body = self.group(element.group, indent)
            return [f"{pad}OPTIONAL {body.lstrip()}"]
        if isinstance(element, UnionPattern):
            parts = [self.group(alternative, indent).lstrip() for alternative in element.alternatives]
            return [pad + (" UNION ".join(parts))]
        if isinstance(element, InlineData):
            return self._inline_data(element, indent)
        if isinstance(element, GroupGraphPattern):
            return [self.group(element, indent)]
        raise TypeError(f"unsupported pattern element: {element!r}")

    def _inline_data(self, data: InlineData, indent: int) -> list[str]:
        pad = "  " * indent
        header = " ".join(f"?{variable.name}" for variable in data.columns)
        lines = [f"{pad}VALUES ({header}) {{"]
        cell_pad = "  " * (indent + 1)
        for row in data.rows:
            cells = " ".join(
                "UNDEF" if term is None else self.term(term) for term in row
            )
            lines.append(f"{cell_pad}({cells})")
        lines.append(f"{pad}}}")
        return lines

    def triple(self, pattern) -> str:
        return (
            f"{self.term(pattern.subject)} "
            f"{self.predicate(pattern.predicate)} "
            f"{self.term(pattern.object)}"
        )


def serialize_query(query: Query) -> str:
    """Render a query AST as SPARQL text."""
    nsm = query.prologue.namespace_manager
    writer = _Writer(nsm)
    lines: list[str] = []

    if query.prologue.base:
        lines.append(f"BASE <{query.prologue.base}>")
    for prefix, namespace in nsm.namespaces():
        lines.append(f"PREFIX {prefix}: <{namespace}>")
    if lines:
        lines.append("")

    if isinstance(query, SelectQuery):
        header = "SELECT"
        if query.modifiers.distinct:
            header += " DISTINCT"
        elif query.modifiers.reduced:
            header += " REDUCED"
        if query.select_all:
            header += " *"
        else:
            header += " " + " ".join(f"?{v.name}" for v in query.projection)
        lines.append(header)
        lines.append("WHERE " + writer.group(query.where).lstrip())
    elif isinstance(query, AskQuery):
        lines.append("ASK " + writer.group(query.where).lstrip())
    elif isinstance(query, ConstructQuery):
        lines.append("CONSTRUCT {")
        for pattern in query.template:
            lines.append(f"  {writer.triple(pattern)} .")
        lines.append("}")
        lines.append("WHERE " + writer.group(query.where).lstrip())
    else:
        raise TypeError(f"unsupported query form: {type(query).__name__}")

    modifiers = query.modifiers
    if modifiers.order_by:
        parts = []
        for condition in modifiers.order_by:
            body = writer.expression(condition.expression)
            if condition.descending:
                parts.append(f"DESC({body})")
            elif not isinstance(condition.expression, VariableExpression):
                parts.append(f"ASC({body})")
            else:
                parts.append(body)
        lines.append("ORDER BY " + " ".join(parts))
    if modifiers.limit is not None:
        lines.append(f"LIMIT {modifiers.limit}")
    if modifiers.offset is not None:
        lines.append(f"OFFSET {modifiers.offset}")
    return "\n".join(lines) + "\n"


def serialize_expression(expression: Expression,
                         namespace_manager: NamespaceManager | None = None) -> str:
    """Render a FILTER expression as SPARQL text."""
    return _Writer(namespace_manager).expression(expression)


def serialize_pattern_group(group: GroupGraphPattern,
                            namespace_manager: NamespaceManager | None = None) -> str:
    """Render a group graph pattern as SPARQL text."""
    return _Writer(namespace_manager).group(group)
