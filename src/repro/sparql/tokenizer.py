"""Tokenizer for the SPARQL query language.

Covers the SPARQL 1.0 grammar subset implemented by the parser: SELECT /
ASK / CONSTRUCT forms, PREFIX/BASE prologue, braces and brackets, triple
punctuation, variables, IRIs, prefixed names, blank nodes, literals,
operators used in FILTER expressions and the keywords the evaluator
understands.

Every token carries its exact source extent (start and one-past-end
line/column, both 1-based) so parser errors and static-analysis
diagnostics can point at precise positions; :class:`SourceSpan` is the
shared span value used throughout the SPARQL stack.
"""

from __future__ import annotations

import re
from dataclasses import dataclass


__all__ = [
    "SourceSpan",
    "SparqlToken",
    "SparqlLexError",
    "tokenize_sparql",
    "KEYWORDS",
]


@dataclass(frozen=True)
class SourceSpan:
    """A contiguous extent of query text: 1-based, end-exclusive columns."""

    line: int
    column: int
    end_line: int
    end_column: int

    def __str__(self) -> str:
        return f"line {self.line}, column {self.column}"

    def cover(self, other: SourceSpan | None) -> SourceSpan:
        """The smallest span containing both ``self`` and ``other``."""
        if other is None:
            return self
        start = min((self.line, self.column), (other.line, other.column))
        end = max((self.end_line, self.end_column), (other.end_line, other.end_column))
        return SourceSpan(start[0], start[1], end[0], end[1])


class SparqlLexError(ValueError):
    """Raised when SPARQL text cannot be tokenised."""

    def __init__(self, message: str, line: int, column: int) -> None:
        super().__init__(f"{message} (line {line}, column {column})")
        self.line = line
        self.column = column


@dataclass(frozen=True)
class SparqlToken:
    """A lexical token: ``kind`` is a symbolic name, ``value`` the raw text."""

    kind: str
    value: str
    line: int
    column: int
    end_line: int = 0
    end_column: int = 0

    @property
    def span(self) -> SourceSpan:
        """The token's source extent (end positions default to the start)."""
        if self.end_line:
            return SourceSpan(self.line, self.column, self.end_line, self.end_column)
        return SourceSpan(self.line, self.column, self.line, self.column + max(len(self.value), 1))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SparqlToken({self.kind}, {self.value!r})"


#: Keywords recognised case-insensitively.  The lexer emits them as
#: ``KEYWORD`` tokens with the upper-case spelling in ``value``.
KEYWORDS = {
    "SELECT", "CONSTRUCT", "ASK", "DESCRIBE", "WHERE", "FILTER", "OPTIONAL",
    "UNION", "PREFIX", "BASE", "DISTINCT", "REDUCED", "ORDER", "BY", "ASC",
    "DESC", "LIMIT", "OFFSET", "FROM", "NAMED", "GRAPH", "A", "VALUES", "UNDEF",
    "BOUND", "REGEX", "STR", "LANG", "LANGMATCHES", "DATATYPE", "ISURI",
    "ISIRI", "ISLITERAL", "ISBLANK", "SAMETERM", "TRUE", "FALSE", "NOT", "IN",
}

_TOKEN_PATTERNS = [
    ("COMMENT", re.compile(r"#[^\n]*")),
    ("IRIREF", re.compile(r"<[^<>\"{}|^`\\\x00-\x20]*>")),
    ("VAR", re.compile(r"[?$][A-Za-z0-9_]+")),
    ("STRING_LONG", re.compile(r'"""(?:[^"\\]|\\.|"(?!""))*"""', re.DOTALL)),
    ("STRING", re.compile(r'"(?:[^"\\\n]|\\.)*"')),
    ("STRING_LONG_SQ", re.compile(r"'''(?:[^'\\]|\\.|'(?!''))*'''", re.DOTALL)),
    ("STRING_SQ", re.compile(r"'(?:[^'\\\n]|\\.)*'")),
    ("LANGTAG", re.compile(r"@[a-zA-Z]+(?:-[a-zA-Z0-9]+)*")),
    ("DATATYPE_MARKER", re.compile(r"\^\^")),
    ("BLANK_NODE", re.compile(r"_:[A-Za-z0-9_][A-Za-z0-9_.-]*")),
    ("DOUBLE", re.compile(r"[+-]?(?:\d+\.\d*[eE][+-]?\d+|\.?\d+[eE][+-]?\d+)")),
    ("DECIMAL", re.compile(r"[+-]?\d*\.\d+")),
    ("INTEGER", re.compile(r"[+-]?\d+")),
    ("NEQ", re.compile(r"!=")),
    ("LE", re.compile(r"<=")),
    ("GE", re.compile(r">=")),
    ("AND", re.compile(r"&&")),
    ("OR", re.compile(r"\|\|")),
    ("EQ", re.compile(r"=")),
    ("BANG", re.compile(r"!")),
    ("LT", re.compile(r"<")),
    ("GT", re.compile(r">")),
    ("PLUS", re.compile(r"\+")),
    ("MINUS", re.compile(r"-")),
    ("STAR", re.compile(r"\*")),
    ("SLASH", re.compile(r"/")),
    ("LBRACE", re.compile(r"\{")),
    ("RBRACE", re.compile(r"\}")),
    ("LPAREN", re.compile(r"\(")),
    ("RPAREN", re.compile(r"\)")),
    ("LBRACKET", re.compile(r"\[")),
    ("RBRACKET", re.compile(r"\]")),
    ("SEMICOLON", re.compile(r";")),
    ("COMMA", re.compile(r",")),
    ("DOT", re.compile(r"\.")),
    # Prefixed names and bare keywords share word-ish shapes; keywords are
    # disambiguated after the match (a PNAME always contains ':').
    ("PNAME", re.compile(r"[A-Za-z_][A-Za-z0-9_.-]*:[A-Za-z0-9_]?[A-Za-z0-9_.\-%]*|:[A-Za-z0-9_][A-Za-z0-9_.\-%]*|[A-Za-z_][A-Za-z0-9_.-]*:")),
    ("WORD", re.compile(r"[A-Za-z_][A-Za-z0-9_]*")),
]

_STRING_KINDS = {"STRING_LONG", "STRING_SQ", "STRING_LONG_SQ"}


def tokenize_sparql(text: str) -> list[SparqlToken]:
    """Tokenise SPARQL text into a list ending with an ``EOF`` token."""
    tokens: list[SparqlToken] = []
    position = 0
    line = 1
    line_start = 0
    length = len(text)

    while position < length:
        ch = text[position]
        if ch in " \t\r":
            position += 1
            continue
        if ch == "\n":
            position += 1
            line += 1
            line_start = position
            continue

        column = position - line_start + 1
        for kind, pattern in _TOKEN_PATTERNS:
            match = pattern.match(text, position)
            if not match:
                continue
            value = match.group(0)
            if kind == "COMMENT":
                position = match.end()
                break
            if kind == "PNAME" and value.endswith("."):
                value = value.rstrip(".")
            end = position + len(value) if kind == "PNAME" else match.end()
            # Multi-line tokens (long strings) advance the line counter.
            newlines = text.count("\n", position, end)
            if newlines:
                end_line = line + newlines
                end_line_start = text.rindex("\n", position, end) + 1
            else:
                end_line = line
                end_line_start = line_start
            end_column = end - end_line_start + 1
            if kind == "WORD":
                upper = value.upper()
                token_kind = "KEYWORD" if upper in KEYWORDS else "WORD"
                token_value = upper if upper in KEYWORDS else value
            elif kind in _STRING_KINDS:
                token_kind, token_value = "STRING", value
            else:
                token_kind, token_value = kind, value
            tokens.append(
                SparqlToken(token_kind, token_value, line, column, end_line, end_column)
            )
            line = end_line
            line_start = end_line_start
            position = end
            break
        else:
            raise SparqlLexError(f"unexpected character {ch!r}", line, column)

    tokens.append(SparqlToken("EOF", "", line, 1, line, 2))
    return tokens
