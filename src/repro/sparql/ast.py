"""Abstract syntax tree for SPARQL queries.

The AST mirrors the anatomy described in Section 3.1 of the paper:

* a *prologue* of PREFIX/BASE declarations,
* a *query result form* (SELECT variables / CONSTRUCT template / ASK),
* a *where clause* made of group graph patterns whose leaves are
  :class:`TriplesBlock` objects (the Basic Graph Patterns the rewriting
  algorithm operates on) plus :class:`Filter`, :class:`OptionalPattern`
  and :class:`UnionPattern` nodes,
* solution modifiers (DISTINCT/REDUCED, ORDER BY, LIMIT, OFFSET).

Expression nodes used inside FILTERs live in this module as well; their
evaluation semantics is implemented in :mod:`repro.sparql.expressions`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Iterable, Iterator, Sequence

from ..rdf import NamespaceManager, Term, Triple, Variable
from .tokenizer import SourceSpan

__all__ = [
    # expressions
    "Expression", "TermExpression", "VariableExpression", "BinaryExpression",
    "UnaryExpression", "FunctionCall", "ExistsExpression",
    # patterns
    "PatternElement", "TriplesBlock", "Filter", "OptionalPattern",
    "UnionPattern", "InlineData", "GroupGraphPattern", "GraphPattern",
    # query forms
    "Prologue", "OrderCondition", "SolutionModifiers",
    "Query", "SelectQuery", "AskQuery", "ConstructQuery",
]


# --------------------------------------------------------------------------- #
# Expressions
# --------------------------------------------------------------------------- #
class Expression:
    """Base class of FILTER expression nodes."""

    def variables(self) -> set[Variable]:
        """All variables mentioned by the expression."""
        return set()

    def map_terms(self, func) -> Expression:
        """Structurally rebuild the expression applying ``func`` to RDF terms."""
        return self


@dataclass(frozen=True)
class TermExpression(Expression):
    """A constant RDF term (URI or literal) appearing in an expression."""

    term: Term

    def variables(self) -> set[Variable]:
        return {self.term} if isinstance(self.term, Variable) else set()

    def map_terms(self, func) -> Expression:
        return TermExpression(func(self.term))


@dataclass(frozen=True)
class VariableExpression(Expression):
    """A variable reference inside an expression."""

    variable: Variable

    def variables(self) -> set[Variable]:
        return {self.variable}

    def map_terms(self, func) -> Expression:
        mapped = func(self.variable)
        if isinstance(mapped, Variable):
            return VariableExpression(mapped)
        return TermExpression(mapped)


@dataclass(frozen=True)
class BinaryExpression(Expression):
    """A binary operator: ``||  &&  =  !=  <  >  <=  >=  +  -  *  /``."""

    operator: str
    left: Expression
    right: Expression

    def variables(self) -> set[Variable]:
        return self.left.variables() | self.right.variables()

    def map_terms(self, func) -> Expression:
        return BinaryExpression(self.operator, self.left.map_terms(func), self.right.map_terms(func))


@dataclass(frozen=True)
class UnaryExpression(Expression):
    """A unary operator: ``!``, unary ``-`` or unary ``+``."""

    operator: str
    operand: Expression

    def variables(self) -> set[Variable]:
        return self.operand.variables()

    def map_terms(self, func) -> Expression:
        return UnaryExpression(self.operator, self.operand.map_terms(func))


@dataclass(frozen=True)
class FunctionCall(Expression):
    """A built-in call (``BOUND``, ``REGEX``, ``STR``, ...) or extension function."""

    name: str
    arguments: tuple

    def __init__(self, name: str, arguments: Sequence[Expression]) -> None:
        object.__setattr__(self, "name", name.upper() if isinstance(name, str) else name)
        object.__setattr__(self, "arguments", tuple(arguments))

    def variables(self) -> set[Variable]:
        result: set[Variable] = set()
        for argument in self.arguments:
            result |= argument.variables()
        return result

    def map_terms(self, func) -> Expression:
        return FunctionCall(self.name, [a.map_terms(func) for a in self.arguments])


@dataclass(frozen=True)
class ExistsExpression(Expression):
    """``EXISTS { ... }`` / ``NOT EXISTS { ... }`` (SPARQL 1.1 convenience)."""

    group: GroupGraphPattern
    negated: bool = False

    def variables(self) -> set[Variable]:
        return self.group.variables()


# --------------------------------------------------------------------------- #
# Graph patterns
# --------------------------------------------------------------------------- #
class PatternElement:
    """Base class for the elements of a group graph pattern."""

    def variables(self) -> set[Variable]:
        return set()


class TriplesBlock(PatternElement):
    """A Basic Graph Pattern: an ordered block of triple patterns.

    This is the unit Algorithm 1 of the paper rewrites.  The block keeps
    insertion order so rewritten queries remain readable, but equality is
    order-insensitive (a BGP denotes a conjunction).
    """

    def __init__(self, patterns: Iterable[Triple] | None = None) -> None:
        self.patterns: list[Triple] = list(patterns) if patterns else []
        #: Source extent of each pattern, aligned with ``patterns``
        #: (``Triple`` is a frozen value type shared across blocks, so the
        #: positions live here).  ``None`` for programmatically built blocks.
        self.pattern_spans: list[SourceSpan | None] = [None] * len(self.patterns)
        self.span: SourceSpan | None = None

    def add(self, pattern: Triple, span: SourceSpan | None = None) -> TriplesBlock:
        self.patterns.append(pattern)
        self.pattern_spans.append(span)
        return self

    def span_of(self, index: int) -> SourceSpan | None:
        """The source extent of pattern ``index``, if the block was parsed."""
        if 0 <= index < len(self.pattern_spans):
            return self.pattern_spans[index]
        return None

    def variables(self) -> set[Variable]:
        result: set[Variable] = set()
        for pattern in self.patterns:
            result |= pattern.variables()
        return result

    def __iter__(self) -> Iterator[Triple]:
        return iter(self.patterns)

    def __len__(self) -> int:
        return len(self.patterns)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, TriplesBlock) and set(self.patterns) == set(other.patterns)

    def __hash__(self) -> int:  # pragma: no cover - blocks are mutable
        return id(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TriplesBlock({self.patterns!r})"


@dataclass
class Filter(PatternElement):
    """A FILTER constraint attached to a group."""

    expression: Expression
    span: SourceSpan | None = field(default=None, compare=False)

    def variables(self) -> set[Variable]:
        return self.expression.variables()


@dataclass
class OptionalPattern(PatternElement):
    """An OPTIONAL group."""

    group: GroupGraphPattern
    span: SourceSpan | None = field(default=None, compare=False)

    def variables(self) -> set[Variable]:
        return self.group.variables()


@dataclass
class UnionPattern(PatternElement):
    """A UNION of two or more groups."""

    alternatives: list[GroupGraphPattern]
    span: SourceSpan | None = field(default=None, compare=False)

    def variables(self) -> set[Variable]:
        result: set[Variable] = set()
        for alternative in self.alternatives:
            result |= alternative.variables()
        return result


class InlineData(PatternElement):
    """A ``VALUES`` block: an inline table of solution bindings.

    ``columns`` lists the variables; each row is a tuple of terms aligned
    with ``columns``, with ``None`` standing for ``UNDEF``.  The block
    joins with the rest of its group exactly like a table of precomputed
    solutions — this is what the federation layer's *bound joins* ship to
    remote endpoints so they only evaluate a pattern against the bindings
    already produced by earlier join steps.
    """

    def __init__(
        self,
        columns: Iterable[Variable],
        rows: Iterable[Sequence[Term | None]] = (),
    ) -> None:
        self.columns: list[Variable] = list(columns)
        self.rows: list[tuple] = [tuple(row) for row in rows]
        self.span: SourceSpan | None = None
        for row in self.rows:
            if len(row) != len(self.columns):
                raise ValueError(
                    f"VALUES row width {len(row)} does not match "
                    f"{len(self.columns)} variables"
                )

    def add_row(self, row: Sequence[Term | None]) -> InlineData:
        if len(row) != len(self.columns):
            raise ValueError(
                f"VALUES row width {len(row)} does not match "
                f"{len(self.columns)} variables"
            )
        self.rows.append(tuple(row))
        return self

    def variables(self) -> set[Variable]:
        return set(self.columns)

    def __len__(self) -> int:
        return len(self.rows)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, InlineData)
            and self.columns == other.columns
            and self.rows == other.rows
        )

    def __hash__(self) -> int:  # pragma: no cover - blocks are mutable
        return id(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"InlineData({self.columns!r}, {len(self.rows)} rows)"


class GroupGraphPattern(PatternElement):
    """A ``{ ... }`` group: an ordered list of pattern elements."""

    def __init__(self, elements: Iterable[PatternElement] | None = None) -> None:
        self.elements: list[PatternElement] = list(elements) if elements else []
        self.span: SourceSpan | None = None

    def add(self, element: PatternElement) -> GroupGraphPattern:
        self.elements.append(element)
        return self

    def variables(self) -> set[Variable]:
        result: set[Variable] = set()
        for element in self.elements:
            result |= element.variables()
        return result

    def triples_blocks(self) -> Iterator[TriplesBlock]:
        """Yield every :class:`TriplesBlock` nested anywhere in the group.

        This is the traversal the query rewriter uses to locate all BGPs,
        including those inside OPTIONAL and UNION branches.
        """
        for element in self.elements:
            if isinstance(element, TriplesBlock):
                yield element
            elif isinstance(element, GroupGraphPattern):
                yield from element.triples_blocks()
            elif isinstance(element, OptionalPattern):
                yield from element.group.triples_blocks()
            elif isinstance(element, UnionPattern):
                for alternative in element.alternatives:
                    yield from alternative.triples_blocks()

    def filters(self) -> Iterator[Filter]:
        """Yield every FILTER nested anywhere in the group."""
        for element in self.elements:
            if isinstance(element, Filter):
                yield element
            elif isinstance(element, GroupGraphPattern):
                yield from element.filters()
            elif isinstance(element, OptionalPattern):
                yield from element.group.filters()
            elif isinstance(element, UnionPattern):
                for alternative in element.alternatives:
                    yield from alternative.filters()

    def all_triple_patterns(self) -> list[Triple]:
        """Flat list of every triple pattern in the group (all BGPs)."""
        patterns: list[Triple] = []
        for block in self.triples_blocks():
            patterns.extend(block.patterns)
        return patterns

    def __iter__(self) -> Iterator[PatternElement]:
        return iter(self.elements)

    def __len__(self) -> int:
        return len(self.elements)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"GroupGraphPattern({self.elements!r})"


#: Alias used in type annotations across the code base.
GraphPattern = GroupGraphPattern | PatternElement


# --------------------------------------------------------------------------- #
# Query forms
# --------------------------------------------------------------------------- #
@dataclass
class Prologue:
    """PREFIX/BASE declarations of a query."""

    namespace_manager: NamespaceManager = field(default_factory=lambda: NamespaceManager(install_defaults=False))
    base: str | None = None

    def bind(self, prefix: str, namespace: str) -> None:
        self.namespace_manager.bind(prefix, namespace)

    def copy(self) -> Prologue:
        return Prologue(self.namespace_manager.copy(), self.base)


@dataclass
class OrderCondition:
    """A single ORDER BY condition."""

    expression: Expression
    descending: bool = False
    span: SourceSpan | None = field(default=None, compare=False)


@dataclass
class SolutionModifiers:
    """DISTINCT/REDUCED, ORDER BY, LIMIT and OFFSET."""

    distinct: bool = False
    reduced: bool = False
    order_by: list[OrderCondition] = field(default_factory=list)
    limit: int | None = None
    offset: int | None = None

    def copy(self) -> SolutionModifiers:
        return SolutionModifiers(
            distinct=self.distinct,
            reduced=self.reduced,
            order_by=list(self.order_by),
            limit=self.limit,
            offset=self.offset,
        )


class Query:
    """Base class of the three query forms."""

    def __init__(self, prologue: Prologue, where: GroupGraphPattern,
                 modifiers: SolutionModifiers | None = None) -> None:
        self.prologue = prologue
        self.where = where
        self.modifiers = modifiers or SolutionModifiers()
        #: Extent of the whole query text when parsed, else ``None``.
        self.span: SourceSpan | None = None

    # -- introspection used by the rewriter --------------------------------- #
    def triples_blocks(self) -> Iterator[TriplesBlock]:
        """All BGPs of the WHERE clause."""
        return self.where.triples_blocks()

    def filters(self) -> Iterator[Filter]:
        """All FILTERs of the WHERE clause."""
        return self.where.filters()

    def all_triple_patterns(self) -> list[Triple]:
        return self.where.all_triple_patterns()

    def variables(self) -> set[Variable]:
        return self.where.variables()

    def serialize(self) -> str:
        """Render the query back to SPARQL text."""
        from .serializer import serialize_query

        return serialize_query(self)

    def __str__(self) -> str:
        return self.serialize()


class SelectQuery(Query):
    """A SELECT query.

    ``projection`` is the list of requested variables; an empty list means
    ``SELECT *`` (project every visible variable).
    """

    def __init__(
        self,
        prologue: Prologue,
        projection: Sequence[Variable],
        where: GroupGraphPattern,
        modifiers: SolutionModifiers | None = None,
        projection_spans: Sequence[SourceSpan | None] | None = None,
    ) -> None:
        super().__init__(prologue, where, modifiers)
        self.projection: list[Variable] = list(projection)
        #: Source extent of each projected variable, aligned with
        #: ``projection`` (``None`` entries for programmatically built queries).
        self.projection_spans: list[SourceSpan | None] = (
            list(projection_spans)
            if projection_spans is not None
            else [None] * len(self.projection)
        )

    @property
    def select_all(self) -> bool:
        """True for ``SELECT *``."""
        return not self.projection

    def effective_projection(self) -> list[Variable]:
        """The projected variables, expanding ``*`` to all visible variables."""
        if self.projection:
            return list(self.projection)
        return sorted(self.where.variables(), key=str)


class AskQuery(Query):
    """An ASK query (boolean result)."""


class ConstructQuery(Query):
    """A CONSTRUCT query with a template of triple patterns."""

    def __init__(
        self,
        prologue: Prologue,
        template: Sequence[Triple],
        where: GroupGraphPattern,
        modifiers: SolutionModifiers | None = None,
    ) -> None:
        super().__init__(prologue, where, modifiers)
        self.template: list[Triple] = list(template)
