"""Static semantic analysis of SPARQL queries.

The analyzer runs over the parsed AST *before* any engine executes and
emits structured :class:`Diagnostic` objects, each carrying a stable
code, a severity and an exact :class:`~repro.sparql.tokenizer.SourceSpan`.
It exists because the mediator's rewriting pipeline can silently produce
queries that never answer — variables that fall out of scope, filters
over terms an alignment rewrote away, literals migrated into subject
position — and the first report of that used to come from deep inside
the execution engine or, worse, from a remote endpoint.

Severity taxonomy
-----------------

``error``
    The query can never produce the intended answer as written
    (projecting a variable that no pattern binds, a literal in subject
    or predicate position).  ``QueryEvaluator(strict=True)`` and the
    HTTP server's strict mode refuse these with
    :class:`QueryAnalysisError`.
``warning``
    The query is legal but almost certainly wrong or wasteful: a
    constant-false FILTER (the group is provably empty), a disconnected
    basic graph pattern (cartesian product), a statically ill-typed
    expression, a pattern no registered dataset can answer.
``info``
    Style and planning hints: unused variables, constant-true filters,
    constructs that force the federation layer's fan-out fallback.

Besides diagnostics the analyzer produces machine-consumable facts the
execution layers feed on: per-query certain/possible variable scopes,
constant-folded FILTER values, and a *provably empty* verdict that lets
:class:`~repro.sparql.evaluator.QueryEvaluator` and the federation
decomposer answer without a single index lookup or endpoint request.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Iterator, Sequence
from typing import Any

from ..rdf import BNode, Literal, Triple, URIRef, Variable, XSD
from ..rdf.terms import _NUMERIC_DATATYPES
from .ast import (
    AskQuery,
    BinaryExpression,
    ConstructQuery,
    ExistsExpression,
    Expression,
    Filter,
    FunctionCall,
    GroupGraphPattern,
    InlineData,
    OptionalPattern,
    Query,
    SelectQuery,
    TermExpression,
    TriplesBlock,
    UnaryExpression,
    UnionPattern,
)
from .expressions import ExpressionError, effective_boolean_value, evaluate_expression
from .results import Binding
from .tokenizer import SourceSpan

__all__ = [
    "Diagnostic",
    "AnalysisResult",
    "FederationAnalysis",
    "QueryAnalysisError",
    "DIAGNOSTIC_CODES",
    "SEVERITY_ERROR",
    "SEVERITY_WARNING",
    "SEVERITY_INFO",
    "analyze_query",
    "analyze_federation",
    "prune_query",
    "render_diagnostics",
]

SEVERITY_ERROR = "error"
SEVERITY_WARNING = "warning"
SEVERITY_INFO = "info"

#: Every diagnostic code the analyzer can emit, with its fixed severity
#: and a one-line description.  Codes are stable across releases: tests,
#: CI gates and API clients key on them.
DIAGNOSTIC_CODES: dict[str, tuple[str, str]] = {
    "SQA101": (SEVERITY_ERROR, "projection references a variable no pattern can bind"),
    "SQA102": (SEVERITY_ERROR, "ORDER BY references a variable no pattern can bind"),
    "SQA103": (SEVERITY_ERROR, "FILTER references a variable no pattern can bind"),
    "SQA104": (SEVERITY_INFO, "variable is bound but never used"),
    "SQA105": (SEVERITY_ERROR, "literal in subject position can never match"),
    "SQA106": (SEVERITY_ERROR, "literal in predicate position can never match"),
    "SQA107": (SEVERITY_WARNING, "disconnected basic graph pattern (cartesian product)"),
    "SQA108": (SEVERITY_WARNING, "FILTER is constant false: the group is provably empty"),
    "SQA109": (SEVERITY_INFO, "FILTER is constant true (redundant)"),
    "SQA110": (SEVERITY_WARNING, "statically ill-typed expression"),
    "SQA111": (SEVERITY_WARNING, "VALUES block has no rows: the group is provably empty"),
    "SQA201": (SEVERITY_WARNING, "triple pattern matches no registered dataset"),
    "SQA202": (SEVERITY_INFO, "query shape forces the fan-out federation fallback"),
}

#: Fallback extent used when a programmatically-built AST node carries no
#: source position (rewritten queries share this with the query start).
_FALLBACK_SPAN = SourceSpan(1, 1, 1, 2)


@dataclass(frozen=True)
class Diagnostic:
    """One analyzer finding: stable code, severity, message and extent."""

    code: str
    severity: str
    message: str
    span: SourceSpan
    hint: str | None = None

    def render(self, source: str | None = None) -> str:
        """``source:line:col: severity[code] message`` (one line)."""
        prefix = f"{source}:" if source else ""
        text = (
            f"{prefix}{self.span.line}:{self.span.column}: "
            f"{self.severity}[{self.code}] {self.message}"
        )
        if self.hint:
            text += f" ({self.hint})"
        return text

    def to_json_dict(self) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "code": self.code,
            "severity": self.severity,
            "message": self.message,
            "span": {
                "line": self.span.line,
                "column": self.span.column,
                "end_line": self.span.end_line,
                "end_column": self.span.end_column,
            },
        }
        if self.hint:
            payload["hint"] = self.hint
        return payload


class QueryAnalysisError(ValueError):
    """Raised in strict mode when analysis finds error-severity findings."""

    def __init__(self, diagnostics: Sequence[Diagnostic]) -> None:
        self.diagnostics: list[Diagnostic] = list(diagnostics)
        errors = [d for d in self.diagnostics if d.severity == SEVERITY_ERROR]
        summary = "; ".join(d.render() for d in errors[:3]) or "query rejected by analysis"
        if len(errors) > 3:
            summary += f" (+{len(errors) - 3} more)"
        super().__init__(summary)


@dataclass
class AnalysisResult:
    """Diagnostics plus the machine-consumable facts execution feeds on."""

    query: Query
    diagnostics: list[Diagnostic] = field(default_factory=list)
    #: Variables bound in every solution of the WHERE clause.
    certain_variables: frozenset[Variable] = frozenset()
    #: Variables bound in at least some solution (OPTIONAL/UNION arms).
    possible_variables: frozenset[Variable] = frozenset()
    #: Constant-folded FILTER truth, keyed by ``id()`` of the Filter node.
    constant_filters: dict[int, bool] = field(default_factory=dict)
    #: True when the WHERE clause provably yields no solutions.
    provably_empty: bool = False
    empty_reason: str | None = None

    @property
    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == SEVERITY_ERROR]

    @property
    def warnings(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == SEVERITY_WARNING]

    @property
    def infos(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == SEVERITY_INFO]

    @property
    def has_errors(self) -> bool:
        return any(d.severity == SEVERITY_ERROR for d in self.diagnostics)

    def to_json_list(self) -> list[dict[str, Any]]:
        return [d.to_json_dict() for d in self.diagnostics]


@dataclass
class FederationAnalysis:
    """Federation-level findings: per-pattern source candidacy.

    ``pattern_sources`` holds one entry per source-level triple pattern
    (a :class:`~repro.federation.decompose.PatternSources`); it is empty
    when the query shape forces the fan-out fallback.
    """

    diagnostics: list[Diagnostic] = field(default_factory=list)
    pattern_sources: list[Any] = field(default_factory=list)
    empty_reason: str | None = None
    fallback_reason: str | None = None
    #: ASK probes issued while deciding candidacy.
    probes: int = 0


# --------------------------------------------------------------------------- #
# Variable scoping
# --------------------------------------------------------------------------- #
def group_scopes(group: GroupGraphPattern) -> tuple[set[Variable], set[Variable]]:
    """``(certain, possible)`` variable sets of one group graph pattern.

    *Certain* variables are bound in every solution the group produces;
    *possible* variables are bound in at least one.  OPTIONAL bodies
    contribute only possible variables, a UNION binds certainly only what
    every branch binds, and a VALUES column is certain only when no row
    leaves it UNDEF — the same rules the algebra-level planner applies.
    """
    certain: set[Variable] = set()
    possible: set[Variable] = set()
    for element in group.elements:
        if isinstance(element, TriplesBlock):
            block_vars = element.variables()
            certain |= block_vars
            possible |= block_vars
        elif isinstance(element, GroupGraphPattern):
            inner_certain, inner_possible = group_scopes(element)
            certain |= inner_certain
            possible |= inner_possible
        elif isinstance(element, OptionalPattern):
            possible |= group_scopes(element.group)[1]
        elif isinstance(element, UnionPattern):
            branch_certain: set[Variable] | None = None
            for alternative in element.alternatives:
                alt_certain, alt_possible = group_scopes(alternative)
                possible |= alt_possible
                branch_certain = (
                    alt_certain if branch_certain is None else branch_certain & alt_certain
                )
            certain |= branch_certain or set()
        elif isinstance(element, InlineData):
            possible |= set(element.columns)
            for index, column in enumerate(element.columns):
                if element.rows and all(row[index] is not None for row in element.rows):
                    certain.add(column)
    return certain, possible


# --------------------------------------------------------------------------- #
# Constant folding
# --------------------------------------------------------------------------- #
def _contains_exists(expression: Expression) -> bool:
    if isinstance(expression, ExistsExpression):
        return True
    if isinstance(expression, BinaryExpression):
        return _contains_exists(expression.left) or _contains_exists(expression.right)
    if isinstance(expression, UnaryExpression):
        return _contains_exists(expression.operand)
    if isinstance(expression, FunctionCall):
        return any(_contains_exists(argument) for argument in expression.arguments)
    return False


def fold_constant(expression: Expression) -> bool | None:
    """The effective boolean value of a variable-free expression.

    Returns ``None`` when the expression cannot be folded (it mentions a
    variable or an EXISTS group, which needs a graph).  A SPARQL
    expression error on constants is deterministic — the filter rejects
    every row — so it folds to ``False`` exactly as it would at runtime.
    """
    if expression.variables() or _contains_exists(expression):
        return None
    try:
        return effective_boolean_value(evaluate_expression(expression, Binding()))
    except ExpressionError:
        return False


# --------------------------------------------------------------------------- #
# Static expression typing
# --------------------------------------------------------------------------- #
_TYPE_NUMERIC = "numeric"
_TYPE_STRING = "string"
_TYPE_BOOLEAN = "boolean"
_TYPE_IRI = "iri"

_COMPARABLE = {_TYPE_NUMERIC, _TYPE_STRING, _TYPE_BOOLEAN}
_ARITHMETIC_OPERATORS = {"+", "-", "*", "/"}
_ORDERING_OPERATORS = {"<", ">", "<=", ">="}


def _literal_type(literal: Literal) -> str | None:
    if literal.lang is not None:
        return _TYPE_STRING
    datatype = literal.datatype
    if datatype is None or str(datatype) == str(XSD.string):
        return _TYPE_STRING
    if str(datatype) in _NUMERIC_DATATYPES:
        return _TYPE_NUMERIC
    if str(datatype) == str(XSD.boolean):
        return _TYPE_BOOLEAN
    return None  # unknown datatype: assume nothing statically.


def _static_type(expression: Expression) -> str | None:
    """The statically-known value category of an expression, if any."""
    if isinstance(expression, TermExpression):
        term = expression.term
        if isinstance(term, (URIRef, BNode)):
            return _TYPE_IRI
        if isinstance(term, Literal):
            return _literal_type(term)
        return None
    if isinstance(expression, BinaryExpression):
        if expression.operator in _ARITHMETIC_OPERATORS:
            return _TYPE_NUMERIC
        return _TYPE_BOOLEAN
    if isinstance(expression, UnaryExpression):
        if expression.operator == "!":
            return _TYPE_BOOLEAN
        return _TYPE_NUMERIC
    if isinstance(expression, FunctionCall):
        name = expression.name
        if name in ("STR", "LANG"):
            return _TYPE_STRING
        if name == "DATATYPE":
            return _TYPE_IRI
        if name in ("BOUND", "REGEX", "LANGMATCHES", "ISURI", "ISIRI",
                    "ISLITERAL", "ISBLANK", "SAMETERM"):
            return _TYPE_BOOLEAN
    return None


def _iter_subexpressions(expression: Expression) -> Iterator[Expression]:
    yield expression
    if isinstance(expression, BinaryExpression):
        yield from _iter_subexpressions(expression.left)
        yield from _iter_subexpressions(expression.right)
    elif isinstance(expression, UnaryExpression):
        yield from _iter_subexpressions(expression.operand)
    elif isinstance(expression, FunctionCall):
        for argument in expression.arguments:
            yield from _iter_subexpressions(argument)


def _expression_text(expression: Expression, query: Query | None = None) -> str:
    from .serializer import serialize_expression

    manager = query.prologue.namespace_manager if query is not None else None
    return serialize_expression(expression, manager)


# --------------------------------------------------------------------------- #
# The analyzer
# --------------------------------------------------------------------------- #
class _Analyzer:
    def __init__(self, query: Query, graph: Any = None) -> None:
        self.query = query
        self.graph = graph
        self.result = AnalysisResult(query=query)

    # -- helpers ----------------------------------------------------------- #
    def _span(self, span: SourceSpan | None) -> SourceSpan:
        if span is not None:
            return span
        if self.query.span is not None:
            return SourceSpan(self.query.span.line, self.query.span.column,
                              self.query.span.line, self.query.span.column + 1)
        return _FALLBACK_SPAN

    def emit(self, code: str, message: str, span: SourceSpan | None,
             hint: str | None = None) -> None:
        severity = DIAGNOSTIC_CODES[code][0]
        self.result.diagnostics.append(
            Diagnostic(code, severity, message, self._span(span), hint)
        )

    # -- driver ------------------------------------------------------------ #
    def run(self) -> AnalysisResult:
        certain, possible = group_scopes(self.query.where)
        self.result.certain_variables = frozenset(certain)
        self.result.possible_variables = frozenset(possible)

        self._check_projection(possible)
        self._check_order_by(possible)
        self._check_filters(possible)
        self._check_unused(possible)
        self._check_pattern_terms()
        self._check_cartesian()
        empty_reason = self._group_empty_reason(self.query.where)
        if empty_reason is not None:
            self.result.provably_empty = True
            self.result.empty_reason = empty_reason
        self.result.diagnostics.sort(
            key=lambda d: (d.span.line, d.span.column, d.code)
        )
        return self.result

    # -- never-bound variables --------------------------------------------- #
    def _check_projection(self, possible: set[Variable]) -> None:
        if not isinstance(self.query, SelectQuery) or self.query.select_all:
            return
        for index, variable in enumerate(self.query.projection):
            if variable not in possible:
                span = None
                if index < len(self.query.projection_spans):
                    span = self.query.projection_spans[index]
                self.emit(
                    "SQA101",
                    f"projected variable ?{variable.name} is never bound by the "
                    f"WHERE clause",
                    span,
                    hint=self._nearest_hint(variable, possible),
                )

    def _check_order_by(self, possible: set[Variable]) -> None:
        for condition in self.query.modifiers.order_by:
            for variable in sorted(condition.expression.variables(), key=str):
                if variable not in possible:
                    self.emit(
                        "SQA102",
                        f"ORDER BY references ?{variable.name}, which is never "
                        f"bound by the WHERE clause",
                        condition.span,
                        hint=self._nearest_hint(variable, possible),
                    )

    def _check_filters(self, possible: set[Variable]) -> None:
        for filter_element in self._all_filters(self.query.where):
            for variable in sorted(filter_element.expression.variables(), key=str):
                if variable not in possible:
                    self.emit(
                        "SQA103",
                        f"FILTER references ?{variable.name}, which is never "
                        f"bound by the WHERE clause",
                        filter_element.span,
                        hint=self._nearest_hint(variable, possible),
                    )
            self._check_expression_types(filter_element.expression, filter_element.span)
        for condition in self.query.modifiers.order_by:
            self._check_expression_types(condition.expression, condition.span)

    @staticmethod
    def _nearest_hint(variable: Variable, candidates: set[Variable]) -> str | None:
        """Suggest a bound variable differing only by an edit-adjacent name."""
        needle = variable.name.lower()
        best: str | None = None
        for candidate in sorted(candidates, key=str):
            name = candidate.name.lower()
            if name == needle:
                continue
            if _edit_distance_at_most_two(needle, name):
                best = candidate.name
                break
        return f"did you mean ?{best}?" if best else None

    def _all_filters(self, group: GroupGraphPattern) -> Iterator[Filter]:
        yield from group.filters()

    # -- unused variables --------------------------------------------------- #
    def _check_unused(self, possible: set[Variable]) -> None:
        if isinstance(self.query, AskQuery):
            return  # every pattern variable is an existence wildcard in ASK.
        if isinstance(self.query, SelectQuery) and self.query.select_all:
            return  # SELECT * projects everything.

        mentions: dict[Variable, int] = {}
        first_span: dict[Variable, SourceSpan | None] = {}
        for block in self.query.where.triples_blocks():
            for index, pattern in enumerate(block.patterns):
                for term in pattern:
                    if isinstance(term, Variable):
                        mentions[term] = mentions.get(term, 0) + 1
                        first_span.setdefault(term, block.span_of(index))
        for element in self._all_inline_data(self.query.where):
            for column in element.columns:
                mentions[column] = mentions.get(column, 0) + 1
                first_span.setdefault(column, element.span)

        used: set[Variable] = set()
        if isinstance(self.query, SelectQuery):
            used |= set(self.query.projection)
        if isinstance(self.query, ConstructQuery):
            for pattern in self.query.template:
                used |= pattern.variables()
        for filter_element in self.query.where.filters():
            used |= filter_element.expression.variables()
        for condition in self.query.modifiers.order_by:
            used |= condition.expression.variables()

        for variable in sorted(mentions, key=str):
            if mentions[variable] == 1 and variable not in used:
                self.emit(
                    "SQA104",
                    f"variable ?{variable.name} is bound but never used "
                    f"(not projected, filtered, ordered on, or joined)",
                    first_span.get(variable),
                )

    def _all_inline_data(self, group: GroupGraphPattern) -> Iterator[InlineData]:
        for element in group.elements:
            if isinstance(element, InlineData):
                yield element
            elif isinstance(element, GroupGraphPattern):
                yield from self._all_inline_data(element)
            elif isinstance(element, OptionalPattern):
                yield from self._all_inline_data(element.group)
            elif isinstance(element, UnionPattern):
                for alternative in element.alternatives:
                    yield from self._all_inline_data(alternative)

    # -- impossible pattern terms ------------------------------------------- #
    def _check_pattern_terms(self) -> None:
        for block in self.query.where.triples_blocks():
            for index, pattern in enumerate(block.patterns):
                span = block.span_of(index)
                if isinstance(pattern.subject, Literal):
                    self.emit(
                        "SQA105",
                        f"literal {pattern.subject.n3()} in subject position "
                        f"matches nothing (RDF has no literal subjects)",
                        span,
                    )
                if isinstance(pattern.predicate, Literal):
                    self.emit(
                        "SQA106",
                        f"literal {pattern.predicate.n3()} in predicate position "
                        f"matches nothing (RDF predicates are IRIs)",
                        span,
                    )

    # -- disconnected BGPs --------------------------------------------------- #
    def _check_cartesian(self) -> None:
        for group in self._all_groups(self.query.where):
            patterns: list[Triple] = []
            spans: list[SourceSpan | None] = []
            for element in group.elements:
                if isinstance(element, TriplesBlock):
                    patterns.extend(element.patterns)
                    spans.extend(
                        element.span_of(i) for i in range(len(element.patterns))
                    )
            self._check_cartesian_patterns(patterns, spans)

    def _all_groups(self, group: GroupGraphPattern) -> Iterator[GroupGraphPattern]:
        yield group
        for element in group.elements:
            if isinstance(element, GroupGraphPattern):
                yield from self._all_groups(element)
            elif isinstance(element, OptionalPattern):
                yield from self._all_groups(element.group)
            elif isinstance(element, UnionPattern):
                for alternative in element.alternatives:
                    yield from self._all_groups(alternative)

    def _check_cartesian_patterns(
        self, patterns: list[Triple], spans: list[SourceSpan | None]
    ) -> None:
        # Ground patterns only scale the result by 0 or 1; they cannot
        # create a cartesian blow-up, so only variable-carrying patterns
        # participate in the connectivity check.
        indexed = [
            (index, pattern.variables())
            for index, pattern in enumerate(patterns)
            if pattern.variables()
        ]
        if len(indexed) < 2:
            return
        parent = {index: index for index, _ in indexed}

        def find(x: int) -> int:
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        by_variable: dict[Variable, int] = {}
        for index, variables in indexed:
            for variable in variables:
                if variable in by_variable:
                    ra, rb = find(by_variable[variable]), find(index)
                    parent[ra] = rb
                else:
                    by_variable[variable] = index
        components: dict[int, list[int]] = {}
        for index, _ in indexed:
            components.setdefault(find(index), []).append(index)
        if len(components) < 2:
            return

        sizes = [
            self._component_estimate([patterns[i] for i in members])
            for members in components.values()
        ]
        product: float | None = None
        if all(size is not None for size in sizes):
            product = 1.0
            for size in sizes:
                product *= size  # type: ignore[operator]
        message = (
            f"{len(components)} pattern groups share no variables: "
            f"the join is a cartesian product"
        )
        hint = (
            f"up to ~{int(product)} rows from this group alone"
            if product is not None
            else None
        )
        first = min(members[0] for members in components.values())
        self.emit("SQA107", message, spans[first] if first < len(spans) else None, hint)

    def _component_estimate(self, patterns: list[Triple]) -> float | None:
        """Upper-bound row estimate of one connected component via Graph.stats."""
        if self.graph is None or not hasattr(self.graph, "cardinality"):
            return None
        best: float | None = None
        for pattern in patterns:
            args = [
                term if not isinstance(term, (Variable, BNode)) else None
                for term in pattern
            ]
            try:
                count = float(self.graph.cardinality(*args))
            except Exception:  # noqa: BLE001 - stats are advisory only
                return None
            best = count if best is None else min(best, count)
        return best

    # -- constant folding and provable emptiness ----------------------------- #
    def _group_empty_reason(self, group: GroupGraphPattern) -> str | None:
        """A human-readable reason the group provably yields no solutions."""
        reason: str | None = None
        for element in group.elements:
            if isinstance(element, Filter):
                folded = fold_constant(element.expression)
                if folded is None:
                    continue
                self.result.constant_filters[id(element)] = folded
                text = _expression_text(element.expression, self.query)
                if folded:
                    self.emit(
                        "SQA109",
                        f"FILTER({text}) is always true and can be removed",
                        element.span,
                    )
                elif reason is None:
                    self.emit(
                        "SQA108",
                        f"FILTER({text}) is always false: this group can "
                        f"never produce a solution",
                        element.span,
                    )
                    reason = f"FILTER({text}) is always false"
                else:
                    self.emit(
                        "SQA108",
                        f"FILTER({text}) is always false: this group can "
                        f"never produce a solution",
                        element.span,
                    )
            elif isinstance(element, TriplesBlock):
                if reason is None:
                    for pattern in element.patterns:
                        if isinstance(pattern.subject, Literal) or isinstance(
                            pattern.predicate, Literal
                        ):
                            reason = (
                                "a triple pattern places a literal in subject or "
                                "predicate position and can never match"
                            )
                            break
            elif isinstance(element, GroupGraphPattern):
                inner = self._group_empty_reason(element)
                if inner is not None and reason is None:
                    reason = inner
            elif isinstance(element, UnionPattern):
                branch_reasons = [
                    self._group_empty_reason(alternative)
                    for alternative in element.alternatives
                ]
                if all(r is not None for r in branch_reasons) and reason is None:
                    reason = f"every UNION branch is empty ({branch_reasons[0]})"
            elif isinstance(element, OptionalPattern):
                # An empty OPTIONAL body never removes solutions; still walk
                # it so its filters get folded and diagnosed.
                self._group_empty_reason(element.group)
            elif isinstance(element, InlineData):
                if not element.rows:
                    self.emit(
                        "SQA111",
                        "VALUES block has no rows: this group can never "
                        "produce a solution",
                        element.span,
                    )
                    if reason is None:
                        reason = "a VALUES block has no rows"
        return reason

    # -- static typing -------------------------------------------------------- #
    def _check_expression_types(
        self, expression: Expression, span: SourceSpan | None
    ) -> None:
        for node in _iter_subexpressions(expression):
            if not isinstance(node, BinaryExpression):
                continue
            left_type = _static_type(node.left)
            right_type = _static_type(node.right)
            if node.operator in _ARITHMETIC_OPERATORS:
                for side, side_type in ((node.left, left_type), (node.right, right_type)):
                    if side_type in (_TYPE_IRI, _TYPE_STRING, _TYPE_BOOLEAN):
                        self.emit(
                            "SQA110",
                            f"arithmetic '{node.operator}' on "
                            f"{_expression_text(side, self.query)} ({side_type} operand): "
                            f"this always raises a SPARQL type error, so the "
                            f"filter rejects every row",
                            span,
                        )
            elif node.operator in _ORDERING_OPERATORS:
                if _TYPE_IRI in (left_type, right_type):
                    self.emit(
                        "SQA110",
                        f"ordering comparison '{node.operator}' on an IRI: "
                        f"IRIs admit only = and != in SPARQL",
                        span,
                    )
                elif (
                    left_type in _COMPARABLE
                    and right_type in _COMPARABLE
                    and left_type != right_type
                ):
                    self.emit(
                        "SQA110",
                        f"comparison '{node.operator}' between {left_type} and "
                        f"{right_type} operands always raises a SPARQL type "
                        f"error, so the filter rejects every row",
                        span,
                    )


def _edit_distance_at_most_two(a: str, b: str) -> bool:
    if abs(len(a) - len(b)) > 2:
        return False
    # Tiny bounded Levenshtein: queries have short variable names.
    previous = list(range(len(b) + 1))
    for i, ca in enumerate(a, start=1):
        current = [i]
        for j, cb in enumerate(b, start=1):
            current.append(min(
                previous[j] + 1,
                current[j - 1] + 1,
                previous[j - 1] + (ca != cb),
            ))
        if min(current) > 2:
            return False
        previous = current
    return previous[-1] <= 2


# --------------------------------------------------------------------------- #
# Public entry points
# --------------------------------------------------------------------------- #
def analyze_query(query: Query, graph: Any = None) -> AnalysisResult:
    """Statically analyze one parsed query.

    ``graph`` is optional; when given, its exact statistics size the
    cartesian-product warnings.  The analyzer never executes the query
    and never touches an endpoint.
    """
    return _Analyzer(query, graph).run()


def prune_query(query: Query, analysis: AnalysisResult) -> Query:
    """The query with analyzer-proven redundancy removed.

    Currently this drops constant-``true`` FILTERs (folded by
    :func:`analyze_query`); provably-empty groups are handled further up
    by compiling an empty plan instead.  Returns ``query`` unchanged when
    there is nothing to prune; the input AST is never mutated.
    """
    droppable = {
        key for key, value in analysis.constant_filters.items() if value
    }
    if not droppable:
        return query

    def rebuild_group(group: GroupGraphPattern) -> GroupGraphPattern:
        rebuilt = GroupGraphPattern()
        rebuilt.span = group.span
        for element in group.elements:
            if isinstance(element, Filter) and id(element) in droppable:
                continue
            if isinstance(element, GroupGraphPattern):
                rebuilt.add(rebuild_group(element))
            elif isinstance(element, OptionalPattern):
                rebuilt.add(
                    OptionalPattern(rebuild_group(element.group), span=element.span)
                )
            elif isinstance(element, UnionPattern):
                rebuilt.add(
                    UnionPattern(
                        [rebuild_group(a) for a in element.alternatives],
                        span=element.span,
                    )
                )
            else:
                rebuilt.add(element)
        return rebuilt

    where = rebuild_group(query.where)
    pruned: Query
    if isinstance(query, SelectQuery):
        pruned = SelectQuery(
            query.prologue, query.projection, where, query.modifiers,
            query.projection_spans,
        )
    elif isinstance(query, AskQuery):
        pruned = AskQuery(query.prologue, where, query.modifiers)
    elif isinstance(query, ConstructQuery):
        pruned = ConstructQuery(query.prologue, query.template, where, query.modifiers)
    else:  # pragma: no cover - no other query forms exist
        return query
    pruned.span = query.span
    return pruned


def analyze_federation(
    query: Query,
    selector: Any,
    targets: Sequence[Any],
    source_ontology: URIRef | None = None,
    source_dataset: URIRef | None = None,
    mode: str = "bgp",
    analysis: AnalysisResult | None = None,
) -> FederationAnalysis:
    """Federation-level diagnostics for ``query`` over ``targets``.

    ``selector`` is a :class:`~repro.federation.decompose.SourceSelector`;
    ``targets`` the usable (breaker-closed) registered datasets.  The
    function surfaces, *before any endpoint sees the query*:

    * ``SQA201`` — a pattern whose VoID partitions rule out every
      registered dataset (the federated result is provably empty), and
    * ``SQA202`` — a query shape the decomposer cannot plan, forcing the
      fan-out fallback.

    When ``analysis`` (the local analysis of the same query) proves the
    query empty, source selection is skipped entirely — zero ASK probes.
    """
    from ..federation.decompose import PatternSources, _pattern_text, _supported_shape

    outcome = FederationAnalysis()
    if analysis is not None and analysis.provably_empty:
        outcome.empty_reason = analysis.empty_reason
        return outcome

    patterns, _filters, fallback = _supported_shape(query)
    if fallback is not None:
        outcome.fallback_reason = fallback
        outcome.diagnostics.append(
            Diagnostic(
                "SQA202",
                DIAGNOSTIC_CODES["SQA202"][0],
                f"the decomposer cannot plan this query ({fallback}); "
                f"it will fan out to every registered endpoint",
                _locate_fallback_span(query),
            )
        )
        return outcome

    span_by_pattern = _pattern_span_index(query)
    probes_before = getattr(selector, "probes_issued", 0)
    for pattern in patterns:
        sources = PatternSources(pattern)
        for target in targets:
            sources.decisions.append(
                selector.decide(pattern, target, source_ontology, source_dataset, mode)
            )
        outcome.pattern_sources.append(sources)
        if not sources.relevant_uris():
            reasons = "; ".join(
                f"{decision.dataset_uri}: {decision.reason}"
                for decision in sources.decisions[:3]
            )
            outcome.diagnostics.append(
                Diagnostic(
                    "SQA201",
                    DIAGNOSTIC_CODES["SQA201"][0],
                    f"pattern {_pattern_text(pattern)} matches no registered "
                    f"dataset: the federated result is provably empty",
                    span_by_pattern.get(pattern) or query.span or _FALLBACK_SPAN,
                    hint=reasons or None,
                )
            )
            if outcome.empty_reason is None:
                outcome.empty_reason = (
                    f"pattern {_pattern_text(pattern)} matches no registered dataset"
                )
    outcome.probes = getattr(selector, "probes_issued", 0) - probes_before
    return outcome


def _pattern_span_index(query: Query) -> dict[Triple, SourceSpan]:
    """First source span of each distinct triple pattern in the WHERE clause."""
    spans: dict[Triple, SourceSpan] = {}
    for block in query.where.triples_blocks():
        for index, pattern in enumerate(block.patterns):
            span = block.span_of(index)
            if span is not None and pattern not in spans:
                spans[pattern] = span
    return spans


def _locate_fallback_span(query: Query) -> SourceSpan:
    """The span of the first construct that forces the fan-out fallback."""
    for element in query.where.elements:
        if isinstance(element, (TriplesBlock, Filter)):
            continue
        span = getattr(element, "span", None)
        if span is not None:
            return span
    return query.span or _FALLBACK_SPAN


def render_diagnostics(
    diagnostics: Sequence[Diagnostic], source: str | None = None
) -> str:
    """Multi-line text rendering, one diagnostic per line."""
    return "\n".join(diagnostic.render(source) for diagnostic in diagnostics)
