"""In-memory SPARQL query evaluation over :class:`repro.rdf.Graph`.

The evaluator implements the standard bottom-up semantics:

* BGP matching produces solution bindings by joining triple-pattern matches
  (with a greedy selectivity-based pattern ordering),
* group graph patterns combine element results with join / left-join
  (OPTIONAL) / union semantics,
* FILTER elements restrict the solutions of their enclosing group,
* solution modifiers apply DISTINCT, ORDER BY, OFFSET and LIMIT,
* SELECT projects, ASK checks emptiness, CONSTRUCT instantiates templates.

This substrate plays the role of the remote SPARQL endpoints of the
original deployment (ARQ over Jena behind HTTP): the federation layer runs
rewritten queries against it.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence

from ..obs.export import SINK
from ..obs.slowlog import SLOW_LOG
from ..obs.trace import get_tracer
from ..rdf import BNode, Graph, Literal, Term, Triple, URIRef, Variable, fresh_bnode
from .ast import (
    AskQuery,
    ConstructQuery,
    Filter,
    GroupGraphPattern,
    InlineData,
    OptionalPattern,
    Query,
    SelectQuery,
    TriplesBlock,
    UnionPattern,
)
from .expressions import ExpressionError, evaluate_expression, expression_satisfied
from .parser import parse_query
from .results import AskResult, Binding, ResultSet

__all__ = [
    "ENGINES",
    "QueryEvaluator",
    "evaluate_query",
    "evaluate_group",
    "match_bgp",
    "ordered_bgp_patterns",
]


# --------------------------------------------------------------------------- #
# BGP matching
# --------------------------------------------------------------------------- #
#: Name prefix of the internal variables standing in for query blank nodes.
#: Shared by the naive evaluator and the planner (both must bind and hide
#: blank-node positions identically).
BNODE_ANCHOR_PREFIX = "__bnode_"


def bnode_anchor(term: BNode) -> Variable:
    """The internal variable standing in for a query blank node."""
    return Variable(f"{BNODE_ANCHOR_PREFIX}{term.value}")


def _pattern_selectivity(pattern: Triple, bound_vars: set) -> int:
    """Lower numbers mean more selective (more ground/bound positions)."""
    bound = 0
    for term in pattern:
        if isinstance(term, Variable):
            if term in bound_vars:
                bound += 1
        elif isinstance(term, BNode):
            if bnode_anchor(term) in bound_vars:
                bound += 1
        else:
            bound += 1
    return 3 - bound


def _pattern_binding_vars(pattern: Triple) -> set:
    """The variables (incl. blank-node anchors) a pattern match binds."""
    result = set()
    for term in pattern:
        if isinstance(term, Variable):
            result.add(term)
        elif isinstance(term, BNode):
            result.add(bnode_anchor(term))
    return result


def ordered_bgp_patterns(
    patterns: Sequence[Triple],
    initial: Binding | None = None,
) -> list[Triple]:
    """Deterministic greedy evaluation order for a BGP.

    The order is computed *once*, statically: repeatedly pick the most
    selective pattern under the variables bound so far (ground and
    already-bound positions count equally), breaking ties by the pattern's
    serialised text and then by input position.  This replaces the old
    per-round re-sort against ``solutions[0]``, whose tie handling depended
    on incidental list order — plan choice can no longer flip between runs
    or between equal-solution graphs.
    """
    bound_vars = set(initial or ())
    remaining = list(enumerate(patterns))
    ordered: list[Triple] = []
    while remaining:
        best = min(
            remaining,
            key=lambda item: (
                _pattern_selectivity(item[1], bound_vars),
                " ".join(term.n3() for term in item[1]),
                item[0],
            ),
        )
        remaining.remove(best)
        ordered.append(best[1])
        bound_vars |= _pattern_binding_vars(best[1])
    return ordered


def _match_triple(pattern: Triple, binding: Binding, graph) -> Iterator[Binding]:
    """All extensions of ``binding`` that match ``pattern`` against ``graph``.

    Blank nodes written in the query pattern behave as non-selective
    variables scoped to the query (standard SPARQL BGP semantics); a blank
    node that arrives through the *binding* (i.e. a variable already bound
    to a data blank node by an earlier pattern) is a concrete value and must
    match exactly.
    """

    def resolved(term: Term) -> Term | None:
        """The ground value this position must equal, or None when free."""
        if isinstance(term, Variable):
            return binding.get_term(term)
        if isinstance(term, BNode):
            return binding.get_term(bnode_anchor(term))
        return term

    lookup_subject = resolved(pattern.subject)
    lookup_predicate = resolved(pattern.predicate)
    lookup_object = resolved(pattern.object)

    for triple in graph.triples(lookup_subject, lookup_predicate, lookup_object):
        extended: Binding | None = binding
        for pattern_term, data_term in zip(pattern, triple, strict=True):
            if isinstance(pattern_term, Variable):
                key: Term = pattern_term
            elif isinstance(pattern_term, BNode):
                key = bnode_anchor(pattern_term)
            else:
                if pattern_term != data_term:
                    extended = None
                    break
                continue
            bound = extended.get_term(key)
            if bound is None:
                extended = extended.extend(key, data_term)
            elif bound != data_term:
                extended = None
                break
        if extended is not None:
            yield extended


def match_bgp(
    patterns: Sequence[Triple],
    graph,
    initial: Binding | None = None,
) -> Iterator[Binding]:
    """Match a Basic Graph Pattern (a conjunction of triple patterns)."""
    solutions: list[Binding] = [initial or Binding()]
    for pattern in ordered_bgp_patterns(patterns, initial):
        next_solutions: list[Binding] = []
        for solution in solutions:
            next_solutions.extend(_match_triple(pattern, solution, graph))
        solutions = next_solutions
        if not solutions:
            return iter(())
    return iter(solutions)


# --------------------------------------------------------------------------- #
# Group graph patterns
# --------------------------------------------------------------------------- #
def evaluate_group(
    group: GroupGraphPattern,
    graph,
    initial: Binding | None = None,
) -> list[Binding]:
    """Evaluate a group graph pattern, returning the list of solutions."""
    solutions: list[Binding] = [initial or Binding()]
    filters: list[Filter] = []

    for element in group.elements:
        if isinstance(element, Filter):
            # FILTERs scope over the whole group: apply after everything else.
            filters.append(element)
            continue
        solutions = _apply_element(element, solutions, graph)
        if not solutions and not filters:
            # Keep evaluating filters for error-freedom but no solutions remain.
            pass

    for filter_element in filters:
        solutions = [
            solution
            for solution in solutions
            if expression_satisfied(filter_element.expression, solution, graph)
        ]
    return solutions


def _apply_element(element, solutions: list[Binding], graph) -> list[Binding]:
    if isinstance(element, TriplesBlock):
        result: list[Binding] = []
        for solution in solutions:
            result.extend(match_bgp(element.patterns, graph, initial=solution))
        return result
    if isinstance(element, GroupGraphPattern):
        result = []
        for solution in solutions:
            result.extend(evaluate_group(element, graph, initial=solution))
        return result
    if isinstance(element, OptionalPattern):
        result = []
        for solution in solutions:
            extensions = evaluate_group(element.group, graph, initial=solution)
            if extensions:
                result.extend(extensions)
            else:
                result.append(solution)
        return result
    if isinstance(element, UnionPattern):
        result = []
        for solution in solutions:
            for alternative in element.alternatives:
                result.extend(evaluate_group(alternative, graph, initial=solution))
        return result
    if isinstance(element, InlineData):
        result = []
        for solution in solutions:
            for row in element.rows:
                extension = Binding({
                    variable: term
                    for variable, term in zip(element.columns, row, strict=True)
                    if term is not None
                })
                if solution.compatible(extension):
                    result.append(solution.merge(extension))
        return result
    raise TypeError(f"unsupported pattern element: {element!r}")


# --------------------------------------------------------------------------- #
# Query forms and modifiers
# --------------------------------------------------------------------------- #
#: Engines accepted by :class:`QueryEvaluator`.
#:
#: * ``planner`` — cost-based plan, batched (vectorized) execution
#: * ``naive`` — bottom-up group semantics, batched execution
#: * ``reference`` — the original dict-at-a-time bottom-up evaluator
#: * ``streaming`` — the original one-binding-at-a-time physical operators
#:
#: ``planner``/``naive`` share one operator layer (:mod:`repro.sparql.exec`);
#: ``reference``/``streaming`` are kept as independently-implemented oracles
#: for the differential tests.
ENGINES = ("planner", "naive", "reference", "streaming")


class QueryEvaluator:
    """Evaluate parsed queries (or query text) against a graph.

    By default queries run through the cost-based planner compiled onto the
    batched execution core (:mod:`repro.sparql.exec`): statistics-ordered
    index scans, pushed-down FILTERs, adaptive join reordering and
    early-terminating modifiers.  Pass ``use_planner=False`` (or
    ``engine="naive"``) for bottom-up group semantics on the same core, or
    pick the pre-refactor oracles with ``engine="reference"`` /
    ``engine="streaming"`` — the differential tests execute all engines and
    require identical solution multisets.
    """

    def __init__(
        self,
        graph: Graph,
        use_planner: bool = True,
        engine: str | None = None,
        exec_config=None,
        strict: bool = False,
        analysis: bool = True,
    ) -> None:
        self._graph = graph
        if engine is None:
            engine = "planner" if use_planner else "naive"
        if engine not in ENGINES:
            raise ValueError(
                f"unknown engine {engine!r}; expected one of {', '.join(ENGINES)}"
            )
        self.engine = engine
        self.use_planner = engine in ("planner", "streaming")
        self._exec_config = exec_config
        #: ``strict=True`` refuses queries with error-severity diagnostics
        #: (raising :class:`repro.sparql.analysis.QueryAnalysisError`);
        #: ``analysis=False`` disables the static analyzer entirely (no
        #: diagnostics, no constant folding, no provably-empty pruning).
        self.strict = strict
        self.analysis_enabled = analysis
        self._prepared: tuple | None = None
        # Evaluator construction is a configuration point: pick up any
        # change to REPRO_RUN_EVENTS made since the last refresh.
        SINK.refresh()

    # -- static analysis ------------------------------------------------------ #
    def _prepare(self, query: Query):
        """``(analysis, effective_query)`` for ``query``; cached per AST.

        ``effective_query`` has analyzer-proven redundancy (constant-true
        FILTERs) pruned; when analysis is disabled both are passthroughs.
        In strict mode error-severity diagnostics raise immediately.
        """
        from .analysis import QueryAnalysisError, analyze_query, prune_query

        if not self.analysis_enabled:
            return None, query
        if self._prepared is not None and self._prepared[0] is query:
            analysis, effective = self._prepared[1], self._prepared[2]
        else:
            analysis = analyze_query(query, self._graph)
            effective = prune_query(query, analysis)
            self._prepared = (query, analysis, effective)
        if self.strict and analysis.has_errors:
            raise QueryAnalysisError(analysis.diagnostics)
        return analysis, effective

    def _attach(self, result, analysis):
        if analysis is not None and hasattr(result, "diagnostics"):
            result.diagnostics = list(analysis.diagnostics)
        return result

    def _empty_result(
        self, query: Query, analysis
    ) -> ResultSet | AskResult | Graph:
        """The (empty) result of a provably-empty query — zero lookups."""
        if isinstance(query, SelectQuery):
            result: ResultSet | AskResult | Graph = ResultSet(
                query.effective_projection(), []
            )
        elif isinstance(query, AskQuery):
            result = AskResult(False)
        elif isinstance(query, ConstructQuery):
            result = Graph(namespace_manager=query.prologue.namespace_manager.copy())
        else:
            raise TypeError(f"unsupported query form: {type(query).__name__}")
        return self._attach(result, analysis)

    @property
    def graph(self) -> Graph:
        return self._graph

    def evaluate(self, query: Query | str) -> ResultSet | AskResult | Graph:
        """Evaluate a query; the result type depends on the query form."""
        if isinstance(query, str):
            query = parse_query(query)
        analysis, effective = self._prepare(query)
        if analysis is not None and analysis.provably_empty:
            # Zero index lookups: the analyzer proved emptiness statically.
            return self._empty_result(query, analysis)
        if isinstance(effective, SelectQuery):
            return self._attach(self._evaluate_select(effective), analysis)
        if isinstance(effective, AskQuery):
            return self._attach(self._evaluate_ask(effective), analysis)
        if isinstance(effective, ConstructQuery):
            return self._evaluate_construct(effective)
        raise TypeError(f"unsupported query form: {type(query).__name__}")

    def explain(self, query: Query | str) -> str:
        """EXPLAIN-style rendering of the physical plan for ``query``."""
        from .plan import explain_query

        return explain_query(query, self._graph)

    def analyze(self, query: Query | str):
        """EXPLAIN ANALYZE: evaluate ``query`` and return ``(result, event)``.

        The event is a :class:`repro.sparql.exec.QueryRunEvent` with
        per-operator rows/batches/wall-time and any adaptivity decisions;
        ``event.render()`` gives the human-readable report.  The reference
        and streaming oracles have no batched instrumentation, so they
        analyze through their batched equivalent (naive / planner).
        """
        text = query if isinstance(query, str) else None
        if isinstance(query, str):
            query = parse_query(query)
        analysis, effective = self._prepare(query)
        if analysis is not None and analysis.provably_empty:
            from .exec import compile_empty_query

            plan = compile_empty_query(
                query,
                self._graph,
                analysis.empty_reason or "analysis proved the query empty",
                self._exec_config,
                engine=self.engine,
            )
        else:
            plan = self._compile(effective)
        if isinstance(query, SelectQuery):
            rows = list(plan.bindings())
            result: ResultSet | AskResult | Graph = ResultSet(
                query.effective_projection(), rows
            )
        elif isinstance(query, AskQuery):
            result = AskResult(plan.first_binding() is not None)
        elif isinstance(query, ConstructQuery):
            result = _construct_graph(query, plan.bindings())
        else:
            raise TypeError(f"unsupported query form: {type(query).__name__}")
        self._attach(result, analysis)
        event = plan.run_event(text)
        return result, event

    def select(self, query: SelectQuery | str) -> ResultSet:
        """Evaluate a SELECT query (convenience wrapper with type checking)."""
        result = self.evaluate(query)
        if not isinstance(result, ResultSet):
            raise TypeError("query did not produce a SELECT result")
        return result

    # -- batched compilation --------------------------------------------------- #
    def _compile(self, query: Query):
        """Compile ``query`` onto the batched execution core."""
        from .exec import compile_naive_query, compile_planner_query

        with get_tracer().start_span(
            "planner.compile", {"engine": self.engine, "layer": "planner"}
        ) as span:
            if self.engine in ("planner", "streaming"):
                plan = compile_planner_query(query, self._graph, self._exec_config)
            else:
                plan = compile_naive_query(query, self._graph, self._exec_config)
            if span.recording:
                span.set_attribute("operators", len(plan.root.operator_stats()))
        return plan

    def _finish(self, plan, query: Query) -> None:
        """Post-execution hooks: run-event JSONL, operator spans, slow log.

        The batched executor carries no tracing code; per-operator spans
        are synthesized here from its existing ``operator_stats`` timing
        counters, so the hot loop is identical whether tracing is on or
        off.
        """
        from .exec import maybe_emit_event

        if SINK.enabled:
            maybe_emit_event(plan.run_event())
        tracer = get_tracer()
        trace_id: str | None = None
        if tracer.enabled:
            root = tracer.add_operator_spans(
                plan.root.operator_stats(), plan.engine, plan.elapsed
            )
            trace_id = root.trace_id or None
        if plan.elapsed >= SLOW_LOG.threshold:
            SLOW_LOG.record(
                query=type(query).__name__,
                elapsed=plan.elapsed,
                engine=plan.engine,
                layer="evaluator",
                trace_id=trace_id,
                plan=plan.report(),
            )

    # -- SELECT -------------------------------------------------------------- #
    def _evaluate_select(self, query: SelectQuery) -> ResultSet:
        projection = query.effective_projection()
        if self.engine == "streaming":
            from .plan import plan_query

            return ResultSet(projection, plan_query(query, self._graph).execute())
        if self.engine == "reference":
            solutions = evaluate_group(query.where, self._graph)

            def project(solution: Binding) -> Binding:
                return solution.project(
                    [v for v in projection if not v.name.startswith(BNODE_ANCHOR_PREFIX)]
                )

            solutions = self._apply_modifiers(query, solutions, project)
            return ResultSet(projection, solutions)
        plan = self._compile(query)
        result = ResultSet(projection, plan.bindings())
        self._finish(plan, query)
        return result

    def _apply_modifiers(
        self,
        query: Query,
        solutions: list[Binding],
        project=None,
    ) -> list[Binding]:
        """Solution modifiers in standard SPARQL order.

        ORDER BY sorts the full solutions (it may reference non-projected
        variables), then the projection is applied, then DISTINCT
        deduplicates, and only then OFFSET/LIMIT slice — so a query such as
        ``SELECT DISTINCT ?t ... LIMIT 2`` returns two distinct rows, not
        two raw rows deduplicated afterwards.
        """
        modifiers = query.modifiers
        if modifiers.order_by:
            solutions = _order(solutions, modifiers.order_by, self._graph)
        if project is not None:
            solutions = [project(solution) for solution in solutions]
        if modifiers.distinct:
            solutions = _distinct(solutions)
        offset = modifiers.offset or 0
        if offset:
            solutions = solutions[offset:]
        if modifiers.limit is not None:
            solutions = solutions[: modifiers.limit]
        return solutions

    # -- ASK ------------------------------------------------------------------ #
    def _evaluate_ask(self, query: AskQuery) -> AskResult:
        if self.engine == "streaming":
            from .plan import plan_query

            # Streaming pays off most here: stop at the first solution.
            first = next(plan_query(query, self._graph).execute(), None)
            return AskResult(first is not None)
        if self.engine == "reference":
            solutions = evaluate_group(query.where, self._graph)
            return AskResult(bool(solutions))
        # Batched engines stop at the first solution too: the scan chain
        # emits tiny initial batches, so only a handful of index lookups run.
        plan = self._compile(query)
        result = AskResult(plan.first_binding() is not None)
        self._finish(plan, query)
        return result

    # -- CONSTRUCT ------------------------------------------------------------ #
    def _evaluate_construct(self, query: ConstructQuery) -> Graph:
        if self.engine == "streaming":
            from .plan import plan_query

            solutions: Iterable[Binding] = plan_query(query, self._graph).execute()
        elif self.engine == "reference":
            solutions = self._apply_modifiers(
                query, evaluate_group(query.where, self._graph)
            )
        else:
            plan = self._compile(query)
            output = _construct_graph(query, plan.bindings())
            self._finish(plan, query)
            return output
        return _construct_graph(query, solutions)


def _construct_graph(query: ConstructQuery, solutions: Iterable[Binding]) -> Graph:
    """Instantiate a CONSTRUCT template once per solution."""
    output = Graph(namespace_manager=query.prologue.namespace_manager.copy())
    for solution in solutions:
        bnode_map: dict = {}
        for pattern in query.template:
            instantiated = _instantiate_template(pattern, solution, bnode_map)
            if instantiated is not None:
                output.add(instantiated)
    return output


def _instantiate_template(pattern: Triple, solution: Binding, bnode_map: dict) -> Triple | None:
    terms = []
    for term in pattern:
        if isinstance(term, Variable):
            value = solution.get_term(term)
            if value is None:
                return None
            terms.append(value)
        elif isinstance(term, BNode):
            terms.append(bnode_map.setdefault(term, fresh_bnode("ct")))
        else:
            terms.append(term)
    try:
        return Triple(*terms)
    except TypeError:
        # e.g. a literal ended up in the subject position — skip the triple,
        # matching the lenient behaviour of common engines.
        return None


def _distinct(solutions: list[Binding]) -> list[Binding]:
    seen = set()
    unique: list[Binding] = []
    for solution in solutions:
        key = frozenset(solution.as_dict().items())
        if key not in seen:
            seen.add(key)
            unique.append(solution)
    return unique


def _order(solutions: list[Binding], conditions, graph) -> list[Binding]:
    def sort_key(solution: Binding):
        key = []
        for condition in conditions:
            try:
                value = evaluate_expression(condition.expression, solution, graph)
            except ExpressionError:
                value = None
            key.append(_orderable(value, condition.descending))
        return key

    return sorted(solutions, key=sort_key)


class _Reversed:
    """Wrapper inverting the comparison order for DESC sorting."""

    __slots__ = ("value",)

    def __init__(self, value) -> None:
        self.value = value

    def __lt__(self, other: _Reversed) -> bool:
        return other.value < self.value

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Reversed) and self.value == other.value


def _orderable(value, descending: bool):
    if isinstance(value, Literal):
        python_value = value.to_python()
        normalized = (1, python_value) if isinstance(python_value, (int, float)) else (2, str(python_value))
    elif isinstance(value, (URIRef, BNode)):
        normalized = (3, str(value))
    elif isinstance(value, (int, float)):
        normalized = (1, value)
    elif isinstance(value, str):
        normalized = (2, value)
    elif value is None:
        normalized = (0, "")
    else:
        normalized = (4, str(value))
    # Normalise the payload to a comparable (rank, string) pair when mixed.
    rank, payload = normalized
    if not isinstance(payload, (int, float)):
        payload = str(payload)
        rank = (rank, 1)
    else:
        rank = (rank, 0)
    key = (rank, payload)
    return _Reversed(key) if descending else key


def evaluate_query(query: Query | str, graph: Graph) -> ResultSet | AskResult | Graph:
    """Module-level convenience: evaluate ``query`` against ``graph``."""
    return QueryEvaluator(graph).evaluate(query)
