"""Solution mappings and result sets.

SPARQL SELECT evaluation produces a sequence of *solution mappings*
(bindings from variables to RDF terms).  :class:`Binding` is the immutable
mapping used during evaluation and by the rewriting engine;
:class:`ResultSet` is the user-facing container with tabular presentation
and dict export (mirroring the SPARQL JSON results layout).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping, Sequence
from typing import Any

from ..rdf import BNode, Literal, Term, URIRef, Variable

__all__ = ["Binding", "ResultSet", "AskResult", "TermSerializationError"]


class TermSerializationError(TypeError):
    """A term cannot be represented in the SPARQL results formats.

    Only URIs, blank nodes and literals may appear in protocol responses;
    anything else (a :class:`~repro.rdf.Variable` leaking out of
    evaluation, a foreign object smuggled into a binding) is a bug in the
    producer, and silently emitting a made-up ``{"type": "unknown"}`` term
    would hand malformed bindings to downstream consumers.
    """


class Binding(Mapping[Variable, Term]):
    """An immutable mapping from variables to RDF terms.

    Supports the two operations evaluation needs: compatibility check and
    merge (join), both defined exactly as in the SPARQL algebra — two
    bindings are compatible when they agree on every shared variable.
    """

    __slots__ = ("_data",)

    def __init__(self, data: Mapping[Variable, Term] | None = None) -> None:
        self._data: dict[Variable, Term] = dict(data) if data else {}

    # -- Mapping protocol --------------------------------------------------- #
    def __getitem__(self, key: Variable | str) -> Term:
        return self._data[self._coerce_key(key)]

    def __iter__(self) -> Iterator[Variable]:
        return iter(self._data)

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: object) -> bool:
        try:
            return self._coerce_key(key) in self._data  # type: ignore[arg-type]
        except (TypeError, ValueError):
            return False

    @staticmethod
    def _coerce_key(key: Variable | str) -> Variable:
        if isinstance(key, Variable):
            return key
        return Variable(str(key))

    # -- Algebra ------------------------------------------------------------ #
    def get_term(self, key: Variable | str, default: Term | None = None) -> Term | None:
        """Bound term for ``key`` or ``default``."""
        return self._data.get(self._coerce_key(key), default)

    def compatible(self, other: Binding) -> bool:
        """True when the two bindings agree on all shared variables."""
        for variable, term in self._data.items():
            other_term = other._data.get(variable)
            if other_term is not None and other_term != term:
                return False
        return True

    def merge(self, other: Binding) -> Binding:
        """Union of two compatible bindings (caller checks compatibility)."""
        merged = dict(self._data)
        merged.update(other._data)
        return Binding(merged)

    def extend(self, variable: Variable | str, term: Term) -> Binding:
        """Return a new binding with one extra pair."""
        data = dict(self._data)
        data[self._coerce_key(variable)] = term
        return Binding(data)

    def project(self, variables: Iterable[Variable | str]) -> Binding:
        """Restrict the binding to the given variables."""
        wanted = {self._coerce_key(v) for v in variables}
        return Binding({k: v for k, v in self._data.items() if k in wanted})

    def substitute(self, term: Term) -> Term:
        """Replace a variable by its bound value (identity for other terms)."""
        if isinstance(term, Variable):
            return self._data.get(term, term)
        return term

    def as_dict(self) -> dict[str, Term]:
        """Plain ``{variable-name: term}`` dictionary."""
        return {variable.name: term for variable, term in self._data.items()}

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Binding):
            return self._data == other._data
        return NotImplemented

    def __hash__(self) -> int:
        return hash(frozenset(self._data.items()))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        pairs = ", ".join(f"?{k.name}={v.n3()}" for k, v in sorted(self._data.items(), key=lambda i: i[0].name))
        return f"Binding({pairs})"


class ResultSet:
    """The result of a SELECT query: variables + a list of bindings."""

    def __init__(self, variables: Sequence[Variable], bindings: Iterable[Binding]) -> None:
        self.variables: list[Variable] = list(variables)
        self.bindings: list[Binding] = list(bindings)
        #: Static-analysis diagnostics attached by the evaluator
        #: (``repro.sparql.analysis.Diagnostic`` objects; empty by default).
        self.diagnostics: list = []

    def __len__(self) -> int:
        return len(self.bindings)

    def __iter__(self) -> Iterator[Binding]:
        return iter(self.bindings)

    def __bool__(self) -> bool:
        return bool(self.bindings)

    def column(self, variable: Variable | str) -> list[Term | None]:
        """All values of one variable, aligned with the binding order."""
        return [binding.get_term(variable) for binding in self.bindings]

    def distinct_values(self, variable: Variable | str) -> set:
        """Set of non-null values bound to ``variable``."""
        return {term for term in self.column(variable) if term is not None}

    def to_dicts(self) -> list[dict[str, str]]:
        """Rows as ``{variable-name: n3-string}`` dictionaries."""
        rows = []
        for binding in self.bindings:
            row = {}
            for variable in self.variables:
                term = binding.get_term(variable)
                row[variable.name] = term.n3() if term is not None else ""
            rows.append(row)
        return rows

    def to_json_dict(self) -> dict[str, Any]:
        """Export following the layout of the SPARQL 1.1 JSON results format."""
        bindings_json = []
        for binding in self.bindings:
            row: dict[str, Any] = {}
            for variable in self.variables:
                term = binding.get_term(variable)
                if term is None:
                    continue
                row[variable.name] = _term_to_json(term)
            bindings_json.append(row)
        return {
            "head": {"vars": [v.name for v in self.variables]},
            "results": {"bindings": bindings_json},
        }

    def to_table(self, max_width: int = 60) -> str:
        """Human-readable fixed-width table (used by the CLI and examples)."""
        headers = [f"?{v.name}" for v in self.variables]
        rows = []
        for binding in self.bindings:
            row = []
            for variable in self.variables:
                term = binding.get_term(variable)
                text = term.n3() if term is not None else ""
                if len(text) > max_width:
                    text = text[: max_width - 3] + "..."
                row.append(text)
            rows.append(row)
        widths = [len(h) for h in headers]
        for row in rows:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))
        lines = [
            " | ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
            "-+-".join("-" * w for w in widths),
        ]
        for row in rows:
            lines.append(" | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ResultSet {len(self.bindings)} rows x {len(self.variables)} vars>"


class AskResult:
    """The boolean result of an ASK query."""

    def __init__(self, value: bool) -> None:
        self.value = bool(value)
        #: Static-analysis diagnostics attached by the evaluator.
        self.diagnostics: list = []

    def __bool__(self) -> bool:
        return self.value

    def __eq__(self, other: object) -> bool:
        if isinstance(other, AskResult):
            return self.value == other.value
        if isinstance(other, bool):
            return self.value == other
        return NotImplemented

    def __hash__(self) -> int:
        return hash(("AskResult", self.value))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"AskResult({self.value})"


def _term_to_json(term: Term) -> dict[str, str]:
    if isinstance(term, URIRef):
        return {"type": "uri", "value": str(term)}
    if isinstance(term, BNode):
        return {"type": "bnode", "value": str(term)}
    if isinstance(term, Literal):
        payload: dict[str, str] = {"type": "literal", "value": term.lexical}
        if term.lang:
            payload["xml:lang"] = term.lang
        elif term.datatype is not None:
            payload["datatype"] = str(term.datatype)
        return payload
    raise TermSerializationError(
        f"term {term!r} ({type(term).__name__}) cannot appear in a SPARQL result binding"
    )
