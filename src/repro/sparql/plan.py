"""Cost-based query planning and streaming execution.

The naive evaluator (:mod:`repro.sparql.evaluator`) materialises the full
binding list at every step and defers FILTERs to the end of their group.
This module compiles the :class:`~repro.sparql.algebra.AlgebraNode` tree of
a query into a tree of *physical operators* instead:

* :class:`BGPScanOp` — a chain of index scans over the triple patterns of a
  BGP, ordered greedily by exact cardinality estimates drawn from the
  graph's incrementally maintained statistics
  (:meth:`repro.rdf.Graph.cardinality`),
* :class:`HashJoinOp` — a hash join on the shared variables of two
  independent sub-plans (build on the smaller/right side, probe streaming),
* :class:`PipelineJoinOp` — the streaming nested-loop (bind-join) fallback:
  left solutions flow into the right sub-plan as input bindings, so the
  right side's index scans are correlated lookups,
* :class:`LeftJoinOp` / :class:`UnionOp` — OPTIONAL and UNION with the same
  correlated streaming discipline,
* :class:`FilterOp` — FILTERs pushed down to the earliest operator at which
  every variable of the expression is *certainly* bound (which is exactly
  the point from which their verdict can no longer change),
* :class:`ProjectOp` / :class:`DistinctOp` / :class:`OrderByOp` /
  :class:`SliceOp` — the solution-modifier pipeline, streaming except for
  the unavoidable ORDER BY materialisation.

Every operator consumes and produces *iterators* of
:class:`~repro.sparql.results.Binding`, so a ``LIMIT``-ed query stops
scanning as soon as enough solutions have been produced and an ``ASK``
stops at the first solution, instead of enumerating every solution the way
the naive evaluator does.

Plans render as an ``EXPLAIN``-style operator tree via
:meth:`QueryPlan.explain` (exposed on the CLI as ``repro-query
--explain``).  Planned execution is solution-equivalent to the naive
evaluator: the same multiset of solutions, in the same order whenever the
query constrains order (ORDER BY); the conformance corpus and the
hypothesis differential test pin this down.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence

from ..rdf import BNode, Triple, Variable
from .algebra import (
    AlgebraBGP,
    AlgebraDistinct,
    AlgebraFilter,
    AlgebraJoin,
    AlgebraLeftJoin,
    AlgebraNode,
    AlgebraOrderBy,
    AlgebraProject,
    AlgebraSlice,
    AlgebraTable,
    AlgebraUnion,
    translate_group,
    translate_query,
)
from .ast import AskQuery, Expression, OrderCondition, Query
from .evaluator import (
    BNODE_ANCHOR_PREFIX,
    _match_triple,
    _order,
    bnode_anchor,
)
from .expressions import expression_satisfied
from .results import Binding
from .serializer import serialize_expression

__all__ = [
    "CardinalityEstimator",
    "PhysicalOperator",
    "BGPScanOp",
    "TableOp",
    "PipelineJoinOp",
    "HashJoinOp",
    "LeftJoinOp",
    "UnionOp",
    "FilterOp",
    "ProjectOp",
    "DistinctOp",
    "OrderByOp",
    "SliceOp",
    "QueryPlan",
    "QueryPlanner",
    "plan_query",
    "explain_query",
    "order_patterns",
]

#: Hash joins build a table from the full right-hand result; beyond this
#: many estimated build rows the correlated bind-join (which exploits the
#: left bindings as index lookups) is preferred.
_HASH_BUILD_CEILING = 250_000.0


def _binding_variables(pattern: Triple) -> set[Variable]:
    """The variables a scan of ``pattern`` binds (incl. blank-node anchors)."""
    result: set[Variable] = set()
    for term in pattern:
        if isinstance(term, Variable):
            result.add(term)
        elif isinstance(term, BNode):
            result.add(bnode_anchor(term))
    return result


def _pattern_text(pattern: Triple) -> str:
    """Deterministic tie-break key for pattern ordering."""
    return " ".join(term.n3() for term in pattern)


# --------------------------------------------------------------------------- #
# Cardinality estimation
# --------------------------------------------------------------------------- #
class CardinalityEstimator:
    """Estimate how many solutions a triple pattern contributes.

    For patterns whose only free positions are plain wildcards the estimate
    is the *exact* matching-triple count, answered in O(1) from the graph's
    incremental statistics.  A position held by an already-bound variable
    cannot be resolved at plan time, so its average bucket size is used:
    the wildcard count divided by the number of distinct terms in that
    position.
    """

    def __init__(self, graph) -> None:
        self._graph = graph
        self._cardinality = getattr(graph, "cardinality", None)
        self._stats = getattr(graph, "stats", None)

    def pattern_estimate(self, pattern: Triple, bound: set[Variable]) -> float:
        lookup: list[Triple | None] = []
        bound_positions: list[int] = []
        for index, term in enumerate(pattern):
            if isinstance(term, (Variable, BNode)):
                anchor = term if isinstance(term, Variable) else bnode_anchor(term)
                if anchor in bound:
                    bound_positions.append(index)
                lookup.append(None)
            else:
                lookup.append(term)

        if self._cardinality is None:
            # Graph without statistics: fall back to the classic
            # bound-position selectivity heuristic.
            ground = sum(1 for term in lookup if term is not None) + len(bound_positions)
            return float(len(self._graph)) / (10.0 ** ground)

        estimate = float(self._cardinality(lookup[0], lookup[1], lookup[2]))
        if estimate == 0.0 or self._stats is None:
            return estimate
        distinct = (
            self._stats.distinct_subjects,
            self._stats.distinct_predicates,
            self._stats.distinct_objects,
        )
        for index in bound_positions:
            estimate /= max(1, distinct[index])
        return estimate


def order_patterns(
    patterns: Sequence[Triple],
    bound: set[Variable],
    estimator: CardinalityEstimator,
) -> list[Triple]:
    """Greedy, deterministic join order for the patterns of one BGP.

    Repeatedly pick the cheapest pattern (lowest cardinality estimate under
    the variables bound so far, ties broken by the pattern's serialised
    text), preferring patterns connected to already-bound variables so the
    chain never degenerates into an avoidable cross product.
    """
    remaining = list(patterns)
    ordered: list[Triple] = []
    seen_vars = set(bound)
    while remaining:
        connected = [
            pattern for pattern in remaining
            if not _binding_variables(pattern) or _binding_variables(pattern) & seen_vars
        ]
        candidates = connected if connected and seen_vars else remaining

        def sort_key(pattern: Triple) -> tuple[float, str]:
            return (estimator.pattern_estimate(pattern, seen_vars), _pattern_text(pattern))

        best = min(candidates, key=sort_key)
        remaining.remove(best)
        ordered.append(best)
        seen_vars |= _binding_variables(best)
    return ordered


# --------------------------------------------------------------------------- #
# Static variable analysis (certain vs. possible bindings)
# --------------------------------------------------------------------------- #
def certain_variables(node: AlgebraNode) -> set[Variable]:
    """Variables bound in *every* solution the node can produce."""
    if isinstance(node, AlgebraBGP):
        result: set[Variable] = set()
        for pattern in node.patterns:
            result |= _binding_variables(pattern)
        return result
    if isinstance(node, AlgebraTable):
        # A variable is certainly bound when no row leaves it UNDEF (an
        # empty table produces no solutions, so the claim is vacuous).
        return {
            variable
            for index, variable in enumerate(node.columns)
            if all(row[index] is not None for row in node.rows)
        }
    if isinstance(node, AlgebraJoin):
        return certain_variables(node.left) | certain_variables(node.right)
    if isinstance(node, AlgebraLeftJoin):
        return certain_variables(node.left)
    if isinstance(node, AlgebraUnion):
        return certain_variables(node.left) & certain_variables(node.right)
    if isinstance(node, AlgebraFilter):
        return certain_variables(node.child)
    if isinstance(node, AlgebraProject):
        return certain_variables(node.child) & set(node.projection)
    if isinstance(node, (AlgebraDistinct, AlgebraOrderBy, AlgebraSlice)):
        return certain_variables(node.children()[0])
    return set()


def possible_variables(node: AlgebraNode) -> set[Variable]:
    """Variables bound in *some* solution the node can produce."""
    if isinstance(node, AlgebraBGP):
        return certain_variables(node)
    if isinstance(node, AlgebraTable):
        return set(node.columns)
    if isinstance(node, (AlgebraJoin, AlgebraLeftJoin, AlgebraUnion)):
        return possible_variables(node.left) | possible_variables(node.right)
    if isinstance(node, AlgebraFilter):
        return possible_variables(node.child)
    if isinstance(node, AlgebraProject):
        return possible_variables(node.child) & set(node.projection)
    if isinstance(node, (AlgebraDistinct, AlgebraOrderBy, AlgebraSlice)):
        return possible_variables(node.children()[0])
    return set()


# --------------------------------------------------------------------------- #
# Physical operators
# --------------------------------------------------------------------------- #
class PhysicalOperator:
    """Base class: a pull-based operator over streams of bindings.

    ``run`` must be restartable — every call creates fresh iteration state,
    because correlated operators (bind-join, OPTIONAL, UNION) re-run their
    inner sub-plan once per outer binding.
    """

    #: Estimated output rows for one empty input binding (used for display
    #: and join-strategy choice; never a correctness input).
    est: float = 1.0

    def run(self, bindings: Iterator[Binding]) -> Iterator[Binding]:
        raise NotImplementedError

    def reset(self) -> None:
        """Drop any state cached across ``run`` calls (new plan execution).

        Correlated parents re-run their sub-plans once per outer binding
        *within* one execution, and operators may cache invariant state
        (e.g. a hash table) across those re-runs; a fresh execution against
        possibly mutated data must start clean.
        """
        for child in self.children():
            child.reset()

    def children(self) -> Sequence[PhysicalOperator]:
        return ()

    def describe(self) -> str:
        return type(self).__name__

    def explain_lines(self, indent: int = 0) -> list[str]:
        lines = ["  " * indent + self.describe()]
        for child in self.children():
            lines.extend(child.explain_lines(indent + 1))
        return lines


class _ScanStep:
    """One index scan of a BGP chain plus the filters applied right after."""

    __slots__ = ("pattern", "filters", "est")

    def __init__(self, pattern: Triple, filters: list[Expression], est: float) -> None:
        self.pattern = pattern
        self.filters = filters
        self.est = est


class BGPScanOp(PhysicalOperator):
    """A statistics-ordered chain of index scans with inlined filters."""

    def __init__(self, graph, steps: list[_ScanStep], tail_filters: list[Expression]) -> None:
        self._graph = graph
        self.steps = steps
        self.tail_filters = tail_filters
        est = 1.0
        for step in steps:
            est *= max(step.est, 0.0)
        self.est = est

    def run(self, bindings: Iterator[Binding]) -> Iterator[Binding]:
        stream = bindings
        for step in self.steps:
            stream = self._scan(step, stream)
        if self.tail_filters:
            stream = self._filter_tail(stream)
        return stream

    def _scan(self, step: _ScanStep, stream: Iterator[Binding]) -> Iterator[Binding]:
        graph = self._graph
        for binding in stream:
            for extended in _match_triple(step.pattern, binding, graph):
                if all(expression_satisfied(expr, extended, graph) for expr in step.filters):
                    yield extended

    def _filter_tail(self, stream: Iterator[Binding]) -> Iterator[Binding]:
        graph = self._graph
        for binding in stream:
            if all(expression_satisfied(expr, binding, graph) for expr in self.tail_filters):
                yield binding

    def describe(self) -> str:
        return f"BGPScan est={self.est:.1f}"

    def explain_lines(self, indent: int = 0) -> list[str]:
        lines = ["  " * indent + self.describe()]
        pad = "  " * (indent + 1)
        for step in self.steps:
            suffix = ""
            if step.filters:
                rendered = ", ".join(serialize_expression(expr) for expr in step.filters)
                suffix = f" [filter {rendered}]"
            lines.append(f"{pad}scan ({_pattern_text(step.pattern)}) est={step.est:.1f}{suffix}")
        for expr in self.tail_filters:
            lines.append(f"{pad}filter {serialize_expression(expr)}")
        return lines


class TableOp(PhysicalOperator):
    """An inline solution table (VALUES): joins each input binding with
    every compatible table row."""

    def __init__(self, columns: Sequence[Variable], rows: Sequence[tuple]) -> None:
        self.columns = list(columns)
        self._rows = [
            Binding({
                variable: term
                for variable, term in zip(self.columns, row, strict=True)
                if term is not None
            })
            for row in rows
        ]
        self.est = float(len(self._rows))

    def run(self, bindings: Iterator[Binding]) -> Iterator[Binding]:
        for binding in bindings:
            for row in self._rows:
                if binding.compatible(row):
                    yield binding.merge(row)

    def describe(self) -> str:
        rendered = " ".join(f"?{variable.name}" for variable in self.columns)
        return f"Table ({rendered}) {len(self._rows)} rows"


class PipelineJoinOp(PhysicalOperator):
    """Streaming nested-loop (bind) join: left solutions feed the right plan."""

    def __init__(self, left: PhysicalOperator, right: PhysicalOperator) -> None:
        self._left = left
        self._right = right
        self.est = max(left.est, 0.0) * max(right.est, 0.0)

    def run(self, bindings: Iterator[Binding]) -> Iterator[Binding]:
        return self._right.run(self._left.run(bindings))

    def children(self) -> Sequence[PhysicalOperator]:
        return (self._left, self._right)

    def describe(self) -> str:
        return f"BindJoin est={self.est:.1f}"


class HashJoinOp(PhysicalOperator):
    """Hash join on shared variables: build right once, probe left streaming."""

    def __init__(
        self,
        left: PhysicalOperator,
        right: PhysicalOperator,
        key: Sequence[Variable],
    ) -> None:
        self._left = left
        self._right = right
        self.key = tuple(sorted(key, key=lambda v: v.name))
        self.est = max(left.est, 0.0) * max(right.est, 0.0) * 0.1
        # The build side is compiled against an empty input (that is what
        # makes the hash join safe), so its result cannot vary between runs
        # of one execution: build once, reuse under correlated parents.
        self._table: dict[tuple, list[Binding]] | None = None

    def reset(self) -> None:
        self._table = None
        super().reset()

    def run(self, bindings: Iterator[Binding]) -> Iterator[Binding]:
        if self._table is None:
            self._table = {}
            for row in self._right.run(iter((Binding(),))):
                key = tuple(row.get_term(variable) for variable in self.key)
                self._table.setdefault(key, []).append(row)
        table = self._table
        for binding in self._left.run(bindings):
            key = tuple(binding.get_term(variable) for variable in self.key)
            for row in table.get(key, ()):
                yield binding.merge(row)

    def children(self) -> Sequence[PhysicalOperator]:
        return (self._left, self._right)

    def describe(self) -> str:
        rendered = " ".join(f"?{variable.name}" for variable in self.key)
        return f"HashJoin on ({rendered}) est={self.est:.1f}"


class LeftJoinOp(PhysicalOperator):
    """OPTIONAL: correlated left-outer join with an optional join condition."""

    def __init__(
        self,
        left: PhysicalOperator,
        right: PhysicalOperator,
        expression: Expression | None,
        graph,
    ) -> None:
        self._left = left
        self._right = right
        self._expression = expression
        self._graph = graph
        self.est = max(left.est, 1.0)

    def run(self, bindings: Iterator[Binding]) -> Iterator[Binding]:
        graph = self._graph
        for binding in self._left.run(bindings):
            matched = False
            for extended in self._right.run(iter((binding,))):
                if self._expression is None or expression_satisfied(
                    self._expression, extended, graph
                ):
                    matched = True
                    yield extended
            if not matched:
                yield binding

    def children(self) -> Sequence[PhysicalOperator]:
        return (self._left, self._right)

    def describe(self) -> str:
        condition = (
            f" on [{serialize_expression(self._expression)}]"
            if self._expression is not None
            else ""
        )
        return f"LeftJoin{condition} est={self.est:.1f}"


class UnionOp(PhysicalOperator):
    """UNION: each input binding flows through every branch, in branch order."""

    def __init__(self, branches: Sequence[PhysicalOperator]) -> None:
        self._branches = list(branches)
        self.est = sum(max(branch.est, 0.0) for branch in self._branches)

    def run(self, bindings: Iterator[Binding]) -> Iterator[Binding]:
        for binding in bindings:
            for branch in self._branches:
                yield from branch.run(iter((binding,)))

    def children(self) -> Sequence[PhysicalOperator]:
        return tuple(self._branches)

    def describe(self) -> str:
        return f"Union est={self.est:.1f}"


class FilterOp(PhysicalOperator):
    """A FILTER that could not be pushed further down."""

    def __init__(self, expressions: Sequence[Expression], child: PhysicalOperator, graph) -> None:
        self._expressions = list(expressions)
        self._child = child
        self._graph = graph
        self.est = max(child.est, 0.0) * (0.5 ** len(self._expressions))

    def run(self, bindings: Iterator[Binding]) -> Iterator[Binding]:
        graph = self._graph
        for binding in self._child.run(bindings):
            if all(expression_satisfied(expr, binding, graph) for expr in self._expressions):
                yield binding

    def children(self) -> Sequence[PhysicalOperator]:
        return (self._child,)

    def describe(self) -> str:
        rendered = ", ".join(serialize_expression(expr) for expr in self._expressions)
        return f"Filter [{rendered}] est={self.est:.1f}"


class ProjectOp(PhysicalOperator):
    """Project each solution onto the requested variables (streaming)."""

    def __init__(self, projection: Sequence[Variable], child: PhysicalOperator) -> None:
        # Blank-node anchor variables are internal and never projected,
        # matching the naive evaluator's projection rule.
        self._projection = [
            variable for variable in projection
            if not variable.name.startswith(BNODE_ANCHOR_PREFIX)
        ]
        self._child = child
        self.est = child.est

    def run(self, bindings: Iterator[Binding]) -> Iterator[Binding]:
        for binding in self._child.run(bindings):
            yield binding.project(self._projection)

    def children(self) -> Sequence[PhysicalOperator]:
        return (self._child,)

    def describe(self) -> str:
        rendered = " ".join(f"?{variable.name}" for variable in self._projection)
        return f"Project ({rendered})"


class DistinctOp(PhysicalOperator):
    """Streaming duplicate elimination (first occurrence wins)."""

    def __init__(self, child: PhysicalOperator) -> None:
        self._child = child
        self.est = child.est

    def run(self, bindings: Iterator[Binding]) -> Iterator[Binding]:
        seen: set[frozenset] = set()
        for binding in self._child.run(bindings):
            key = frozenset(binding.as_dict().items())
            if key not in seen:
                seen.add(key)
                yield binding

    def children(self) -> Sequence[PhysicalOperator]:
        return (self._child,)

    def describe(self) -> str:
        return "Distinct"


class OrderByOp(PhysicalOperator):
    """ORDER BY: the one blocking operator (must materialise to sort)."""

    def __init__(self, conditions: Sequence[OrderCondition], child: PhysicalOperator, graph) -> None:
        self._conditions = list(conditions)
        self._child = child
        self._graph = graph
        self.est = child.est

    def run(self, bindings: Iterator[Binding]) -> Iterator[Binding]:
        return iter(_order(list(self._child.run(bindings)), self._conditions, self._graph))

    def children(self) -> Sequence[PhysicalOperator]:
        return (self._child,)

    def describe(self) -> str:
        return f"OrderBy ({len(self._conditions)} conditions, blocking)"


class SliceOp(PhysicalOperator):
    """OFFSET/LIMIT with early termination: stop pulling once satisfied."""

    def __init__(self, offset: int | None, limit: int | None, child: PhysicalOperator) -> None:
        self._offset = offset or 0
        self._limit = limit
        self._child = child
        self.est = min(child.est, float(limit)) if limit is not None else child.est

    def run(self, bindings: Iterator[Binding]) -> Iterator[Binding]:
        skipped = 0
        emitted = 0
        for binding in self._child.run(bindings):
            if skipped < self._offset:
                skipped += 1
                continue
            if self._limit is not None and emitted >= self._limit:
                return
            emitted += 1
            yield binding
            if self._limit is not None and emitted >= self._limit:
                return

    def children(self) -> Sequence[PhysicalOperator]:
        return (self._child,)

    def describe(self) -> str:
        return f"Slice (offset={self._offset}, limit={self._limit})"


# --------------------------------------------------------------------------- #
# Compilation
# --------------------------------------------------------------------------- #
class QueryPlanner:
    """Compile algebra trees into physical plans for one graph."""

    def __init__(self, graph) -> None:
        self._graph = graph
        self._estimator = CardinalityEstimator(graph)

    # -- public entry points ------------------------------------------------ #
    def plan(self, query: Query) -> QueryPlan:
        """Plan a full query (WHERE clause plus solution modifiers)."""
        if isinstance(query, AskQuery):
            # ASK ignores solution modifiers; plan the pattern only so the
            # executor can stop at the first solution.
            node = translate_group(query.where)
        else:
            node = translate_query(query)
        root, _, _ = self._compile(self._coalesce(node), frozenset(), frozenset(), [])
        return QueryPlan(query, root, self._graph)

    # -- algebra normalisation ---------------------------------------------- #
    @staticmethod
    def _coalesce(node: AlgebraNode) -> AlgebraNode:
        """Fuse Join(BGP, BGP) into one BGP so ordering sees all patterns."""

        def fuse(candidate: AlgebraNode) -> AlgebraNode | None:
            if (
                isinstance(candidate, AlgebraJoin)
                and isinstance(candidate.left, AlgebraBGP)
                and isinstance(candidate.right, AlgebraBGP)
            ):
                return AlgebraBGP(list(candidate.left.patterns) + list(candidate.right.patterns))
            return None

        return node.transform(fuse)

    # -- recursive compilation ---------------------------------------------- #
    def _compile(
        self,
        node: AlgebraNode,
        certain: frozenset,
        possible: frozenset,
        pending: list[Expression],
    ) -> tuple[PhysicalOperator, frozenset, frozenset]:
        """Compile ``node`` given the input stream's variable knowledge.

        ``certain``/``possible`` describe the bindings arriving from the
        operator's input stream; ``pending`` are FILTER expressions scoped
        to this subtree that are guaranteed to have been applied by the
        time the returned operator's output emerges.
        """
        if isinstance(node, AlgebraFilter):
            return self._compile(node.child, certain, possible, pending + [node.expression])
        if isinstance(node, AlgebraBGP):
            return self._compile_bgp(node, certain, possible, pending)
        if isinstance(node, AlgebraTable):
            table_certain = frozenset(certain_variables(node))
            table_possible = frozenset(node.columns)
            op: PhysicalOperator = TableOp(node.columns, node.rows)
            if pending:
                # FILTERs run at their original position, after the join
                # with the inline table.
                op = FilterOp(pending, op, self._graph)
            return op, certain | table_certain, possible | table_possible
        if isinstance(node, AlgebraJoin):
            return self._compile_join(node, certain, possible, pending)
        if isinstance(node, AlgebraLeftJoin):
            return self._compile_leftjoin(node, certain, possible, pending)
        if isinstance(node, AlgebraUnion):
            branches: list[PhysicalOperator] = []
            branch_certain: list[frozenset] = []
            branch_possible: list[frozenset] = []
            for child in (node.left, node.right):
                op, c_out, p_out = self._compile(child, certain, possible, list(pending))
                branches.append(op)
                branch_certain.append(c_out)
                branch_possible.append(p_out)
            union = UnionOp(branches)
            return (
                union,
                certain | (branch_certain[0] & branch_certain[1]),
                possible | branch_possible[0] | branch_possible[1],
            )
        if isinstance(node, AlgebraProject):
            child, c_out, p_out = self._compile(node.child, certain, possible, pending)
            projection = frozenset(node.projection)
            return (
                ProjectOp(node.projection, child),
                c_out & projection,
                p_out & projection,
            )
        if isinstance(node, AlgebraDistinct):
            child, c_out, p_out = self._compile(node.child, certain, possible, pending)
            return DistinctOp(child), c_out, p_out
        if isinstance(node, AlgebraOrderBy):
            child, c_out, p_out = self._compile(node.child, certain, possible, pending)
            return OrderByOp(node.conditions, child, self._graph), c_out, p_out
        if isinstance(node, AlgebraSlice):
            child, c_out, p_out = self._compile(node.child, certain, possible, pending)
            return SliceOp(node.offset, node.limit, child), c_out, p_out
        raise TypeError(f"cannot compile algebra node: {node!r}")

    def _compile_bgp(
        self,
        node: AlgebraBGP,
        certain: frozenset,
        possible: frozenset,
        pending: list[Expression],
    ) -> tuple[PhysicalOperator, frozenset, frozenset]:
        ordered = order_patterns(node.patterns, set(certain), self._estimator)
        bound = set(certain)
        remaining = list(pending)
        steps: list[_ScanStep] = []
        for pattern in ordered:
            est = self._estimator.pattern_estimate(pattern, bound)
            bound |= _binding_variables(pattern)
            attached: list[Expression] = []
            still_pending: list[Expression] = []
            for expr in remaining:
                if expr.variables() <= bound:
                    attached.append(expr)
                else:
                    still_pending.append(expr)
            remaining = still_pending
            steps.append(_ScanStep(pattern, attached, est))
        # Whatever could not be pushed runs at the end of the chain — the
        # original FILTER position, so semantics are unchanged.
        op = BGPScanOp(self._graph, steps, remaining)
        bgp_vars = frozenset(bound) - certain
        return op, certain | bgp_vars, possible | bgp_vars

    def _compile_join(
        self,
        node: AlgebraJoin,
        certain: frozenset,
        possible: frozenset,
        pending: list[Expression],
    ) -> tuple[PhysicalOperator, frozenset, frozenset]:
        left_static_certain = certain_variables(node.left) | certain
        push_left = [expr for expr in pending if expr.variables() <= left_static_certain]
        rest = [expr for expr in pending if expr not in push_left]
        left_op, left_certain, left_possible = self._compile(
            node.left, certain, possible, push_left
        )

        right_certain_static = frozenset(certain_variables(node.right))
        right_possible_static = frozenset(possible_variables(node.right))
        shared = left_possible & right_possible_static
        hash_safe = (
            bool(shared)
            and shared <= left_certain
            and shared <= right_certain_static
        )
        if hash_safe:
            right_alone, _, _ = self._compile(node.right, frozenset(), frozenset(), [])
            hash_worthwhile = (
                left_op.est > 1.5
                and right_alone.est <= _HASH_BUILD_CEILING
                and right_alone.est <= max(10_000.0, left_op.est * 100.0)
            )
            if hash_worthwhile:
                push_right = [
                    expr for expr in rest if expr.variables() <= right_certain_static
                ]
                leftover = [expr for expr in rest if expr not in push_right]
                right_op, right_certain, right_possible = self._compile(
                    node.right, frozenset(), frozenset(), push_right
                )
                op: PhysicalOperator = HashJoinOp(left_op, right_op, sorted(shared, key=str))
                if leftover:
                    op = FilterOp(leftover, op, self._graph)
                return (
                    op,
                    left_certain | right_certain,
                    left_possible | right_possible,
                )

        right_op, right_certain, right_possible = self._compile(
            node.right, left_certain, left_possible, rest
        )
        return PipelineJoinOp(left_op, right_op), right_certain, right_possible

    def _compile_leftjoin(
        self,
        node: AlgebraLeftJoin,
        certain: frozenset,
        possible: frozenset,
        pending: list[Expression],
    ) -> tuple[PhysicalOperator, frozenset, frozenset]:
        left_static_certain = certain_variables(node.left) | certain
        push_left = [expr for expr in pending if expr.variables() <= left_static_certain]
        rest = [expr for expr in pending if expr not in push_left]
        left_op, left_certain, left_possible = self._compile(
            node.left, certain, possible, push_left
        )
        right_op, _, right_possible = self._compile(
            node.right, left_certain, left_possible, []
        )
        op: PhysicalOperator = LeftJoinOp(left_op, right_op, node.expression, self._graph)
        if rest:
            # A FILTER above an OPTIONAL also constrains the unextended
            # fallback rows, so it cannot move below the left join.
            op = FilterOp(rest, op, self._graph)
        return op, left_certain, left_possible | right_possible


class QueryPlan:
    """A compiled physical plan, ready for streaming execution."""

    def __init__(self, query: Query, root: PhysicalOperator, graph) -> None:
        self.query = query
        self.root = root
        self._graph = graph

    def execute(self) -> Iterator[Binding]:
        """Stream the plan's solutions (top-level evaluation, empty input)."""
        self.root.reset()
        return self.root.run(iter((Binding(),)))

    def explain(self) -> str:
        """EXPLAIN-style rendering of the operator tree with estimates."""
        form = type(self.query).__name__.replace("Query", "").upper()
        size = len(self._graph) if hasattr(self._graph, "__len__") else "?"
        header = f"plan for {form} query over graph with {size} triples"
        return "\n".join([header] + self.root.explain_lines(0))


def plan_query(query: Query, graph) -> QueryPlan:
    """Module-level convenience: compile ``query`` into a plan for ``graph``."""
    return QueryPlanner(graph).plan(query)


def explain_query(query, graph) -> str:
    """The EXPLAIN text for ``query`` over ``graph`` (accepts query text)."""
    from .parser import parse_query

    if isinstance(query, str):
        query = parse_query(query)
    return plan_query(query, graph).explain()
