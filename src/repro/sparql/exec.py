"""Batched (vectorized) execution core shared by all three engines.

The naive evaluator, the cost-based planner and the federation decomposer
used to each stream one ``Binding`` (a dict) at a time; per-row dict
copies dominated join cost.  This module replaces all three execution
loops with **one** operator layer:

* solution rows are fixed-width tuples of integers — RDF terms are
  interned per graph by :class:`repro.rdf.TermDictionary`, and
  ``UNBOUND_ID`` (0) marks an unbound column,
* operators consume and produce :class:`Batch` objects (a schema of
  variables plus a list of row tuples), amortising per-operator overhead
  and making joins integer-tuple comparisons instead of dict merges,
* batches start small and grow (``4 -> 32 -> ... -> 2048`` rows), so a
  ``LIMIT``/``ASK`` query still terminates after a handful of index
  lookups while bulk queries run at full batch width,
* terms are only decoded back at the result boundary
  (:meth:`ExecPlan.bindings`) and inside expression evaluation, the one
  place that genuinely needs term values.

The three engines survive as *planners* over this executor:

* :func:`compile_planner_query` converts the cost-based physical plan of
  :mod:`repro.sparql.plan` (which keeps its estimator, join ordering,
  hash/bind join selection and filter pushdown) into batched operators,
* :func:`compile_naive_query` compiles the AST group structure with the
  naive evaluator's semantics (element order, group-scoped filters,
  ``ordered_bgp_patterns`` scan order) onto the same operators,
* the federation decomposer builds its mediator-side join pipeline from
  these operators (see :mod:`repro.federation.decompose`).

**Adaptive join ordering**: a BGP scan chain tracks actual rows per step
against the planner's estimate.  When the estimate is off by a
configurable factor, the not-yet-started suffix of the chain is reordered
using cardinalities *sampled from actual rows* (bind the sampled values
into the remaining patterns and ask the graph), and the decision is
recorded for ``EXPLAIN ANALYZE``.

**EXPLAIN ANALYZE**: every operator counts rows/batches in and out and
its (inclusive) wall time; :meth:`ExecPlan.analyze` renders the operator
tree with those numbers and :meth:`ExecPlan.run_event` packages them as a
structured per-query event consumable by ``benchmarks/compare.py
--events``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from functools import lru_cache
from itertools import chain as _iter_chain, islice
from collections.abc import Iterable, Iterator, Sequence
from typing import Any

from ..obs.export import RUN_EVENTS_ENV, SINK
from ..rdf import BNode, Term, TermDictionary, Triple, Variable
from .ast import AskQuery, ConstructQuery, Expression, OrderCondition, Query, SelectQuery
from .evaluator import (
    BNODE_ANCHOR_PREFIX,
    _orderable,
    bnode_anchor,
    ordered_bgp_patterns,
)
from .expressions import ExpressionError, evaluate_expression, expression_satisfied
from .results import Binding
from .serializer import serialize_expression

__all__ = [
    "UNBOUND",
    "Batch",
    "ExecConfig",
    "OpMetrics",
    "ExecContext",
    "VecOperator",
    "VecBGPOp",
    "VecTableOp",
    "VecBindJoinOp",
    "VecHashJoinOp",
    "VecLeftJoinOp",
    "VecUnionOp",
    "VecFilterOp",
    "VecProjectOp",
    "VecDistinctOp",
    "VecOrderByOp",
    "VecSliceOp",
    "VecAnalysisPruneOp",
    "ExecPlan",
    "QueryRunEvent",
    "compile_planner_query",
    "compile_naive_query",
    "compile_empty_query",
    "maybe_emit_event",
    "RUN_EVENTS_ENV",
]

#: Reserved row value for "this column is unbound" (same as
#: :data:`repro.rdf.UNBOUND_ID`; kept falsy for cheap hot-loop tests).
UNBOUND = 0

#: Name prefix of the synthetic ordinal columns used to correlate
#: OPTIONAL/UNION sub-plan output with its input rows.
_ORD_PREFIX = "__ord_"

Row = tuple[int, ...]
Schema = tuple[Variable, ...]


def _is_internal(variable: Variable) -> bool:
    """Internal columns (bnode anchors, ordinals) never reach results."""
    name = variable.name
    return name.startswith(BNODE_ANCHOR_PREFIX) or name.startswith(_ORD_PREFIX)


@lru_cache(maxsize=512)
def _external_columns(schema: Schema) -> tuple[tuple[int, Variable], ...]:
    """``(index, variable)`` pairs of the result-visible schema columns.

    Schemas are small interned tuples reused across every row of a query,
    so classifying their columns once keeps the per-row decode loop free
    of string-prefix checks.
    """
    return tuple(
        (index, variable)
        for index, variable in enumerate(schema)
        if not _is_internal(variable)
    )


class Batch:
    """A batch of solution rows: a schema plus fixed-width id tuples."""

    __slots__ = ("schema", "rows")

    def __init__(self, schema: Schema, rows: list[Row]) -> None:
        self.schema = schema
        self.rows = rows

    def __len__(self) -> int:
        return len(self.rows)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        names = " ".join(f"?{v.name}" for v in self.schema)
        return f"<Batch ({names}) {len(self.rows)} rows>"


@dataclass(frozen=True)
class ExecConfig:
    """Tunables of the batched executor (see module docstring)."""

    #: First output batch size of a scan chain; kept tiny so ASK/LIMIT
    #: queries stop after a handful of lookups.
    initial_batch_rows: int = 4
    #: Batches grow by this factor up to :attr:`max_batch_rows`.
    batch_growth: int = 8
    max_batch_rows: int = 2048
    #: Adaptive join ordering on/off (planner engine only).
    adaptive: bool = True
    #: A step whose actual cardinality is off from its estimate by more
    #: than this factor triggers reordering of the remaining steps.
    misestimate_factor: float = 4.0
    #: Rows sampled (a) to observe a step's actual output and (b) to
    #: re-estimate the remaining patterns against actual bound values.
    sample_rows: int = 8


class OpMetrics:
    """Per-operator counters for EXPLAIN ANALYZE (inclusive wall time)."""

    __slots__ = ("rows_in", "rows_out", "batches_in", "batches_out", "seconds")

    def __init__(self) -> None:
        self.clear()

    def clear(self) -> None:
        self.rows_in = 0
        self.rows_out = 0
        self.batches_in = 0
        self.batches_out = 0
        self.seconds = 0.0


class ExecContext:
    """Shared execution state: the graph, its term dictionary, decisions."""

    __slots__ = ("graph", "dictionary", "config", "decisions")

    def __init__(
        self,
        graph: Any,
        config: ExecConfig | None = None,
        dictionary: TermDictionary | None = None,
    ) -> None:
        self.graph = graph
        if dictionary is None:
            dictionary = getattr(graph, "dictionary", None)
        if dictionary is None:
            # Graph-likes without an interning dictionary (test doubles,
            # bare wrappers) get a private one for the plan's lifetime.
            dictionary = TermDictionary()
        self.dictionary = dictionary
        self.config = config or ExecConfig()
        #: Adaptivity decisions recorded during execution.
        self.decisions: list[dict[str, Any]] = []

    def decode_binding(self, schema: Schema, row: Row) -> Binding:
        """Decode a row into a :class:`Binding`, dropping internal columns."""
        terms = self.dictionary.terms
        data: dict[Variable, Term] = {}
        for index, variable in _external_columns(schema):
            value = row[index]
            if value:
                data[variable] = terms[value]
        return Binding(data)

    def decode_expression_binding(self, schema: Schema, row: Row) -> Binding:
        """Like :meth:`decode_binding` but keeps blank-node anchors
        (an EXISTS body may mention the blank node's pattern)."""
        terms = self.dictionary.terms
        data: dict[Variable, Term] = {}
        for index, variable in enumerate(schema):
            value = row[index]
            if value and not variable.name.startswith(_ORD_PREFIX):
                data[variable] = terms[value]
        return Binding(data)


def extend_schema(schema: Schema, variables: Iterable[Variable]) -> Schema:
    """``schema`` plus the unseen ``variables`` in first-occurrence order."""
    existing = set(schema)
    extra: list[Variable] = []
    for variable in variables:
        if variable not in existing:
            existing.add(variable)
            extra.append(variable)
    return schema + tuple(extra)


def pattern_variables(pattern: Triple) -> list[Variable]:
    """Variables (incl. bnode anchors) bound by a pattern, in S-P-O order."""
    result: list[Variable] = []
    for term in pattern:
        if isinstance(term, Variable):
            if term not in result:
                result.append(term)
        elif isinstance(term, BNode):
            anchor = bnode_anchor(term)
            if anchor not in result:
                result.append(anchor)
    return result


def _pattern_text(pattern: Triple) -> str:
    return " ".join(term.n3() for term in pattern)


# --------------------------------------------------------------------------- #
# Operator base
# --------------------------------------------------------------------------- #
class VecOperator:
    """Base class of batched operators.

    ``execute`` must be restartable: correlated parents (OPTIONAL, UNION)
    re-run sub-plans once per input *batch*.  ``reset`` drops state cached
    across runs (a fresh plan execution against possibly mutated data).
    """

    #: Output schema, fixed at compile time.
    schema: Schema = ()
    #: Estimated output rows (display + join-strategy bookkeeping).
    est: float = 1.0
    #: Tracing span name of this operator (every concrete ``Vec*`` class
    #: must override it; enforced by ``tools/check_invariants.py``).
    span_name: str = "exec.operator"

    def __init__(self, ctx: ExecContext) -> None:
        self.ctx = ctx
        self.metrics = OpMetrics()

    # -- abstract ---------------------------------------------------------- #
    def _run(self, batches: Iterator[Batch]) -> Iterator[Batch]:
        raise NotImplementedError

    def children(self) -> Sequence[VecOperator]:
        return ()

    def describe(self) -> str:
        return type(self).__name__

    # -- shared machinery --------------------------------------------------- #
    def execute(self, batches: Iterator[Batch]) -> Iterator[Batch]:
        """Run with instrumentation (row/batch counters, inclusive time)."""
        metrics = self.metrics

        def counted_inputs() -> Iterator[Batch]:
            for batch in batches:
                metrics.batches_in += 1
                metrics.rows_in += len(batch.rows)
                yield batch

        def instrumented() -> Iterator[Batch]:
            produced = self._run(counted_inputs())
            while True:
                started = time.perf_counter()
                batch = next(produced, None)
                metrics.seconds += time.perf_counter() - started
                if batch is None:
                    return
                metrics.batches_out += 1
                metrics.rows_out += len(batch.rows)
                yield batch

        return instrumented()

    def reset(self) -> None:
        self.metrics.clear()
        for child in self.children():
            child.reset()

    def report_lines(self, indent: int = 0) -> list[str]:
        metrics = self.metrics
        line = (
            f"{'  ' * indent}{self.describe()}"
            f"  (rows {metrics.rows_in} -> {metrics.rows_out},"
            f" batches {metrics.batches_out},"
            f" {metrics.seconds * 1000:.2f} ms)"
        )
        lines = [line]
        for child in self.children():
            lines.extend(child.report_lines(indent + 1))
        return lines

    def operator_stats(self, depth: int = 0) -> list[dict[str, Any]]:
        metrics = self.metrics
        stats: list[dict[str, Any]] = [{
            "operator": self.describe(),
            "span": self.span_name,
            "depth": depth,
            "rows_in": metrics.rows_in,
            "rows_out": metrics.rows_out,
            "batches": metrics.batches_out,
            "seconds": metrics.seconds,
        }]
        for child in self.children():
            stats.extend(child.operator_stats(depth + 1))
        return stats


def seed_batches() -> Iterator[Batch]:
    """The top-level input: one empty row over the empty schema."""
    return iter((Batch((), [()]),))


# --------------------------------------------------------------------------- #
# Scans (BGP chains with adaptive reordering)
# --------------------------------------------------------------------------- #
class _VecStep:
    """One scan of a BGP chain plus the filters applied right after it."""

    __slots__ = ("pattern", "filters", "est")

    def __init__(self, pattern: Triple, filters: list[Expression], est: float) -> None:
        self.pattern = pattern
        self.filters = filters
        self.est = est


class VecBGPOp(VecOperator):
    """A chain of index scans producing batches of interned-id rows.

    Rows stream through the chain one at a time (a scan is a correlated
    index lookup per input row), but are handed to the parent in batches
    that follow the growth schedule of :class:`ExecConfig`.  When
    ``adaptive`` is on, the chain samples each step's actual output and
    reorders the remaining steps on misestimates.
    """

    span_name = "exec.bgp_scan"

    def __init__(
        self,
        ctx: ExecContext,
        in_schema: Schema,
        steps: list[_VecStep],
        tail_filters: list[Expression],
        adaptive: bool = False,
    ) -> None:
        super().__init__(ctx)
        self.in_schema = in_schema
        self.steps = steps
        self.tail_filters = list(tail_filters)
        self.adaptive = adaptive
        schema = in_schema
        for step in steps:
            schema = extend_schema(schema, pattern_variables(step.pattern))
        self.schema = schema
        est = 1.0
        for step in steps:
            est *= max(step.est, 0.0)
        self.est = est

    # -- single-step scan --------------------------------------------------- #
    def _scan_rows(
        self, step: _VecStep, rows: Iterator[Row], layout: list[Variable]
    ) -> Iterator[Row]:
        """Extend every row with the matches of ``step`` (then filter)."""
        ctx = self.ctx
        graph = ctx.graph
        dictionary = ctx.dictionary
        column = {variable: index for index, variable in enumerate(layout)}

        # Compile the pattern against the current column layout.  Every
        # variable position resolves to one output column: an existing
        # column (possibly unbound at runtime — OPTIONAL-bound variables)
        # or a freshly appended one.  Bound columns constrain the index
        # lookup; after a match every variable position is checked against
        # / written into its column, which uniformly covers repeated
        # variables and runtime-unbound columns.
        in_width = len(layout)
        const_lookup: list[Term | None] = [None, None, None]
        var_cols: list[tuple[int, int]] = []  # (position, output column)
        for position, term in enumerate(step.pattern):
            if isinstance(term, Variable):
                anchor = term
            elif isinstance(term, BNode):
                anchor = bnode_anchor(term)
            else:
                const_lookup[position] = term
                continue
            index = column.get(anchor)
            if index is None:
                index = len(layout)
                column[anchor] = index
                layout.append(anchor)
            var_cols.append((position, index))
        pad = len(layout) - in_width
        lookup_cols = [
            (position, index) for position, index in var_cols if index < in_width
        ]

        filters = step.filters
        schema_snapshot = tuple(layout)

        def keep(extended: Row) -> bool:
            return all(
                expression_satisfied(
                    expr,
                    ctx.decode_expression_binding(schema_snapshot, extended),
                    graph,
                )
                for expr in filters
            )

        triples_ids = getattr(graph, "triples_ids", None)
        if triples_ids is not None and getattr(graph, "dictionary", None) is dictionary:
            # Id-native scan: lookups, matches and consistency checks all
            # happen on dictionary ids, so the loop never hashes a term,
            # never re-interns and never constructs a Triple.
            id_lookup = dictionary.lookup
            const_ids = [UNBOUND, UNBOUND, UNBOUND]
            dead = False
            for position, term in enumerate(const_lookup):
                if term is None:
                    continue
                const_ids[position] = id_lookup(term)
                if not const_ids[position]:
                    # The constant was never interned by this graph's
                    # dictionary, so no asserted triple can mention it.
                    dead = True
            if dead:
                return iter(())
            # A join-back column (bound in the input row) constrains the
            # index lookup itself, so re-checking it is redundant whenever
            # the row actually binds it; fresh distinct columns need no
            # check either.  That covers the common all-bound row with a
            # straight tuple append.
            fresh_cols = [(p, i) for p, i in var_cols if i >= in_width]
            fast_ok = len({index for _, index in fresh_cols}) == len(fresh_cols)

            def scan_ids() -> Iterator[Row]:
                for row in rows:
                    lookup = list(const_ids)
                    all_bound = True
                    for position, index in lookup_cols:
                        value = row[index]
                        if value:
                            lookup[position] = value
                        else:
                            all_bound = False
                    if fast_ok and all_bound:
                        for data in triples_ids(lookup[0], lookup[1], lookup[2]):
                            extended = row + tuple(
                                data[position] for position, _ in fresh_cols
                            )
                            if filters and not keep(extended):
                                continue
                            yield extended
                        continue
                    padded = row + (UNBOUND,) * pad if pad else row
                    for data in triples_ids(lookup[0], lookup[1], lookup[2]):
                        out = list(padded)
                        consistent = True
                        for position, index in var_cols:
                            observed = data[position]
                            current = out[index]
                            if current and current != observed:
                                consistent = False
                                break
                            out[index] = observed
                        if not consistent:
                            continue
                        extended = tuple(out)
                        if filters and not keep(extended):
                            continue
                        yield extended

            return scan_ids()

        # Fallback for graph-likes without id indexes (test doubles, proxies
        # wrapping only ``triples``): scan on terms, interning matches.
        intern = dictionary.intern
        terms = dictionary.terms

        def scan() -> Iterator[Row]:
            for row in rows:
                lookup: list[Term | None] = list(const_lookup)
                for position, index in lookup_cols:
                    value = row[index]
                    if value:
                        lookup[position] = terms[value]
                padded = row + (UNBOUND,) * pad if pad else row
                for triple in graph.triples(lookup[0], lookup[1], lookup[2]):
                    data = (triple.subject, triple.predicate, triple.object)
                    out = list(padded)
                    consistent = True
                    for position, index in var_cols:
                        observed = intern(data[position])
                        current = out[index]
                        if current and current != observed:
                            consistent = False
                            break
                        out[index] = observed
                    if not consistent:
                        continue
                    extended: Row = tuple(out)
                    if filters and not keep(extended):
                        continue
                    yield extended

        return scan()

    # -- adaptive reordering ------------------------------------------------ #
    def _sampled_estimate(
        self, pattern: Triple, rows: Sequence[Row], layout: Sequence[Variable]
    ) -> float:
        """Mean cardinality of ``pattern`` with sampled rows bound in."""
        cardinality = getattr(self.ctx.graph, "cardinality", None)
        if cardinality is None or not rows:
            return float("inf")
        terms = self.ctx.dictionary.terms
        column = {variable: index for index, variable in enumerate(layout)}
        total = 0.0
        for row in rows:
            lookup: list[Term | None] = [None, None, None]
            for position, term in enumerate(pattern):
                if isinstance(term, Variable):
                    anchor = term
                elif isinstance(term, BNode):
                    anchor = bnode_anchor(term)
                else:
                    lookup[position] = term
                    continue
                index = column.get(anchor)
                if index is not None and row[index]:
                    lookup[position] = terms[row[index]]
            total += float(cardinality(lookup[0], lookup[1], lookup[2]))
        return total / len(rows)

    def _reorder(
        self,
        remaining: list[_VecStep],
        sample: Sequence[Row],
        layout: Sequence[Variable],
        after: _VecStep,
        observed: int,
        exhausted: bool,
    ) -> list[_VecStep]:
        """Reorder ``remaining`` by estimates sampled from actual rows."""
        sampled = {
            id(step): self._sampled_estimate(step.pattern, sample, layout)
            for step in remaining
        }
        reordered = sorted(
            remaining,
            key=lambda step: (sampled[id(step)], _pattern_text(step.pattern)),
        )
        # Re-attach the pending filters at the earliest step where all of
        # their variables are bound (same rule the planner applies).
        pending = [expr for step in remaining for expr in step.filters]
        bound: set[Variable] = set(layout)
        rebuilt: list[_VecStep] = []
        for step in reordered:
            bound |= set(pattern_variables(step.pattern))
            attached = [expr for expr in pending if expr.variables() <= bound]
            pending = [expr for expr in pending if expr not in attached]
            rebuilt.append(_VecStep(step.pattern, attached, sampled[id(step)]))
        if pending:  # pragma: no cover - planner never leaves these dangling
            rebuilt[-1].filters.extend(pending)
        if [id(s) for s in remaining] != [id(s) for s in reordered]:
            self.ctx.decisions.append({
                "after": _pattern_text(after.pattern),
                "estimated": after.est,
                "observed": observed,
                "observed_is_exact": exhausted,
                "old_order": [_pattern_text(s.pattern) for s in remaining],
                "new_order": [_pattern_text(s.pattern) for s in rebuilt],
            })
        return rebuilt

    # -- the chain ----------------------------------------------------------- #
    def _run(self, batches: Iterator[Batch]) -> Iterator[Batch]:
        config = self.ctx.config
        layout: list[Variable] = list(self.in_schema)

        def input_rows() -> Iterator[Row]:
            for batch in batches:
                yield from batch.rows

        stream: Iterator[Row] = input_rows()
        remaining = list(self.steps)
        factor = config.misestimate_factor
        while remaining:
            step = remaining.pop(0)
            stream = self._scan_rows(step, stream, layout)
            if self.adaptive and len(remaining) >= 2:
                sample = list(islice(stream, config.sample_rows))
                exhausted = len(sample) < config.sample_rows
                observed = len(sample)
                over = observed > max(step.est, 0.5) * factor
                under = exhausted and observed * factor < step.est
                if over or under:
                    remaining = self._reorder(
                        remaining, sample, layout, step, observed, exhausted
                    )
                stream = iter(sample) if exhausted else _iter_chain(sample, stream)

        if self.tail_filters:
            ctx = self.ctx
            graph = ctx.graph
            schema_snapshot = tuple(layout)
            tail = self.tail_filters

            def filtered(rows: Iterator[Row]) -> Iterator[Row]:
                for row in rows:
                    if all(
                        expression_satisfied(
                            expr, ctx.decode_expression_binding(schema_snapshot, row), graph
                        )
                        for expr in tail
                    ):
                        yield row

            stream = filtered(stream)

        # Emit under the declared schema: adaptive reordering may have
        # grown the layout in a different column order.
        declared = self.schema
        if tuple(layout) != declared:
            positions = {variable: index for index, variable in enumerate(layout)}
            permutation = [positions[variable] for variable in declared]

            def permuted(rows: Iterator[Row]) -> Iterator[Row]:
                for row in rows:
                    yield tuple(row[index] for index in permutation)

            stream = permuted(stream)

        cap = config.initial_batch_rows
        buffer: list[Row] = []
        for row in stream:
            buffer.append(row)
            if len(buffer) >= cap:
                yield Batch(declared, buffer)
                buffer = []
                cap = min(cap * config.batch_growth, config.max_batch_rows)
        if buffer:
            yield Batch(declared, buffer)

    def describe(self) -> str:
        suffix = " adaptive" if self.adaptive else ""
        return f"BGPScan est={self.est:.1f}{suffix}"

    def report_lines(self, indent: int = 0) -> list[str]:
        lines = super().report_lines(indent)
        pad = "  " * (indent + 1)
        for step in self.steps:
            suffix = ""
            if step.filters:
                rendered = ", ".join(serialize_expression(expr) for expr in step.filters)
                suffix = f" [filter {rendered}]"
            lines.append(f"{pad}scan ({_pattern_text(step.pattern)}) est={step.est:.1f}{suffix}")
        for expr in self.tail_filters:
            lines.append(f"{pad}filter {serialize_expression(expr)}")
        return lines


# --------------------------------------------------------------------------- #
# VALUES
# --------------------------------------------------------------------------- #
class VecTableOp(VecOperator):
    """An inline solution table (VALUES) joined against the input stream."""

    span_name = "exec.table"

    def __init__(
        self,
        ctx: ExecContext,
        in_schema: Schema,
        columns: Sequence[Variable],
        rows: Sequence[tuple],
    ) -> None:
        super().__init__(ctx)
        self.in_schema = in_schema
        self.columns = list(columns)
        self.schema = extend_schema(in_schema, self.columns)
        intern = ctx.dictionary.intern
        self._rows: list[Row] = [
            tuple(intern(term) if term is not None else UNBOUND for term in row)
            for row in rows
        ]
        self.est = float(len(self._rows))
        # Column -> position in the *output* schema, and whether that
        # position already exists in the input (shared) or is appended.
        positions = {variable: index for index, variable in enumerate(self.schema)}
        self._targets = [positions[variable] for variable in self.columns]
        self._width = len(self.schema)
        self._in_width = len(in_schema)

    def _run(self, batches: Iterator[Batch]) -> Iterator[Batch]:
        table = self._rows
        targets = self._targets
        width = self._width
        in_width = self._in_width
        pad = width - in_width
        schema = self.schema
        for batch in batches:
            out: list[Row] = []
            for row in batch.rows:
                base = row + (UNBOUND,) * pad
                for table_row in table:
                    merged = list(base)
                    ok = True
                    for value, target in zip(table_row, targets, strict=True):
                        if not value:
                            continue  # UNDEF constrains nothing
                        current = merged[target]
                        if current and current != value:
                            ok = False
                            break
                        merged[target] = value
                    if ok:
                        out.append(tuple(merged))
            yield Batch(schema, out)

    def describe(self) -> str:
        rendered = " ".join(f"?{variable.name}" for variable in self.columns)
        return f"Table ({rendered}) {len(self._rows)} rows"


# --------------------------------------------------------------------------- #
# Joins
# --------------------------------------------------------------------------- #
class VecBindJoinOp(VecOperator):
    """Streaming bind join: left batches feed the right sub-plan."""

    span_name = "exec.bind_join"

    def __init__(self, ctx: ExecContext, left: VecOperator, right: VecOperator) -> None:
        super().__init__(ctx)
        self._left = left
        self._right = right
        self.schema = right.schema
        self.est = max(left.est, 0.0) * max(right.est, 0.0)

    def _run(self, batches: Iterator[Batch]) -> Iterator[Batch]:
        return self._right.execute(self._left.execute(batches))

    def children(self) -> Sequence[VecOperator]:
        return (self._left, self._right)

    def describe(self) -> str:
        return f"BindJoin est={self.est:.1f}"


class VecHashJoinOp(VecOperator):
    """Hash join on shared certainly-bound variables (build right once)."""

    span_name = "exec.hash_join"

    def __init__(
        self,
        ctx: ExecContext,
        left: VecOperator,
        right: VecOperator,
        key: Sequence[Variable],
    ) -> None:
        super().__init__(ctx)
        self._left = left
        self._right = right
        self.key = tuple(sorted(key, key=lambda variable: variable.name))
        self.schema = extend_schema(left.schema, right.schema)
        self.est = max(left.est, 0.0) * max(right.est, 0.0) * 0.1
        left_positions = {variable: index for index, variable in enumerate(left.schema)}
        right_positions = {variable: index for index, variable in enumerate(right.schema)}
        self._left_key = [left_positions[variable] for variable in self.key]
        self._right_key = [right_positions[variable] for variable in self.key]
        self._append_cols = [
            right_positions[variable]
            for variable in self.schema[len(left.schema):]
        ]
        # The build side runs against the empty input (that is what makes
        # the hash join safe), so its rows cannot vary between runs of one
        # execution: build once, reuse under correlated parents.
        self._table: dict[Row, list[Row]] | None = None

    def reset(self) -> None:
        self._table = None
        super().reset()

    def _run(self, batches: Iterator[Batch]) -> Iterator[Batch]:
        if self._table is None:
            table: dict[Row, list[Row]] = {}
            right_key = self._right_key
            append_cols = self._append_cols
            for batch in self._right.execute(seed_batches()):
                for row in batch.rows:
                    key = tuple(row[index] for index in right_key)
                    table.setdefault(key, []).append(
                        tuple(row[index] for index in append_cols)
                    )
            self._table = table
        table = self._table
        left_key = self._left_key
        schema = self.schema
        for batch in self._left.execute(batches):
            out: list[Row] = []
            for row in batch.rows:
                key = tuple(row[index] for index in left_key)
                for suffix in table.get(key, ()):
                    out.append(row + suffix)
            yield Batch(schema, out)

    def children(self) -> Sequence[VecOperator]:
        return (self._left, self._right)

    def describe(self) -> str:
        rendered = " ".join(f"?{variable.name}" for variable in self.key)
        return f"HashJoin on ({rendered}) est={self.est:.1f}"


class _OrdinalMixin:
    """Shared machinery for operators correlating a sub-plan per input row.

    The sub-plan is compiled against ``input schema + ordinal column``; at
    runtime each input row is tagged with its batch-local ordinal, the
    sub-plan runs over the whole batch at once, and its output is grouped
    back by ordinal — one vectorized sub-plan run per batch instead of one
    per row.
    """

    @staticmethod
    def tag_batch(batch: Batch, tagged_schema: Schema) -> Batch:
        rows = [row + (ordinal,) for ordinal, row in enumerate(batch.rows)]
        return Batch(tagged_schema, rows)

    @staticmethod
    def bucket_by_ordinal(
        op: VecOperator, batch: Batch, ord_index: int
    ) -> dict[int, list[Row]]:
        buckets: dict[int, list[Row]] = {}
        for produced in op.execute(iter((batch,))):
            for row in produced.rows:
                buckets.setdefault(row[ord_index], []).append(row)
        return buckets


class VecLeftJoinOp(VecOperator, _OrdinalMixin):
    """OPTIONAL: extend input rows where the sub-plan matches, else pass."""

    span_name = "exec.left_join"

    def __init__(
        self,
        ctx: ExecContext,
        in_schema: Schema,
        right: VecOperator,
        expression: Expression | None,
        ord_var: Variable,
    ) -> None:
        super().__init__(ctx)
        self.in_schema = in_schema
        self._right = right
        self._expression = expression
        self._ord_var = ord_var
        self._tagged_schema = in_schema + (ord_var,)
        right_schema = right.schema
        new_vars = [
            variable for variable in right_schema
            if variable not in in_schema and variable != ord_var
        ]
        self.schema = in_schema + tuple(new_vars)
        right_positions = {variable: index for index, variable in enumerate(right_schema)}
        self._ord_index = right_positions[ord_var]
        # Map a right-output row onto the out schema.
        self._projection = [right_positions[variable] for variable in self.schema]
        self._pad = len(new_vars)
        self.est = max(right.est, 1.0)

    def _run(self, batches: Iterator[Batch]) -> Iterator[Batch]:
        ctx = self.ctx
        graph = ctx.graph
        expression = self._expression
        schema = self.schema
        projection = self._projection
        pad = (UNBOUND,) * self._pad
        for batch in batches:
            tagged = self.tag_batch(batch, self._tagged_schema)
            buckets = self.bucket_by_ordinal(self._right, tagged, self._ord_index)
            out: list[Row] = []
            for ordinal, row in enumerate(batch.rows):
                matched = False
                for extension in buckets.get(ordinal, ()):
                    aligned = tuple(extension[index] for index in projection)
                    if expression is None or expression_satisfied(
                        expression,
                        ctx.decode_expression_binding(schema, aligned),
                        graph,
                    ):
                        matched = True
                        out.append(aligned)
                if not matched:
                    out.append(row + pad)
            yield Batch(schema, out)

    def children(self) -> Sequence[VecOperator]:
        return (self._right,)

    def describe(self) -> str:
        condition = (
            f" on [{serialize_expression(self._expression)}]"
            if self._expression is not None
            else ""
        )
        return f"LeftJoin{condition} est={self.est:.1f}"


class VecUnionOp(VecOperator, _OrdinalMixin):
    """UNION: each input row flows through every branch, in branch order."""

    span_name = "exec.union"

    def __init__(
        self,
        ctx: ExecContext,
        in_schema: Schema,
        branches: Sequence[VecOperator],
        ord_var: Variable,
    ) -> None:
        super().__init__(ctx)
        self.in_schema = in_schema
        self._branches = list(branches)
        self._ord_var = ord_var
        self._tagged_schema = in_schema + (ord_var,)
        schema = in_schema
        for branch in self._branches:
            schema = extend_schema(
                schema,
                (v for v in branch.schema if v != ord_var),
            )
        self.schema = schema
        positions = {variable: index for index, variable in enumerate(schema)}
        self._ord_indexes: list[int] = []
        self._projections: list[list[tuple[int, int]]] = []
        for branch in self._branches:
            branch_positions = {v: i for i, v in enumerate(branch.schema)}
            self._ord_indexes.append(branch_positions[ord_var])
            self._projections.append([
                (branch_positions[variable], positions[variable])
                for variable in branch.schema
                if variable != ord_var
            ])
        self.est = sum(max(branch.est, 0.0) for branch in self._branches)

    def _run(self, batches: Iterator[Batch]) -> Iterator[Batch]:
        schema = self.schema
        width = len(schema)
        for batch in batches:
            tagged = self.tag_batch(batch, self._tagged_schema)
            per_branch = [
                self.bucket_by_ordinal(branch, tagged, self._ord_indexes[index])
                for index, branch in enumerate(self._branches)
            ]
            out: list[Row] = []
            for ordinal in range(len(batch.rows)):
                for index, buckets in enumerate(per_branch):
                    mapping = self._projections[index]
                    for row in buckets.get(ordinal, ()):
                        aligned = [UNBOUND] * width
                        for source, target in mapping:
                            aligned[target] = row[source]
                        out.append(tuple(aligned))
            yield Batch(schema, out)

    def children(self) -> Sequence[VecOperator]:
        return tuple(self._branches)

    def describe(self) -> str:
        return f"Union est={self.est:.1f}"


# --------------------------------------------------------------------------- #
# Filters and modifiers
# --------------------------------------------------------------------------- #
class VecFilterOp(VecOperator):
    """FILTER expressions evaluated at the term boundary (decode per row)."""

    span_name = "exec.filter"

    def __init__(
        self,
        ctx: ExecContext,
        child: VecOperator,
        expressions: Sequence[Expression],
        graph: Any | None = None,
    ) -> None:
        super().__init__(ctx)
        self._child = child
        self._expressions = list(expressions)
        self._graph = graph if graph is not None else ctx.graph
        self.schema = child.schema
        self.est = max(child.est, 0.0) * (0.5 ** len(self._expressions))

    def _run(self, batches: Iterator[Batch]) -> Iterator[Batch]:
        ctx = self.ctx
        graph = self._graph
        expressions = self._expressions
        schema = self.schema
        for batch in self._child.execute(batches):
            rows = [
                row
                for row in batch.rows
                if all(
                    expression_satisfied(
                        expr, ctx.decode_expression_binding(schema, row), graph
                    )
                    for expr in expressions
                )
            ]
            yield Batch(schema, rows)

    def children(self) -> Sequence[VecOperator]:
        return (self._child,)

    def describe(self) -> str:
        rendered = ", ".join(serialize_expression(expr) for expr in self._expressions)
        return f"Filter [{rendered}] est={self.est:.1f}"


class VecProjectOp(VecOperator):
    """Project rows onto the requested variables (anchors stripped)."""

    span_name = "exec.project"

    def __init__(
        self, ctx: ExecContext, child: VecOperator, projection: Sequence[Variable]
    ) -> None:
        super().__init__(ctx)
        self._child = child
        visible = [
            variable for variable in projection
            if not variable.name.startswith(BNODE_ANCHOR_PREFIX)
        ]
        self.schema = tuple(visible)
        child_positions = {variable: index for index, variable in enumerate(child.schema)}
        # -1: the variable is never bound anywhere in the sub-plan.
        self._sources = [child_positions.get(variable, -1) for variable in visible]
        self.est = child.est

    def _run(self, batches: Iterator[Batch]) -> Iterator[Batch]:
        sources = self._sources
        schema = self.schema
        for batch in self._child.execute(batches):
            rows = [
                tuple(row[index] if index >= 0 else UNBOUND for index in sources)
                for row in batch.rows
            ]
            yield Batch(schema, rows)

    def children(self) -> Sequence[VecOperator]:
        return (self._child,)

    def describe(self) -> str:
        rendered = " ".join(f"?{variable.name}" for variable in self.schema)
        return f"Project ({rendered})"


class VecDistinctOp(VecOperator):
    """Duplicate elimination on raw row tuples (first occurrence wins)."""

    span_name = "exec.distinct"

    def __init__(self, ctx: ExecContext, child: VecOperator) -> None:
        super().__init__(ctx)
        self._child = child
        self.schema = child.schema
        self.est = child.est

    def _run(self, batches: Iterator[Batch]) -> Iterator[Batch]:
        seen: set[Row] = set()
        schema = self.schema
        for batch in self._child.execute(batches):
            rows: list[Row] = []
            for row in batch.rows:
                if row not in seen:
                    seen.add(row)
                    rows.append(row)
            yield Batch(schema, rows)

    def children(self) -> Sequence[VecOperator]:
        return (self._child,)

    def describe(self) -> str:
        return "Distinct"


class VecOrderByOp(VecOperator):
    """ORDER BY: the one blocking operator (materialise, decode keys, sort)."""

    span_name = "exec.order_by"

    def __init__(
        self,
        ctx: ExecContext,
        child: VecOperator,
        conditions: Sequence[OrderCondition],
        graph: Any | None = None,
    ) -> None:
        super().__init__(ctx)
        self._child = child
        self._conditions = list(conditions)
        self._graph = graph if graph is not None else ctx.graph
        self.schema = child.schema
        self.est = child.est

    def _run(self, batches: Iterator[Batch]) -> Iterator[Batch]:
        ctx = self.ctx
        graph = self._graph
        conditions = self._conditions
        schema = self.schema
        rows: list[Row] = []
        for batch in self._child.execute(batches):
            rows.extend(batch.rows)

        def sort_key(row: Row) -> list[Any]:
            binding = ctx.decode_expression_binding(schema, row)
            key: list[Any] = []
            for condition in conditions:
                try:
                    value = evaluate_expression(condition.expression, binding, graph)
                except ExpressionError:
                    value = None
                key.append(_orderable(value, condition.descending))
            return key

        rows.sort(key=sort_key)
        yield Batch(schema, rows)

    def children(self) -> Sequence[VecOperator]:
        return (self._child,)

    def describe(self) -> str:
        return f"OrderBy ({len(self._conditions)} conditions, blocking)"


class VecSliceOp(VecOperator):
    """OFFSET/LIMIT with early termination across batch boundaries."""

    span_name = "exec.slice"

    def __init__(
        self,
        ctx: ExecContext,
        child: VecOperator,
        offset: int | None,
        limit: int | None,
    ) -> None:
        super().__init__(ctx)
        self._child = child
        self._offset = offset or 0
        self._limit = limit
        self.schema = child.schema
        self.est = min(child.est, float(limit)) if limit is not None else child.est

    def _run(self, batches: Iterator[Batch]) -> Iterator[Batch]:
        to_skip = self._offset
        remaining = self._limit
        schema = self.schema
        for batch in self._child.execute(batches):
            rows = batch.rows
            if to_skip:
                if to_skip >= len(rows):
                    to_skip -= len(rows)
                    continue
                rows = rows[to_skip:]
                to_skip = 0
            if remaining is not None:
                if remaining <= 0:
                    return
                rows = rows[:remaining]
                remaining -= len(rows)
            if rows:
                yield Batch(schema, rows)
            if remaining is not None and remaining <= 0:
                return

    def children(self) -> Sequence[VecOperator]:
        return (self._child,)

    def describe(self) -> str:
        return f"Slice (offset={self._offset}, limit={self._limit})"


# --------------------------------------------------------------------------- #
# Plans, reports, run events
# --------------------------------------------------------------------------- #
@dataclass
class QueryRunEvent:
    """One structured per-query execution record (OpenLineage-style).

    Consumable by ``benchmarks/compare.py --events``: operator timings
    attribute a perf regression to an operator instead of a test name.
    """

    query: str
    engine: str
    elapsed: float
    rows: int
    operators: list[dict[str, Any]] = field(default_factory=list)
    adaptivity: list[dict[str, Any]] = field(default_factory=list)
    endpoints: list[dict[str, Any]] = field(default_factory=list)
    rows_shipped: int = 0
    plan: str = ""

    def to_json_dict(self) -> dict[str, Any]:
        return {
            "query": self.query,
            "engine": self.engine,
            "elapsed": self.elapsed,
            "rows": self.rows,
            "operators": self.operators,
            "adaptivity": self.adaptivity,
            "endpoints": self.endpoints,
            "rows_shipped": self.rows_shipped,
            "plan": self.plan,
        }

    def render(self) -> str:
        """Human-readable EXPLAIN ANALYZE text."""
        lines = [
            f"EXPLAIN ANALYZE ({self.engine} engine): "
            f"{self.rows} rows in {self.elapsed * 1000:.2f} ms"
        ]
        if self.plan:
            lines.extend(self.plan.splitlines())
        for decision in self.adaptivity:
            exactness = "exact" if decision.get("observed_is_exact") else ">="
            lines.append(
                f"adaptive reorder after ({decision['after']}): "
                f"estimated {decision['estimated']:.1f}, "
                f"observed {exactness} {decision['observed']}"
            )
            lines.append(f"  new order: {', '.join(decision['new_order'])}")
        for endpoint in self.endpoints:
            lines.append(
                f"endpoint {endpoint.get('dataset')}: "
                f"requests={endpoint.get('requests')} "
                f"rows_shipped={endpoint.get('rows_shipped')}"
            )
        return "\n".join(lines)


def maybe_emit_event(event: QueryRunEvent) -> None:
    """Append ``event`` to the JSONL file named by ``REPRO_RUN_EVENTS``.

    Delegates to the process-wide :data:`repro.obs.export.SINK`, which
    serializes concurrent emitters (one ``write()`` per line) and caches
    the environment lookup instead of re-reading it per event.
    """
    SINK.emit(event.to_json_dict())


class ExecPlan:
    """A compiled batched plan, ready for execution against one graph."""

    def __init__(self, query: Query, root: VecOperator, ctx: ExecContext, engine: str) -> None:
        self.query = query
        self.root = root
        self.ctx = ctx
        self.engine = engine
        self._elapsed = 0.0

    def execute(self) -> Iterator[Batch]:
        """Stream output batches (fresh execution: caches are dropped)."""
        self.root.reset()
        self.ctx.decisions.clear()
        started = time.perf_counter()
        for batch in self.root.execute(seed_batches()):
            yield batch
        self._elapsed = time.perf_counter() - started

    def bindings(self) -> Iterator[Binding]:
        """Stream decoded solutions (the term-decode boundary)."""
        ctx = self.ctx
        for batch in self.execute():
            schema = batch.schema
            for row in batch.rows:
                yield ctx.decode_binding(schema, row)

    def first_binding(self) -> Binding | None:
        """The first solution, pulling as little as possible (ASK)."""
        return next(self.bindings(), None)

    @property
    def elapsed(self) -> float:
        """Wall seconds of the most recent execution."""
        return self._elapsed

    def report(self) -> str:
        """Per-operator rows/batches/time of the most recent execution."""
        return "\n".join(self.root.report_lines(0))

    def run_event(self, query_text: str | None = None) -> QueryRunEvent:
        """The structured run event of the most recent execution."""
        return QueryRunEvent(
            query=query_text if query_text is not None else type(self.query).__name__,
            engine=self.engine,
            elapsed=self._elapsed,
            rows=self.root.metrics.rows_out,
            operators=self.root.operator_stats(),
            adaptivity=list(self.ctx.decisions),
            plan=self.report(),
        )


# --------------------------------------------------------------------------- #
# Compilation: the cost-based planner engine
# --------------------------------------------------------------------------- #
def _fresh_ord(counter: list[int]) -> Variable:
    counter[0] += 1
    return Variable(f"{_ORD_PREFIX}{counter[0]}")


def _convert_physical(
    op: Any, in_schema: Schema, ctx: ExecContext, counter: list[int]
) -> VecOperator:
    """Convert one streaming physical operator (``repro.sparql.plan``) into
    its batched counterpart, preserving every planning decision."""
    from . import plan as _plan

    if isinstance(op, _plan.BGPScanOp):
        steps = [_VecStep(step.pattern, list(step.filters), step.est) for step in op.steps]
        return VecBGPOp(
            ctx, in_schema, steps, list(op.tail_filters),
            adaptive=ctx.config.adaptive,
        )
    if isinstance(op, _plan.TableOp):
        columns = list(op.columns)
        rows = [
            tuple(binding.get_term(column) for column in columns)
            for binding in op._rows
        ]
        return VecTableOp(ctx, in_schema, columns, rows)
    if isinstance(op, _plan.PipelineJoinOp):
        left = _convert_physical(op._left, in_schema, ctx, counter)
        right = _convert_physical(op._right, left.schema, ctx, counter)
        return VecBindJoinOp(ctx, left, right)
    if isinstance(op, _plan.HashJoinOp):
        left = _convert_physical(op._left, in_schema, ctx, counter)
        right = _convert_physical(op._right, (), ctx, counter)
        return VecHashJoinOp(ctx, left, right, list(op.key))
    if isinstance(op, _plan.LeftJoinOp):
        left = _convert_physical(op._left, in_schema, ctx, counter)
        ord_var = _fresh_ord(counter)
        right = _convert_physical(op._right, left.schema + (ord_var,), ctx, counter)
        left_join = VecLeftJoinOp(ctx, left.schema, right, op._expression, ord_var)
        return VecBindJoinOp(ctx, left, left_join)
    if isinstance(op, _plan.UnionOp):
        ord_var = _fresh_ord(counter)
        branches = [
            _convert_physical(branch, in_schema + (ord_var,), ctx, counter)
            for branch in op._branches
        ]
        return VecUnionOp(ctx, in_schema, branches, ord_var)
    if isinstance(op, _plan.FilterOp):
        child = _convert_physical(op._child, in_schema, ctx, counter)
        return VecFilterOp(ctx, child, list(op._expressions))
    if isinstance(op, _plan.ProjectOp):
        child = _convert_physical(op._child, in_schema, ctx, counter)
        return VecProjectOp(ctx, child, list(op._projection))
    if isinstance(op, _plan.DistinctOp):
        child = _convert_physical(op._child, in_schema, ctx, counter)
        return VecDistinctOp(ctx, child)
    if isinstance(op, _plan.OrderByOp):
        child = _convert_physical(op._child, in_schema, ctx, counter)
        return VecOrderByOp(ctx, child, list(op._conditions))
    if isinstance(op, _plan.SliceOp):
        child = _convert_physical(op._child, in_schema, ctx, counter)
        return VecSliceOp(ctx, child, op._offset, op._limit)
    raise TypeError(f"cannot vectorize physical operator: {op!r}")


def compile_planner_query(
    query: Query, graph: Any, config: ExecConfig | None = None
) -> ExecPlan:
    """Compile ``query`` with the cost-based planner onto batched operators.

    All planning (statistics-driven join order, hash vs. bind join
    selection, filter pushdown) comes from :class:`~repro.sparql.plan.
    QueryPlanner`; only the execution layer changes.
    """
    from .plan import plan_query

    ctx = ExecContext(graph, config)
    streaming = plan_query(query, graph)
    root = _convert_physical(streaming.root, (), ctx, [0])
    return ExecPlan(query, root, ctx, engine="planner")


# --------------------------------------------------------------------------- #
# Compilation: the naive engine (bottom-up group semantics)
# --------------------------------------------------------------------------- #
def compile_naive_query(
    query: Query, graph: Any, config: ExecConfig | None = None
) -> ExecPlan:
    """Compile ``query`` with the naive evaluator's semantics onto batched
    operators: elements in group order, group-scoped filters at the end of
    their group, ``ordered_bgp_patterns`` scan order, modifiers in the
    standard ORDER BY -> project -> DISTINCT -> OFFSET/LIMIT sequence."""
    from .ast import (
        Filter,
        GroupGraphPattern,
        InlineData,
        OptionalPattern,
        TriplesBlock,
        UnionPattern,
    )

    ctx = ExecContext(graph, config)
    counter = [0]

    def compile_group(group: GroupGraphPattern, in_schema: Schema) -> VecOperator:
        chain: list[VecOperator] = []
        schema = in_schema
        filters: list[Expression] = []
        for element in group.elements:
            if isinstance(element, Filter):
                filters.append(element.expression)
                continue
            if isinstance(element, TriplesBlock):
                ordered = ordered_bgp_patterns(element.patterns, frozenset(schema))
                steps = [_VecStep(pattern, [], 0.0) for pattern in ordered]
                op: VecOperator = VecBGPOp(ctx, schema, steps, [], adaptive=False)
            elif isinstance(element, GroupGraphPattern):
                op = compile_group(element, schema)
            elif isinstance(element, OptionalPattern):
                ord_var = _fresh_ord(counter)
                inner = compile_group(element.group, schema + (ord_var,))
                op = VecLeftJoinOp(ctx, schema, inner, None, ord_var)
            elif isinstance(element, UnionPattern):
                ord_var = _fresh_ord(counter)
                branches = [
                    compile_group(alternative, schema + (ord_var,))
                    for alternative in element.alternatives
                ]
                op = VecUnionOp(ctx, schema, branches, ord_var)
            elif isinstance(element, InlineData):
                op = VecTableOp(ctx, schema, element.columns, element.rows)
            else:
                raise TypeError(f"unsupported pattern element: {element!r}")
            chain.append(op)
            schema = op.schema
        root = _compose(chain, schema)
        if filters:
            root = VecFilterOp(ctx, root, filters)
        return root

    def _compose(chain: list[VecOperator], schema: Schema) -> VecOperator:
        if not chain:
            return _VecIdentityOp(ctx, schema)
        root = chain[0]
        for op in chain[1:]:
            root = VecBindJoinOp(ctx, root, op)
        return root

    root = compile_group(query.where, ())
    modifiers = query.modifiers
    if isinstance(query, AskQuery):
        return ExecPlan(query, root, ctx, engine="naive")
    if modifiers.order_by:
        root = VecOrderByOp(ctx, root, modifiers.order_by)
    if isinstance(query, SelectQuery):
        root = VecProjectOp(ctx, root, query.effective_projection())
    if modifiers.distinct:
        root = VecDistinctOp(ctx, root)
    if modifiers.limit is not None or modifiers.offset is not None:
        root = VecSliceOp(ctx, root, modifiers.offset, modifiers.limit)
    return ExecPlan(query, root, ctx, engine="naive")


class _VecIdentityOp(VecOperator):
    """Pass-through (an empty group matches every input row once)."""

    span_name = "exec.identity"

    def __init__(self, ctx: ExecContext, schema: Schema) -> None:
        super().__init__(ctx)
        self.schema = schema

    def _run(self, batches: Iterator[Batch]) -> Iterator[Batch]:
        return batches

    def describe(self) -> str:
        return "Identity"


# --------------------------------------------------------------------------- #
# Compilation: statically-proven-empty queries
# --------------------------------------------------------------------------- #
class VecAnalysisPruneOp(VecOperator):
    """The whole plan for a query the static analyzer proved empty.

    Emits nothing and has no children: EXPLAIN ANALYZE shows a single
    operator with zero rows and zero batches, and no scan ever touches
    the graph indexes.
    """

    span_name = "exec.analysis_prune"

    def __init__(self, ctx: ExecContext, schema: Schema, reason: str) -> None:
        super().__init__(ctx)
        self.schema = schema
        self.reason = reason

    def _run(self, batches: Iterator[Batch]) -> Iterator[Batch]:
        for _ in batches:  # drain the seed without producing anything
            pass
        return iter(())

    def describe(self) -> str:
        return f"AnalysisPrune[{self.reason}]"


def compile_empty_query(
    query: Query,
    graph: Any,
    reason: str,
    config: ExecConfig | None = None,
    engine: str = "planner",
) -> ExecPlan:
    """An :class:`ExecPlan` for a query statically proven to be empty.

    The plan performs zero index lookups — its only operator is
    :class:`VecAnalysisPruneOp` — while keeping the full EXPLAIN ANALYZE
    surface (report, run events, operator stats) intact.
    """
    ctx = ExecContext(graph, config)
    schema: Schema = ()
    if isinstance(query, SelectQuery):
        schema = tuple(query.effective_projection())
    root = VecAnalysisPruneOp(ctx, schema, reason)
    return ExecPlan(query, root, ctx, engine=engine)
